# Convenience targets. Tier-1 is `make check` (= dune build && dune runtest);
# `dune runtest` includes the bench smoke (`bench/main.exe --quick`).

.PHONY: all build test check verify fuzz fmt fmt-check bench-smoke bench-json perf perf-compare faults guard multilevel floorplan serve soak chaos clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test verify

# Independent-oracle validation (`prpart check`): every built-in library
# design and every XML design under examples/designs must pass the full
# pipeline verification (solve + floorplan + bitstreams + transitions).
verify: build
	@for f in examples/designs/*.xml; do \
	  echo "== prpart check $$f"; \
	  dune exec bin/prpart.exe -- check "$$f" || exit 1; \
	done
	@for d in video-receiver running-example; do \
	  echo "== prpart check $$d"; \
	  dune exec bin/prpart.exe -- check "$$d" || exit 1; \
	done
	@echo "== prpart check (budget-constrained, multi-region)"
	dune exec bin/prpart.exe -- check video-receiver --budget 6900,62,150
	dune exec bin/prpart.exe -- check examples/designs/vision-pipeline.xml --budget 4000,70,60
	dune exec bin/prpart.exe -- check examples/designs/sdr-modem.xml --budget 2600,30,45
	dune exec bin/prpart.exe -- check examples/designs/adaptive-router.xml --budget 2200,20,8

# Differential fuzzing plus the seeded mutation-kill matrix: 200 random
# designs cross-checked seq-vs-par / memo-vs-fresh / oracle-vs-reported,
# and nine seeded corruptions that must each fire exactly their code.
fuzz: build
	dune exec bin/prpart.exe -- fuzz --count 200 --kills

# Formatting is governed by .ocamlformat. The container does not ship the
# ocamlformat binary, so both targets degrade to a no-op with a notice when
# it is absent rather than failing the build.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping fmt"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping fmt-check"; \
	fi

bench-smoke:
	dune exec bench/main.exe -- --quick

# Machine-readable performance artefact (allocator moves/sec, engine
# solve latency, sweep throughput over the host_domains scaling matrix,
# cache hit rate). Writes BENCH_core.json and appends the same metrics
# to BENCH_history.jsonl for regression tracking.
bench-json:
	dune exec bench/main.exe -- bench-json

# Regression gate: regenerate the bench metrics (appending a history
# entry) and diff the two most recent BENCH_history.jsonl entries under
# the Regress tolerance rules. Exits non-zero on any regression. Pin a
# fixed baseline with PRPART_BENCH_BASELINE=<file> (a history entry or
# a saved BENCH_core.json).
perf-compare: bench-json
	dune exec bench/main.exe -- bench-compare

# Full Bechamel suite, gated on the smoke (which asserts parallel
# determinism and cache effectiveness before any numbers are reported),
# followed by the regression diff against the bench history.
perf: bench-smoke
	dune exec bench/main.exe -- perf
	$(MAKE) perf-compare

# Fault-injection sweep: resilient runtime over the reference schemes,
# plus the recovery-policy comparison (see DESIGN.md, fault model).
faults:
	dune exec bench/main.exe -- faults

# Resilience suite: the Prguard unit/property tests plus the anytime
# quality experiment (eval-cap sweep, degradation ladder, wall-clock
# deadline, torn-artefact recovery). See DESIGN.md §8.
guard: build
	dune exec test/test_guard.exe
	dune exec bench/main.exe -- guard

# Prscale suite: the multilevel unit/property tests, then the scaling
# experiment — exact and anneal expire a 2 s deadline on the seeded
# 200-module huge design while the multilevel backend solves it
# near-interactively, feasible and oracle-clean. See DESIGN.md §12.
multilevel: build
	dune exec test/test_multilevel.exe
	dune exec bench/main.exe -- multilevel

# Placement-aware suite: the floorplan unit/property tests (placer,
# estimator, verify-oracle re-derivation), then the experiment pitting
# the placement-aware search against the post-hoc feedback loop on the
# fragmentation stress design. See DESIGN.md §13.
floorplan: build
	dune exec test/test_floorplan.exe
	dune exec bench/main.exe -- floorplan

# Partitioning daemon on a local Unix socket with a persistent result
# cache (talk to it with `nc -U prserve.sock`; Ctrl-C drains). See
# DESIGN.md §11.
serve: build
	dune exec bin/prpart.exe -- serve --socket prserve.sock \
	  --cache-dir prserve-cache --metrics prserve-metrics.txt --stats

# Prserve acceptance soak: the serve test suite, then >= 1000 requests
# from concurrent clients with a ~50% duplicate mix through an
# in-process daemon — zero crashes, cache hit rate > 0.4, and cached
# replies cross-checked against fresh verified solves. Scale with
# PRPART_SOAK_REQUESTS.
soak: build
	dune exec test/test_serve.exe
	dune exec bench/main.exe -- serve

# Prfleet chaos acceptance: the fleet test suite, then >= 500 requests
# through the fault-tolerant client against a supervised 3-replica
# fleet sharing one cache directory while seeded chaos kills replicas
# mid-solve and mid-cache-write, tears cache files, resets connections
# and delays replies — zero lost replies, zero wrong replies, every
# casualty restarted within budget, and a cold replica serving a
# peer-written cache hit. Scale with PRPART_CHAOS_REQUESTS. See
# DESIGN.md §14.
chaos: build
	dune exec test/test_fleet.exe
	dune exec bench/main.exe -- chaos

clean:
	dune clean
