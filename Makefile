# Convenience targets. Tier-1 is `make check` (= dune build && dune runtest);
# `dune runtest` includes the bench smoke (`bench/main.exe --quick`).

.PHONY: all build test check fmt fmt-check bench-smoke bench-json perf faults clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test

# Formatting is governed by .ocamlformat. The container does not ship the
# ocamlformat binary, so both targets degrade to a no-op with a notice when
# it is absent rather than failing the build.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping fmt"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping fmt-check"; \
	fi

bench-smoke:
	dune exec bench/main.exe -- --quick

# Machine-readable performance artefact (allocator moves/sec, engine
# solve latency, sweep throughput sequential vs parallel, cache hit
# rate). Writes BENCH_core.json in the working directory.
bench-json:
	dune exec bench/main.exe -- bench-json

# Full Bechamel suite, gated on the smoke (which asserts parallel
# determinism and cache effectiveness before any numbers are reported).
perf: bench-smoke
	dune exec bench/main.exe -- perf

# Fault-injection sweep: resilient runtime over the reference schemes,
# plus the recovery-policy comparison (see DESIGN.md, fault model).
faults:
	dune exec bench/main.exe -- faults

clean:
	dune clean
