(* prpart: automated partitioning for partial reconfiguration designs.

   Subcommands: partition, profile, baselines, simulate, synth, batch,
   recover, devices, designs. A DESIGN argument is either the name of a
   built-in
   paper design (see `prpart designs`) or a path to an XML design
   description. *)

open Cmdliner

let load_design ?limits spec =
  match Prdesign.Design_library.find spec with
  | Some design -> Ok design
  | None ->
    if Sys.file_exists spec then
      try Ok (Prdesign.Design_xml.load_file ?limits spec) with
      | Prdesign.Design_xml.Malformed message ->
        Error (Printf.sprintf "%s: %s" spec message)
      | Xmllite.Xml.Parse_error { line; column; message } ->
        Error
          (Printf.sprintf "%s:%d:%d: %s" spec line column message)
      | (Prdesign.Design_xml.Too_large _ | Xmllite.Xml.Limit_exceeded _) as e
        ->
        Error
          (Printf.sprintf "%s: %s" spec
             (Option.value
                ~default:"input guard violation"
                (Prdesign.Design_xml.limit_message e)))
    else
      Error
        (Printf.sprintf
           "%s is neither a built-in design nor an existing file" spec)

let design_arg =
  let doc = "Built-in design name or path to an XML design description." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let budget_conv =
  let parse s =
    match List.map int_of_string_opt (String.split_on_char ',' s) with
    | [ Some clb ] -> Ok (Fpga.Resource.make clb)
    | [ Some clb; Some bram ] -> Ok (Fpga.Resource.make ~bram clb)
    | [ Some clb; Some bram; Some dsp ] -> Ok (Fpga.Resource.make ~bram ~dsp clb)
    | _ -> Error (`Msg "expected CLB[,BRAM[,DSP]]")
  in
  let print ppf (r : Fpga.Resource.t) =
    Format.fprintf ppf "%d,%d,%d" r.clb r.bram r.dsp
  in
  Arg.conv (parse, print)

let budget_arg =
  let doc = "Resource budget as CLB[,BRAM[,DSP]]." in
  Arg.(value & opt (some budget_conv) None & info [ "budget" ] ~docv:"B" ~doc)

let device_arg =
  let doc = "Target a specific device from the catalogue (e.g. FX70T)." in
  Arg.(value & opt (some string) None & info [ "device" ] ~docv:"DEV" ~doc)

let freq_rule_arg =
  let doc =
    "Frequency-weight rule: $(b,support) (reproduces the paper's Table I) \
     or $(b,min-edge) (the paper's literal formula)."
  in
  Arg.(
    value
    & opt (enum [ ("support", Cluster.Agglomerative.Support);
                  ("min-edge", Cluster.Agglomerative.Min_edge) ])
        Cluster.Agglomerative.Support
    & info [ "freq-rule" ] ~docv:"RULE" ~doc)

let no_promote_arg =
  let doc = "Disable static promotion (pure region allocation)." in
  Arg.(value & flag & info [ "no-promote" ] ~doc)

let max_sets_arg =
  let doc = "Maximum candidate partition sets to explore." in
  Arg.(value & opt int 32 & info [ "max-sets" ] ~docv:"N" ~doc)

let restarts_arg =
  let doc = "Allocator restart budget." in
  Arg.(value & opt int 8 & info [ "restarts" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the candidate-set search (default: the \
     machine's recommended domain count). Results are bit-identical \
     for any value; $(b,--jobs 1) is the purely sequential path."
  in
  Arg.(
    value
    & opt int (Par.recommended_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let floorplan_arg =
  let doc = "Validate the result with the columnar floorplanner." in
  Arg.(value & flag & info [ "floorplan" ] ~doc)

(* Deadline / evaluation-budget flags shared by the solving verbs. *)
let deadline_arg =
  let doc =
    "Wall-clock deadline (milliseconds) for the partition search. When \
     it passes, the solver stops at the next loop boundary and returns \
     the best feasible scheme found so far — worst case the \
     single-region baseline — with a $(b,degraded) verdict in the \
     report. The search always terminates with a feasible answer."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_evals_arg =
  let doc =
    "Cap on cost evaluations for the partition search. Unlike \
     $(b,--deadline-ms) the cap is deterministic: the same design and \
     cap always produce the same scheme. Forces sequential solving \
     ($(b,--jobs 1))."
  in
  Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N" ~doc)

let ladder_arg =
  let doc =
    "Graceful-degradation ladder for the per-candidate-set allocation: \
     $(b,default) (exact, then anneal, then greedy, then single-region) \
     or a comma-separated list of rungs \
     $(i,KIND)[:$(i,EVALS)[:$(i,DEADLINE_MS)]] with kinds $(b,exact), \
     $(b,anneal), $(b,greedy), $(b,multilevel), $(b,single-region). Each \
     rung runs under its own budget; the first rung that completes wins, \
     and exhausting the whole ladder still yields the best feasible \
     scheme seen."
  in
  Arg.(value & opt (some string) None & info [ "ladder" ] ~docv:"SPEC" ~doc)

let strategy_arg =
  let doc =
    "Search backend for the partition engine: $(b,greedy) (the default \
     agglomerative + greedy pipeline), $(b,exact) (branch-and-bound), \
     $(b,anneal) (simulated annealing), or $(b,multilevel) (the \
     coarsen/partition/refine backend that scales to 50-500-module \
     designs, DESIGN.md section 12). Unknown names are rejected with \
     the valid set listed."
  in
  Arg.(value & opt string "greedy" & info [ "strategy" ] ~docv:"NAME" ~doc)

let strategy_spec s =
  match Prcore.Strategy.validate s with
  | Ok strategy -> Ok strategy
  | Error message -> Error ("--strategy: " ^ message)

(* Validate and combine the budget flags into a [Prguard.Budget.spec]
   (and the ladder string into a [Prguard.Ladder.t]). *)
let budget_spec ~deadline_ms ~max_evals =
  match (deadline_ms, max_evals) with
  | None, None -> Ok None
  | Some ms, _ when ms <= 0. || Float.is_nan ms ->
    Error "--deadline-ms must be a positive number of milliseconds"
  | _, Some n when n < 1 -> Error "--max-evals must be at least 1"
  | deadline_ms, max_evals ->
    Ok (Some (Prguard.Budget.spec ?deadline_ms ?max_evals ()))

let ladder_spec = function
  | None -> Ok None
  | Some "default" -> Ok (Some Prguard.Ladder.default)
  | Some s -> (
    match Prguard.Ladder.of_string s with
    | Ok l -> Ok (Some l)
    | Error message -> Error ("--ladder: " ^ message))

let guard_specs ~deadline_ms ~max_evals ~ladder =
  match budget_spec ~deadline_ms ~max_evals with
  | Error message -> Error message
  | Ok budget -> (
    match ladder_spec ladder with
    | Error message -> Error message
    | Ok ladder -> Ok (budget, ladder))

let placement_aware_arg =
  let doc =
    "Feed floorplan feasibility into the partition search: the target \
     device's column layout becomes an integer placeability penalty on \
     every explored scheme, steering the search away from allocations \
     the floorplanner cannot realise. Uses the named --device, or the \
     smallest catalogued device fitting --budget; with neither (auto \
     targeting) the first attempt runs unaware. Off by default — \
     without the flag every output is bit-identical to previous \
     releases."
  in
  Arg.(value & flag & info [ "placement-aware" ] ~doc)

(* The placement hook for the resolved CLI target: what the flow layer
   installs, rebuilt here so `partition` (which calls the engine
   directly) agrees with `flow` on the modelled device. *)
let placement_for_target ~placement_aware target =
  if not placement_aware then None
  else
    match (target : Prcore.Engine.target) with
    | Prcore.Engine.Fixed d -> Some (Flow.Tool_flow.placement_hook d)
    | Prcore.Engine.Budget b ->
      Option.map Flow.Tool_flow.placement_hook (Fpga.Device.smallest_fitting b)
    | Prcore.Engine.Auto -> None

let verify_arg =
  let doc =
    "Re-check the result with the independent oracle suite: the engine's \
     memo-vs-fresh self-check plus the Prverify re-derivations (covering, \
     conflicts, cost, budget, transitions). Fails with a diagnostic \
     report when any invariant is violated."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let save_scheme_arg =
  let doc = "Save the chosen scheme as XML to this path." in
  Arg.(value & opt (some string) None & info [ "save-scheme" ] ~docv:"FILE" ~doc)

(* Telemetry plumbing shared by the instrumented subcommands: --trace
   needs the full event stream (memory sink), --stats alone only needs
   the aggregates (null sink). *)
let trace_arg =
  let doc =
    "Write the telemetry event stream as JSON Lines to $(docv): one \
     object per line with seq/t/kind/name/attrs fields, span begin/end \
     pairs balanced."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print per-phase timing and counter tables after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let telemetry_handle ~trace ~stats =
  match (trace, stats) with
  | None, false -> Prtelemetry.null
  | Some _, _ -> Prtelemetry.create (Prtelemetry.Sink.memory ())
  | None, true -> Prtelemetry.create Prtelemetry.Sink.null

(* Flush, print the summary and/or export the trace. Returns a Cmdliner
   status so a failed trace write exits exactly like any other CLI
   error. *)
let finish_telemetry ~trace ~stats tele =
  if not (Prtelemetry.enabled tele) then `Ok ()
  else begin
    Prtelemetry.flush tele;
    if stats then print_string (Prtelemetry.summary tele);
    match trace with
    | None -> `Ok ()
    | Some path ->
      (match Prtelemetry.write_jsonl tele path with
       | Ok () ->
         Format.printf "telemetry trace written to %s@." path;
         `Ok ()
       | Error message -> `Error (false, message))
  end

let options ~freq_rule ~no_promote ~max_sets ~restarts =
  { Prcore.Engine.default_options with
    freq_rule;
    max_candidate_sets = max_sets;
    allocator =
      { Prcore.Allocator.max_restarts = restarts;
        promote_static = not no_promote } }

let target ~budget ~device =
  match (budget, device) with
  | Some _, Some _ -> Error "--budget and --device are mutually exclusive"
  | Some b, None -> Ok (Prcore.Engine.Budget b)
  | None, Some name ->
    (match Fpga.Device.find name with
     | Some d -> Ok (Prcore.Engine.Fixed d)
     | None -> Error (Printf.sprintf "unknown device %S" name))
  | None, None -> Ok Prcore.Engine.Auto

let run_floorplan ~telemetry scheme device =
  let layout = Floorplan.Layout.make device in
  let demands =
    Array.init
      (scheme.Prcore.Scheme.region_count + 1)
      (fun i ->
        if i < scheme.Prcore.Scheme.region_count then
          Floorplan.Placer.demand_of_resources
            (Prcore.Scheme.region_resources scheme i)
        else
          Floorplan.Placer.demand_of_resources
            (Prcore.Scheme.static_resources scheme))
  in
  let outcome = Floorplan.Placer.place ~telemetry layout demands in
  Format.printf "Floorplan on %a:@." Fpga.Device.pp device;
  Array.iteri
    (fun i rect ->
      let label =
        if i < scheme.Prcore.Scheme.region_count then
          Printf.sprintf "PRR%d" (i + 1)
        else "static"
      in
      match rect with
      | Some r ->
        Format.printf "  %-7s %a@." label Floorplan.Placer.pp_rect r
      | None -> Format.printf "  %-7s could not be placed@." label)
    outcome.placements;
  if outcome.failed <> [] then
    Format.printf
      "  -> floorplanning feedback: pick a larger device or re-partition@."

let partition_cmd =
  let run spec budget device freq_rule no_promote max_sets restarts strategy
      jobs deadline_ms max_evals ladder placement_aware verify floorplan
      save_scheme trace stats =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      (match target ~budget ~device with
       | Error message -> `Error (false, message)
       | Ok target ->
         match guard_specs ~deadline_ms ~max_evals ~ladder with
         | Error message -> `Error (false, message)
         | Ok (budget_spec, ladder) ->
         match strategy_spec strategy with
         | Error message -> `Error (false, message)
         | Ok strategy ->
         let options = options ~freq_rule ~no_promote ~max_sets ~restarts in
         let telemetry = telemetry_handle ~trace ~stats in
         let guard = Option.map Prguard.Budget.of_spec budget_spec in
         let placement = placement_for_target ~placement_aware target in
         (match
            Prcore.Engine.solve ~options ~telemetry ~strategy ~jobs ~verify
              ?budget:guard ?ladder ?placement ~target design
          with
          | Error message -> `Error (false, message)
          | Ok outcome ->
            Format.printf "Design: %s@." (Prdesign.Design.summary design);
            (match outcome.device with
             | Some d ->
               Format.printf "Device: %a (escalations %d)@." Fpga.Device.pp d
                 outcome.escalations
             | None ->
               Format.printf "Budget: %a@." Fpga.Resource.pp outcome.budget);
            Format.printf "%s" (Prcore.Scheme.describe outcome.scheme);
            Format.printf "%a@." Prcore.Cost.pp_evaluation outcome.evaluation;
            Format.printf
              "(%d base partitions, %d candidate sets explored)@."
              outcome.base_partitions outcome.candidate_sets;
            if outcome.degraded.Prguard.Budget.guarded then
              Format.printf "guard: %s@."
                (Prguard.Budget.render_verdict outcome.degraded);
            (match outcome.placement_penalty with
             | Some penalty ->
               Format.printf "placement penalty: %d%s@." penalty
                 (if penalty = 0 then " (estimator: placeable, no waste)"
                  else "")
             | None -> ());
            if stats then
              Format.printf "cost evaluations: %d@." outcome.cost_evaluations;
            let verified =
              if not verify then Ok ()
              else begin
                let diagnostics =
                  Prverify.Checker.check_outcome ~telemetry outcome
                in
                Format.printf "%s@."
                  (Prverify.Checker.summary_line diagnostics);
                if Prverify.Checker.ok diagnostics then Ok ()
                else
                  Error
                    ("the independent oracles rejected the outcome\n"
                    ^ Prverify.Checker.render_report diagnostics)
              end
            in
            match verified with
            | Error message -> `Error (false, message)
            | Ok () ->
            if floorplan then begin
              let device =
                match outcome.device with
                | Some d -> d
                | None ->
                  (match
                     Fpga.Device.smallest_fitting
                       outcome.evaluation.Prcore.Cost.used
                   with
                   | Some d -> d
                   | None -> Fpga.Device.find_exn "FX200T")
              in
              run_floorplan ~telemetry outcome.scheme device
            end;
            let saved =
              match save_scheme with
              | None -> Ok ()
              | Some path -> (
                try
                  Prcore.Scheme_xml.save_file path outcome.scheme;
                  Format.printf "scheme saved to %s@." path;
                  Ok ()
                with Sys_error message -> Error message)
            in
            (match saved with
             | Error message -> `Error (false, message)
             | Ok () -> finish_telemetry ~trace ~stats telemetry)))
  in
  let doc = "Partition a design, minimising total reconfiguration time." in
  Cmd.v
    (Cmd.info "partition" ~doc)
    Term.(
      ret
        (const run $ design_arg $ budget_arg $ device_arg $ freq_rule_arg
         $ no_promote_arg $ max_sets_arg $ restarts_arg $ strategy_arg
         $ jobs_arg $ deadline_arg $ max_evals_arg $ ladder_arg
         $ placement_aware_arg $ verify_arg $ floorplan_arg
         $ save_scheme_arg $ trace_arg $ stats_arg))

let metrics_arg =
  let doc =
    "Write the recorded counters, gauges and histograms to $(docv) in \
     Prometheus text exposition format (the same page the flow writes \
     as metrics.txt)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_cmd =
  let run spec budget device jobs metrics trace =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      (match target ~budget ~device with
       | Error message -> `Error (false, message)
       | Ok target ->
         (* Profiling always records the full event stream: the span
            tree needs Begin/End events, the depth tables and progress
            curve need a tracing handle. *)
         let telemetry = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
         match Prcore.Engine.solve ~telemetry ~jobs ~target design with
         | Error message -> `Error (false, message)
         | Ok outcome ->
           Prtelemetry.flush telemetry;
           Format.printf "Design: %s@." (Prdesign.Design.summary design);
           (match outcome.device with
            | Some d -> Format.printf "Device: %a@." Fpga.Device.pp d
            | None ->
              Format.printf "Budget: %a@." Fpga.Resource.pp outcome.budget);
           let s = outcome.search in
           Format.printf
             "Best total frames: %d (%d cost evaluations; memo %d hits / \
              %d misses; exact %d states, %d pruned)@.@."
             outcome.evaluation.Prcore.Cost.total_frames
             outcome.cost_evaluations s.Prcore.Engine.memo_hits
             s.Prcore.Engine.memo_misses s.Prcore.Engine.exact_states
             s.Prcore.Engine.exact_pruned;
           print_string (Prtelemetry.Scope.report telemetry);
           print_string
             (Prtelemetry.Scope.render_progress s.Prcore.Engine.progress);
           let written =
             match metrics with
             | None -> Ok ()
             | Some path -> (
               try
                 let oc = open_out path in
                 output_string oc (Prtelemetry.exposition telemetry);
                 close_out oc;
                 Format.printf "metrics written to %s@." path;
                 Ok ()
               with Sys_error message -> Error message)
           in
           (match written with
            | Error message -> `Error (false, message)
            | Ok () -> (
              match trace with
              | None -> `Ok ()
              | Some path -> (
                match Prtelemetry.write_jsonl telemetry path with
                | Ok () ->
                  Format.printf "telemetry trace written to %s@." path;
                  `Ok ()
                | Error message -> `Error (false, message)))))
  in
  let doc =
    "Profile a partition run: solve the design with a tracing telemetry \
     handle, then print the hierarchical span tree (self/total time), \
     the hot-path ranking, deterministic span percentiles, the \
     depth-resolved memo hit rates and branch-and-bound prune counts, \
     the per-domain busy/idle table and the best-cost-over-evaluations \
     progress curve."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      ret
        (const run $ design_arg $ budget_arg $ device_arg $ jobs_arg
         $ metrics_arg $ trace_arg))

let baselines_cmd =
  let run spec trace stats =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      let telemetry = telemetry_handle ~trace ~stats in
      Format.printf "Design: %s@.@." (Prdesign.Design.summary design);
      let schemes =
        Prtelemetry.with_span telemetry "baselines.all"
          ~attrs:
            [ ("design", Prtelemetry.Json.String design.Prdesign.Design.name) ]
          (fun () -> Baselines.Schemes.all design)
      in
      List.iter
        (fun (l : Baselines.Schemes.labelled) ->
          Prtelemetry.incr telemetry "baselines.schemes";
          if Prtelemetry.tracing telemetry then
            Prtelemetry.point telemetry "baselines.scheme"
              ~attrs:
                [ ("label", Prtelemetry.Json.String l.label);
                  ( "total_frames",
                    Prtelemetry.Json.Int l.evaluation.Prcore.Cost.total_frames
                  );
                  ( "worst_frames",
                    Prtelemetry.Json.Int l.evaluation.Prcore.Cost.worst_frames
                  ) ];
          Format.printf "== %s ==@.%s%a@.@." l.label
            (Prcore.Scheme.describe l.scheme)
            Prcore.Cost.pp_evaluation l.evaluation)
        schemes;
      finish_telemetry ~trace ~stats telemetry
  in
  let doc = "Evaluate the static, single-region and modular schemes." in
  Cmd.v
    (Cmd.info "baselines" ~doc)
    Term.(ret (const run $ design_arg $ trace_arg $ stats_arg))

(* Resolve a --safe-config value: a configuration name or a numeric
   index. *)
let resolve_config design spec =
  let configs = Prdesign.Design.configuration_count design in
  let by_name =
    let rec search c =
      if c >= configs then None
      else if
        design.Prdesign.Design.configurations.(c)
          .Prdesign.Configuration.name = spec
      then Some c
      else search (c + 1)
    in
    search 0
  in
  match by_name with
  | Some c -> Ok c
  | None -> (
    match int_of_string_opt spec with
    | Some c when c >= 0 && c < configs -> Ok c
    | Some c ->
      Error
        (Printf.sprintf "configuration index %d out of range [0, %d)" c
           configs)
    | None -> Error (Printf.sprintf "unknown configuration %S" spec))

let fault_rate_arg =
  let doc =
    "Inject faults: per-operation probability (in [0,1]) of each fault \
     kind (fetch timeout, corrupt bitstream, ICAP CRC error, SEU upset, \
     device busy) on the operations it applies to. Enables the resilient \
     runtime; the other $(b,--fault-*) flags refine it."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "fault-rate" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Fault-injector RNG seed (reports are reproducible per seed)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"S" ~doc)

let fault_policy_arg =
  let doc =
    "Recovery policy once a region load exhausts its retries: \
     $(b,retry) (retry then fail the run), $(b,fallback) (degrade to \
     the safe configuration), $(b,skip) (drop the adaptation step), or \
     $(b,abort) (fail on the first fault, no retries)."
  in
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun p -> (Prfault.Recovery.policy_name p, p))
              Prfault.Recovery.all_policies))
        Prfault.Recovery.Fallback_safe_config
    & info [ "fault-policy" ] ~docv:"POLICY" ~doc)

let safe_config_arg =
  let doc =
    "Safe configuration (name or index) the $(b,fallback) policy \
     degrades to; defaults to the walk's initial configuration."
  in
  Arg.(value & opt (some string) None & info [ "safe-config" ] ~docv:"CONF" ~doc)

let simulate_cmd =
  let steps_arg =
    Arg.(value & opt int 1000 & info [ "steps" ] ~docv:"N"
           ~doc:"Length of the random adaptation walk.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Walk RNG seed.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a recorded trace instead of a random walk.")
  in
  let save_trace_arg =
    Arg.(value & opt (some string) None & info [ "save-trace" ] ~docv:"FILE"
           ~doc:"Record the walk as a trace file for later replay.")
  in
  let run spec budget device jobs steps seed replay save_trace fault_rate
      fault_seed fault_policy safe_config trace stats =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      (match target ~budget ~device with
       | Error message -> `Error (false, message)
       | Ok target ->
         let telemetry = telemetry_handle ~trace ~stats in
         (match Prcore.Engine.solve ~telemetry ~jobs ~target design with
          | Error message -> `Error (false, message)
          | Ok outcome ->
            let configs = Prdesign.Design.configuration_count design in
            if configs < 2 then
              `Error (false, "need at least two configurations to simulate")
            else begin
              let trace_result =
                match replay with
                | Some path -> Runtime.Trace.load_file design path
                | None ->
                  let rng = Synth.Rng.make seed in
                  Ok
                    (Runtime.Trace.record design ~initial:0
                       ~sequence:
                         (Runtime.Manager.random_walk
                            ~rand:(fun n -> Synth.Rng.int rng n)
                            ~configs ~steps ~initial:0))
              in
              match trace_result with
              | Error message -> `Error (false, message)
              | Ok walk ->
                let save () =
                  match save_trace with
                  | None -> Ok ()
                  | Some path -> (
                    try
                      Runtime.Trace.save_file design path walk;
                      Format.printf "trace saved to %s@." path;
                      Ok ()
                    with Sys_error message -> Error message)
                in
                let print_stats (stats' : Runtime.Manager.stats) =
                  Format.printf "%s" (Prcore.Scheme.describe outcome.scheme);
                  Format.printf "%a@." Runtime.Manager.pp_stats stats';
                  Array.iteri
                    (fun r loads ->
                      Format.printf "  PRR%d reconfigured %d times@." (r + 1)
                        loads)
                    stats'.Runtime.Manager.region_loads
                in
                let simulated =
                  match fault_rate with
                  | None ->
                    (* Fault-free legacy path: the plain manager replay. *)
                    print_stats
                      (Runtime.Trace.simulate ~telemetry outcome.scheme walk);
                    Ok ()
                  | Some rate
                    when rate < 0. || rate > 1. || Float.is_nan rate ->
                    Error "--fault-rate must be in [0, 1]"
                  | Some rate -> (
                    let safe_result =
                      match safe_config with
                      | None -> Ok None
                      | Some spec -> (
                        match resolve_config design spec with
                        | Ok c -> Ok (Some c)
                        | Error message ->
                          Error ("--safe-config: " ^ message))
                    in
                    match safe_result with
                    | Error message -> Error message
                    | Ok safe_config ->
                      let fault =
                        { Runtime.Resilient.spec =
                            Prfault.Injector.uniform ~seed:fault_seed ~rate ();
                          policy = fault_policy;
                          retry = Prfault.Recovery.default_retry;
                          safe_config }
                      in
                      (match
                         Runtime.Trace.simulate_resilient ~telemetry
                           ~memory:Runtime.Fetch.ddr ~fault outcome.scheme
                           walk
                       with
                       | Ok o ->
                         print_stats o.Runtime.Resilient.stats;
                         (match o.Runtime.Resilient.fetch with
                          | Some report ->
                            Format.printf "%s@."
                              (Runtime.Fetch.render report)
                          | None -> ());
                         print_string
                           (Prfault.Reliability.render
                              o.Runtime.Resilient.reliability);
                         Ok ()
                       | Error f ->
                         Error
                           (Runtime.Resilient.render_failure f
                           ^ "\n"
                           ^ Prfault.Reliability.render
                               f.Runtime.Resilient.reliability)))
                in
                (match simulated with
                 | Error message -> `Error (false, message)
                 | Ok () -> (
                   match save () with
                   | Error message -> `Error (false, message)
                   | Ok () -> finish_telemetry ~trace ~stats telemetry))
            end))
  in
  let doc =
    "Partition a design and replay an adaptation walk (random or recorded)."
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run $ design_arg $ budget_arg $ device_arg $ jobs_arg
         $ steps_arg $ seed_arg $ replay_arg $ save_trace_arg $ fault_rate_arg
         $ fault_seed_arg $ fault_policy_arg $ safe_config_arg $ trace_arg
         $ stats_arg))

let synth_cmd =
  let count_arg =
    Arg.(value & opt int 10 & info [ "count" ] ~docv:"N"
           ~doc:"Number of designs to generate.")
  in
  let seed_arg =
    Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write each design as XML into this directory.")
  in
  let run count seed out =
    let designs = Synth.Generator.batch ~seed ~count () in
    match out with
    | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (_, d) ->
            Prdesign.Design_xml.save_file
              (Filename.concat dir (d.Prdesign.Design.name ^ ".xml"))
              d)
          designs;
        Format.printf "wrote %d designs to %s@." count dir;
        `Ok ()
      with Sys_error message -> `Error (false, message))
    | None ->
      List.iter
        (fun (cls, d) ->
          Format.printf "%-12s %s@."
            (Synth.Generator.class_name cls)
            (Prdesign.Design.summary d))
        designs;
      `Ok ()
  in
  let doc = "Generate synthetic adaptive designs (paper Section V recipe)." in
  Cmd.v
    (Cmd.info "synth" ~doc)
    Term.(ret (const run $ count_arg $ seed_arg $ out_arg))

let lint_cmd =
  let run spec =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      Format.printf "Design: %s@." (Prdesign.Design.summary design);
      print_string (Prdesign.Lint.render (Prdesign.Lint.check design));
      `Ok ()
  in
  let doc = "Lint a design description for partitioning pitfalls." in
  Cmd.v (Cmd.info "lint" ~doc) Term.(ret (const run $ design_arg))

let flow_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write wrappers, bitstreams and the report into DIR.")
  in
  let run spec budget device strategy jobs deadline_ms max_evals ladder
      placement_aware verify out trace stats =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      (match target ~budget ~device with
       | Error message -> `Error (false, message)
       | Ok target ->
         match guard_specs ~deadline_ms ~max_evals ~ladder with
         | Error message -> `Error (false, message)
         | Ok (budget_spec, ladder) ->
         match strategy_spec strategy with
         | Error message -> `Error (false, message)
         | Ok strategy ->
         let telemetry = telemetry_handle ~trace ~stats in
         let options =
           { Flow.Tool_flow.default_options with
             strategy;
             telemetry;
             jobs;
             verify;
             placement_aware;
             budget = budget_spec;
             ladder }
         in
         (match Flow.Tool_flow.run ~options ~target design with
          | Error message -> `Error (false, message)
          | Ok report ->
            print_string (Flow.Tool_flow.render_summary report);
            let verified =
              match report.Flow.Tool_flow.diagnostics with
              | Some diagnostics when not (Prverify.Checker.ok diagnostics) ->
                Error "verification failed (see the report above)"
              | Some _ | None -> Ok ()
            in
            match verified with
            | Error message -> `Error (false, message)
            | Ok () ->
            let written =
              match out with
              | None -> Ok ()
              | Some dir -> (
                match Flow.Tool_flow.write_outputs ~dir report with
                | Ok written ->
                  Format.printf "wrote %d files to %s@." (List.length written)
                    dir;
                  Ok ()
                | Error message -> Error message)
            in
            (match written with
             | Error message -> `Error (false, message)
             | Ok () ->
               (* The summary already embeds the telemetry tables when
                  live; only the trace export remains. *)
               finish_telemetry ~trace ~stats:false telemetry)))
  in
  let doc =
    "Run the whole tool flow: partition, wrap, floorplan (with feedback), \
     generate bitstreams."
  in
  Cmd.v
    (Cmd.info "flow" ~doc)
    Term.(
      ret
        (const run $ design_arg $ budget_arg $ device_arg $ strategy_arg
         $ jobs_arg $ deadline_arg $ max_evals_arg $ ladder_arg
         $ placement_aware_arg $ verify_arg $ out_arg $ trace_arg
         $ stats_arg))

(* Minimal JSON string escaping for the batch results stream. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One result line of the batch stream. *)
type batch_result = {
  br_spec : string;  (** The manifest entry as written. *)
  br_outcome : (Flow.Tool_flow.report, string) result;
  br_elapsed_ms : float;
}

let batch_result_jsonl r =
  match r.br_outcome with
  | Error message ->
    Printf.sprintf
      "{\"design\":\"%s\",\"status\":\"error\",\"error\":\"%s\",\"elapsed_ms\":%.1f}"
      (json_escape r.br_spec) (json_escape message) r.br_elapsed_ms
  | Ok report ->
    let outcome = report.Flow.Tool_flow.outcome in
    let scheme = outcome.Prcore.Engine.scheme in
    let verdict = outcome.Prcore.Engine.degraded in
    Printf.sprintf
      "{\"design\":\"%s\",\"status\":\"ok\",\"device\":\"%s\",\"regions\":%d,\"total_frames\":%d,\"worst_frames\":%d,\"degraded\":%b,\"reason\":\"%s\",\"elapsed_ms\":%.1f}"
      (json_escape r.br_spec)
      (json_escape report.Flow.Tool_flow.device.Fpga.Device.short)
      scheme.Prcore.Scheme.region_count
      outcome.Prcore.Engine.evaluation.Prcore.Cost.total_frames
      outcome.Prcore.Engine.evaluation.Prcore.Cost.worst_frames
      verdict.Prguard.Budget.degraded
      (Prguard.Budget.reason_name verdict.Prguard.Budget.reason)
      r.br_elapsed_ms

(* Filesystem-safe directory name for one manifest entry. *)
let batch_entry_dirname spec =
  let base = Filename.remove_extension (Filename.basename spec) in
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> c
        | _ -> '_')
      base
  in
  if mapped = "" then "_" else mapped

let batch_cmd =
  let manifest_arg =
    let doc =
      "Manifest file: one design per line (a built-in name or a path to \
       an XML description, resolved relative to the manifest's \
       directory), with blank lines and $(b,#) comments ignored."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MANIFEST" ~doc)
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write each design's artefacts into DIR/<design>/ \
                 (crash-safe, with checksum sidecars).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Also write the JSON Lines results stream to FILE \
                 (atomically, at the end of the run).")
  in
  let run manifest budget device strategy jobs deadline_ms max_evals ladder
      out jsonl =
    if not (Sys.file_exists manifest) then
      `Error (false, Printf.sprintf "manifest %s does not exist" manifest)
    else
      match target ~budget ~device with
      | Error message -> `Error (false, message)
      | Ok target -> (
        match guard_specs ~deadline_ms ~max_evals ~ladder with
        | Error message -> `Error (false, message)
        | Ok (budget_spec, ladder) -> (
          match strategy_spec strategy with
          | Error message -> `Error (false, message)
          | Ok strategy -> (
          begin
            let manifest_dir = Filename.dirname manifest in
            let resolve spec =
              (* A relative path that does not exist from the CWD is
                 retried relative to the manifest, so manifests are
                 position-independent. *)
              if
                Prdesign.Design_library.find spec <> None
                || Sys.file_exists spec
                || Filename.is_relative spec = false
              then spec
              else
                let relative = Filename.concat manifest_dir spec in
                if Sys.file_exists relative then relative else spec
            in
            (* Per-design isolation: load, solve and write under an
               exception barrier so one poisoned input is reported and
               skipped while the rest of the batch completes. *)
            let run_one spec =
              let started = Unix.gettimeofday () in
              let outcome =
                try
                  match
                    load_design ~limits:Prdesign.Design_xml.default_limits
                      (resolve spec)
                  with
                  | Error message -> Error message
                  | Ok design -> (
                    let options =
                      { Flow.Tool_flow.default_options with
                        strategy;
                        jobs;
                        budget = budget_spec;
                        ladder }
                    in
                    match Flow.Tool_flow.run ~options ~target design with
                    | Error message -> Error message
                    | Ok report -> (
                      match out with
                      | None -> Ok report
                      | Some dir -> (
                        let subdir =
                          Filename.concat dir (batch_entry_dirname spec)
                        in
                        match
                          Flow.Tool_flow.write_outputs ~dir:subdir report
                        with
                        | Ok _ -> Ok report
                        | Error message -> Error message)))
                with e ->
                  (* The isolation barrier: a crash in any stage becomes
                     a reported per-design failure, not a dead batch. *)
                  Error
                    (Option.value
                       (Prdesign.Design_xml.limit_message e)
                       ~default:("uncaught exception: " ^ Printexc.to_string e))
              in
              { br_spec = spec;
                br_outcome = outcome;
                br_elapsed_ms = 1e3 *. (Unix.gettimeofday () -. started) }
            in
            (* The manifest is streamed line-by-line through the bounded
               serve reader (never loaded whole): a multi-million-line
               manifest costs one line of memory at a time, and an
               overlong line or an accidental binary degrades into a
               typed error instead of an OOM. Each entry is solved and
               reported as soon as it is read. *)
            let jsonl_buf =
              Option.map (fun _ -> Buffer.create 4096) jsonl
            in
            let ok_count = ref 0 and fail_count = ref 0 in
            let process spec =
              let r = run_one spec in
              let line = batch_result_jsonl r in
              print_endline line;
              Option.iter
                (fun buf ->
                  Buffer.add_string buf line;
                  Buffer.add_char buf '\n')
                jsonl_buf;
              if Result.is_error r.br_outcome then incr fail_count
              else incr ok_count
            in
            let streamed =
              In_channel.with_open_text manifest (fun ic ->
                  let reader =
                    Prserve.Reader.of_channel ~max_line_bytes:4096 ic
                  in
                  Prserve.Reader.fold_lines reader ~init:() (fun ~line:_ () raw ->
                      let entry = String.trim raw in
                      if entry <> "" && entry.[0] <> '#' then process entry))
            in
            match streamed with
            | Error e ->
              `Error
                ( false,
                  Printf.sprintf "manifest %s: %s" manifest
                    (Prserve.Reader.error_message e) )
            | Ok () -> (
              let total = !ok_count + !fail_count in
              if total = 0 then
                `Error
                  (false, Printf.sprintf "manifest %s lists no designs" manifest)
              else
                let summary =
                  Printf.sprintf "batch: %d ok, %d failed (of %d)" !ok_count
                    !fail_count total
                in
                let jsonl_written =
                  match (jsonl, jsonl_buf) with
                  | Some path, Some buf ->
                    Prguard.Atomic_io.write ~checksum:Bitgen.Crc32.hex_digest
                      ~path (Buffer.contents buf)
                  | _ -> Ok ()
                in
                match jsonl_written with
                | Error message -> `Error (false, message)
                | Ok () ->
                  if !fail_count = 0 then begin
                    Format.eprintf "%s@." summary;
                    `Ok ()
                  end
                  else
                    (* A partially failed batch exits non-zero but only
                       after every design had its turn. *)
                    `Error (false, summary))
          end)))
  in
  let doc =
    "Partition a manifest of designs through the full tool flow, one \
     JSON result line per design. A design that fails to load or solve \
     is reported and skipped — the rest of the batch still runs — and \
     the exit status reflects any partial failure."
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      ret
        (const run $ manifest_arg $ budget_arg $ device_arg $ strategy_arg
         $ jobs_arg $ deadline_arg $ max_evals_arg $ ladder_arg $ out_arg
         $ jsonl_arg))

let recover_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Output directory to scan (non-recursively).")
  in
  let no_quarantine_arg =
    Arg.(value & flag
         & info [ "no-quarantine" ]
             ~doc:"Report issues without deleting stale temporaries or \
                   moving corrupt files into DIR/.quarantine/.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero when any torn or corrupt artefact was \
                   found (after quarantining it, unless \
                   $(b,--no-quarantine)).")
  in
  let run dir no_quarantine strict =
    match
      Prguard.recover ~checksum:Bitgen.Crc32.hex_digest
        ~quarantine:(not no_quarantine) ~dir ()
    with
    | Error message -> `Error (false, message)
    | Ok recovery ->
      print_string (Prguard.Atomic_io.render_recovery recovery);
      if strict && not (Prguard.Atomic_io.clean recovery) then
        `Error (false, "torn or corrupt artefacts were found")
      else `Ok ()
  in
  let doc =
    "Scan a prpart output directory for crash artefacts: stale \
     temporary files from interrupted writes are deleted, and files \
     whose checksum sidecar does not match are quarantined. Run after a \
     crash or power loss before trusting the artefacts."
  in
  Cmd.v
    (Cmd.info "recover" ~doc)
    Term.(ret (const run $ dir_arg $ no_quarantine_arg $ strict_arg))

let check_cmd =
  let run spec budget device jobs trace stats =
    match load_design spec with
    | Error message -> `Error (false, message)
    | Ok design ->
      (match target ~budget ~device with
       | Error message -> `Error (false, message)
       | Ok target ->
         let telemetry = telemetry_handle ~trace ~stats in
         Format.printf "Design: %s@." (Prdesign.Design.summary design);
         (* Stage 1: the design description alone, so a malformed design
            is reported even when it cannot be partitioned at all. *)
         let design_diags = Prverify.Checker.check_design ~telemetry design in
         if not (Prverify.Checker.ok design_diags) then begin
           print_string (Prverify.Checker.render_report design_diags);
           `Error
             (false, "design description fails the well-formedness oracle")
         end
         else begin
           (* Stage 2: implement it end to end (engine self-check armed)
              and run the full oracle suite over every artefact. *)
           let options =
             { Flow.Tool_flow.default_options with
               telemetry;
               jobs;
               verify = true }
           in
           match Flow.Tool_flow.run ~options ~target design with
           | Error message -> `Error (false, message)
           | Ok report ->
             let diagnostics =
               Option.value ~default:[] report.Flow.Tool_flow.diagnostics
             in
             Format.printf "device: %s, %d regions, %d total frames@."
               report.Flow.Tool_flow.device.Fpga.Device.name
               report.Flow.Tool_flow.outcome.Prcore.Engine.scheme
                 .Prcore.Scheme.region_count
               report.Flow.Tool_flow.outcome.Prcore.Engine.evaluation
                 .Prcore.Cost.total_frames;
             print_string (Prverify.Checker.render_report diagnostics);
             if not (Prverify.Checker.ok diagnostics) then
               `Error (false, "verification failed")
             else finish_telemetry ~trace ~stats telemetry
         end)
  in
  let doc =
    "Verify a design end to end with the independent oracle suite: design \
     well-formedness, covering and conflict-freedom, from-scratch cost \
     re-derivation, floorplan geometry, bitstream round-trips and \
     transition reachability. Exits non-zero on any violation."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run $ design_arg $ budget_arg $ device_arg $ jobs_arg
         $ trace_arg $ stats_arg))

let fuzz_cmd =
  let count_arg =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N"
           ~doc:"Number of random designs to draw.")
  in
  let seed_arg =
    Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"S"
           ~doc:"Generator seed (runs are reproducible per seed).")
  in
  let kills_arg =
    Arg.(value & flag
         & info [ "kills" ]
             ~doc:
               "Also run the seeded mutation-kill matrix: one corruption \
                per oracle, each of which must fire exactly its own \
                diagnostic code.")
  in
  let run count seed jobs kills =
    let summary = Prverify.Fuzz.run ~count ~seed ~jobs () in
    print_string (Prverify.Fuzz.render_summary summary);
    let kills_ok =
      if not kills then true
      else begin
        let matrix = Prverify.Fuzz.mutation_kills () in
        print_string (Prverify.Fuzz.render_kills matrix);
        Prverify.Fuzz.all_killed matrix
      end
    in
    if summary.Prverify.Fuzz.failures = [] && kills_ok then `Ok ()
    else `Error (false, "differential fuzzing found divergences")
  in
  let doc =
    "Differential-fuzz the pipeline over random synthetic designs: \
     sequential vs parallel engine, memoised vs fresh cost evaluation, \
     reported evaluation vs the independent oracle re-derivation, and \
     check-after-solve."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(ret (const run $ count_arg $ seed_arg $ jobs_arg $ kills_arg))

let devices_cmd =
  let run () =
    List.iter
      (fun (d : Fpga.Device.t) ->
        let r = Fpga.Device.resources d in
        Format.printf "%-10s %-4s rows=%2d  clb=%6d bram=%4d dsp=%4d  (%d frames)@."
          d.name
          (Fpga.Device.family_name d.family)
          d.rows r.clb r.bram r.dsp
          (Fpga.Device.total_frames d))
      Fpga.Device.catalogue;
    `Ok ()
  in
  let doc = "List the modelled Virtex-5 device catalogue." in
  Cmd.v (Cmd.info "devices" ~doc) Term.(ret (const run $ const ()))

let designs_cmd =
  let run () =
    List.iter
      (fun (name, d) ->
        Format.printf "%-20s %s@." name (Prdesign.Design.summary d))
      Prdesign.Design_library.all;
    `Ok ()
  in
  let doc = "List the built-in paper designs." in
  Cmd.v (Cmd.info "designs" ~doc) Term.(ret (const run $ const ()))

let serve_cmd =
  let socket_arg =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(
      value & opt string "prserve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc =
      "Listen on 127.0.0.1:$(docv) (TCP) instead of the Unix socket. The \
       protocol is unauthenticated, so only the loopback interface is \
       ever bound."
    in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let no_deadline_arg =
    let doc =
      "Disable the per-job deadline entirely (default: 2000 ms per job). \
       Overload shedding still imposes deadlines at elevated shed levels."
    in
    Arg.(value & flag & info [ "no-deadline" ] ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persist the result cache in $(docv) (crash-safe writes with CRC32 \
       sidecars; corrupt entries are quarantined and re-solved on \
       restart). Without it the cache is memory-only."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let cache_capacity_arg =
    let doc = "LRU bound on cached results." in
    Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Admission queue bound (typed REJECT when full)." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let client_cap_arg =
    let doc = "Per-client in-flight job cap (round-robin fairness)." in
    Arg.(value & opt int 16 & info [ "client-cap" ] ~docv:"N" ~doc)
  in
  let shed_arg =
    let doc =
      "Queue-wait EWMA thresholds (ms, comma-separated, non-decreasing) \
       for shed levels 1..n: past each threshold new jobs are admitted \
       with a tighter budget/ladder rung."
    in
    Arg.(
      value & opt string "50,200,1000" & info [ "shed-thresholds" ] ~docv:"MS,MS,MS" ~doc)
  in
  let parse_thresholds s =
    let parts = String.split_on_char ',' (String.trim s) in
    let floats = List.map (fun p -> float_of_string_opt (String.trim p)) parts in
    if List.exists Option.is_none floats then
      Error "--shed-thresholds: expected comma-separated numbers"
    else
      let values = List.map Option.get floats in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      if not (non_decreasing values) then
        Error "--shed-thresholds: thresholds must be non-decreasing"
      else Ok (Array.of_list values)
  in
  let shared_cache_arg =
    let doc =
      "Share the persistent result cache in $(docv) with peer replicas \
       (implies $(b,--cache-dir) $(docv)): scans and evictions \
       coordinate through a heartbeat-stamped lockfile with stale-lock \
       takeover, and a miss re-reads entries peers have written."
    in
    Arg.(
      value & opt (some string) None
      & info [ "shared-cache" ] ~docv:"DIR" ~doc)
  in
  let chaos_arg =
    let doc =
      "Seeded fault injection for the chaos harness, e.g. \
       $(b,seed=42,kill-solve@0,conn-reset=0.05,slow-ms=120). Kinds: \
       kill-solve, kill-cache-write, torn-cache-write, conn-reset, \
       slow-reply; $(i,kind)@$(i,N) fires at the Nth operation of its \
       point, $(i,kind)=$(i,P) fires with probability P; max-faults=N \
       bounds the total. Never use in production."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Hang up connections whose peer stays silent for $(docv) seconds \
       mid-line (slowloris defence); the peer gets a typed \
       $(b,REJECT idle-timeout) first."
    in
    Arg.(
      value & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let quota_arg =
    let doc =
      "Per-client in-flight quota as $(i,CLIENT)=$(i,N), repeatable. \
       The effective cap for a listed client is the minimum of its \
       quota and $(b,--client-cap); refusals reject with code \
       $(b,quota)."
    in
    Arg.(value & opt_all string [] & info [ "quota" ] ~docv:"CLIENT=N" ~doc)
  in
  let parse_quotas specs =
    let parse spec =
      match String.index_opt spec '=' with
      | Some i when i > 0 -> (
        let client = String.sub spec 0 i in
        let n = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (client, n)
        | Some _ | None ->
          Error (Printf.sprintf "--quota %s: N must be a positive integer" spec))
      | Some _ | None ->
        Error (Printf.sprintf "--quota %s: expected CLIENT=N" spec)
    in
    List.fold_left
      (fun acc spec ->
        match (acc, parse spec) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok qs, Ok q -> Ok (q :: qs))
      (Ok []) specs
    |> Result.map List.rev
  in
  let run budget device strategy jobs deadline_ms no_deadline ladder socket
      port cache_dir cache_capacity queue client_cap shed shared_cache
      chaos idle_timeout quota_specs metrics stats =
    match target ~budget ~device with
    | Error message -> `Error (false, message)
    | Ok target -> (
      match strategy_spec strategy with
      | Error message -> `Error (false, message)
      | Ok strategy -> (
      match ladder_spec ladder with
      | Error message -> `Error (false, message)
      | Ok ladder -> (
        match deadline_ms with
        | Some ms when ms <= 0. || Float.is_nan ms ->
          `Error (false, "--deadline-ms must be a positive number of milliseconds")
        | _ -> (
          match parse_thresholds shed with
          | Error message -> `Error (false, message)
          | Ok shed_thresholds_ms -> (
            match parse_quotas quota_specs with
            | Error message -> `Error (false, message)
            | Ok quotas -> (
            match
              match (cache_dir, shared_cache) with
              | Some _, Some _ ->
                Error "--cache-dir and --shared-cache are mutually exclusive"
              | None, Some d -> Ok (Some d, true)
              | dir, None -> Ok (dir, false)
            with
            | Error message -> `Error (false, message)
            | Ok (cache_dir, cache_shared) -> (
            match
              match chaos with
              | None -> Ok None
              | Some spec -> Result.map Option.some (Prserve.Chaos.of_string spec)
            with
            | Error message -> `Error (false, "--chaos: " ^ message)
            | Ok chaos -> (
            match idle_timeout with
            | Some s when s <= 0. || Float.is_nan s ->
              `Error (false, "--idle-timeout must be a positive number of seconds")
            | _ -> (
            let deadline_ms =
              if no_deadline then None
              else Some (Option.value ~default:2000. deadline_ms)
            in
            let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
            let config =
              { (Prserve.Server.default_config ~telemetry ()) with
                target;
                strategy;
                ladder;
                deadline_ms;
                jobs;
                queue_capacity = queue;
                client_cap;
                quotas;
                cache_capacity;
                cache_dir;
                cache_shared;
                shed_thresholds_ms;
                chaos }
            in
            match Prserve.Server.create config with
            | Error message -> `Error (false, message)
            | Ok server -> (
              (match Prserve.Cache.recovery (Prserve.Server.cache server) with
               | Some r when not (Prguard.Atomic_io.clean r) ->
                 Format.eprintf "%s@." (Prguard.Atomic_io.render_recovery r)
               | _ -> ());
              let address =
                match port with
                | Some p -> Prserve.Endpoint.Tcp p
                | None -> Prserve.Endpoint.Unix_path socket
              in
              match Prserve.Endpoint.listen address with
              | Error message ->
                Prserve.Server.drain server;
                `Error (false, message)
              | Ok endpoint ->
                let stop _ = Prserve.Server.request_shutdown server in
                Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
                Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
                Format.printf "prserve: listening on %s (pid %d)@."
                  (Prserve.Endpoint.address_to_string address)
                  (Unix.getpid ());
                Format.print_flush ();
                Prserve.Endpoint.serve_loop ?idle_timeout_s:idle_timeout
                  endpoint server;
                Prserve.Endpoint.close endpoint;
                Prserve.Server.drain server;
                Prtelemetry.flush telemetry;
                if stats then print_string (Prtelemetry.summary telemetry);
                let written =
                  match metrics with
                  | None -> Ok ()
                  | Some path ->
                    Prguard.Atomic_io.write ~checksum:Bitgen.Crc32.hex_digest
                      ~path
                      (Prtelemetry.exposition telemetry)
                in
                (match written with
                 | Error message -> `Error (false, message)
                 | Ok () ->
                   Format.printf "prserve: drained after %d requests@."
                     (Prserve.Server.requests server);
                   `Ok ())))))))))))
  in
  let doc =
    "Run the partitioning daemon: a line-delimited SOLVE/STATUS/HEALTH/\
     SHUTDOWN protocol over a Unix or loopback-TCP socket, with a \
     crash-safe content-addressed result cache, bounded fair admission, \
     per-job budgets and overload shedding. SIGINT/SIGTERM drain \
     gracefully. See DESIGN.md §11."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ budget_arg $ device_arg $ strategy_arg $ jobs_arg
         $ deadline_arg $ no_deadline_arg $ ladder_arg $ socket_arg
         $ port_arg $ cache_dir_arg $ cache_capacity_arg $ queue_arg
         $ client_cap_arg $ shed_arg $ shared_cache_arg $ chaos_arg
         $ idle_timeout_arg $ quota_arg $ metrics_arg $ stats_arg))

let fleet_cmd =
  let replicas_arg =
    let doc = "Number of replicas to supervise." in
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let socket_prefix_arg =
    let doc =
      "Unix-socket path prefix; replica $(i,i) listens on \
       $(docv)-$(i,i).sock."
    in
    Arg.(
      value & opt string "prserve"
      & info [ "socket-prefix" ] ~docv:"PATH" ~doc)
  in
  let shared_cache_arg =
    let doc =
      "Shared persistent cache directory passed to every replica \
       ($(b,serve --shared-cache)): one replica's solves warm the \
       others."
    in
    Arg.(
      value & opt (some string) None
      & info [ "shared-cache" ] ~docv:"DIR" ~doc)
  in
  let chaos_arg =
    let doc =
      "Chaos spec forwarded to every replica's initial incarnation \
       ($(b,serve --chaos)); restarted incarnations run clean, so kill \
       schedules terminate by construction."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let restart_limit_arg =
    let doc = "Restarts allowed per replica before giving up." in
    Arg.(value & opt int 5 & info [ "restart-limit" ] ~docv:"N" ~doc)
  in
  let fleet_no_deadline_arg =
    let doc = "Forward $(b,--no-deadline) to every replica." in
    Arg.(value & flag & info [ "no-deadline" ] ~doc)
  in
  let idle_timeout_arg =
    let doc = "Per-replica $(b,--idle-timeout) (seconds)." in
    Arg.(
      value & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run device budget_opt strategy jobs no_deadline replicas socket_prefix
      shared_cache chaos restart_limit idle_timeout =
    if replicas < 1 then `Error (false, "--replicas must be >= 1")
    else if restart_limit < 0 then `Error (false, "--restart-limit must be >= 0")
    else
      match
        match chaos with
        | None -> Ok ()
        | Some spec ->
          Result.map (fun (_ : Prserve.Chaos.t) -> ()) (Prserve.Chaos.of_string spec)
      with
      | Error message -> `Error (false, "--chaos: " ^ message)
      | Ok () ->
        let exe = Sys.executable_name in
        let base_argv =
          List.concat
            [ [ exe; "serve"; "--jobs"; string_of_int jobs;
                "--strategy"; strategy ];
              (match device with
               | Some d -> [ "--device"; d ]
               | None -> []);
              (match budget_opt with
               | Some (r : Fpga.Resource.t) ->
                 [ "--budget";
                   Printf.sprintf "%d,%d,%d" r.clb r.bram r.dsp ]
               | None -> []);
              (if no_deadline then [ "--no-deadline" ] else []);
              (match shared_cache with
               | Some d -> [ "--shared-cache"; d ]
               | None -> []);
              (match idle_timeout with
               | Some s -> [ "--idle-timeout"; string_of_float s ]
               | None -> []) ]
        in
        let specs =
          List.init replicas (fun i ->
              let sock = Printf.sprintf "%s-%d.sock" socket_prefix i in
              { Prserve.Supervisor.name = Printf.sprintf "replica-%d" i;
                address = Prserve.Endpoint.Unix_path sock;
                argv =
                  (fun ~incarnation ->
                    Array.of_list
                      (base_argv
                      @ [ "--socket"; sock ]
                      @
                      match chaos with
                      | Some spec when incarnation = 0 -> [ "--chaos"; spec ]
                      | Some _ | None -> [])) })
        in
        let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
        let config =
          { (Prserve.Supervisor.default_config ~telemetry ()) with
            restart_limit }
        in
        (match Prserve.Supervisor.start ~config specs with
         | Error message -> `Error (false, message)
         | Ok sup ->
           let stopping = ref false in
           let stop _ =
             (* Quiesce the monitor right here: a process-group signal
                (timeout(1), job-control kill) also hits the replicas,
                and their exits must not be booked as restarts while
                this loop wakes up to call [Supervisor.stop]. *)
             Prserve.Supervisor.request_stop sup;
             stopping := true
           in
           Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
           Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
           (match Prserve.Supervisor.await_healthy sup with
            | Ok () ->
              Format.printf "prfleet: %d replicas healthy (pid %d)@." replicas
                (Unix.getpid ())
            | Error message -> Format.printf "prfleet: %s@." message);
           Format.print_flush ();
           while not !stopping do
             Thread.delay 0.1
           done;
           Prserve.Supervisor.stop sup;
           Format.printf "prfleet: stopped (%d restarts%s)@."
             (Prserve.Supervisor.restarts sup)
             (if Prserve.Supervisor.gave_up sup then ", some replicas gave up"
              else "");
           `Ok ())
  in
  let doc =
    "Run a supervised fleet of $(b,serve) replicas on per-replica Unix \
     sockets: crashed replicas restart under an exponential-backoff \
     budget, unresponsive ones are put down after failed HEALTH \
     probes, and $(b,--shared-cache) lets all replicas serve each \
     other's cached solves. SIGINT/SIGTERM stop the fleet. See \
     DESIGN.md §14."
  in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(
      ret
        (const run $ device_arg $ budget_arg $ strategy_arg $ jobs_arg
         $ fleet_no_deadline_arg $ replicas_arg $ socket_prefix_arg
         $ shared_cache_arg $ chaos_arg $ restart_limit_arg
         $ idle_timeout_arg))

let () =
  let doc = "automated partitioning for partial reconfiguration designs" in
  let info = Cmd.info "prpart" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ partition_cmd; profile_cmd; baselines_cmd; simulate_cmd;
            synth_cmd; flow_cmd; batch_cmd; serve_cmd; fleet_cmd;
            recover_cmd; check_cmd; fuzz_cmd; lint_cmd; devices_cmd;
            designs_cmd ]))
