type cancel = bool Atomic.t

let cancel_token () : cancel = Atomic.make false
let cancel (c : cancel) = Atomic.set c true
let cancelled (c : cancel) = Atomic.get c

type clock = unit -> float

(* The default deadline clock. [Unix.gettimeofday] is a wall clock: NTP
   steps and manual clock changes can move it in either direction, and a
   daemon that lives for days will see them. Backward jumps are the
   dangerous direction — a deadline that stops approaching extends a job
   indefinitely — so the default clock latches the largest time ever
   observed (process-wide, lock-free) and never goes backwards. Forward
   jumps at worst expire budgets early, which the anytime contract
   already tolerates: the solver returns its best-so-far answer.
   Long-running callers that need full independence from the wall clock
   (or tests that need a deterministic timeline) inject their own
   [clock]. *)
let monotonic_floor = Atomic.make (Int64.bits_of_float 0.)

let monotonic () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let prev = Atomic.get monotonic_floor in
    let prev_t = Int64.float_of_bits prev in
    if t <= prev_t then prev_t
    else if Atomic.compare_and_set monotonic_floor prev (Int64.bits_of_float t)
    then t
    else clamp ()
  in
  clamp ()

type spec = { deadline_ms : float option; max_evals : int option }

let spec ?deadline_ms ?max_evals () = { deadline_ms; max_evals }
let unlimited = { deadline_ms = None; max_evals = None }

let is_unlimited s = s.deadline_ms = None && s.max_evals = None

let spec_to_string s =
  match (s.deadline_ms, s.max_evals) with
  | None, None -> "unlimited"
  | Some d, None -> Printf.sprintf "%.0fms" d
  | None, Some e -> Printf.sprintf "%d evals" e
  | Some d, Some e -> Printf.sprintf "%.0fms/%d evals" d e

type t = {
  deadline : float option;  (** absolute, [clock] seconds *)
  max_evals : int option;
  evals : int Atomic.t;
  cancel_tok : cancel;
  clock : clock;
  started : float;
  parent : t option;
  expired : bool Atomic.t;  (** sticky deadline flag *)
  probe : int Atomic.t;  (** clock-probe stride counter *)
}

let make ?(clock = monotonic) ?deadline_ms ?max_evals ?cancel () =
  let started = clock () in
  {
    deadline = Option.map (fun ms -> started +. (ms /. 1000.)) deadline_ms;
    max_evals;
    evals = Atomic.make 0;
    cancel_tok = (match cancel with Some c -> c | None -> cancel_token ());
    clock;
    started;
    parent = None;
    expired = Atomic.make false;
    probe = Atomic.make 0;
  }

let of_spec ?clock ?cancel s =
  make ?clock ?deadline_ms:s.deadline_ms ?max_evals:s.max_evals ?cancel ()

let child parent s =
  let started = parent.clock () in
  let own = Option.map (fun ms -> started +. (ms /. 1000.)) s.deadline_ms in
  let deadline =
    match (parent.deadline, own) with
    | None, d | d, None -> d
    | Some a, Some b -> Some (Float.min a b)
  in
  {
    deadline;
    max_evals = s.max_evals;
    evals = Atomic.make 0;
    cancel_tok = parent.cancel_tok;
    clock = parent.clock;
    started;
    parent = Some parent;
    expired = Atomic.make false;
    probe = Atomic.make 0;
  }

let rec charge ?(n = 1) t =
  ignore (Atomic.fetch_and_add t.evals n);
  match t.parent with None -> () | Some p -> charge ~n p

let evals_used t = Atomic.get t.evals
let elapsed_ms t = (t.clock () -. t.started) *. 1000.
let has_eval_cap t = t.max_evals <> None
let has_deadline t = t.deadline <> None

type reason = Completed | Deadline | Eval_cap | Cancelled

let reason_name = function
  | Completed -> "completed"
  | Deadline -> "deadline"
  | Eval_cap -> "eval-cap"
  | Cancelled -> "cancelled"

(* Deadline probing: [Unix.gettimeofday] is cheap but not free; probe the
   clock on a small stride and latch the result so the expiry point cannot
   oscillate. *)
let probe_stride = 16

let deadline_passed t =
  match t.deadline with
  | None -> false
  | Some _ when Atomic.get t.expired -> true
  | Some d ->
      let k = Atomic.fetch_and_add t.probe 1 in
      if k mod probe_stride <> 0 then false
      else if t.clock () > d then (
        Atomic.set t.expired true;
        true)
      else false

(* An immediate (stride-free) deadline check, used by [exhausted] so that a
   final classification is exact. *)
let deadline_passed_now t =
  match t.deadline with
  | None -> false
  | Some _ when Atomic.get t.expired -> true
  | Some d ->
      if t.clock () > d then (
        Atomic.set t.expired true;
        true)
      else false

let rec eval_cap_hit t =
  (match t.max_evals with Some cap -> Atomic.get t.evals >= cap | None -> false)
  || match t.parent with None -> false | Some p -> eval_cap_hit p

let exhausted t =
  if cancelled t.cancel_tok then Some Cancelled
  else if deadline_passed_now t then Some Deadline
  else if eval_cap_hit t then Some Eval_cap
  else None

let interrupted t = cancelled t.cancel_tok || deadline_passed t

type verdict = {
  guarded : bool;
  degraded : bool;
  reason : reason;
  rung : string option;
  evals_used : int;
  elapsed_ms : float;
}

let no_budget =
  {
    guarded = false;
    degraded = false;
    reason = Completed;
    rung = None;
    evals_used = 0;
    elapsed_ms = 0.;
  }

let verdict ?rung t =
  let reason = match exhausted t with None -> Completed | Some r -> r in
  {
    guarded = true;
    degraded = reason <> Completed;
    reason;
    rung;
    evals_used = evals_used t;
    elapsed_ms = elapsed_ms t;
  }

let with_rung rung v = { v with rung = Some rung }

let render_verdict v =
  if not v.guarded then "unguarded"
  else
    Printf.sprintf "%s%s (%d evals, %.1f ms)%s"
      (if v.degraded then "degraded: " else "")
      (reason_name v.reason) v.evals_used v.elapsed_ms
      (match v.rung with None -> "" | Some r -> Printf.sprintf " via %s" r)
