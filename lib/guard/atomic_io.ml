type checksum = string -> string

let sidecar_suffix = ".crc32"
let sidecar path = path ^ sidecar_suffix

let is_sidecar path = Filename.check_suffix path sidecar_suffix

let temp_prefix = ".prguard."
let temp_suffix = ".tmp"

let is_temp path =
  let base = Filename.basename path in
  String.length base > String.length temp_prefix + String.length temp_suffix
  && String.sub base 0 (String.length temp_prefix) = temp_prefix
  && Filename.check_suffix base temp_suffix

let temp_counter = Atomic.make 0

let temp_name path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  Filename.concat dir
    (Printf.sprintf "%s%s.%d.%d%s" temp_prefix base (Unix.getpid ())
       (Atomic.fetch_and_add temp_counter 1)
       temp_suffix)

let write_all fd content =
  let len = String.length content in
  let bytes = Bytes.unsafe_of_string content in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let fsync_dir dir =
  (* Best-effort: directory fsync is not supported on every platform. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let unix_msg path e = Printf.sprintf "%s: %s" path (Unix.error_message e)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then
    if dir <> "" && Sys.file_exists dir && not (Sys.is_directory dir) then
      Error (Printf.sprintf "%s: not a directory" dir)
    else Ok ()
  else
    match mkdir_p (Filename.dirname dir) with
    | Error _ as e -> e
    | Ok () -> (
        match Unix.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
        | exception Unix.Unix_error (e, _, _) -> Error (unix_msg dir e))

(* One atomic replacement of [path] by [content]: temp in the same
   directory, write, optional fsync, rename, optional directory fsync. *)
let replace ~fsync ~path content =
  let tmp = temp_name path in
  match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (unix_msg tmp e)
  | fd -> (
      let cleanup () =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        try Sys.remove tmp with Sys_error _ -> ()
      in
      match
        write_all fd content;
        if fsync then Unix.fsync fd;
        Unix.close fd
      with
      | exception Unix.Unix_error (e, _, _) ->
          cleanup ();
          Error (unix_msg tmp e)
      | () -> (
          match Unix.rename tmp path with
          | exception Unix.Unix_error (e, _, _) ->
              (try Sys.remove tmp with Sys_error _ -> ());
              Error (unix_msg path e)
          | () ->
              if fsync then fsync_dir (Filename.dirname path);
              Ok ()))

let write ?(fsync = true) ?checksum ~path content =
  match replace ~fsync ~path content with
  | Error _ as e -> e
  | Ok () -> (
      match checksum with
      | None -> Ok ()
      | Some digest ->
          (* The sidecar lands after the data: a crash between the two
             renames leaves a stale sidecar next to new data, which
             [recover] reports as corruption — detected, never silent. *)
          replace ~fsync ~path:(sidecar path) (digest content ^ "\n"))

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Ok content
  | exception Sys_error msg -> Error msg

let verify ~checksum path =
  match read path with
  | Error msg -> Error msg
  | Ok content -> (
      match read (sidecar path) with
      | Error _ -> Ok () (* no sidecar: nothing to verify against *)
      | Ok recorded ->
          let expected = String.trim recorded in
          let actual = checksum content in
          if String.equal expected actual then Ok ()
          else
            Error
              (Printf.sprintf "%s: checksum mismatch (recorded %s, actual %s)" path
                 expected actual))

type problem =
  | Stale_temp
  | Corrupt of { expected : string; actual : string }
  | Orphan_sidecar
  | Unreadable of string

type issue = { path : string; problem : problem }

type recovery = {
  dir : string;
  checked : int;
  issues : issue list;
  quarantined : string list;
}

let problem_to_string = function
  | Stale_temp -> "stale temporary file"
  | Corrupt { expected; actual } ->
      Printf.sprintf "corrupt (recorded crc %s, actual %s)" expected actual
  | Orphan_sidecar -> "orphan checksum sidecar"
  | Unreadable msg -> Printf.sprintf "unreadable (%s)" msg

let quarantine_dir dir = Filename.concat dir ".quarantine"

let move_to_quarantine ~dir path acc =
  let qdir = quarantine_dir dir in
  (try Unix.mkdir qdir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error _ -> ());
  let dest = Filename.concat qdir (Filename.basename path) in
  match Unix.rename path dest with
  | () -> path :: acc
  | exception Unix.Unix_error _ -> acc

let recover ~checksum ?(quarantine = true) ~dir () =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
      let entries = Array.to_list entries |> List.sort String.compare in
      let full name = Filename.concat dir name in
      let is_regular name =
        match Unix.lstat (full name) with
        | { Unix.st_kind = Unix.S_REG; _ } -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false
      in
      let files = List.filter is_regular entries in
      let issues = ref [] in
      let quarantined = ref [] in
      let checked = ref 0 in
      let report path problem = issues := { path; problem } :: !issues in
      (* 1. stale temporaries: delete. *)
      List.iter
        (fun name ->
          if is_temp name then begin
            report (full name) Stale_temp;
            if quarantine then try Sys.remove (full name) with Sys_error _ -> ()
          end)
        files;
      (* 2. data files with sidecars: verify digests. *)
      List.iter
        (fun name ->
          if (not (is_temp name)) && not (is_sidecar name) then
            let path = full name in
            if Sys.file_exists (sidecar path) then begin
              incr checked;
              match read path with
              | Error msg -> report path (Unreadable msg)
              | Ok content -> (
                  match read (sidecar path) with
                  | Error msg -> report path (Unreadable msg)
                  | Ok recorded ->
                      let expected = String.trim recorded in
                      let actual = checksum content in
                      if not (String.equal expected actual) then begin
                        report path (Corrupt { expected; actual });
                        if quarantine then begin
                          quarantined := move_to_quarantine ~dir path !quarantined;
                          quarantined :=
                            move_to_quarantine ~dir (sidecar path) !quarantined
                        end
                      end)
            end)
        files;
      (* 3. orphan sidecars. *)
      List.iter
        (fun name ->
          if is_sidecar name && not (is_temp name) then
            let path = full name in
            let data = Filename.chop_suffix path sidecar_suffix in
            if (not (Sys.file_exists data)) && Sys.file_exists path then begin
              report path Orphan_sidecar;
              if quarantine then
                quarantined := move_to_quarantine ~dir path !quarantined
            end)
        files;
      let issues =
        List.sort (fun a b -> String.compare a.path b.path) (List.rev !issues)
      in
      Ok
        {
          dir;
          checked = !checked;
          issues;
          quarantined = List.sort String.compare !quarantined;
        }

let clean r = r.issues = []

let render_recovery r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "recover %s: %d file(s) checked, %d issue(s)\n" r.dir r.checked
       (List.length r.issues));
  List.iter
    (fun { path; problem } ->
      Buffer.add_string b (Printf.sprintf "  %s: %s\n" path (problem_to_string problem)))
    r.issues;
  if r.quarantined <> [] then
    Buffer.add_string b
      (Printf.sprintf "  quarantined %d file(s) into %s\n" (List.length r.quarantined)
         (quarantine_dir r.dir));
  Buffer.contents b
