(** Declarative graceful-degradation ladder.

    A ladder is an ordered list of solver rungs, each with its own budget
    allowance.  The engine attempts rungs in order; the first rung that runs
    to completion (within its budget) supplies the answer, and every rung's
    best-so-far result is kept as a fallback so an expired ladder still
    yields the best feasible scheme seen — in the worst case the
    single-region baseline, which is always constructible. *)

type rung_kind =
  | Exact  (** Branch-and-bound exact allocator. *)
  | Anneal  (** Simulated annealing. *)
  | Greedy  (** Agglomerative + greedy allocator (the default engine path). *)
  | Multilevel
      (** Multilevel coarsen→partition→refine backend — a ladder can
          degrade {e into} multilevel (cheap at scale) instead of only
          down to the single-region baseline. *)
  | Single_region  (** Baseline: one region hosting every module. *)

type rung = { kind : rung_kind; budget : Budget.spec }

type t = { rungs : rung list }

val rung_name : rung_kind -> string

val rung_kind_of_string : string -> rung_kind option

val default : t
(** [exact] capped at 150k evaluations, then [anneal] capped at 40k, then
    unlimited [greedy], then the [single-region] baseline. *)

val of_string : string -> (t, string) result
(** Parse a ladder description like ["exact:150000,anneal:40000,greedy"]
    or ["multilevel,single-region"]. Each comma-separated rung is
    [kind] or [kind:max_evals] or [kind:max_evals:deadline_ms]; an
    empty limit slot means unlimited. *)

val to_string : t -> string

val validate : t -> (t, string) result
(** Reject empty ladders. *)
