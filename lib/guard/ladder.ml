type rung_kind = Exact | Anneal | Greedy | Multilevel | Single_region

type rung = { kind : rung_kind; budget : Budget.spec }

type t = { rungs : rung list }

let rung_name = function
  | Exact -> "exact"
  | Anneal -> "anneal"
  | Greedy -> "greedy"
  | Multilevel -> "multilevel"
  | Single_region -> "single-region"

let rung_kind_of_string = function
  | "exact" -> Some Exact
  | "anneal" -> Some Anneal
  | "greedy" -> Some Greedy
  | "multilevel" | "multi-level" | "ml" -> Some Multilevel
  | "single-region" | "single_region" | "single" -> Some Single_region
  | _ -> None

let default =
  {
    rungs =
      [
        { kind = Exact; budget = Budget.spec ~max_evals:150_000 () };
        { kind = Anneal; budget = Budget.spec ~max_evals:40_000 () };
        { kind = Greedy; budget = Budget.unlimited };
        { kind = Single_region; budget = Budget.unlimited };
      ];
  }

let parse_limit what s =
  if s = "" then Ok None
  else
    match float_of_string_opt s with
    | Some v when v > 0. -> Ok (Some v)
    | _ -> Error (Printf.sprintf "invalid %s %S (expected a positive number)" what s)

let parse_rung s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty rung"
  | name :: limits -> (
      match rung_kind_of_string name with
      | None ->
          Error
            (Printf.sprintf
               "unknown rung %S (expected exact, anneal, greedy, multilevel \
                or single-region)" name)
      | Some kind -> (
          match limits with
          | [] -> Ok { kind; budget = Budget.unlimited }
          | [ evals ] -> (
              match parse_limit "eval cap" evals with
              | Error e -> Error e
              | Ok cap ->
                  Ok
                    {
                      kind;
                      budget = Budget.spec ?max_evals:(Option.map int_of_float cap) ();
                    })
          | [ evals; deadline ] -> (
              match (parse_limit "eval cap" evals, parse_limit "deadline" deadline) with
              | Error e, _ | _, Error e -> Error e
              | Ok cap, Ok dl ->
                  Ok
                    {
                      kind;
                      budget =
                        Budget.spec
                          ?max_evals:(Option.map int_of_float cap)
                          ?deadline_ms:dl ();
                    })
          | _ -> Error (Printf.sprintf "too many limit fields in rung %S" s)))

let validate t =
  if t.rungs = [] then Error "ladder has no rungs" else Ok t

let of_string s =
  let parts = String.split_on_char ',' s |> List.filter (fun p -> String.trim p <> "") in
  if parts = [] then Error "empty ladder"
  else
    let rec go acc = function
      | [] -> validate { rungs = List.rev acc }
      | p :: rest -> (
          match parse_rung p with Error e -> Error e | Ok r -> go (r :: acc) rest)
    in
    go [] parts

let rung_to_string r =
  let name = rung_name r.kind in
  match (r.budget.Budget.max_evals, r.budget.Budget.deadline_ms) with
  | None, None -> name
  | Some e, None -> Printf.sprintf "%s:%d" name e
  | None, Some d -> Printf.sprintf "%s::%.0f" name d
  | Some e, Some d -> Printf.sprintf "%s:%d:%.0f" name e d

let to_string t = String.concat "," (List.map rung_to_string t.rungs)
