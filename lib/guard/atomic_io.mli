(** Crash-safe file writes and torn-artefact recovery.

    {!write} renders a file atomically: the content goes to a temporary file
    in the destination directory, is flushed to stable storage ([fsync]),
    and is then renamed over the target — readers either see the old file or
    the complete new one, never a torn prefix.  When a [checksum] function is
    supplied a sidecar file [path ^ ".crc32"] holding the hex digest is
    written (atomically, after the data) so {!recover} can detect silent
    corruption as well as crash artefacts.

    The library takes the checksum as a plain [string -> string] so it does
    not depend on any particular digest implementation; callers typically
    pass [Bitgen.Crc32.hex_digest]. *)

type checksum = string -> string
(** Hex digest of a whole file's content. *)

val sidecar : string -> string
(** [sidecar path] is the checksum sidecar path, [path ^ ".crc32"]. *)

val is_sidecar : string -> bool

val is_temp : string -> bool
(** Recognise this module's temporary-file names (crash leftovers). *)

val mkdir_p : string -> (unit, string) result
(** Create a directory and its missing ancestors ([Error message] when a
    path component exists but is not a directory, or creation fails). *)

val write :
  ?fsync:bool -> ?checksum:checksum -> path:string -> string -> (unit, string) result
(** [write ~path content] atomically replaces [path] with [content].
    [fsync] (default [true]) forces the data and the containing directory to
    stable storage before/after the rename.  On failure the temporary file
    is removed and [Error message] is returned; [path] is untouched. *)

val read : string -> (string, string) result
(** Read a whole file, [Error message] on failure. *)

val verify : checksum:checksum -> string -> (unit, string) result
(** [verify ~checksum path] recomputes the digest of [path] and compares it
    with the sidecar.  [Ok ()] when they match or when no sidecar exists. *)

(** {1 Recovery} *)

type problem =
  | Stale_temp  (** Leftover temporary file from an interrupted write. *)
  | Corrupt of { expected : string; actual : string }
      (** Sidecar digest does not match the file content. *)
  | Orphan_sidecar  (** Sidecar without its data file. *)
  | Unreadable of string  (** I/O error while checking. *)

type issue = { path : string; problem : problem }

type recovery = {
  dir : string;
  checked : int;  (** Files with sidecars that were verified. *)
  issues : issue list;
  quarantined : string list;  (** Files moved into [dir/.quarantine/]. *)
}

val recover :
  checksum:checksum -> ?quarantine:bool -> dir:string -> unit -> (recovery, string) result
(** Scan [dir] (non-recursively) for torn or corrupt artefacts: stale
    temporaries are deleted, files whose sidecar digest mismatches are moved
    (with their sidecar) into [dir/.quarantine/] when [quarantine] is [true]
    (the default), orphan sidecars are quarantined likewise.  Issues are
    reported in sorted path order. *)

val clean : recovery -> bool
(** No issues found. *)

val render_recovery : recovery -> string
val problem_to_string : problem -> string
