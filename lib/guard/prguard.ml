(** Prguard — resilience layer for the solving pipeline.

    Three concerns, one module: {!Budget} bounds how long a solve may run
    (wall clock, evaluation cap, cooperative cancellation) so the engine can
    return the best feasible answer found so far; {!Ladder} describes the
    graceful-degradation escalation policy (exact → anneal → greedy →
    single-region); {!Atomic_io} makes artefact writes crash-safe and
    {!recover} detects and quarantines torn or corrupt artefacts after a
    crash. *)

module Budget = Budget
module Ladder = Ladder
module Atomic_io = Atomic_io

type verdict = Budget.verdict = {
  guarded : bool;
  degraded : bool;
  reason : Budget.reason;
  rung : string option;
  evals_used : int;
  elapsed_ms : float;
}

let recover = Atomic_io.recover
