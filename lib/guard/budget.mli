(** Wall-clock deadlines, cost-evaluation caps and cooperative cancellation.

    A {!t} is threaded through the solving pipeline ([Engine.solve],
    [Allocator], [Anneal], [Exact], the [Par] fan-out).  Work units call
    {!charge} as they evaluate candidate schemes and poll {!interrupted} (or
    {!exhausted}) at loop boundaries; when the budget expires the caller
    returns the best feasible answer found so far instead of running to
    completion.

    Determinism contract: an eval-cap-only budget (no deadline, no cancel
    token) expires at a deterministic point of the computation, so capped
    runs are reproducible; wall-clock deadlines and cancellation are
    inherently racy and are only consulted by {!interrupted}/{!exhausted},
    never by {!charge}. *)

type cancel
(** Cooperative cancellation token, shareable across domains. *)

val cancel_token : unit -> cancel
(** Fresh, un-cancelled token. *)

val cancel : cancel -> unit
(** Request cancellation.  Idempotent; safe from any domain. *)

val cancelled : cancel -> bool

(** {1 Clocks} *)

type clock = unit -> float
(** A time source, in seconds (absolute origin irrelevant — only
    differences matter).  Budgets take all their readings from one clock,
    so tests can drive deadlines deterministically with a fake. *)

val monotonic : clock
(** The default deadline clock: [Unix.gettimeofday] clamped to be
    non-decreasing (process-wide, lock-free).  NTP steps and manual clock
    changes can move the wall clock in either direction; a backward jump
    would make a deadline stop approaching and extend a job indefinitely,
    so the largest time ever observed is latched and returned until the
    wall clock catches up again.  Forward jumps at worst expire budgets
    early, which the anytime contract already tolerates. *)

(** {1 Specifications} *)

type spec = {
  deadline_ms : float option;  (** Wall-clock allowance, milliseconds. *)
  max_evals : int option;  (** Cost-evaluation cap. *)
}
(** A declarative, not-yet-started budget (as found in a ladder rung or a
    CLI invocation). *)

val spec : ?deadline_ms:float -> ?max_evals:int -> unit -> spec
val unlimited : spec

val is_unlimited : spec -> bool
val spec_to_string : spec -> string

(** {1 Live budgets} *)

type t

val make :
  ?clock:clock ->
  ?deadline_ms:float ->
  ?max_evals:int ->
  ?cancel:cancel ->
  unit ->
  t
(** Start a budget now.  Omitted limits are unlimited.  [clock] defaults
    to {!monotonic}; children created with {!child} inherit it. *)

val of_spec : ?clock:clock -> ?cancel:cancel -> spec -> t

val child : t -> spec -> t
(** [child parent spec] starts a sub-budget (e.g. one ladder rung): it
    shares the parent's cancel token, its deadline is the earlier of the
    parent's and [spec]'s, charges propagate to the parent, and eval-cap
    exhaustion considers both caps. *)

val charge : ?n:int -> t -> unit
(** Record [n] (default 1) cost evaluations against the budget (and its
    ancestors). *)

val evals_used : t -> int
val elapsed_ms : t -> float
val has_eval_cap : t -> bool
val has_deadline : t -> bool

type reason =
  | Completed  (** The budget never expired. *)
  | Deadline  (** The wall-clock deadline passed. *)
  | Eval_cap  (** The cost-evaluation cap was reached. *)
  | Cancelled  (** The cancel token fired. *)

val reason_name : reason -> string

val exhausted : t -> reason option
(** [None] while the budget is still live; otherwise the (sticky) reason it
    expired, with precedence cancel > deadline > eval-cap. *)

val interrupted : t -> bool
(** Deadline/cancellation only — deliberately ignores the eval cap so that
    eval-capped runs stay deterministic.  The wall clock is probed on a
    small stride; once expired the answer is sticky. *)

(** {1 Verdicts} *)

type verdict = {
  guarded : bool;  (** A budget or ladder was in force. *)
  degraded : bool;  (** The answer is best-so-far, not a full run. *)
  reason : reason;
  rung : string option;  (** Ladder rung that produced the answer. *)
  evals_used : int;
  elapsed_ms : float;
}

val no_budget : verdict
(** The constant verdict of an unguarded run: [guarded = false],
    [degraded = false], [reason = Completed], everything else zero. *)

val verdict : ?rung:string -> t -> verdict
val with_rung : string -> verdict -> verdict
val render_verdict : verdict -> string
