(* Cross-process advisory lock for a shared cache directory.

   The lock is a file ([DIR/.prserve.lock]) created with O_EXCL and
   stamped with the holder's pid and a wall-clock heartbeat. Waiters
   poll; a lock whose holder is dead (kill 0 -> ESRCH) or whose stamp
   is older than the TTL is {e stale} and taken over. Takeover renames
   the stale file aside before removing it, so when several waiters
   judge the same lock stale only the one whose rename succeeds clears
   it — nobody ever unlinks a freshly created lock by mistake. *)

let lock_name = ".prserve.lock"
let path_in dir = Filename.concat dir lock_name

type t = {
  path : string;
  pid : int;
  mutable released : bool;
}

let render ~pid ~stamp = Printf.sprintf "pid %d\nstamp %.6f\n" pid stamp

(* [Some (pid, stamp)] when both header lines parse; [None] marks the
   content unparseable (treated as stale — nothing we can wait on). *)
let parse content =
  match String.split_on_char '\n' content with
  | pid_line :: stamp_line :: _ -> (
    let field prefix line =
      let pl = String.length prefix in
      if String.length line > pl && String.sub line 0 pl = prefix then
        Some (String.sub line pl (String.length line - pl))
      else None
    in
    match (field "pid " pid_line, field "stamp " stamp_line) with
    | Some pid, Some stamp -> (
      match (int_of_string_opt pid, float_of_string_opt stamp) with
      | Some pid, Some stamp -> Some (pid, stamp)
      | _ -> None)
    | _ -> None)
  | _ -> None

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) ->
      (* EPERM and friends: the process exists but is not ours. *)
      true

let read_content path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Some content
  | exception Sys_error _ -> None

let stale ~ttl_s ~now content =
  match parse content with
  | None -> true
  | Some (pid, stamp) ->
    (not (pid_alive pid)) || now -. stamp > ttl_s

(* Move the stale lock aside with an atomic rename, then delete it.
   Rename succeeds for exactly one contender; losers just re-poll. *)
let takeover path =
  let aside = Printf.sprintf "%s.stale.%d" path (Unix.getpid ()) in
  match Unix.rename path aside with
  | () ->
    (try Sys.remove aside with Sys_error _ -> ());
    true
  | exception Unix.Unix_error (_, _, _) -> false

let try_create path ~pid =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
    let content = render ~pid ~stamp:(Unix.gettimeofday ()) in
    let _ = Unix.write_substring fd content 0 (String.length content) in
    Unix.close fd;
    true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let acquire ?(ttl_s = 10.) ?(timeout_s = 10.) ?(poll_s = 0.01) ~dir () =
  let path = path_in dir in
  let pid = Unix.getpid () in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt () =
    if try_create path ~pid then Ok { path; pid; released = false }
    else begin
      let now = Unix.gettimeofday () in
      let is_stale =
        match read_content path with
        | None -> false  (* gone already: retry immediately *)
        | Some content -> stale ~ttl_s ~now content
      in
      if is_stale then begin
        ignore (takeover path);
        attempt ()
      end
      else if now > deadline then
        Error
          (Printf.sprintf "lockfile %s: timed out after %.1fs (held by %s)"
             path timeout_s
             (match read_content path with
              | Some c -> (
                match parse c with
                | Some (pid, _) -> Printf.sprintf "pid %d" pid
                | None -> "unknown")
              | None -> "unknown"))
      else begin
        Thread.delay poll_s;
        attempt ()
      end
    end
  in
  attempt ()

let refresh t =
  if not t.released then
    (* In-place rewrite: only the holder touches the file, and the
       content length is stable enough that a torn heartbeat merely
       looks stale — the safe failure direction. *)
    match Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 with
    | fd ->
      let content = render ~pid:t.pid ~stamp:(Unix.gettimeofday ()) in
      let _ = Unix.write_substring fd content 0 (String.length content) in
      Unix.close fd
    | exception Unix.Unix_error (_, _, _) -> ()

let release t =
  if not t.released then begin
    t.released <- true;
    try Sys.remove t.path with Sys_error _ -> ()
  end

let with_lock ?ttl_s ?timeout_s ?poll_s ~dir f =
  match acquire ?ttl_s ?timeout_s ?poll_s ~dir () with
  | Error _ as e -> e
  | Ok lock ->
    let result = Fun.protect ~finally:(fun () -> release lock) f in
    Ok result
