(** The Prserve daemon core: request handling, dispatch, overload
    shedding and lifecycle, independent of any socket transport.

    Threads: any number of client threads call {!handle_line} (one
    blocking call per request line); a single internal dispatcher
    thread drains the admission queue in batches onto a bounded
    [Par.Pool] of domains, where each job solves under its own
    [Guard.Budget] (on the server's injectable clock) and the
    degradation ladder of its admission-time shed level.  A job that
    raises yields a typed [ERR] reply; the daemon keeps serving.

    Overload policy: the dispatcher maintains an EWMA of measured queue
    wait ([serve.queue_wait_ms] histogram).  New jobs are admitted at
    the shed level given by {!level_for_wait} over the configured
    thresholds, and {!budget_for_level} maps levels to progressively
    tighter budget/ladder rungs — the daemon answers fast-and-degraded
    instead of slow-or-dead.  Only clean level-0, non-degraded results
    enter the cache, so cached replies stay bit-identical to an
    unconstrained fresh solve. *)

type config = {
  target : Prcore.Engine.target;
  options : Prcore.Engine.options;
  strategy : Prcore.Strategy.t;
      (** Search backend for every solve (default
          {!Prcore.Strategy.default}); part of the cache fingerprint, so
          results solved under different strategies never alias. *)
  ladder : Prguard.Ladder.t option;  (** Level-0 ladder (none = plain). *)
  deadline_ms : float option;  (** Level-0 deadline, default 2000 ms. *)
  jobs : int;  (** Domain-pool width. *)
  queue_capacity : int;
  client_cap : int;
  quotas : (string * int) list;
      (** Per-client in-flight quotas beyond the flat [client_cap];
          see {!Admission.create}. Refusals reject with code ["quota"]
          and count in [serve.quota_rejects]. *)
  cache_capacity : int;
  cache_dir : string option;  (** None = memory-only cache. *)
  cache_shared : bool;
      (** Coordinate [cache_dir] with peer replicas ({!Cache},
          shared mode). Requires [cache_dir]. *)
  shed_thresholds_ms : float array;
      (** Queue-wait EWMA thresholds for shed levels 1..n (must be
          non-decreasing); length 3 by default. *)
  limits : Prdesign.Design_xml.limits;
  clock : Prguard.Budget.clock;
  telemetry : Prtelemetry.t;
  chaos : Chaos.t option;
      (** Seeded fault injection (chaos harness only): kills mid-solve
          and mid-cache-write, torn entry writes; {!Endpoint} also
          consults it for connection resets / slow replies. *)
}

val default_config : ?telemetry:Prtelemetry.t -> unit -> config
(** Auto device target, default options, no ladder, 2000 ms deadline,
    [Par.recommended_jobs] width, queue 64, client cap 16, no quotas,
    cache 256 (memory-only, unshared), thresholds [| 50.; 200.; 1000. |],
    default limits, {!Prguard.Budget.monotonic} clock, no chaos. *)

(** {1 Shedding policy (pure, exposed for tests)} *)

val level_for_wait : thresholds:float array -> float -> int
(** Number of thresholds strictly below the wait: 0 = healthy, rising
    to [Array.length thresholds] under overload. *)

val budget_for_level :
  config -> int -> Prguard.Budget.spec * Prguard.Ladder.t option
(** Level 0: the configured deadline and ladder.  Deeper levels halve
    the deadline per level and force cheaper ladders ([multilevel,
    greedy, single-region], then [single-region]) — level 2 degrades
    {e into} the multilevel backend, which stays near-interactive even
    on huge designs.  With no configured deadline the shed levels
    impose one (1000 ms base) so overload always bounds latency. *)

val config_fingerprint : config -> string
(** The solve-identity part of the cache key: target, strategy,
    options, level-0 budget/ladder.  Two servers with equal
    fingerprints may share a cache directory. *)

(** {1 Lifecycle} *)

type t

val create : config -> (t, string) result
(** Build the cache (recovery + warming when persistent), admission
    queue, domain pool and dispatcher thread. *)

val handle_line : t -> string -> string
(** Process one request line, blocking until the reply line is ready.
    Never raises. *)

val request_shutdown : t -> unit
(** Stop admitting ([REJECT draining] / [HEALTH draining]); idempotent
    and async-signal-safe (a flag set). *)

val draining : t -> bool

val drain : t -> unit
(** Graceful stop: close admission, let the dispatcher finish the
    backlog, join it, flush the pool profile ([par.*] gauges) and shut
    the pool down.  Idempotent. *)

(** {1 Introspection} *)

val status_json : t -> string
(** The [STATUS] body: uptime, request/solved/error counts, QPS, cache
    hits/misses/hit-rate/entries, queue depth, shed level and EWMA,
    reject counts, latency percentiles, [par.utilisation]. *)

val cache : t -> Cache.t
val telemetry : t -> Prtelemetry.t
val requests : t -> int
val shed_level : t -> int

val chaos : t -> Chaos.t option
(** The configured chaos injector, for {!Endpoint}'s reply points. *)

val client_quota : t -> string -> int
(** Effective per-client in-flight cap after the quota table. *)

val reject : t -> Protocol.reject -> string
(** Render a reject reply and count it ([serve.rejects.<code>], plus
    [serve.quota_rejects] for quota refusals). Exposed for transports
    that reject at the connection level ({!Endpoint}'s idle timeout)
    and for tests. *)
