type reject =
  | Queue_full of { depth : int; capacity : int }
  | Client_cap of { client : string; in_flight : int; cap : int }
  | Quota of { client : string; in_flight : int; quota : int }
  | Closed

type 'a t = {
  capacity : int;
  client_cap : int;
  quotas : (string * int) list;
      (** Per-client in-flight weights; clients not listed fall back to
          [client_cap]. The table is configuration (small, fixed), so an
          assoc list keeps it printable and order-stable. *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  queues : (string, 'a Queue.t) Hashtbl.t;
  rotation : string Queue.t;  (** Clients with a non-empty queue, FIFO. *)
  inflight : (string, int) Hashtbl.t;
  mutable depth : int;
  mutable closed : bool;
}

let create ?(capacity = 64) ?(client_cap = 16) ?(quotas = []) () =
  { capacity = max 1 capacity;
    client_cap = max 1 client_cap;
    quotas = List.map (fun (c, q) -> (c, max 1 q)) quotas;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 8;
    rotation = Queue.create ();
    inflight = Hashtbl.create 8;
    depth = 0;
    closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let inflight_of t client =
  Option.value ~default:0 (Hashtbl.find_opt t.inflight client)

let quota_of t client = List.assoc_opt client t.quotas

let effective_cap t client =
  match quota_of t client with
  | Some q -> min q t.client_cap
  | None -> t.client_cap

let submit t ~client job =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else if t.depth >= t.capacity then
        Error (Queue_full { depth = t.depth; capacity = t.capacity })
      else
        let in_flight = inflight_of t client in
        let cap = effective_cap t client in
        if in_flight >= cap then
          Error
            (match quota_of t client with
             | Some quota when in_flight >= quota ->
               Quota { client; in_flight; quota }
             | Some _ | None ->
               Client_cap { client; in_flight; cap = t.client_cap })
        else begin
          let q =
            match Hashtbl.find_opt t.queues client with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add t.queues client q;
              q
          in
          if Queue.is_empty q then Queue.add client t.rotation;
          Queue.add job q;
          t.depth <- t.depth + 1;
          Hashtbl.replace t.inflight client (in_flight + 1);
          Condition.signal t.nonempty;
          Ok ()
        end)

let take t ~max:limit =
  with_lock t (fun () ->
      while t.depth = 0 && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      let out = ref [] in
      let n = ref 0 in
      while !n < max 1 limit && t.depth > 0 do
        let client = Queue.pop t.rotation in
        let q = Hashtbl.find t.queues client in
        out := Queue.pop q :: !out;
        t.depth <- t.depth - 1;
        incr n;
        (* Drop the bucket once empty: client ids are untrusted and
           unbounded, so empty queues must not accumulate. *)
        if Queue.is_empty q then Hashtbl.remove t.queues client
        else Queue.add client t.rotation
      done;
      List.rev !out)

let finish t ~client =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.inflight client with
      | None -> ()
      | Some 1 -> Hashtbl.remove t.inflight client
      | Some n -> Hashtbl.replace t.inflight client (n - 1))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = with_lock t (fun () -> t.depth)
let client_buckets t = with_lock t (fun () -> Hashtbl.length t.queues)
let in_flight t ~client = with_lock t (fun () -> inflight_of t client)
let capacity t = t.capacity
let client_cap t = t.client_cap
let quota t ~client = effective_cap t client
