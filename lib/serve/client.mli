(** Fault-tolerant fleet client for the Prserve daemon.

    One client speaks to a list of replica endpoints.  Requests stick
    to one endpoint until it misbehaves, then fail over round-robin —
    safe because SOLVE is idempotent under the content-addressed cache
    fingerprint: any replica returns the same scheme for the same
    design and configuration.  Transport failures (connect refused,
    reset, garbled framing) feed a per-endpoint circuit breaker
    (closed → open after [breaker_failures] consecutive failures →
    half-open probe after [breaker_cooldown_ms]); a well-formed REJECT
    or ERR proves the endpoint alive and resets its streak.  Retries
    back off per {!Prfault.Recovery.backoff_seconds} with jitter drawn
    from a seeded {!Synth.Rng}, so a given client seed replays the
    same schedule; the whole request, sleeps included, is bounded by
    the per-request [deadline_ms].

    A client is mutex-serialised: one request at a time.  Run several
    clients (cheap — one lazy connection per endpoint) for
    concurrency. *)

type policy = {
  deadline_ms : float option;
      (** Total per-request budget across all attempts and backoff
          sleeps; [None] = unbounded. *)
  retry : Prfault.Recovery.retry;
      (** Attempt count and backoff shape for the request loop. *)
  connect_retry : Prfault.Recovery.retry;
      (** Passed to {!Endpoint.connect} for transient connect races. *)
  breaker_failures : int;
      (** Consecutive transport failures that open an endpoint's
          breaker. *)
  breaker_cooldown_ms : float;
      (** Open duration before a half-open probe is admitted. *)
}

val default_policy : policy
(** 30 s deadline; 6 attempts backing off 25 ms → 1 s with 0.2 jitter;
    4 connect attempts; breaker opens after 3 failures for 500 ms. *)

type error =
  | Rejected of { code : string; detail : string option }
      (** The daemon refused ([REJECT]).  Pressure codes (queue-full,
          draining, client-cap, quota) are retried on other replicas
          first; input-shaped codes (bad-request, too-large,
          not-found, idle-timeout) fail immediately — they fail
          identically everywhere. *)
  | Server_error of string
      (** [ERR] reply; retried elsewhere (solves are idempotent). *)
  | Unavailable of string
      (** Transport-level: no endpoint answered within the policy. *)

val error_message : error -> string

type breaker_state = Closed | Open | Half_open

type t

val create :
  ?policy:policy ->
  ?seed:int ->
  ?clock:Prguard.Budget.clock ->
  ?telemetry:Prtelemetry.t ->
  Endpoint.address list ->
  (t, string) result
(** [seed] drives backoff jitter (default 0 — deterministic); [clock]
    is the deadline time source (default monotonic).  Connections are
    opened lazily per endpoint and reused across requests.  Errors on
    an invalid policy or an empty endpoint list. *)

val solve :
  t -> ?client:string -> string -> (Protocol.solved, error) result
(** [solve t spec] sends [SOLVE client=<client> <spec>] where [spec]
    is a design name, [path:FILE] or [inline:XML] per the protocol. *)

val solve_inline :
  t -> ?client:string -> design_xml:string -> unit ->
  (Protocol.solved, error) result

val status : t -> (string, error) result
(** Raw STATUS JSON body from whichever replica answered. *)

val health : t -> (bool, error) result
(** [Ok true] = serving, [Ok false] = draining. *)

val close : t -> unit
(** Close all connections; further requests fail.  Idempotent. *)

(** {1 Introspection (tests, the chaos bench)} *)

val endpoints : t -> Endpoint.address list
val breaker_state : t -> int -> breaker_state
(** Breaker for the [i]th endpoint of {!endpoints}. *)

val retries : t -> int
(** [client.retries] counter. *)

val failovers : t -> int
(** [client.failovers] counter. *)

val breaker_opens : t -> int
(** [client.breaker_opens] counter. *)
