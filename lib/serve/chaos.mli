(** Chaos actuation for the serve layer.

    Wraps a [Prfault.Service] injector in a mutex (worker domains,
    the dispatcher and connection threads share one decision stream)
    and translates its seeded decisions into typed instructions the
    call sites execute:

    - [Server.solve_job] consults {!at_solve} and exits with
      {!kill_exit_code} on {!Kill_solve} — a replica dying mid-solve;
    - [Cache.add] consults {!at_cache_write} and tears the persisted
      entry (truncated data under a full-content CRC sidecar, plus a
      stale temp), optionally dying right after — the kill -9
      mid-cache-write scenario;
    - [Endpoint] consults {!at_reply} before writing a solve reply and
      resets the connection or delays the write.

    Decisions are counted in telemetry as [serve.chaos.<kind>]. *)

module Service = Prfault.Service

type t

val kill_exit_code : int
(** 137, what a supervisor observes after SIGKILL. *)

val create :
  ?telemetry:Prtelemetry.t -> Service.spec -> (t, string) result

val of_string : ?telemetry:Prtelemetry.t -> string -> (t, string) result
(** Parse a {!Service.spec_of_string} flag value and create. *)

val spec : t -> Service.spec
val injected : t -> int

val draw : t -> Service.point -> Service.kind option
(** Raw decision draw (thread-safe). The [at_*] helpers below are the
    call-site interface. *)

type solve_action = Run | Kill_solve

val at_solve : t -> solve_action

type cache_action = Clean_write | Torn_write | Torn_write_then_kill

val at_cache_write : t -> cache_action

type reply_action = Deliver | Reset | Delay of float  (** seconds *)

val at_reply : t -> reply_action
