(** Fleet supervisor: spawn N Prserve replicas as child processes,
    health-probe them, and restart crashes under a budget.

    Replicas are real processes ([Unix.create_process] — never fork:
    OCaml 5 domains do not survive it), so a chaos kill takes exactly
    one replica down.  A monitor thread ticks every [tick_s]: it reaps
    exited children ([waitpid WNOHANG]), respawns them after an
    exponential backoff ([backoff_ms] doubling per restart up to
    [max_backoff_ms]) while the per-replica [restart_limit] lasts, and
    probes each live replica with a HEALTH exchange every
    [probe_interval_s].  A replica that misses [probe_failures]
    consecutive probes after its [startup_grace_s] is SIGKILLed and
    recycled through the same restart path.  A replica whose budget is
    exhausted parks in [Gave_up] — the fleet degrades rather than
    restart-looping a poisoned configuration.

    Each respawn calls the spec's [argv ~incarnation] with an
    incremented incarnation, so a fleet driver can hand later
    incarnations tamer flags (the chaos bench launches incarnation 0
    with kill schedules and later ones without, bounding kill loops by
    construction). *)

type replica_spec = {
  name : string;
  address : Endpoint.address;  (** Where HEALTH probes connect. *)
  argv : incarnation:int -> string array;
      (** Full argv including argv.(0) (the executable path). *)
}

type config = {
  restart_limit : int;  (** Restarts allowed per replica (0 = none). *)
  backoff_ms : float;
  max_backoff_ms : float;
  probe_interval_s : float;
  probe_failures : int;
  startup_grace_s : float;
      (** Probe misses are forgiven this long after a (re)spawn. *)
  tick_s : float;  (** Monitor loop period. *)
  stdio : Unix.file_descr option;
      (** Child stdout/stderr (default: inherit this process's
          stdout). *)
  telemetry : Prtelemetry.t;
      (** Counters: [fleet.spawns], [fleet.restarts],
          [fleet.probe_kills], [fleet.gave_up]. *)
  clock : Prguard.Budget.clock;
}

val default_config : ?telemetry:Prtelemetry.t -> unit -> config
(** 5 restarts, 100 ms → 2 s backoff, 250 ms probes, 3 misses,
    5 s grace, 50 ms tick. *)

type phase = Starting | Healthy | Backing_off of float | Gave_up | Stopped

val phase_to_string : phase -> string

type status = {
  s_name : string;
  s_address : Endpoint.address;
  s_phase : phase;
  s_pid : int option;
  s_restarts : int;
}

type t

val start :
  ?config:config -> replica_spec list -> (t, string) result
(** Spawn every replica and the monitor thread.  If any spawn raises
    (bad executable path), already-spawned children are killed and the
    error returned. *)

val await_healthy : ?timeout_s:float -> t -> (unit, string) result
(** Block until every replica has answered a HEALTH probe (default
    timeout 10 s); on timeout the error lists each replica's phase. *)

val statuses : t -> status list

val restarts : t -> int
(** Total restarts across the fleet. *)

val gave_up : t -> bool
(** True if any replica exhausted its budget. *)

val request_stop : t -> unit
(** Freeze the monitor immediately; [stop] must still follow to kill
    and reap the replicas.  Call this from a SIGINT/SIGTERM handler
    before returning control to the loop that will invoke [stop]:
    when the signal also reached the replicas (process-group delivery,
    e.g. under timeout(1) or a job-control kill), it stops the monitor
    from booking those simultaneous exits as scheduled restarts during
    the handoff.  Async-signal-safe (a single flag write, no lock). *)

val stop : ?grace_s:float -> t -> unit
(** SIGTERM every live replica, join the monitor, wait [grace_s]
    (default 2 s) for clean exits, then SIGKILL and reap stragglers.
    Idempotent. *)
