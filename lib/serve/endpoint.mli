(** Socket transport for {!Server}: Unix-domain or localhost TCP.

    The accept loop runs on the calling thread and spawns one thread
    per connection; each connection reads request lines through the
    bounded {!Reader} and writes one reply line per request.  The loop
    polls the server's draining flag (a [select] timeout, so a signal
    handler calling [Server.request_shutdown] stops acceptance within
    [poll_interval]) and exits once draining; open connections are then
    shut down (so reader threads parked in [Unix.read] on idle clients
    wake with EOF) and joined before {!serve_loop} returns, then the
    caller runs [Server.drain].  {!listen} and {!connect} ignore
    SIGPIPE: a peer that hangs up before reading its reply must
    surface as a caught [EPIPE], never kill the daemon. *)

type address = Unix_path of string | Tcp of int
(** [Tcp port] binds 127.0.0.1 only: the protocol has no
    authentication, so it must not listen on public interfaces. *)

val address_to_string : address -> string

type t

val listen : ?backlog:int -> address -> (t, string) result
(** Bind and listen.  A stale Unix-socket path from a previous run is
    unlinked first. *)

val serve_loop :
  ?poll_interval:float ->
  ?max_line_bytes:int ->
  ?idle_timeout_s:float ->
  t ->
  Server.t ->
  unit
(** Accept and serve until the server drains.  [poll_interval]
    (default 0.2 s) bounds shutdown latency; [max_line_bytes] is the
    {!Reader} bound per request line.  With [idle_timeout_s] a
    connection whose peer stays silent past the deadline receives a
    typed [REJECT idle-timeout] and is hung up (slowloris defence).
    When the server carries a chaos injector, solve replies (only)
    pass its reply point: they may be delayed or replaced by a
    connection reset. *)

val close : t -> unit
(** Close the listening socket (and unlink a Unix path).  Idempotent. *)

(** {1 Client side (tests and the load generator)} *)

type client

val connect :
  ?max_line_bytes:int ->
  ?retry:Prfault.Recovery.retry ->
  address ->
  (client, string) result
(** With [retry], transient connect failures (ECONNREFUSED, ENOENT —
    the races a client loses against replica startup — plus
    ECONNRESET/EAGAIN) back off deterministically per
    [Recovery.backoff_seconds] (no jitter) and retry up to
    [max_attempts] total attempts.  Other errors, and exhaustion, fail
    with the last error message. *)

val request : client -> string -> (string, string) result
(** Write one request line, read one reply line.  [Error] on a closed
    or misbehaving connection. *)

val close_client : client -> unit
