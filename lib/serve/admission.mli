(** Bounded admission queue with per-client fairness.

    Client threads {!submit} jobs; the single dispatcher thread
    {!take}s batches for the Domain pool.  The queue is bounded (typed
    {!reject} when full) and drained round-robin across client ids, so
    one chatty client can neither fill the queue indefinitely (the
    per-client in-flight cap refuses its submissions first) nor starve
    others (its queued backlog is interleaved, not drained first).

    In-flight accounting covers queued plus executing jobs; the
    dispatcher calls {!finish} once a job's reply is delivered. *)

type reject =
  | Queue_full of { depth : int; capacity : int }
  | Client_cap of { client : string; in_flight : int; cap : int }
  | Quota of { client : string; in_flight : int; quota : int }
      (** The client's configured quota (not the default cap) refused
          the submission — reported distinctly so tenants can tell
          their own budget from daemon-wide pressure. *)
  | Closed  (** {!close} was called — the daemon is draining. *)

type 'a t

val create :
  ?capacity:int -> ?client_cap:int -> ?quotas:(string * int) list -> unit -> 'a t
(** Defaults: capacity 64, client cap 16.  Both clamp to ≥ 1.
    [quotas] is a per-client in-flight weight table: a listed client's
    effective cap is [min quota client_cap] (clamped to ≥ 1); unlisted
    clients use [client_cap].  Round-robin draining is unchanged —
    quotas bound admission, not scheduling order. *)

val submit : 'a t -> client:string -> 'a -> (unit, reject) result

val take : 'a t -> max:int -> 'a list
(** Block until at least one job is queued (or the queue is closed),
    then dequeue up to [max] jobs round-robin across clients.  [[]]
    means closed-and-drained: the dispatcher should exit. *)

val finish : 'a t -> client:string -> unit
(** Release one unit of [client]'s in-flight budget. *)

val close : 'a t -> unit
(** Refuse further submissions ({!reject} [Closed]); {!take} keeps
    returning queued jobs until the backlog drains. *)

val depth : 'a t -> int

val client_buckets : 'a t -> int
(** Number of client ids currently holding a queue bucket.  Buckets
    are pruned as they empty, so arbitrary client ids cannot grow the
    table without bound. *)

val in_flight : 'a t -> client:string -> int
val capacity : 'a t -> int
val client_cap : 'a t -> int

val quota : 'a t -> client:string -> int
(** The effective in-flight cap for [client] (quota table or default). *)
