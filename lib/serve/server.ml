module Budget = Prguard.Budget
module Ladder = Prguard.Ladder
module Engine = Prcore.Engine

type config = {
  target : Engine.target;
  options : Engine.options;
  strategy : Prcore.Strategy.t;
  ladder : Ladder.t option;
  deadline_ms : float option;
  jobs : int;
  queue_capacity : int;
  client_cap : int;
  quotas : (string * int) list;
  cache_capacity : int;
  cache_dir : string option;
  cache_shared : bool;
  shed_thresholds_ms : float array;
  limits : Prdesign.Design_xml.limits;
  clock : Budget.clock;
  telemetry : Prtelemetry.t;
  chaos : Chaos.t option;
}

let default_config ?(telemetry = Prtelemetry.null) () =
  { target = Engine.Auto;
    options = Engine.default_options;
    strategy = Prcore.Strategy.default;
    ladder = None;
    deadline_ms = Some 2000.;
    jobs = Par.recommended_jobs ();
    queue_capacity = 64;
    client_cap = 16;
    quotas = [];
    cache_capacity = 256;
    cache_dir = None;
    cache_shared = false;
    shed_thresholds_ms = [| 50.; 200.; 1000. |];
    limits = Prdesign.Design_xml.default_limits;
    clock = Budget.monotonic;
    telemetry;
    chaos = None }

(* ------------------------------------------------------ shedding policy *)

let level_for_wait ~thresholds wait_ms =
  Array.fold_left (fun n th -> if wait_ms > th then n + 1 else n) 0 thresholds

(* Precompiled degraded ladders; the strings are static so parsing
   cannot fail. Level 2 degrades into multilevel first: one V-cycle is
   near-interactive even on huge designs and usually far better than
   jumping straight to the greedy fan-out. *)
let multilevel_ladder =
  match Ladder.of_string "multilevel,greedy,single-region" with
  | Ok l -> l
  | Error m -> failwith m

let single_region_ladder =
  match Ladder.of_string "single-region" with
  | Ok l -> l
  | Error m -> failwith m

let shed_base_deadline_ms = 1000.

let budget_for_level cfg level =
  let base = Option.value ~default:shed_base_deadline_ms cfg.deadline_ms in
  let scaled = base /. float_of_int (1 lsl level) in
  if level <= 0 then
    (Budget.spec ?deadline_ms:cfg.deadline_ms (), cfg.ladder)
  else if level = 1 then (Budget.spec ~deadline_ms:scaled (), cfg.ladder)
  else if level = 2 then
    (Budget.spec ~deadline_ms:scaled (), Some multilevel_ladder)
  else (Budget.spec ~deadline_ms:scaled (), Some single_region_ladder)

let target_id = function
  | Engine.Auto -> "auto"
  | Engine.Fixed d -> "fixed:" ^ d.Fpga.Device.name
  | Engine.Budget r ->
    Printf.sprintf "budget:%d,%d,%d" r.Fpga.Resource.clb r.Fpga.Resource.bram
      r.Fpga.Resource.dsp

let config_fingerprint cfg =
  (* Options are pure data (variants, records, float arrays), so the
     marshalled bytes are a stable identity; CRC keeps the key short. *)
  Printf.sprintf
    "prserve-key-v1 target=%s strategy=%s deadline=%s ladder=%s options=%s"
    (target_id cfg.target)
    (Prcore.Strategy.to_string cfg.strategy)
    (match cfg.deadline_ms with
     | None -> "none"
     | Some d -> Printf.sprintf "%.3fms" d)
    (match cfg.ladder with None -> "none" | Some l -> Ladder.to_string l)
    (Bitgen.Crc32.hex_digest (Marshal.to_string cfg.options []))

(* --------------------------------------------------------------- jobs *)

type reply_cell = {
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable reply : string option;
}

type job = {
  client : string;
  design : Prdesign.Design.t;
  key : string;
  level : int;
  submitted : float;
  cell : reply_cell;
}

type t = {
  config : config;
  fingerprint : string;
  cache : Cache.t;
  admission : job Admission.t;
  pool : Par.Pool.t;
  started : float;
  stop : bool Atomic.t;
  ewma_bits : int64 Atomic.t;  (** queue-wait EWMA, ms, as float bits *)
  mutable dispatcher : Thread.t option;
  drained : bool Atomic.t;
  queue_wait_h : Prtelemetry.Histogram.t;
  latency_h : Prtelemetry.Histogram.t;
  solve_h : Prtelemetry.Histogram.t;
}

let ewma t = Int64.float_of_bits (Atomic.get t.ewma_bits)

let update_ewma t wait_ms =
  (* Single-writer (the dispatcher); a plain store is enough. *)
  let prev = ewma t in
  let next = (0.7 *. prev) +. (0.3 *. wait_ms) in
  Atomic.set t.ewma_bits (Int64.bits_of_float next)

let shed_level t =
  level_for_wait ~thresholds:t.config.shed_thresholds_ms (ewma t)

let incr t name = Prtelemetry.incr t.config.telemetry name

type job_result =
  | Solved of Engine.outcome
  | Unsolvable of string  (** Typed engine error (infeasible target). *)
  | Crashed of string  (** The job raised; isolated to this reply. *)

(* Runs on a pool domain; the start/finish timestamps are taken here,
   per job, so a batch-mate's slow solve cannot inflate this job's
   latency, solve-time, or deadline-miss accounting. *)
let solve_job t job =
  (* Chaos kill-point: a replica dying mid-solve. [_exit] so no
     at_exit/finaliser cleanup runs — exactly what SIGKILL looks like
     to the supervisor and to clients holding open connections. *)
  (match t.config.chaos with
   | Some c when Chaos.at_solve c = Chaos.Kill_solve ->
     Unix._exit Chaos.kill_exit_code
   | Some _ | None -> ());
  let started = t.config.clock () in
  let result =
    try
      let spec, ladder = budget_for_level t.config job.level in
      let budget =
        if Budget.is_unlimited spec then None
        else Some (Budget.of_spec ~clock:t.config.clock spec)
      in
      match
        Engine.solve ~options:t.config.options ~telemetry:t.config.telemetry
          ~strategy:t.config.strategy ?budget ?ladder ~jobs:1
          ~target:t.config.target job.design
      with
      | Ok outcome -> Solved outcome
      | Error msg -> Unsolvable msg
    with e -> Crashed (Printexc.to_string e)
  in
  (result, started, t.config.clock ())

let scheme_regions (scheme : Prcore.Scheme.t) =
  scheme.Prcore.Scheme.region_count

let scheme_signature scheme =
  Bitgen.Crc32.hex_digest (Prcore.Memo.scheme_signature scheme)

let solved_of_outcome job ~queue_wait_ms ~elapsed_ms (o : Engine.outcome) =
  let v = o.Engine.degraded in
  { Protocol.design = job.design.Prdesign.Design.name;
    regions = scheme_regions o.Engine.scheme;
    total_frames = o.Engine.evaluation.Prcore.Cost.total_frames;
    worst_frames = o.Engine.evaluation.Prcore.Cost.worst_frames;
    device = Option.map (fun d -> d.Fpga.Device.name) o.Engine.device;
    cached = false;
    degraded = v.Budget.degraded;
    reason = Budget.reason_name v.Budget.reason;
    rung = v.Budget.rung;
    shed_level = job.level;
    queue_wait_ms;
    elapsed_ms;
    signature = scheme_signature o.Engine.scheme }

let entry_of_outcome job ~signature (o : Engine.outcome) =
  { Cache.key = job.key;
    design = job.design.Prdesign.Design.name;
    scheme_xml = Prcore.Scheme_xml.to_string o.Engine.scheme;
    regions = scheme_regions o.Engine.scheme;
    total_frames = o.Engine.evaluation.Prcore.Cost.total_frames;
    worst_frames = o.Engine.evaluation.Prcore.Cost.worst_frames;
    device = Option.map (fun d -> d.Fpga.Device.name) o.Engine.device;
    signature }

let deliver job reply =
  Mutex.lock job.cell.cell_mutex;
  job.cell.reply <- Some reply;
  Condition.broadcast job.cell.cell_cond;
  Mutex.unlock job.cell.cell_mutex

let await job =
  Mutex.lock job.cell.cell_mutex;
  while job.cell.reply = None do
    Condition.wait job.cell.cell_cond job.cell.cell_mutex
  done;
  let r = Option.get job.cell.reply in
  Mutex.unlock job.cell.cell_mutex;
  r

let dispatch_batch t batch =
  let jobs = Array.of_list batch in
  let results = Par.Pool.map_array t.pool (solve_job t) jobs in
  Array.iteri
    (fun i (result, started, finished) ->
      let job = jobs.(i) in
      let latency_ms = Float.max 0. ((finished -. job.submitted) *. 1000.) in
      let queue_wait_ms = Float.max 0. ((started -. job.submitted) *. 1000.) in
      let elapsed_ms = Float.max 0. ((finished -. started) *. 1000.) in
      Prtelemetry.Histogram.observe t.queue_wait_h queue_wait_ms;
      update_ewma t queue_wait_ms;
      Prtelemetry.Histogram.observe t.latency_h latency_ms;
      Prtelemetry.Histogram.observe t.solve_h elapsed_ms;
      let spec, _ = budget_for_level t.config job.level in
      (match spec.Budget.deadline_ms with
       | Some d when elapsed_ms > d +. 100. -> incr t "serve.deadline_misses"
       | _ -> ());
      let reply =
        match result with
        | Solved outcome ->
          let solved =
            solved_of_outcome job ~queue_wait_ms ~elapsed_ms outcome
          in
          (* [Cache.add] replaces an existing entry in place, so a
             duplicate design solved twice in one batch is harmless. *)
          if job.level = 0 && not solved.Protocol.degraded then
            Cache.add t.cache
              (entry_of_outcome job ~signature:solved.Protocol.signature
                 outcome);
          incr t "serve.solved";
          if solved.Protocol.degraded then incr t "serve.degraded";
          Protocol.render_ok solved
        | Unsolvable msg ->
          incr t "serve.unsolvable";
          Protocol.render_err msg
        | Crashed msg ->
          incr t "serve.errors";
          Protocol.render_err ("job failed: " ^ msg)
      in
      deliver job reply;
      Admission.finish t.admission ~client:job.client)
    results

let rec dispatcher_loop t =
  match Admission.take t.admission ~max:(2 * t.config.jobs) with
  | [] -> ()
  | batch ->
    dispatch_batch t batch;
    dispatcher_loop t

let create config =
  if config.jobs < 1 then Error "serve: jobs must be at least 1"
  else if
    not
      (Array.for_all (fun th -> Float.is_finite th) config.shed_thresholds_ms)
  then Error "serve: shed thresholds must be finite"
  else
    match
      Cache.create ~capacity:config.cache_capacity ?dir:config.cache_dir
        ~shared:config.cache_shared ?chaos:config.chaos
        ~telemetry:config.telemetry ()
    with
    | Error e -> Error ("serve: cache: " ^ e)
    | Ok cache ->
      let tele = config.telemetry in
      let t =
        { config;
          fingerprint = config_fingerprint config;
          cache;
          admission =
            Admission.create ~capacity:config.queue_capacity
              ~client_cap:config.client_cap ~quotas:config.quotas ();
          pool = Par.Pool.create ~telemetry:tele ~jobs:config.jobs ();
          started = config.clock ();
          stop = Atomic.make false;
          ewma_bits = Atomic.make (Int64.bits_of_float 0.);
          dispatcher = None;
          drained = Atomic.make false;
          queue_wait_h = Prtelemetry.live_histogram tele "serve.queue_wait_ms";
          latency_h = Prtelemetry.live_histogram tele "serve.latency_ms";
          solve_h = Prtelemetry.live_histogram tele "serve.solve_ms" }
      in
      t.dispatcher <- Some (Thread.create (fun () -> dispatcher_loop t) ());
      Ok t

let draining t = Atomic.get t.stop
let request_shutdown t = Atomic.set t.stop true
let cache t = t.cache
let telemetry t = t.config.telemetry
let chaos t = t.config.chaos
let requests t = Prtelemetry.counter_value t.config.telemetry "serve.requests"
let client_quota t client = Admission.quota t.admission ~client

(* ------------------------------------------------------------- requests *)

let reject t r =
  incr t ("serve.rejects." ^ Protocol.reject_code r);
  (* Quota refusals get a dedicated headline counter beside the
     per-code breakdown: tenants watch this one. *)
  (match r with
   | Protocol.Quota _ -> incr t "serve.quota_rejects"
   | _ -> ());
  Protocol.render_reject r

let load_named t spec =
  match Prdesign.Design_library.find spec with
  | Some design -> Ok design
  | None ->
    if not (Sys.file_exists spec) then
      Error (reject t (Protocol.Not_found (spec ^ ": no such design or file")))
    else begin
      try Ok (Prdesign.Design_xml.load_file ~limits:t.config.limits spec) with
      | Prdesign.Design_xml.Malformed m ->
        Error (reject t (Protocol.Bad_request (spec ^ ": " ^ m)))
      | Xmllite.Xml.Parse_error { line; column; message } ->
        Error
          (reject t
             (Protocol.Bad_request
                (Printf.sprintf "%s:%d:%d: %s" spec line column message)))
      | (Prdesign.Design_xml.Too_large _ | Xmllite.Xml.Limit_exceeded _) as e
        ->
        Error
          (reject t
             (Protocol.Too_large
                (Option.value ~default:"input guard violation"
                   (Prdesign.Design_xml.limit_message e))))
      | Sys_error m -> Error (reject t (Protocol.Not_found m))
    end

let load_inline t xml =
  try Ok (Prdesign.Design_xml.load_string ~limits:t.config.limits xml) with
  | Prdesign.Design_xml.Malformed m ->
    Error (reject t (Protocol.Bad_request ("inline design: " ^ m)))
  | Xmllite.Xml.Parse_error { line; column; message } ->
    Error
      (reject t
         (Protocol.Bad_request
            (Printf.sprintf "inline design:%d:%d: %s" line column message)))
  | (Prdesign.Design_xml.Too_large _ | Xmllite.Xml.Limit_exceeded _) as e ->
    Error
      (reject t
         (Protocol.Too_large
            (Option.value ~default:"input guard violation"
               (Prdesign.Design_xml.limit_message e))))

let solved_of_entry ~level ~elapsed_ms (e : Cache.entry) =
  { Protocol.design = e.Cache.design;
    regions = e.Cache.regions;
    total_frames = e.Cache.total_frames;
    worst_frames = e.Cache.worst_frames;
    device = e.Cache.device;
    cached = true;
    degraded = false;
    reason = Budget.reason_name Budget.Completed;
    rung = None;
    shed_level = level;
    queue_wait_ms = 0.;
    elapsed_ms;
    signature = e.Cache.signature }

let handle_solve t ~client spec =
  let started = t.config.clock () in
  match
    (match spec with
     | Protocol.Named n -> load_named t n
     | Protocol.Inline xml -> load_inline t xml)
  with
  | Error reply -> reply
  | Ok design ->
    let design_text = Prdesign.Design_xml.to_string design in
    let key = Cache.key ~config:t.fingerprint ~design_text in
    let level = shed_level t in
    (match Cache.find t.cache ~key with
     | Some entry ->
       let elapsed_ms = (t.config.clock () -. started) *. 1000. in
       Prtelemetry.Histogram.observe t.latency_h elapsed_ms;
       Protocol.render_ok (solved_of_entry ~level ~elapsed_ms entry)
     | None ->
       incr t ("serve.shed.level" ^ string_of_int level);
       let job =
         { client;
           design;
           key;
           level;
           submitted = started;
           cell =
             { cell_mutex = Mutex.create ();
               cell_cond = Condition.create ();
               reply = None } }
       in
       (match Admission.submit t.admission ~client job with
        | Error (Admission.Queue_full { depth; capacity }) ->
          reject t (Protocol.Queue_full { depth; capacity })
        | Error (Admission.Client_cap { client; in_flight; cap }) ->
          reject t (Protocol.Client_cap { client; in_flight; cap })
        | Error (Admission.Quota { client; in_flight; quota }) ->
          reject t (Protocol.Quota { client; in_flight; quota })
        | Error Admission.Closed -> reject t Protocol.Draining
        | Ok () -> await job))

(* ---------------------------------------------------------------- status *)

let status_json t =
  let tele = t.config.telemetry in
  let counter = Prtelemetry.counter_value tele in
  let uptime = Float.max 1e-9 (t.config.clock () -. t.started) in
  let requests = counter "serve.requests" in
  let hits = Cache.hits t.cache and misses = Cache.misses t.cache in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Par.Pool.profile t.pool;
  let utilisation =
    Option.value ~default:0. (Prtelemetry.gauge_value tele "par.utilisation")
  in
  let q p = Prtelemetry.Histogram.quantile t.latency_h p in
  Printf.sprintf
    "{\"uptime_s\":%.3f,\"requests\":%d,\"solved\":%d,\"errors\":%d,\
     \"unsolvable\":%d,\"degraded\":%d,\"qps\":%.3f,\
     \"cache\":{\"hits\":%d,\"misses\":%d,\"hit_rate\":%.4f,\"entries\":%d,\
     \"shared\":%b,\"shared_loads\":%d},\
     \"queue\":{\"depth\":%d,\"capacity\":%d,\"client_cap\":%d},\
     \"shed\":{\"level\":%d,\"ewma_wait_ms\":%.3f},\
     \"rejects\":{\"queue_full\":%d,\"client_cap\":%d,\"quota\":%d,\
     \"draining\":%d,\"bad_request\":%d,\"too_large\":%d,\"not_found\":%d,\
     \"idle_timeout\":%d},\
     \"latency_ms\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},\
     \"deadline_misses\":%d,\"par_utilisation\":%.4f,\"draining\":%b}"
    uptime requests (counter "serve.solved") (counter "serve.errors")
    (counter "serve.unsolvable") (counter "serve.degraded")
    (float_of_int requests /. uptime)
    hits misses hit_rate (Cache.length t.cache)
    (Cache.shared t.cache) (Cache.shared_loads t.cache)
    (Admission.depth t.admission)
    (Admission.capacity t.admission)
    (Admission.client_cap t.admission)
    (shed_level t) (ewma t)
    (counter "serve.rejects.queue-full")
    (counter "serve.rejects.client-cap")
    (counter "serve.rejects.quota")
    (counter "serve.rejects.draining")
    (counter "serve.rejects.bad-request")
    (counter "serve.rejects.too-large")
    (counter "serve.rejects.not-found")
    (counter "serve.rejects.idle-timeout")
    (q 0.5) (q 0.9) (q 0.99)
    (counter "serve.deadline_misses")
    utilisation (draining t)

let handle_line t line =
  incr t "serve.requests";
  match Protocol.parse line with
  | Error msg -> reject t (Protocol.Bad_request msg)
  | Ok Protocol.Status -> Protocol.render_status (status_json t)
  | Ok Protocol.Health -> Protocol.render_health ~ok:(not (draining t))
  | Ok Protocol.Shutdown ->
    request_shutdown t;
    Protocol.render_bye
  | Ok (Protocol.Solve { client; spec }) ->
    if draining t then reject t Protocol.Draining
    else handle_solve t ~client spec

let drain t =
  request_shutdown t;
  if not (Atomic.exchange t.drained true) then begin
    Admission.close t.admission;
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    Par.Pool.profile t.pool;
    Par.Pool.shutdown t.pool
  end
