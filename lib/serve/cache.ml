module Atomic_io = Prguard.Atomic_io

type entry = {
  key : string;
  design : string;
  scheme_xml : string;
  regions : int;
  total_frames : int;
  worst_frames : int;
  device : string option;
  signature : string;
}

let key ~config ~design_text = config ^ "\n" ^ design_text

(* -------------------------------------------------- persisted format *)

(* Header lines are [name value]; the two byte-counted payloads come
   last so arbitrary key/scheme bytes (embedded newlines included)
   decode unambiguously. *)
let encode_entry e =
  let buf = Buffer.create (String.length e.key + String.length e.scheme_xml + 256) in
  Buffer.add_string buf "prserve-cache 1\n";
  Buffer.add_string buf (Printf.sprintf "design %s\n" e.design);
  Buffer.add_string buf (Printf.sprintf "regions %d\n" e.regions);
  Buffer.add_string buf (Printf.sprintf "total_frames %d\n" e.total_frames);
  Buffer.add_string buf (Printf.sprintf "worst_frames %d\n" e.worst_frames);
  Buffer.add_string buf
    (Printf.sprintf "device %s\n"
       (match e.device with None -> "-" | Some d -> d));
  Buffer.add_string buf (Printf.sprintf "signature %s\n" e.signature);
  Buffer.add_string buf (Printf.sprintf "key_bytes %d\n" (String.length e.key));
  Buffer.add_string buf e.key;
  Buffer.add_string buf
    (Printf.sprintf "\nscheme_bytes %d\n" (String.length e.scheme_xml));
  Buffer.add_string buf e.scheme_xml;
  Buffer.contents buf

let decode_entry s =
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "cache entry: %s" msg) in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> None
    | Some i ->
      let l = String.sub s !pos (i - !pos) in
      pos := i + 1;
      Some l
  in
  let field name =
    match line () with
    | Some l
      when String.length l > String.length name
           && String.sub l 0 (String.length name) = name
           && l.[String.length name] = ' ' ->
      Some
        (String.sub l
           (String.length name + 1)
           (String.length l - String.length name - 1))
    | _ -> None
  in
  let int_field name =
    match field name with
    | None -> None
    | Some v -> int_of_string_opt v
  in
  let take n =
    if n < 0 || !pos + n > String.length s then None
    else begin
      let v = String.sub s !pos n in
      pos := !pos + n;
      Some v
    end
  in
  match line () with
  | Some "prserve-cache 1" -> (
    match
      ( field "design",
        int_field "regions",
        int_field "total_frames",
        int_field "worst_frames",
        field "device",
        field "signature",
        int_field "key_bytes" )
    with
    | ( Some design,
        Some regions,
        Some total_frames,
        Some worst_frames,
        Some device,
        Some signature,
        Some key_bytes ) -> (
      match take key_bytes with
      | None -> fail "truncated key"
      | Some key -> (
        match (line (), int_field "scheme_bytes") with
        | Some "", Some scheme_bytes -> (
          match take scheme_bytes with
          | None -> fail "truncated scheme"
          | Some scheme_xml ->
            if !pos <> String.length s then fail "trailing bytes"
            else
              Ok
                { key;
                  design;
                  scheme_xml;
                  regions;
                  total_frames;
                  worst_frames;
                  device = (if device = "-" then None else Some device);
                  signature })
        | _ -> fail "malformed scheme header"))
    | _ -> fail "malformed header")
  | _ -> fail "bad magic"

(* ------------------------------------------------------------- the cache *)

type t = {
  capacity : int;
  dir : string option;
  shared : bool;
  lock_ttl_s : float;
  chaos : Chaos.t option;
  telemetry : Prtelemetry.t;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;  (* keyed by full canonical key *)
  mutable order : string list;  (* oldest first; refreshed on hit *)
  mutable hits : int;
  mutable misses : int;
  mutable shared_loads : int;
  recovery : Atomic_io.recovery option;
}

let checksum = Bitgen.Crc32.hex_digest

let entry_filename key =
  (* CRC32 collides at the 2^16 birthday bound, which would let one
     entry silently overwrite another on disk; a 128-bit digest makes
     distinct keys share a path only with negligible probability.  The
     CRC32 sidecar still guards content integrity. *)
  Printf.sprintf "%s-%d.entry" (Digest.to_hex (Digest.string key))
    (String.length key)

let entry_path dir key = Filename.concat dir (entry_filename key)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Serialise multi-file mutations (persist + eviction, warm scans)
   against peer replicas sharing the directory. Single-process caches
   skip the lock entirely; a lock timeout degrades to running unlocked
   rather than stalling the daemon — worst case two replicas race an
   eviction, and rename-atomic writes keep every outcome readable. *)
let with_dir_lock t f =
  match t.dir with
  | Some dir when t.shared -> (
    match
      Lockfile.with_lock ~ttl_s:t.lock_ttl_s ~timeout_s:t.lock_ttl_s ~dir f
    with
    | Ok v -> v
    | Error _ ->
      Prtelemetry.incr t.telemetry "serve.cache.lock_timeouts";
      f ())
  | Some _ | None -> f ()

let extract key order =
  let rec scan acc = function
    | [] -> (false, order)
    | k :: rest when k = key -> (true, List.rev_append acc rest)
    | k :: rest -> scan (k :: acc) rest
  in
  scan [] order

let remove_files t key =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir key in
    (try Sys.remove path with Sys_error _ -> ());
    (try Sys.remove (Atomic_io.sidecar path) with Sys_error _ -> ())

(* Callers hold the in-memory lock, and the directory lock when shared. *)
let insert t e =
  (match Hashtbl.find_opt t.table e.key with
   | Some _ ->
     let _, rest = extract e.key t.order in
     t.order <- rest
   | None -> ());
  Hashtbl.replace t.table e.key e;
  t.order <- t.order @ [ e.key ];
  while Hashtbl.length t.table > t.capacity do
    match t.order with
    | [] -> Hashtbl.reset t.table
    | victim :: rest ->
      t.order <- rest;
      Hashtbl.remove t.table victim;
      remove_files t victim;
      Prtelemetry.incr t.telemetry "serve.cache.evictions"
  done

let quarantine_undecodable dir path =
  (* Mirror [Atomic_io.recover]'s quarantine for entries whose bytes are
     intact (CRC matched) but whose contents do not decode — e.g. a
     format version skew. Never trust, never delete evidence. *)
  let qdir = Filename.concat dir ".quarantine" in
  (match Atomic_io.mkdir_p qdir with Ok () | Error _ -> ());
  let dest = Filename.concat qdir (Filename.basename path) in
  (try Sys.rename path dest with Sys_error _ -> ());
  let side = Atomic_io.sidecar path in
  if Sys.file_exists side then
    try Sys.rename side (Filename.concat qdir (Filename.basename side))
    with Sys_error _ -> ()

let warm t dir =
  let files =
    match Sys.readdir dir with
    | files ->
      Array.sort compare files;
      files
    | exception Sys_error _ -> [||]
  in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Filename.check_suffix name ".entry" && not (Sys.is_directory path)
      then
        match Atomic_io.read path with
        | Error _ -> ()
        | Ok bytes -> (
          match decode_entry bytes with
          | Ok e when entry_filename e.key = name -> insert t e
          | Ok _ | Error _ ->
            quarantine_undecodable dir path;
            Prtelemetry.incr t.telemetry "serve.cache.quarantined"))
    files

let create ?(capacity = 256) ?dir ?(shared = false) ?(lock_ttl_s = 10.)
    ?chaos ?(telemetry = Prtelemetry.null) () =
  if capacity < 1 then Error "cache capacity must be at least 1"
  else if shared && dir = None then
    Error "a shared cache requires a directory"
  else
    let make recovery =
      { capacity;
        dir;
        shared;
        lock_ttl_s;
        chaos;
        telemetry;
        mutex = Mutex.create ();
        table = Hashtbl.create (min capacity 1024);
        order = [];
        hits = 0;
        misses = 0;
        shared_loads = 0;
        recovery }
    in
    match dir with
    | None -> Ok (make None)
    | Some dir -> (
      match Atomic_io.mkdir_p dir with
      | Error e -> Error e
      | Ok () ->
        (* Recovery + warm scan the whole directory; under sharing they
           must not observe a peer between its data and sidecar renames,
           so they run under the directory lock. *)
        let scan () =
          match Atomic_io.recover ~checksum ~dir () with
          | Error e -> Error e
          | Ok recovery ->
            let t = make (Some recovery) in
            Prtelemetry.incr t.telemetry "serve.cache.quarantined"
              ~by:(List.length recovery.Atomic_io.quarantined);
            warm t dir;
            Ok t
        in
        if shared then
          match
            Lockfile.with_lock ~ttl_s:lock_ttl_s ~timeout_s:lock_ttl_s ~dir
              scan
          with
          | Ok r -> r
          | Error e -> Error e
        else scan ())

let recovery t = t.recovery
let shared t = t.shared

(* Lock-free read of a peer-written entry. Entry files land by atomic
   rename so a read sees a complete old or new file; the CRC sidecar is
   checked when present (a peer killed between its data and sidecar
   renames leaves a valid entry with a stale/absent sidecar — the
   decode + key check below still guards correctness). Any mismatch is
   simply a miss: quarantining is recovery's job, not the hot path's. *)
let load_peer_entry dir ~key =
  let path = entry_path dir key in
  match Atomic_io.read path with
  | Error _ -> None
  | Ok bytes -> (
    let sidecar_ok =
      match Atomic_io.read (Atomic_io.sidecar path) with
      | Error _ -> true  (* no sidecar yet: trust the decode *)
      | Ok digest -> String.trim digest = checksum bytes
    in
    if not sidecar_ok then None
    else
      match decode_entry bytes with
      | Ok e when e.key = key -> Some e
      | Ok _ | Error _ -> None)

let find t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        Prtelemetry.incr t.telemetry "serve.cache.hits";
        let _, rest = extract key t.order in
        t.order <- rest @ [ key ];
        Some e
      | None -> (
        let peer =
          match t.dir with
          | Some dir when t.shared -> load_peer_entry dir ~key
          | Some _ | None -> None
        in
        match peer with
        | Some e ->
          (* A peer replica solved this since our warm scan: adopt it.
             Counted as a hit (the caller skipped a solve) and as a
             shared load; insertion may evict, so take the dir lock. *)
          with_dir_lock t (fun () -> insert t e);
          t.hits <- t.hits + 1;
          t.shared_loads <- t.shared_loads + 1;
          Prtelemetry.incr t.telemetry "serve.cache.hits";
          Prtelemetry.incr t.telemetry "serve.cache.shared_loads";
          Some e
        | None ->
          t.misses <- t.misses + 1;
          Prtelemetry.incr t.telemetry "serve.cache.misses";
          None))

(* Chaos tear: the state a non-atomic writer would leave after a
   power cut — sidecar recorded for the full content, data truncated,
   plus a stale temp file. Bypasses [Atomic_io] on purpose; recovery
   on the next replica start must quarantine it. *)
let torn_write t dir e =
  let path = entry_path dir e.key in
  let data = encode_entry e in
  let keep = max 1 (String.length data / 2) in
  let raw p content =
    try
      let oc = open_out_bin p in
      output_string oc content;
      close_out oc
    with Sys_error _ -> ()
  in
  raw (Atomic_io.sidecar path) (checksum data ^ "\n");
  raw path (String.sub data 0 keep);
  raw (Filename.concat dir ".prguard.chaos-remnant.tmp") "torn";
  Prtelemetry.incr t.telemetry "serve.cache.chaos_torn"

let add t e =
  with_lock t (fun () ->
      with_dir_lock t (fun () ->
          insert t e;
          match t.dir with
          | None -> ()
          | Some dir -> (
            let action =
              match t.chaos with
              | None -> Chaos.Clean_write
              | Some c -> Chaos.at_cache_write c
            in
            match action with
            | Chaos.Torn_write -> torn_write t dir e
            | Chaos.Torn_write_then_kill ->
              torn_write t dir e;
              (* A SIGKILL'd replica runs no cleanup — and crucially
                 releases no lockfile, which is what the stale-lock
                 takeover exists for. *)
              Unix._exit Chaos.kill_exit_code
            | Chaos.Clean_write -> (
              match
                Atomic_io.write ~checksum ~path:(entry_path dir e.key)
                  (encode_entry e)
              with
              | Ok () -> ()
              | Error _ ->
                (* Persistence is best-effort: the in-memory entry still
                   serves; the next clean write or restart re-solves. *)
                Prtelemetry.incr t.telemetry "serve.cache.write_errors"))))

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let shared_loads t = with_lock t (fun () -> t.shared_loads)
