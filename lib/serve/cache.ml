module Atomic_io = Prguard.Atomic_io

type entry = {
  key : string;
  design : string;
  scheme_xml : string;
  regions : int;
  total_frames : int;
  worst_frames : int;
  device : string option;
  signature : string;
}

let key ~config ~design_text = config ^ "\n" ^ design_text

(* -------------------------------------------------- persisted format *)

(* Header lines are [name value]; the two byte-counted payloads come
   last so arbitrary key/scheme bytes (embedded newlines included)
   decode unambiguously. *)
let encode_entry e =
  let buf = Buffer.create (String.length e.key + String.length e.scheme_xml + 256) in
  Buffer.add_string buf "prserve-cache 1\n";
  Buffer.add_string buf (Printf.sprintf "design %s\n" e.design);
  Buffer.add_string buf (Printf.sprintf "regions %d\n" e.regions);
  Buffer.add_string buf (Printf.sprintf "total_frames %d\n" e.total_frames);
  Buffer.add_string buf (Printf.sprintf "worst_frames %d\n" e.worst_frames);
  Buffer.add_string buf
    (Printf.sprintf "device %s\n"
       (match e.device with None -> "-" | Some d -> d));
  Buffer.add_string buf (Printf.sprintf "signature %s\n" e.signature);
  Buffer.add_string buf (Printf.sprintf "key_bytes %d\n" (String.length e.key));
  Buffer.add_string buf e.key;
  Buffer.add_string buf
    (Printf.sprintf "\nscheme_bytes %d\n" (String.length e.scheme_xml));
  Buffer.add_string buf e.scheme_xml;
  Buffer.contents buf

let decode_entry s =
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "cache entry: %s" msg) in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> None
    | Some i ->
      let l = String.sub s !pos (i - !pos) in
      pos := i + 1;
      Some l
  in
  let field name =
    match line () with
    | Some l
      when String.length l > String.length name
           && String.sub l 0 (String.length name) = name
           && l.[String.length name] = ' ' ->
      Some
        (String.sub l
           (String.length name + 1)
           (String.length l - String.length name - 1))
    | _ -> None
  in
  let int_field name =
    match field name with
    | None -> None
    | Some v -> int_of_string_opt v
  in
  let take n =
    if n < 0 || !pos + n > String.length s then None
    else begin
      let v = String.sub s !pos n in
      pos := !pos + n;
      Some v
    end
  in
  match line () with
  | Some "prserve-cache 1" -> (
    match
      ( field "design",
        int_field "regions",
        int_field "total_frames",
        int_field "worst_frames",
        field "device",
        field "signature",
        int_field "key_bytes" )
    with
    | ( Some design,
        Some regions,
        Some total_frames,
        Some worst_frames,
        Some device,
        Some signature,
        Some key_bytes ) -> (
      match take key_bytes with
      | None -> fail "truncated key"
      | Some key -> (
        match (line (), int_field "scheme_bytes") with
        | Some "", Some scheme_bytes -> (
          match take scheme_bytes with
          | None -> fail "truncated scheme"
          | Some scheme_xml ->
            if !pos <> String.length s then fail "trailing bytes"
            else
              Ok
                { key;
                  design;
                  scheme_xml;
                  regions;
                  total_frames;
                  worst_frames;
                  device = (if device = "-" then None else Some device);
                  signature })
        | _ -> fail "malformed scheme header"))
    | _ -> fail "malformed header")
  | _ -> fail "bad magic"

(* ------------------------------------------------------------- the cache *)

type t = {
  capacity : int;
  dir : string option;
  telemetry : Prtelemetry.t;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;  (* keyed by full canonical key *)
  mutable order : string list;  (* oldest first; refreshed on hit *)
  mutable hits : int;
  mutable misses : int;
  recovery : Atomic_io.recovery option;
}

let checksum = Bitgen.Crc32.hex_digest

let entry_filename key =
  (* CRC32 collides at the 2^16 birthday bound, which would let one
     entry silently overwrite another on disk; a 128-bit digest makes
     distinct keys share a path only with negligible probability.  The
     CRC32 sidecar still guards content integrity. *)
  Printf.sprintf "%s-%d.entry" (Digest.to_hex (Digest.string key))
    (String.length key)

let entry_path dir key = Filename.concat dir (entry_filename key)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let extract key order =
  let rec scan acc = function
    | [] -> (false, order)
    | k :: rest when k = key -> (true, List.rev_append acc rest)
    | k :: rest -> scan (k :: acc) rest
  in
  scan [] order

let remove_files t key =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir key in
    (try Sys.remove path with Sys_error _ -> ());
    (try Sys.remove (Atomic_io.sidecar path) with Sys_error _ -> ())

(* Callers hold the lock. *)
let insert t e =
  (match Hashtbl.find_opt t.table e.key with
   | Some _ ->
     let _, rest = extract e.key t.order in
     t.order <- rest
   | None -> ());
  Hashtbl.replace t.table e.key e;
  t.order <- t.order @ [ e.key ];
  while Hashtbl.length t.table > t.capacity do
    match t.order with
    | [] -> Hashtbl.reset t.table
    | victim :: rest ->
      t.order <- rest;
      Hashtbl.remove t.table victim;
      remove_files t victim;
      Prtelemetry.incr t.telemetry "serve.cache.evictions"
  done

let quarantine_undecodable dir path =
  (* Mirror [Atomic_io.recover]'s quarantine for entries whose bytes are
     intact (CRC matched) but whose contents do not decode — e.g. a
     format version skew. Never trust, never delete evidence. *)
  let qdir = Filename.concat dir ".quarantine" in
  (match Atomic_io.mkdir_p qdir with Ok () | Error _ -> ());
  let dest = Filename.concat qdir (Filename.basename path) in
  (try Sys.rename path dest with Sys_error _ -> ());
  let side = Atomic_io.sidecar path in
  if Sys.file_exists side then
    try Sys.rename side (Filename.concat qdir (Filename.basename side))
    with Sys_error _ -> ()

let warm t dir =
  let files =
    match Sys.readdir dir with
    | files ->
      Array.sort compare files;
      files
    | exception Sys_error _ -> [||]
  in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Filename.check_suffix name ".entry" && not (Sys.is_directory path)
      then
        match Atomic_io.read path with
        | Error _ -> ()
        | Ok bytes -> (
          match decode_entry bytes with
          | Ok e when entry_filename e.key = name -> insert t e
          | Ok _ | Error _ ->
            quarantine_undecodable dir path;
            Prtelemetry.incr t.telemetry "serve.cache.quarantined"))
    files

let create ?(capacity = 256) ?dir ?(telemetry = Prtelemetry.null) () =
  if capacity < 1 then Error "cache capacity must be at least 1"
  else
    let make recovery =
      { capacity;
        dir;
        telemetry;
        mutex = Mutex.create ();
        table = Hashtbl.create (min capacity 1024);
        order = [];
        hits = 0;
        misses = 0;
        recovery }
    in
    match dir with
    | None -> Ok (make None)
    | Some dir -> (
      match Atomic_io.mkdir_p dir with
      | Error e -> Error e
      | Ok () -> (
        match Atomic_io.recover ~checksum ~dir () with
        | Error e -> Error e
        | Ok recovery ->
          let t = make (Some recovery) in
          Prtelemetry.incr t.telemetry "serve.cache.quarantined"
            ~by:(List.length recovery.Atomic_io.quarantined);
          warm t dir;
          Ok t))

let recovery t = t.recovery

let find t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        Prtelemetry.incr t.telemetry "serve.cache.hits";
        let _, rest = extract key t.order in
        t.order <- rest @ [ key ];
        Some e
      | None ->
        t.misses <- t.misses + 1;
        Prtelemetry.incr t.telemetry "serve.cache.misses";
        None)

let add t e =
  with_lock t (fun () ->
      insert t e;
      match t.dir with
      | None -> ()
      | Some dir -> (
        match
          Atomic_io.write ~checksum ~path:(entry_path dir e.key)
            (encode_entry e)
        with
        | Ok () -> ()
        | Error _ ->
          (* Persistence is best-effort: the in-memory entry still
             serves; the next clean write or restart re-solves. *)
          Prtelemetry.incr t.telemetry "serve.cache.write_errors"))

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
