(** Prserve — the crash-safe partitioning daemon.

    {!Reader} bounds untrusted line input (shared with [prpart batch]);
    {!Protocol} is the line grammar; {!Cache} the content-addressed,
    crash-safe result store; {!Admission} the bounded fair queue;
    {!Server} the transport-independent daemon core; {!Endpoint} the
    Unix/TCP socket front-end.  See DESIGN.md §11.

    The fleet layer (DESIGN.md §14): {!Lockfile} coordinates replicas
    sharing one cache directory; {!Client} is the fault-tolerant
    caller (retry/backoff, circuit breakers, failover); {!Supervisor}
    spawns and restarts replica processes; {!Chaos} actuates the
    seeded [Prfault.Service] fault model inside a replica. *)

module Reader = Reader
module Protocol = Protocol
module Cache = Cache
module Admission = Admission
module Server = Server
module Endpoint = Endpoint
module Lockfile = Lockfile
module Chaos = Chaos
module Client = Client
module Supervisor = Supervisor
