(** Prserve — the crash-safe partitioning daemon.

    {!Reader} bounds untrusted line input (shared with [prpart batch]);
    {!Protocol} is the line grammar; {!Cache} the content-addressed,
    crash-safe result store; {!Admission} the bounded fair queue;
    {!Server} the transport-independent daemon core; {!Endpoint} the
    Unix/TCP socket front-end.  See DESIGN.md §11. *)

module Reader = Reader
module Protocol = Protocol
module Cache = Cache
module Admission = Admission
module Server = Server
module Endpoint = Endpoint
