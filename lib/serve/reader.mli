(** Bounded, buffered line reading for untrusted streams.

    Both the serve protocol and the [prpart batch] manifest walk
    line-delimited input that may be adversarial: a multi-gigabyte line,
    or an accidental binary, must degrade into a typed error after a
    bounded amount of buffering — never into an OOM.  The reader pulls
    from an abstract refill function, so the same code serves channels
    (manifests) and socket file descriptors (the daemon protocol).

    Lines are terminated by ['\n']; a trailing ['\r'] is stripped so
    CRLF clients work.  A final line without a terminator is returned at
    EOF.  A NUL byte anywhere classifies the stream as binary. *)

type error =
  | Line_too_long of { line : int; limit : int }
      (** Line [line] (1-based) exceeded [limit] bytes; reading stopped
          without buffering the rest. *)
  | Binary_input of { line : int }  (** NUL byte on line [line]. *)
  | Idle_timeout of { line : int }
      (** The peer went silent for longer than the idle deadline while
          line [line] was awaited (slowloris defence; any buffered
          partial line is discarded). *)

exception Timeout
(** Raised by a refill function to signal an idle deadline; {!next}
    converts it into a poisoning {!Idle_timeout} error. *)

val error_message : error -> string

type t

val of_refill : ?max_line_bytes:int -> (bytes -> int -> int) -> t
(** [of_refill refill] reads via [refill buf len], which stores at most
    [len] bytes at offset 0 of [buf] and returns the count (0 = EOF).
    [max_line_bytes] defaults to 4 MiB (a whole inline design XML must
    fit on one protocol line; [Design_xml.default_limits] caps parsed
    XML at 16 MiB separately). *)

val of_channel : ?max_line_bytes:int -> in_channel -> t

val of_fd : ?max_line_bytes:int -> ?idle_timeout_s:float -> Unix.file_descr -> t
(** With [idle_timeout_s] the socket's receive timeout is set
    ([SO_RCVTIMEO]) and a blocking read that expires poisons the
    reader with {!Idle_timeout} — a client that connects and goes
    silent cannot pin a connection thread forever. *)

val next : t -> (string option, error) result
(** The next line ([Ok None] at EOF).  After an [Error] the reader is
    poisoned: every subsequent call returns the same error — a stream
    that overflowed or went binary has lost line framing. *)

val line_number : t -> int
(** 1-based number of the line the last {!next} returned (0 before the
    first call). *)

val fold_lines :
  t -> init:'a -> (line:int -> 'a -> string -> 'a) -> ('a, error) result
(** Drive {!next} to EOF, threading an accumulator. *)
