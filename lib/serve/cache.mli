(** Content-addressed result cache: canonical design text → solved
    scheme.

    The key is the full canonical solve identity — a configuration
    fingerprint (target, objective, ladder, …) plus the canonical
    [Design_xml.to_string] of the design — so a hit is only ever
    returned for a byte-identical problem.  Entries store the canonical
    [Scheme_xml] text plus the headline numbers, which is everything a
    reply needs; the scheme can be re-validated against the design by
    [Scheme_xml.of_string].

    In memory the cache is LRU-bounded (in the style of
    [Runtime.Fetch]); on disk each entry is written through
    [Prguard.Atomic_io] with a CRC32 sidecar, so a [kill -9] mid-write
    can never leave a torn entry.  {!create} replays
    [Atomic_io.recover] over the directory — quarantining stale
    temporaries, corrupt files and orphan sidecars — then warms the LRU
    from the surviving entries (an entry that fails to decode is
    quarantined too, never trusted).

    {b Shared mode} ([~shared:true]): several replica processes point
    at one directory. Multi-file mutations — the recovery + warm scan,
    and persist + LRU eviction inside {!add} — serialise through
    {!Lockfile} (pid/heartbeat-stamped, stale locks taken over), while
    reads stay lock-free: entry files land by atomic rename and carry a
    CRC sidecar, so a miss in memory falls through to a verified
    {e reload} of whatever a peer has written ([serve.cache.shared_loads]).
    One replica's solves thereby warm the others, and a reloaded reply
    is byte-identical to the peer's fresh solve.

    All operations are safe to call from concurrent client threads. *)

type entry = {
  key : string;  (** Full canonical key (collision-checked on hit). *)
  design : string;
  scheme_xml : string;
  regions : int;
  total_frames : int;
  worst_frames : int;
  device : string option;
  signature : string;  (** CRC32 of [Memo.scheme_signature]. *)
}

val key : config:string -> design_text:string -> string
(** [config] is the server's solve-configuration fingerprint;
    [design_text] the canonical design XML. *)

val encode_entry : entry -> string
(** The persisted format: a length-prefixed header so decoding is
    unambiguous for arbitrary key/scheme bytes.  Exposed for the
    crash-safety tests. *)

val decode_entry : string -> (entry, string) result

type t

val create :
  ?capacity:int ->
  ?dir:string ->
  ?shared:bool ->
  ?lock_ttl_s:float ->
  ?chaos:Chaos.t ->
  ?telemetry:Prtelemetry.t ->
  unit ->
  (t, string) result
(** [capacity] (default 256) bounds the in-memory LRU; with [dir] the
    cache is persistent ({!create} runs recovery and warming there).
    [shared] (default false) enables cross-process coordination on
    [dir] (required); [lock_ttl_s] (default 10) is both the lock
    heartbeat TTL and the acquisition timeout. [chaos] injects torn
    writes / mid-write kills into the persist path (chaos harness
    only). Counters [serve.cache.hits] / [serve.cache.misses] /
    [serve.cache.evictions] / [serve.cache.quarantined] /
    [serve.cache.shared_loads] / [serve.cache.lock_timeouts] go to
    [telemetry]. *)

val recovery : t -> Prguard.Atomic_io.recovery option
(** The startup recovery report ([None] for a memory-only cache). *)

val find : t -> key:string -> entry option
(** LRU-refreshing lookup.  A filename-level collision whose stored key
    differs is a miss, never a wrong answer. *)

val add : t -> entry -> unit
(** Insert (write-through when persistent; eviction removes the entry
    file and its sidecar).  A persistence failure degrades to
    memory-only for that entry — the daemon must keep serving. *)

val length : t -> int
val hits : t -> int
val misses : t -> int

val shared : t -> bool

val shared_loads : t -> int
(** Misses answered by reloading a peer replica's on-disk entry. *)
