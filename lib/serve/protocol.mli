(** The line-delimited Prserve request/reply grammar.

    Requests (one per line, verbs case-insensitive):
    {v
    SOLVE [client=<id>] <design-name-or-xml-path>
    SOLVE [client=<id>] inline:<design-xml-on-one-line>
    STATUS
    HEALTH
    SHUTDOWN
    v}

    Replies are one line each, a tag followed by a JSON object (or a
    bare token for [HEALTH]/[BYE]):
    {v
    OK {"design":...,"total_frames":...,"cached":...,"degraded":...}
    REJECT {"reason":"queue-full",...}
    ERR {"error":...}
    STATUS {...}
    HEALTH ok
    BYE
    v}

    Parsing here is purely syntactic; size/shape ceilings on the design
    itself are enforced by [Design_xml.limits] when the server loads
    it. *)

type spec =
  | Named of string
      (** A design-library name or an XML file path, resolved
          server-side. *)
  | Inline of string
      (** A whole design XML flattened onto one line ([inline:] prefix);
          XML is whitespace-insensitive so flattening is lossless. *)

type request =
  | Solve of { client : string; spec : spec }
      (** [client] defaults to ["anon"] when no [client=] token is
          given; admission fairness groups by it. *)
  | Status
  | Health
  | Shutdown

val parse : string -> (request, string) result
(** Syntax errors ([Error message]) are protocol-level: unknown verb,
    missing SOLVE argument, malformed [client=] id. *)

(** {1 Replies} *)

type reject =
  | Queue_full of { depth : int; capacity : int }
  | Client_cap of { client : string; in_flight : int; cap : int }
  | Quota of { client : string; in_flight : int; quota : int }
      (** Per-client quota from the admission weight table. *)
  | Draining  (** The daemon is shutting down. *)
  | Bad_request of string  (** Parse error, echoed back. *)
  | Too_large of string  (** [Design_xml.limits] ceiling hit. *)
  | Not_found of string  (** Unknown design name / unreadable path. *)
  | Idle_timeout  (** Connection idle past the server's read deadline. *)

val reject_code : reject -> string
(** Stable machine-readable code: ["queue-full"], ["client-cap"],
    ["quota"], ["draining"], ["bad-request"], ["too-large"],
    ["not-found"], ["idle-timeout"]. *)

type solved = {
  design : string;
  regions : int;
  total_frames : int;
  worst_frames : int;
  device : string option;
  cached : bool;  (** Served from the content-addressed cache. *)
  degraded : bool;  (** Best-so-far answer (budget expired or shed). *)
  reason : string;  (** [Budget.reason_name] of the verdict. *)
  rung : string option;  (** Ladder rung that produced the answer. *)
  shed_level : int;  (** Overload rung the job was admitted under. *)
  queue_wait_ms : float;
  elapsed_ms : float;
  signature : string;
      (** CRC32 of the canonical scheme signature — lets a client
          detect that two replies carry the same partitioning. *)
}

val render_ok : solved -> string
val render_reject : reject -> string
val render_err : string -> string
val render_status : string -> string
(** [render_status json] prefixes the precomposed JSON body. *)

val render_health : ok:bool -> string
val render_bye : string

val json_escape : string -> string
(** JSON string-literal escaping (shared with the status composer). *)

(** {1 Reply parsing}

    The client library's half of the grammar — the inverse of the
    renderers, kept in this module so both sides evolve together. *)

type reply =
  | R_solved of solved
  | R_reject of { code : string; detail : string option }
      (** [code] is a {!reject_code} string; structured fields beyond
          [detail] are not needed client-side. *)
  | R_err of string
  | R_status of string  (** The raw JSON body. *)
  | R_health of bool  (** [true] = ok, [false] = draining. *)
  | R_bye

val parse_reply : string -> (reply, string) result
(** Parse one reply line. [Error] marks a protocol violation (garbled
    or truncated reply) — the client treats it like a transport
    failure and retries elsewhere. *)
