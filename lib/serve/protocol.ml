type spec = Named of string | Inline of string

type request =
  | Solve of { client : string; spec : spec }
  | Status
  | Health
  | Shutdown

let is_space = function ' ' | '\t' -> true | _ -> false

let split_first s =
  let n = String.length s in
  let rec start i = if i < n && is_space s.[i] then start (i + 1) else i in
  let a = start 0 in
  let rec stop i = if i < n && not (is_space s.[i]) then stop (i + 1) else i in
  let b = stop a in
  if a = b then None
  else Some (String.sub s a (b - a), String.sub s b (n - b))

let strip s =
  let n = String.length s in
  let a = ref 0 and b = ref n in
  while !a < n && is_space s.[!a] do incr a done;
  while !b > !a && is_space s.[!b - 1] do decr b done;
  String.sub s !a (!b - !a)

let valid_client id =
  id <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       id

let inline_prefix = "inline:"

let parse line =
  match split_first line with
  | None -> Error "empty request"
  | Some (verb, rest) -> (
    match String.uppercase_ascii verb with
    | "STATUS" -> Ok Status
    | "HEALTH" -> Ok Health
    | "SHUTDOWN" -> Ok Shutdown
    | "SOLVE" -> (
      let client, rest =
        match split_first rest with
        | Some (tok, rest') when String.length tok > 7
                                 && String.sub tok 0 7 = "client=" ->
          (String.sub tok 7 (String.length tok - 7), rest')
        | _ -> ("anon", rest)
      in
      if not (valid_client client) then
        Error (Printf.sprintf "invalid client id %S" client)
      else
        let arg = strip rest in
        if arg = "" then Error "SOLVE needs a design name, path or inline:<xml>"
        else if String.length arg >= String.length inline_prefix
                && String.sub arg 0 (String.length inline_prefix)
                   = inline_prefix
        then
          let xml =
            String.sub arg (String.length inline_prefix)
              (String.length arg - String.length inline_prefix)
          in
          if strip xml = "" then Error "inline: carries no XML"
          else Ok (Solve { client; spec = Inline xml })
        else Ok (Solve { client; spec = Named arg }))
    | v -> Error (Printf.sprintf "unknown verb %S" v))

(* ------------------------------------------------------------- replies *)

type reject =
  | Queue_full of { depth : int; capacity : int }
  | Client_cap of { client : string; in_flight : int; cap : int }
  | Quota of { client : string; in_flight : int; quota : int }
  | Draining
  | Bad_request of string
  | Too_large of string
  | Not_found of string
  | Idle_timeout

let reject_code = function
  | Queue_full _ -> "queue-full"
  | Client_cap _ -> "client-cap"
  | Quota _ -> "quota"
  | Draining -> "draining"
  | Bad_request _ -> "bad-request"
  | Too_large _ -> "too-large"
  | Not_found _ -> "not-found"
  | Idle_timeout -> "idle-timeout"

type solved = {
  design : string;
  regions : int;
  total_frames : int;
  worst_frames : int;
  device : string option;
  cached : bool;
  degraded : bool;
  reason : string;
  rung : string option;
  shed_level : int;
  queue_wait_ms : float;
  elapsed_ms : float;
  signature : string;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jopt = function None -> "null" | Some s -> jstr s

let render_ok r =
  Printf.sprintf
    "OK {\"design\":%s,\"regions\":%d,\"total_frames\":%d,\"worst_frames\":%d,\
     \"device\":%s,\"cached\":%b,\"degraded\":%b,\"reason\":%s,\"rung\":%s,\
     \"shed_level\":%d,\"queue_wait_ms\":%.3f,\"elapsed_ms\":%.3f,\
     \"signature\":%s}"
    (jstr r.design) r.regions r.total_frames r.worst_frames (jopt r.device)
    r.cached r.degraded (jstr r.reason) (jopt r.rung) r.shed_level
    r.queue_wait_ms r.elapsed_ms (jstr r.signature)

let render_reject r =
  let detail =
    match r with
    | Queue_full { depth; capacity } ->
      Printf.sprintf ",\"depth\":%d,\"capacity\":%d" depth capacity
    | Client_cap { client; in_flight; cap } ->
      Printf.sprintf ",\"client\":%s,\"in_flight\":%d,\"cap\":%d" (jstr client)
        in_flight cap
    | Quota { client; in_flight; quota } ->
      Printf.sprintf ",\"client\":%s,\"in_flight\":%d,\"quota\":%d"
        (jstr client) in_flight quota
    | Draining | Idle_timeout -> ""
    | Bad_request m | Too_large m | Not_found m ->
      Printf.sprintf ",\"detail\":%s" (jstr m)
  in
  Printf.sprintf "REJECT {\"reason\":%s%s}" (jstr (reject_code r)) detail

let render_err msg = Printf.sprintf "ERR {\"error\":%s}" (jstr msg)
let render_status json = "STATUS " ^ json
let render_health ~ok = if ok then "HEALTH ok" else "HEALTH draining"
let render_bye = "BYE"

(* -------------------------------------------------------- reply parsing *)

(* The client library's half of the grammar: the inverse of the
   renderers above, kept beside them so the two evolve together. *)

type reply =
  | R_solved of solved
  | R_reject of { code : string; detail : string option }
  | R_err of string
  | R_status of string
  | R_health of bool
  | R_bye

module Json = Prtelemetry.Json

let parse_solved json =
  let str name = Option.bind (Json.member name json) Json.to_str in
  let num name = Option.bind (Json.member name json) Json.to_int in
  let fnum name = Option.bind (Json.member name json) Json.to_float in
  let bool name =
    match Json.member name json with
    | Some (Json.Bool b) -> Some b
    | _ -> None
  in
  match
    ( str "design", num "regions", num "total_frames", num "worst_frames",
      bool "cached", bool "degraded", str "reason", num "shed_level",
      fnum "queue_wait_ms", fnum "elapsed_ms", str "signature" )
  with
  | ( Some design, Some regions, Some total_frames, Some worst_frames,
      Some cached, Some degraded, Some reason, Some shed_level,
      Some queue_wait_ms, Some elapsed_ms, Some signature ) ->
    Ok
      { design; regions; total_frames; worst_frames;
        device = str "device";
        cached; degraded; reason;
        rung = str "rung";
        shed_level; queue_wait_ms; elapsed_ms; signature }
  | _ -> Error "OK reply is missing required fields"

let parse_reply line =
  let body tag =
    String.sub line (String.length tag) (String.length line - String.length tag)
  in
  let starts tag =
    String.length line >= String.length tag
    && String.sub line 0 (String.length tag) = tag
  in
  if line = render_bye then Ok R_bye
  else if line = "HEALTH ok" then Ok (R_health true)
  else if line = "HEALTH draining" then Ok (R_health false)
  else if starts "OK " then
    match Json.of_string (body "OK ") with
    | Error e -> Error ("OK reply: " ^ e)
    | Ok json -> (
      match parse_solved json with
      | Ok s -> Ok (R_solved s)
      | Error _ as e -> e)
  else if starts "REJECT " then
    match Json.of_string (body "REJECT ") with
    | Error e -> Error ("REJECT reply: " ^ e)
    | Ok json -> (
      match Option.bind (Json.member "reason" json) Json.to_str with
      | None -> Error "REJECT reply carries no reason"
      | Some code ->
        let detail =
          Option.bind (Json.member "detail" json) Json.to_str
        in
        Ok (R_reject { code; detail }))
  else if starts "ERR " then
    match Json.of_string (body "ERR ") with
    | Error e -> Error ("ERR reply: " ^ e)
    | Ok json -> (
      match Option.bind (Json.member "error" json) Json.to_str with
      | None -> Error "ERR reply carries no error"
      | Some msg -> Ok (R_err msg))
  else if starts "STATUS " then Ok (R_status (body "STATUS "))
  else Error (Printf.sprintf "unrecognised reply %S" (strip line))
