(** Cross-process advisory lock for a shared cache directory.

    Replicas sharing [--shared-cache DIR] serialise multi-file
    mutations (warm scans, recovery, entry persist + LRU eviction)
    through one lock file, [DIR/.prserve.lock], created with
    [O_CREAT|O_EXCL] and stamped ["pid <pid>\nstamp <wall-clock>\n"].

    Liveness: a waiter that finds the lock held checks the stamp. A
    holder that is dead (signal-0 probe raises [ESRCH]) or whose stamp
    is older than [ttl_s] is {e stale}; the waiter takes the lock over
    by atomically renaming the stale file aside and retrying creation.
    The rename is the arbitration point — of several waiters that judge
    the same lock stale, exactly one wins the rename, so a freshly
    created lock is never clobbered by a slow takeover racer.

    Reads never take the lock: entry files are rename-atomic
    ([Prguard.Atomic_io]) and CRC-verified on load, so lock-free
    readers see either the old complete entry or the new one. *)

type t

val lock_name : string
(** [".prserve.lock"] *)

val path_in : string -> string
(** [path_in dir] is the lock file path for [dir]. *)

val acquire :
  ?ttl_s:float ->
  ?timeout_s:float ->
  ?poll_s:float ->
  dir:string ->
  unit ->
  (t, string) result
(** Block (polling every [poll_s], default 10ms) until the lock is
    acquired or [timeout_s] (default 10s) elapses. A held lock whose
    stamp is older than [ttl_s] (default 10s) or whose pid is dead is
    taken over immediately. *)

val refresh : t -> unit
(** Re-stamp the heartbeat; call from long-running holders so waiters
    do not judge the lock stale. *)

val release : t -> unit
(** Remove the lock file. Idempotent. *)

val with_lock :
  ?ttl_s:float ->
  ?timeout_s:float ->
  ?poll_s:float ->
  dir:string ->
  (unit -> 'a) ->
  ('a, string) result
(** Acquire, run, release (also on exception). [Error] only when
    acquisition itself timed out. *)
