type error =
  | Line_too_long of { line : int; limit : int }
  | Binary_input of { line : int }
  | Idle_timeout of { line : int }

exception Timeout

let error_message = function
  | Line_too_long { line; limit } ->
    Printf.sprintf "line %d exceeds the %d-byte line limit" line limit
  | Binary_input { line } ->
    Printf.sprintf "binary input (NUL byte) on line %d" line
  | Idle_timeout { line } ->
    Printf.sprintf "idle timeout waiting for line %d" line

type t = {
  refill : bytes -> int -> int;
  buf : bytes;
  mutable pos : int;  (** next unread byte in [buf] *)
  mutable len : int;  (** valid bytes in [buf] *)
  mutable eof : bool;
  mutable timed_out : bool;
  mutable line : int;
  mutable poisoned : error option;
  max_line_bytes : int;
  acc : Buffer.t;
}

let default_max_line_bytes = 4 * 1024 * 1024
let chunk = 65536

let of_refill ?(max_line_bytes = default_max_line_bytes) refill =
  if max_line_bytes < 1 then invalid_arg "Reader.of_refill: max_line_bytes";
  { refill;
    buf = Bytes.create chunk;
    pos = 0;
    len = 0;
    eof = false;
    timed_out = false;
    line = 0;
    poisoned = None;
    max_line_bytes;
    acc = Buffer.create 256 }

let of_channel ?max_line_bytes ic =
  of_refill ?max_line_bytes (fun buf len -> input ic buf 0 len)

let of_fd ?max_line_bytes ?idle_timeout_s fd =
  (match idle_timeout_s with
   | Some s when s > 0. -> (
     (* SO_RCVTIMEO turns a silent peer into EAGAIN on the blocking
        read — the cheapest slowloris defence that needs no extra
        watchdog thread. Non-socket fds reject the option; they keep
        their blocking semantics. *)
     try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
     with Unix.Unix_error (_, _, _) | Invalid_argument _ -> ())
   | Some _ | None -> ());
  let timed = idle_timeout_s <> None in
  of_refill ?max_line_bytes (fun buf len ->
      (* A remote peer resetting the connection mid-line is EOF, not a
         daemon-visible exception. *)
      try Unix.read fd buf 0 len with
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) when timed ->
        raise Timeout)

let line_number t = t.line

let refill t =
  if t.eof then false
  else begin
    let n =
      match t.refill t.buf chunk with
      | n -> n
      | exception Timeout ->
        t.timed_out <- true;
        0
    in
    if n <= 0 then begin
      t.eof <- true;
      false
    end
    else begin
      t.pos <- 0;
      t.len <- n;
      true
    end
  end

let poison t e =
  t.poisoned <- Some e;
  Error e

let finish_line t =
  let s = Buffer.contents t.acc in
  Buffer.clear t.acc;
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let next t =
  match t.poisoned with
  | Some e -> Error e
  | None ->
    Buffer.clear t.acc;
    t.line <- t.line + 1;
    let rec scan () =
      if t.pos >= t.len then
        if refill t then scan ()
        else if t.timed_out then
          (* A buffered partial line is dropped on purpose: the peer
             went silent mid-line, so the framing is unfinished and
             the connection is about to be torn down anyway. *)
          poison t (Idle_timeout { line = t.line })
        else if Buffer.length t.acc > 0 then Ok (Some (finish_line t))
        else begin
          t.line <- t.line - 1;
          Ok None
        end
      else begin
        (* Consume up to the next newline or the end of the buffered
           chunk, checking the NUL and length bounds on the slice. *)
        let stop = Bytes.index_from_opt t.buf t.pos '\n' in
        let upto =
          match stop with
          | Some i when i < t.len -> i
          | _ -> t.len
        in
        let slice_len = upto - t.pos in
        let has_nul =
          match Bytes.index_from_opt t.buf t.pos '\000' with
          | Some i -> i < upto
          | None -> false
        in
        if has_nul then poison t (Binary_input { line = t.line })
        else if Buffer.length t.acc + slice_len > t.max_line_bytes then
          poison t (Line_too_long { line = t.line; limit = t.max_line_bytes })
        else begin
          Buffer.add_subbytes t.acc t.buf t.pos slice_len;
          t.pos <- upto + 1;
          match stop with
          | Some i when i < t.len -> Ok (Some (finish_line t))
          | _ -> scan ()
        end
      end
    in
    scan ()

let fold_lines t ~init f =
  let rec go acc =
    match next t with
    | Error e -> Error e
    | Ok None -> Ok acc
    | Ok (Some line) -> go (f ~line:t.line acc line)
  in
  go init
