(* Chaos actuation for the serve layer.

   [Prfault.Service] decides which operations fault; this module owns
   the live injector state (mutex-wrapped: server worker domains,
   dispatcher and connection threads all draw from one stream) and
   translates decisions into typed instructions for the call sites.
   The call sites act — [Server.solve_job] exits, [Cache] tears bytes,
   [Endpoint] shuts sockets down — so this module stays free of any
   irreversible side effect and the decision stream is testable. *)

module Service = Prfault.Service

type t = {
  service : Service.t;
  mutex : Mutex.t;
  telemetry : Prtelemetry.t;
}

(* Replicas killed by chaos exit like a SIGKILL victim would be
   observed by a supervisor: 128 + 9. *)
let kill_exit_code = 137

let create ?(telemetry = Prtelemetry.null) spec =
  match Service.validate spec with
  | Error _ as e -> e
  | Ok () -> Ok { service = Service.start spec; mutex = Mutex.create (); telemetry }

let of_string ?telemetry s =
  match Service.spec_of_string s with
  | Error _ as e -> e
  | Ok spec -> create ?telemetry spec

let spec t = Service.spec t.service

let draw t point =
  Mutex.lock t.mutex;
  let fault = Service.draw t.service point in
  Mutex.unlock t.mutex;
  (match fault with
   | Some kind ->
     Prtelemetry.incr t.telemetry
       ("serve.chaos." ^ Service.kind_name kind)
   | None -> ());
  fault

let injected t =
  Mutex.lock t.mutex;
  let n = Service.faults_injected t.service in
  Mutex.unlock t.mutex;
  n

type solve_action = Run | Kill_solve

let at_solve t =
  match draw t Service.Solve_point with
  | Some Service.Crash_solve -> Kill_solve
  | Some _ | None -> Run

type cache_action = Clean_write | Torn_write | Torn_write_then_kill

let at_cache_write t =
  match draw t Service.Cache_write_point with
  | Some Service.Torn_cache_write -> Torn_write
  | Some Service.Crash_cache_write -> Torn_write_then_kill
  | Some _ | None -> Clean_write

type reply_action = Deliver | Reset | Delay of float

let at_reply t =
  match draw t Service.Reply_point with
  | Some Service.Conn_reset -> Reset
  | Some Service.Slow_reply -> Delay ((Service.spec t.service).slow_reply_ms /. 1000.)
  | Some _ | None -> Deliver
