type replica_spec = {
  name : string;
  address : Endpoint.address;
  argv : incarnation:int -> string array;
}

type config = {
  restart_limit : int;
  backoff_ms : float;
  max_backoff_ms : float;
  probe_interval_s : float;
  probe_failures : int;
  startup_grace_s : float;
  tick_s : float;
  stdio : Unix.file_descr option;
  telemetry : Prtelemetry.t;
  clock : Prguard.Budget.clock;
}

let default_config ?(telemetry = Prtelemetry.null) () =
  { restart_limit = 5;
    backoff_ms = 100.;
    max_backoff_ms = 2_000.;
    probe_interval_s = 0.25;
    probe_failures = 3;
    startup_grace_s = 5.;
    tick_s = 0.05;
    stdio = None;
    telemetry;
    clock = Prguard.Budget.monotonic }

let validate_config c =
  if c.restart_limit < 0 then Error "restart_limit must be >= 0"
  else if c.backoff_ms <= 0. then Error "backoff_ms must be positive"
  else if c.max_backoff_ms < c.backoff_ms then
    Error "max_backoff_ms must be >= backoff_ms"
  else if c.probe_interval_s <= 0. then Error "probe_interval_s must be positive"
  else if c.probe_failures < 1 then Error "probe_failures must be >= 1"
  else if c.tick_s <= 0. then Error "tick_s must be positive"
  else Ok ()

type phase =
  | Starting  (** spawned, within the startup grace, not yet probed ok *)
  | Healthy
  | Backing_off of float  (** dead; restart scheduled at this clock time *)
  | Gave_up  (** restart budget exhausted *)
  | Stopped

type replica = {
  spec : replica_spec;
  mutable pid : int;  (* -1 = not running *)
  mutable phase : phase;
  mutable incarnation : int;  (* 0 = initial launch *)
  mutable restarts : int;
  mutable started_at : float;
  mutable last_probe_at : float;
  mutable probe_misses : int;
}

type status = {
  s_name : string;
  s_address : Endpoint.address;
  s_phase : phase;
  s_pid : int option;
  s_restarts : int;
}

type t = {
  config : config;
  replicas : replica array;
  mutex : Mutex.t;
  mutable monitor : Thread.t option;
  mutable stopping : bool;
  mutable quiesced : bool;
    (* freeze the monitor without triggering [stop]'s kill/reap; set
       from signal handlers, so written without the mutex *)
}

let phase_to_string = function
  | Starting -> "starting"
  | Healthy -> "healthy"
  | Backing_off _ -> "backing-off"
  | Gave_up -> "gave-up"
  | Stopped -> "stopped"

let incr t name = Prtelemetry.incr t.config.telemetry name

let spawn t r =
  let argv = r.spec.argv ~incarnation:r.incarnation in
  if Array.length argv = 0 then
    invalid_arg (Printf.sprintf "replica %s: empty argv" r.spec.name);
  let io = Option.value t.config.stdio ~default:Unix.stdout in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin io io
  in
  r.pid <- pid;
  r.phase <- Starting;
  r.started_at <- t.config.clock ();
  r.last_probe_at <- 0.;
  r.probe_misses <- 0;
  incr t "fleet.spawns"

(* A single HEALTH exchange on a fresh connection.  No connect retry
   here: the monitor tick is the retry loop, and a hung replica must
   not stall probes of its peers for long. *)
let probe address =
  match Endpoint.connect address with
  | Error _ -> false
  | Ok c ->
    let ok =
      match Endpoint.request c "HEALTH" with
      | Ok reply -> (
        match Protocol.parse_reply reply with
        | Ok (Protocol.R_health _) -> true  (* draining still counts as alive *)
        | Ok _ | Error _ -> false)
      | Error _ -> false
    in
    Endpoint.close_client c;
    ok

let backoff_delay_s t r =
  let d =
    t.config.backoff_ms *. (2. ** float_of_int (max 0 (r.restarts - 1)))
  in
  Float.min d t.config.max_backoff_ms /. 1000.

let schedule_restart t r ~reason =
  r.pid <- -1;
  if r.restarts >= t.config.restart_limit then begin
    r.phase <- Gave_up;
    incr t "fleet.gave_up";
    ignore reason
  end
  else begin
    r.restarts <- r.restarts + 1;
    r.incarnation <- r.incarnation + 1;
    incr t "fleet.restarts";
    r.phase <- Backing_off (t.config.clock () +. backoff_delay_s t r)
  end

let kill_pid pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* One monitor pass over every replica: reap exits, fire due restarts,
   probe health, and escalate persistent probe failures to SIGKILL (the
   reap on a later tick then schedules the restart). *)
let step t =
  let now = t.config.clock () in
  Array.iter
    (fun r ->
      match r.phase with
      | Stopped | Gave_up -> ()
      | Backing_off due ->
        if (not t.stopping) && now >= due then spawn t r
      | Starting | Healthy -> (
        match Unix.waitpid [ Unix.WNOHANG ] r.pid with
        | exception Unix.Unix_error _ ->
          schedule_restart t r ~reason:"waitpid"
        | 0, _ ->
          (* Alive; probe once the grace period (for Starting) allows
             and the probe interval has elapsed. *)
          let due_probe =
            now -. r.last_probe_at >= t.config.probe_interval_s
          in
          if due_probe then begin
            r.last_probe_at <- now;
            if probe r.spec.address then begin
              r.probe_misses <- 0;
              if r.phase = Starting then r.phase <- Healthy
            end
            else begin
              let in_grace =
                r.phase = Starting
                && now -. r.started_at < t.config.startup_grace_s
              in
              if not in_grace then begin
                r.probe_misses <- r.probe_misses + 1;
                if r.probe_misses >= t.config.probe_failures then begin
                  (* Unresponsive but not exited: put it down and let
                     the reap path restart it under the budget. *)
                  incr t "fleet.probe_kills";
                  kill_pid r.pid Sys.sigkill
                end
              end
            end
          end
        | _pid, _status -> schedule_restart t r ~reason:"exited"))
    t.replicas

let monitor_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let stop = t.stopping || t.quiesced in
    if not stop then step t;
    Mutex.unlock t.mutex;
    if not stop then begin
      Thread.delay t.config.tick_s;
      loop ()
    end
  in
  loop ()

let start ?(config = default_config ()) specs =
  match validate_config config with
  | Error e -> Error ("supervisor config: " ^ e)
  | Ok () ->
    if specs = [] then Error "supervisor: no replicas"
    else begin
      let replicas =
        Array.of_list
          (List.map
             (fun spec ->
               { spec;
                 pid = -1;
                 phase = Stopped;
                 incarnation = 0;
                 restarts = 0;
                 started_at = 0.;
                 last_probe_at = 0.;
                 probe_misses = 0 })
             specs)
      in
      let t =
        { config; replicas; mutex = Mutex.create (); monitor = None;
          stopping = false; quiesced = false }
      in
      match
        Array.iter
          (fun r ->
            r.incarnation <- 0;
            spawn t r)
          replicas
      with
      | exception e ->
        (* Roll back whatever did spawn. *)
        Array.iter (fun r -> if r.pid > 0 then kill_pid r.pid Sys.sigkill)
          replicas;
        Error ("supervisor spawn: " ^ Printexc.to_string e)
      | () ->
        t.monitor <- Some (Thread.create monitor_loop t);
        Ok t
    end

let statuses t =
  Mutex.lock t.mutex;
  let out =
    Array.to_list
      (Array.map
         (fun r ->
           { s_name = r.spec.name;
             s_address = r.spec.address;
             s_phase = r.phase;
             s_pid = (if r.pid > 0 then Some r.pid else None);
             s_restarts = r.restarts })
         t.replicas)
  in
  Mutex.unlock t.mutex;
  out

let restarts t =
  List.fold_left (fun acc s -> acc + s.s_restarts) 0 (statuses t)

let gave_up t =
  List.exists (fun s -> s.s_phase = Gave_up) (statuses t)

let await_healthy ?(timeout_s = 10.) t =
  let deadline = t.config.clock () +. timeout_s in
  let rec wait () =
    let all =
      List.for_all (fun s -> s.s_phase = Healthy) (statuses t)
    in
    if all then Ok ()
    else if t.config.clock () >= deadline then
      Error
        (Printf.sprintf "fleet not healthy after %.1fs: %s" timeout_s
           (String.concat ", "
              (List.map
                 (fun s -> s.s_name ^ "=" ^ phase_to_string s.s_phase)
                 (statuses t))))
    else begin
      Thread.delay (Float.min 0.02 t.config.tick_s);
      wait ()
    end
  in
  wait ()

(* Freeze the monitor ahead of [stop].  When an external signal (e.g. a
   process-group SIGTERM) kills the replicas at the same moment the
   owner is told to shut down, the monitor would otherwise reap those
   exits before [stop] runs and book each one as a scheduled restart.
   Deliberately lock-free: this is called from signal handlers, which
   may run in a thread that already holds the mutex. *)
let request_stop t = t.quiesced <- true

let stop ?(grace_s = 2.) t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  let pids =
    Array.to_list t.replicas
    |> List.filter_map (fun r -> if r.pid > 0 then Some r else None)
  in
  if not already then
    List.iter (fun r -> kill_pid r.pid Sys.sigterm) pids;
  Mutex.unlock t.mutex;
  (match t.monitor with
   | Some th ->
     Thread.join th;
     t.monitor <- None
   | None -> ());
  if not already then begin
    let deadline = t.config.clock () +. grace_s in
    let rec reap remaining =
      match remaining with
      | [] -> []
      | _ when t.config.clock () >= deadline -> remaining
      | _ ->
        let still =
          List.filter
            (fun r ->
              match Unix.waitpid [ Unix.WNOHANG ] r.pid with
              | 0, _ -> true
              | _ -> false
              | exception Unix.Unix_error _ -> false)
            remaining
        in
        if still = [] then []
        else begin
          Thread.delay 0.02;
          reap still
        end
    in
    let stubborn = reap pids in
    List.iter
      (fun r ->
        kill_pid r.pid Sys.sigkill;
        try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ())
      stubborn;
    Mutex.lock t.mutex;
    Array.iter
      (fun r ->
        r.pid <- -1;
        r.phase <- Stopped)
      t.replicas;
    Mutex.unlock t.mutex
  end
