module Recovery = Prfault.Recovery

(* ------------------------------------------------------------- policy *)

type policy = {
  deadline_ms : float option;
  retry : Recovery.retry;
  connect_retry : Recovery.retry;
  breaker_failures : int;
  breaker_cooldown_ms : float;
}

let default_policy =
  { deadline_ms = Some 30_000.;
    (* Service-scale backoff, not the microsecond-scale simulation
       defaults: start at 25 ms, double to a 1 s ceiling. *)
    retry =
      { Recovery.max_attempts = 6;
        base_backoff_s = 0.025;
        backoff_multiplier = 2.;
        max_backoff_s = 1.;
        jitter = 0.2;
        transition_budget_s = None };
    connect_retry =
      { Recovery.max_attempts = 4;
        base_backoff_s = 0.025;
        backoff_multiplier = 2.;
        max_backoff_s = 0.25;
        jitter = 0.;
        transition_budget_s = None };
    breaker_failures = 3;
    breaker_cooldown_ms = 500. }

let validate_policy p =
  match Recovery.validate_retry p.retry with
  | Error e -> Error ("retry: " ^ e)
  | Ok () -> (
    match Recovery.validate_retry p.connect_retry with
    | Error e -> Error ("connect_retry: " ^ e)
    | Ok () ->
      if p.breaker_failures < 1 then Error "breaker_failures must be >= 1"
      else if p.breaker_cooldown_ms < 0. then
        Error "breaker_cooldown_ms must be >= 0"
      else
        match p.deadline_ms with
        | Some d when d <= 0. -> Error "deadline_ms must be positive"
        | Some _ | None -> Ok ())

(* -------------------------------------------------------------- errors *)

type error =
  | Rejected of { code : string; detail : string option }
  | Server_error of string
  | Unavailable of string

let error_message = function
  | Rejected { code; detail } -> (
    match detail with
    | Some d -> Printf.sprintf "rejected (%s): %s" code d
    | None -> Printf.sprintf "rejected (%s)" code)
  | Server_error m -> "server error: " ^ m
  | Unavailable m -> "unavailable: " ^ m

(* A reject the fleet can still answer: daemon-side pressure (another
   replica may have room) or drain (another replica is not draining).
   Malformed input, oversize designs and unknown names fail everywhere
   identically — retrying them only burns the budget. *)
let retryable_reject = function
  | "queue-full" | "draining" | "client-cap" | "quota" -> true
  | _ -> false

(* ------------------------------------------------------ circuit breaker *)

type breaker_state = Closed | Open | Half_open

type breaker = {
  mutable state : breaker_state;
  mutable failures : int;  (* consecutive *)
  mutable open_until : float;
}

(* ------------------------------------------------------------------ t *)

type t = {
  policy : policy;
  endpoints : Endpoint.address array;
  breakers : breaker array;
  conns : Endpoint.client option array;
  mutable sticky : int;  (* preferred endpoint index *)
  jitter_rng : Synth.Rng.t;
  clock : unit -> float;
  telemetry : Prtelemetry.t;
  mutex : Mutex.t;  (* one request at a time; callers serialise here *)
  mutable closed : bool;
}

let create ?(policy = default_policy) ?(seed = 0)
    ?(clock = (Prguard.Budget.monotonic : Prguard.Budget.clock))
    ?(telemetry = Prtelemetry.null) endpoints =
  match validate_policy policy with
  | Error e -> Error ("client policy: " ^ e)
  | Ok () ->
    if endpoints = [] then Error "client: no endpoints"
    else
      let endpoints = Array.of_list endpoints in
      Ok
        { policy;
          endpoints;
          breakers =
            Array.init (Array.length endpoints) (fun _ ->
                { state = Closed; failures = 0; open_until = 0. });
          conns = Array.make (Array.length endpoints) None;
          sticky = 0;
          jitter_rng = Synth.Rng.make seed;
          clock;
          telemetry;
          mutex = Mutex.create ();
          closed = false }

let endpoints t = Array.to_list t.endpoints
let incr t name = Prtelemetry.incr t.telemetry name

let breaker_state t i =
  if i < 0 || i >= Array.length t.breakers then invalid_arg "breaker_state"
  else t.breakers.(i).state

let drop_conn t i =
  match t.conns.(i) with
  | Some c ->
    Endpoint.close_client c;
    t.conns.(i) <- None
  | None -> ()

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Array.iteri (fun i _ -> drop_conn t i) t.conns
  end;
  Mutex.unlock t.mutex

(* Breaker transitions. Failures only count transport-level trouble
   (connect refused, reset, garbled reply) — a well-formed REJECT or
   ERR proves the endpoint alive, so it resets the streak. *)
let record_success t i =
  let b = t.breakers.(i) in
  b.failures <- 0;
  if b.state <> Closed then begin
    b.state <- Closed;
    incr t "client.breaker_closes"
  end

let record_failure t i =
  let b = t.breakers.(i) in
  b.failures <- b.failures + 1;
  let now = t.clock () in
  let trip =
    match b.state with
    | Half_open -> true  (* the probe failed: straight back to open *)
    | Closed | Open -> b.failures >= t.policy.breaker_failures
  in
  if trip then begin
    if b.state <> Open then incr t "client.breaker_opens";
    b.state <- Open;
    b.open_until <- now +. (t.policy.breaker_cooldown_ms /. 1000.)
  end

(* First endpoint from [sticky] whose breaker admits a request. An open
   breaker past its cooldown admits one probe (half-open). *)
let pick_endpoint t =
  let n = Array.length t.endpoints in
  let now = t.clock () in
  let rec scan k =
    if k >= n then None
    else begin
      let i = (t.sticky + k) mod n in
      let b = t.breakers.(i) in
      match b.state with
      | Closed | Half_open -> Some i
      | Open ->
        if now >= b.open_until then begin
          b.state <- Half_open;
          Some i
        end
        else scan (k + 1)
    end
  in
  scan 0

let conn t i =
  match t.conns.(i) with
  | Some c -> Ok c
  | None -> (
    match
      Endpoint.connect ~retry:t.policy.connect_retry t.endpoints.(i)
    with
    | Ok c ->
      incr t "client.connects";
      t.conns.(i) <- Some c;
      Ok c
    | Error _ as e -> e)

(* One wire exchange against endpoint [i]. [Error msg] is transport
   level (retryable, counts against the breaker). *)
let exchange t i line =
  match conn t i with
  | Error msg -> Error msg
  | Ok c -> (
    match Endpoint.request c line with
    | Ok reply -> (
      match Protocol.parse_reply reply with
      | Ok parsed -> Ok parsed
      | Error msg ->
        (* A garbled reply means framing is gone; the connection is
           not trustworthy for another request. *)
        drop_conn t i;
        Error msg)
    | Error msg ->
      drop_conn t i;
      Error msg)

type 'a outcome =
  | Done of 'a
  | Retry of error  (* best error so far, should another attempt fail *)
  | Fail of error

(* The retry/failover engine. [classify] maps a parsed reply to an
   outcome; transport failures are always retried. Attempts share one
   deadline — backoff sleeps are clamped to the time remaining. *)
let run t ~label ~line ~classify =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then Error (Unavailable "client closed")
      else begin
        incr t ("client.requests." ^ label);
        let deadline =
          Option.map (fun ms -> t.clock () +. (ms /. 1000.)) t.policy.deadline_ms
        in
        let remaining () =
          match deadline with
          | None -> infinity
          | Some d -> d -. t.clock ()
        in
        let failover () =
          let n = Array.length t.endpoints in
          if n > 1 then begin
            t.sticky <- (t.sticky + 1) mod n;
            incr t "client.failovers"
          end
        in
        let max_attempts = t.policy.retry.Recovery.max_attempts in
        let rec attempt n best =
          if remaining () <= 0. then
            Error
              (match best with
               | Some e -> e
               | None -> Unavailable (label ^ ": deadline exhausted"))
          else begin
            let result =
              match pick_endpoint t with
              | None -> Retry (Unavailable "all endpoint breakers open")
              | Some i -> (
                t.sticky <- i;
                match exchange t i line with
                | Error msg ->
                  record_failure t i;
                  failover ();
                  Retry (Unavailable (msg ^ " at "
                                      ^ Endpoint.address_to_string
                                          t.endpoints.(i)))
                | Ok reply ->
                  record_success t i;
                  classify ~failover reply)
            in
            match result with
            | Done v -> Ok v
            | Fail e -> Error e
            | Retry e ->
              let best = Some e in
              if n >= max_attempts then Error e
              else begin
                incr t "client.retries";
                let backoff =
                  Recovery.backoff_seconds t.policy.retry ~attempt:n
                    ~unit_jitter:(Synth.Rng.float t.jitter_rng)
                in
                let sleep = Float.min backoff (Float.max 0. (remaining ())) in
                if sleep > 0. then Thread.delay sleep;
                attempt (n + 1) best
              end
          end
        in
        attempt 1 None
      end)

(* ------------------------------------------------------------ requests *)

let protocol_confusion ~failover reply_kind =
  ignore reply_kind;
  failover ();
  Retry (Unavailable "unexpected reply kind")

let classify_solve ~failover = function
  | Protocol.R_solved s -> Done s
  | Protocol.R_reject { code; detail } ->
    if retryable_reject code then begin
      (* This replica refused but answered; peers may have room. *)
      failover ();
      Retry (Rejected { code; detail })
    end
    else Fail (Rejected { code; detail })
  | Protocol.R_err m ->
    (* SOLVE is idempotent under the content-addressed fingerprint, so
       retrying a failed solve elsewhere is always safe. *)
    failover ();
    Retry (Server_error m)
  | (Protocol.R_status _ | Protocol.R_health _ | Protocol.R_bye) as r ->
    protocol_confusion ~failover r

let solve t ?(client = "anon") spec =
  let line = Printf.sprintf "SOLVE client=%s %s" client spec in
  run t ~label:"solve" ~line ~classify:classify_solve

let solve_inline t ?client ~design_xml () =
  solve t ?client ("inline:" ^ design_xml)

let status t =
  run t ~label:"status" ~line:"STATUS" ~classify:(fun ~failover -> function
    | Protocol.R_status json -> Done json
    | r -> protocol_confusion ~failover r)

let health t =
  run t ~label:"health" ~line:"HEALTH" ~classify:(fun ~failover -> function
    | Protocol.R_health ok -> Done ok
    | r -> protocol_confusion ~failover r)

let retries t = Prtelemetry.counter_value t.telemetry "client.retries"
let failovers t = Prtelemetry.counter_value t.telemetry "client.failovers"

let breaker_opens t =
  Prtelemetry.counter_value t.telemetry "client.breaker_opens"
