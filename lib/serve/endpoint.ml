type address = Unix_path of string | Tcp of int

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

type t = {
  fd : Unix.file_descr;
  address : address;
  mutable closed : bool;
}

let listen ?(backlog = 64) address =
  (match address with
   | Unix_path p when Sys.file_exists p -> ( try Unix.unlink p with _ -> ())
   | _ -> ());
  let domain =
    match address with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (sockaddr_of address);
    Unix.listen fd backlog;
    Ok { fd; address; closed = false }
  with
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "listen %s: %s" (address_to_string address)
         (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with _ -> ());
    match t.address with
    | Unix_path p -> ( try Unix.unlink p with _ -> ())
    | Tcp _ -> ()
  end

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      let n = Unix.write fd data off (len - off) in
      go (off + n)
  in
  go 0

let handle_connection ?max_line_bytes server fd =
  let reader = Reader.of_fd ?max_line_bytes fd in
  let rec loop () =
    match Reader.next reader with
    | Ok None -> ()
    | Error e ->
      (* The stream has lost line framing; answer once and hang up. *)
      (try write_line fd (Protocol.render_err (Reader.error_message e))
       with Unix.Unix_error _ -> ())
    | Ok (Some line) ->
      let reply = Server.handle_line server line in
      (match (try Ok (write_line fd reply) with Unix.Unix_error _ -> Error ())
       with
       | Error () -> ()
       | Ok () -> if reply <> Protocol.render_bye then loop ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    loop

let serve_loop ?(poll_interval = 0.2) ?max_line_bytes t server =
  let threads = ref [] in
  let rec loop () =
    if Server.draining server || t.closed then ()
    else begin
      (match Unix.select [ t.fd ] [] [] poll_interval with
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept t.fd with
         | fd, _ ->
           threads :=
             Thread.create (handle_connection ?max_line_bytes server) fd
             :: !threads
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  List.iter Thread.join !threads

(* ------------------------------------------------------------- clients *)

type client = {
  cfd : Unix.file_descr;
  creader : Reader.t;
  mutable cclosed : bool;
}

let connect ?max_line_bytes address =
  let domain =
    match address with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (sockaddr_of address);
    Ok { cfd = fd; creader = Reader.of_fd ?max_line_bytes fd; cclosed = false }
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "connect %s: %s" (address_to_string address)
         (Unix.error_message e))

let request c line =
  if c.cclosed then Error "connection closed"
  else
    match write_line c.cfd line with
    | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
    | () -> (
      match Reader.next c.creader with
      | Ok (Some reply) -> Ok reply
      | Ok None -> Error "connection closed by server"
      | Error e -> Error (Reader.error_message e))

let close_client c =
  if not c.cclosed then begin
    c.cclosed <- true;
    try Unix.close c.cfd with _ -> ()
  end
