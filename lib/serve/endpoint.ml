type address = Unix_path of string | Tcp of int

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

type t = {
  fd : Unix.file_descr;
  address : address;
  mutable closed : bool;
}

let ignore_sigpipe () =
  (* A peer that disconnects before reading its reply must surface as
     EPIPE from [Unix.write], not as a process-fatal SIGPIPE.  Guarded:
     [Sys.sigpipe] is not settable on every platform. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let listen ?(backlog = 64) address =
  ignore_sigpipe ();
  (match address with
   | Unix_path p when Sys.file_exists p -> ( try Unix.unlink p with _ -> ())
   | _ -> ());
  let domain =
    match address with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (sockaddr_of address);
    Unix.listen fd backlog;
    Ok { fd; address; closed = false }
  with
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "listen %s: %s" (address_to_string address)
         (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with _ -> ());
    match t.address with
    | Unix_path p -> ( try Unix.unlink p with _ -> ())
    | Tcp _ -> ()
  end

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      let n = Unix.write fd data off (len - off) in
      go (off + n)
  in
  go 0

(* Chaos only touches solve replies (OK/ERR/REJECT): resetting STATUS
   or HEALTH would make the supervisor's probes indistinguishable from
   a dead replica and churn restarts for no test value. *)
let solve_reply reply =
  let starts tag =
    String.length reply >= String.length tag
    && String.sub reply 0 (String.length tag) = tag
  in
  starts "OK " || starts "ERR " || starts "REJECT "

let handle_connection ?max_line_bytes ?idle_timeout_s server fd =
  let reader = Reader.of_fd ?max_line_bytes ?idle_timeout_s fd in
  let rec loop () =
    match Reader.next reader with
    | Ok None -> ()
    | Error (Reader.Idle_timeout _) ->
      (* Slowloris defence: a typed reject so a well-meaning slow
         client learns why it was cut off, then hang up. *)
      (try write_line fd (Server.reject server Protocol.Idle_timeout)
       with Unix.Unix_error _ -> ())
    | Error e ->
      (* The stream has lost line framing; answer once and hang up. *)
      (try write_line fd (Protocol.render_err (Reader.error_message e))
       with Unix.Unix_error _ -> ())
    | Ok (Some line) ->
      let reply = Server.handle_line server line in
      let action =
        match Server.chaos server with
        | Some c when solve_reply reply -> Chaos.at_reply c
        | Some _ | None -> Chaos.Deliver
      in
      (match action with
       | Chaos.Reset ->
         (* Drop the reply on the floor and slam the connection — the
            client sees EOF/ECONNRESET after the request was admitted. *)
         (try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ | Invalid_argument _ -> ())
       | Chaos.Deliver | Chaos.Delay _ ->
         (match action with
          | Chaos.Delay s -> Thread.delay s
          | _ -> ());
         (match
            (try Ok (write_line fd reply) with Unix.Unix_error _ -> Error ())
          with
          | Error () -> ()
          | Ok () -> if reply <> Protocol.render_bye then loop ()))
  in
  loop ()

let serve_loop ?(poll_interval = 0.2) ?max_line_bytes ?idle_timeout_s t server =
  (* Live connection fds, so a drain can unblock reader threads parked
     in [Unix.read] on idle connections.  An fd is closed only under
     the registry lock, after removal, so the drain-time [shutdown]
     below can never touch a recycled descriptor. *)
  let conns_mutex = Mutex.create () in
  let conns = Hashtbl.create 16 in
  let track fd =
    Mutex.lock conns_mutex;
    Hashtbl.replace conns fd ();
    Mutex.unlock conns_mutex
  in
  let release fd =
    Mutex.lock conns_mutex;
    if Hashtbl.mem conns fd then begin
      Hashtbl.remove conns fd;
      try Unix.close fd with _ -> ()
    end;
    Mutex.unlock conns_mutex
  in
  let threads = ref [] in
  let rec loop () =
    if Server.draining server || t.closed then ()
    else begin
      (match Unix.select [ t.fd ] [] [] poll_interval with
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept t.fd with
         | fd, _ ->
           track fd;
           threads :=
             Thread.create
               (fun () ->
                 Fun.protect
                   ~finally:(fun () -> release fd)
                   (fun () ->
                     handle_connection ?max_line_bytes ?idle_timeout_s server
                       fd))
               ()
             :: !threads
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  Mutex.lock conns_mutex;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    conns;
  Mutex.unlock conns_mutex;
  List.iter Thread.join !threads

(* ------------------------------------------------------------- clients *)

type client = {
  cfd : Unix.file_descr;
  creader : Reader.t;
  mutable cclosed : bool;
}

let connect_once ?max_line_bytes address =
  let domain =
    match address with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    ignore_sigpipe ();
    Unix.connect fd (sockaddr_of address);
    Ok { cfd = fd; creader = Reader.of_fd ?max_line_bytes fd; cclosed = false }
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error (e, Printf.sprintf "connect %s: %s" (address_to_string address)
             (Unix.error_message e))

(* Races against replica startup look like ENOENT (Unix socket path not
   bound yet) or ECONNREFUSED (listener not up / backlog flushed after a
   crash); both deserve a bounded retry. Anything else — EACCES, a
   protocol mismatch — fails fast. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN -> true
  | _ -> false

let connect ?max_line_bytes ?retry address =
  match retry with
  | None -> (
    match connect_once ?max_line_bytes address with
    | Ok c -> Ok c
    | Error (_, msg) -> Error msg)
  | Some (r : Prfault.Recovery.retry) ->
    let rec attempt n =
      match connect_once ?max_line_bytes address with
      | Ok c -> Ok c
      | Error (e, msg) ->
        if n >= r.Prfault.Recovery.max_attempts || not (transient e) then
          Error msg
        else begin
          (* unit_jitter 0: connect retries must stay deterministic for
             the chaos replays; the client library layers seeded jitter
             on top where thundering herds matter. *)
          Thread.delay
            (Prfault.Recovery.backoff_seconds r ~attempt:n ~unit_jitter:0.);
          attempt (n + 1)
        end
    in
    attempt 1

let request c line =
  if c.cclosed then Error "connection closed"
  else
    match write_line c.cfd line with
    | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
    | () -> (
      match Reader.next c.creader with
      | Ok (Some reply) -> Ok reply
      | Ok None -> Error "connection closed by server"
      | Error e -> Error (Reader.error_message e))

let close_client c =
  if not c.cclosed then begin
    c.cclosed <- true;
    try Unix.close c.cfd with _ -> ()
  end
