type t = Greedy | Exact | Anneal | Multilevel

let all = [ Greedy; Exact; Anneal; Multilevel ]

let to_string = function
  | Greedy -> "greedy"
  | Exact -> "exact"
  | Anneal -> "anneal"
  | Multilevel -> "multilevel"

let names = List.map to_string all

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "greedy" -> Ok Greedy
  | "exact" -> Ok Exact
  | "anneal" -> Ok Anneal
  | "multilevel" | "multi-level" | "ml" -> Ok Multilevel
  | other ->
    Error
      (Printf.sprintf "unknown strategy %S (expected one of %s)" other
         (String.concat ", " names))

let validate = of_string

let default = Greedy

let pp ppf t = Format.pp_print_string ppf (to_string t)
