module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition

let cover design partitions =
  let configs = Design.configuration_count design in
  (* uncovered.(c) holds the modes of configuration [c] not yet provided. *)
  let uncovered = Array.init configs (fun c -> Design.config_mode_ids design c) in
  let remaining = ref (Array.fold_left (fun n l -> n + List.length l) 0 uncovered) in
  let selected = ref [] in
  let consider (bp : Base_partition.t) =
    if !remaining > 0 then begin
      let covered_new = ref false in
      for c = 0 to configs - 1 do
        let before = List.length uncovered.(c) in
        let after =
          List.filter (fun m -> not (Base_partition.mem m bp)) uncovered.(c)
        in
        let removed = before - List.length after in
        if removed > 0 then begin
          uncovered.(c) <- after;
          remaining := !remaining - removed;
          covered_new := true
        end
      done;
      if !covered_new then selected := bp :: !selected
    end
  in
  List.iter consider partitions;
  if !remaining = 0 then Some (List.rev !selected) else None

let candidate_sets ?(max_sets = 32) ?(stop = fun () -> false)
    ?(telemetry = Prtelemetry.null) design partitions =
  Prtelemetry.with_span telemetry "cover.candidate_sets" (fun () ->
      let sets = Prtelemetry.counter telemetry "cover.sets" in
      let duplicates = Prtelemetry.counter telemetry "cover.duplicates" in
      let rec loop remaining_list seen acc count =
        if count >= max_sets || stop () then List.rev acc
        else
          match cover design remaining_list with
          | None -> List.rev acc
          | Some set ->
            (* Canonical duplicate key: the cover as a {e set of mode
               sets} — modes sorted within each partition and the
               partitions sorted across the cover — so mode-order or
               partition-order permutations of one cover are recognised
               as the same set instead of burning a candidate slot. *)
            let key =
              List.sort compare
                (List.map
                   (fun (bp : Base_partition.t) ->
                     List.sort_uniq Int.compare bp.modes)
                   set)
            in
            let acc, count, seen =
              if List.mem key seen then begin
                Prtelemetry.Counter.incr duplicates;
                (acc, count, seen)
              end
              else begin
                Prtelemetry.Counter.incr sets;
                if Prtelemetry.tracing telemetry then
                  Prtelemetry.point telemetry "cover.set"
                    ~attrs:
                      [ ("index", Prtelemetry.Json.Int count);
                        ("size", Prtelemetry.Json.Int (List.length set)) ];
                (set :: acc, count + 1, key :: seen)
              end
            in
            (match remaining_list with
             | [] -> List.rev acc
             | _ :: tail -> loop tail seen acc count)
      in
      loop partitions [] [] 0)
