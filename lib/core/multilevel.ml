module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile
module Energy = Anneal.Energy

type options = {
  coarsest : int;
  refine_passes : int;
  partner_limit : int;
  exhaustive_limit : int;
  promote_static : bool;
}

let default_options =
  { coarsest = 8;
    refine_passes = 4;
    partner_limit = 8;
    exhaustive_limit = 48;
    promote_static = true }

type stats = {
  levels : int;
  merges : int;
  passes : int;
  moves : int;
  trials : int;
  first_feasible_total : int option;
  final_total : int option;
}

let no_stats =
  { levels = 0;
    merges = 0;
    passes = 0;
    moves = 0;
    trials = 0;
    first_feasible_total = None;
    final_total = None }

(* One hypergraph node per mode that some configuration uses, weighted
   by its support (the number of configurations needing it) — the
   finest granularity the region-allocation solution space has, and
   the node set the coarsener folds. Skipping the clustering/covering
   passes entirely is what makes the backend viable at 50–500 modules:
   clique enumeration over the co-occurrence graph is the first wall
   the default pipeline hits there. *)
let nodes design =
  let configs = Design.configuration_count design in
  let freq = Hashtbl.create 64 in
  for c = 0 to configs - 1 do
    List.iter
      (fun m ->
        Hashtbl.replace freq m
          (1 + Option.value ~default:0 (Hashtbl.find_opt freq m)))
      (Design.config_mode_ids design c)
  done;
  List.filter_map
    (fun m ->
      match Hashtbl.find_opt freq m with
      | Some f -> Some (Base_partition.make design ~modes:[ m ] ~freq:f)
      | None -> None)
    (Design.all_mode_ids design)

(* Scalar area in frame-equivalents, matching the greedy allocator and
   the annealer's deficit metric. *)
let scalar (r : Resource.t) =
  (float_of_int r.clb *. 1.8)
  +. (float_of_int r.bram *. 7.5)
  +. (float_of_int r.dsp *. 3.5)

(* Active-configuration sets as bitmasks (63 bits per word), so
   compatibility of two coarse nodes — disjoint activity — is a few
   word ANDs instead of a configuration scan. *)
let words_for configs = max 1 ((configs + 62) / 63)

let mask_of_activity ~words act =
  let mask = Array.make words 0 in
  Array.iteri
    (fun c on ->
      if on then
        mask.(c / 63) <- mask.(c / 63) lor (1 lsl (c mod 63)))
    act;
  mask

let disjoint a b =
  let ok = ref true in
  for w = 0 to Array.length a - 1 do
    if a.(w) land b.(w) <> 0 then ok := false
  done;
  !ok

let popcount mask =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr count
      done)
    mask;
  !count

(* A coarse node: a set of pairwise-compatible original partitions that
   will share a region. [conflicts] is the node's internal conflicting
   configuration-pair count, maintained with the same O(1) delta the
   exact allocator uses (disjoint active sets, so merging [a] and [b]
   adds exactly [a.acts * b.acts] cross pairs). *)
type cnode = {
  mutable members : int list;
  mutable mask : int array;
  mutable acts : int;
  mutable res : Resource.t;  (* component-wise max: the region area law *)
  mutable conflicts : int;
  mutable alive : bool;
}

let node_frames node = Tile.frames_of_resources node.res

(* Reconfiguration-time delta of merging two compatible nodes into one
   region — the hyperedge weight the matching minimises (then maximal
   area saving as the tiebreak), the multilevel analogue of the greedy
   allocator's move ranking. *)
let merge_dtime a b =
  let merged = Resource.max a.res b.res in
  let fm = Tile.frames_of_resources merged in
  (fm * (a.conflicts + b.conflicts + (a.acts * b.acts)))
  - (node_frames a * a.conflicts)
  - (node_frames b * b.conflicts)

let merge_area_gain a b =
  scalar (Tile.quantize a.res)
  +. scalar (Tile.quantize b.res)
  -. scalar (Tile.quantize (Resource.max a.res b.res))

(* Per-resource epsilon tightness (the MtPartitioner trick): for each
   resource kind, the slack ratio of the budget over the current
   quantized demand; the tightest kind bounds the imbalance tolerance,
   zoomed down by the number of resource kinds. The resulting per-node
   ceiling [(1 + eps) * demand_r / k] stops the matching from growing
   one coarse node so large that it hogs the tightest resource. *)
let epsilon ~budget ~(demand : Resource.t) =
  let per b d = if d <= 0 then infinity else (float_of_int b /. float_of_int d) -. 1. in
  let e =
    Float.min
      (per budget.Resource.clb demand.Resource.clb)
      (Float.min
         (per budget.Resource.bram demand.Resource.bram)
         (per budget.Resource.dsp demand.Resource.dsp))
  in
  if Float.is_finite e then Float.max 0. e /. 3. else 0.

exception Interrupted

let allocate_stats ?(options = default_options)
    ?(telemetry = Prtelemetry.null) ?memo ?guard ?placement ~budget design
    partitions =
  (* [placement] is shadowed below by the region-assignment array; keep
     the placement-awareness hook under its own name. *)
  let placement_hook = placement in
  match partitions with
  | [] -> (None, no_stats)
  | _ ->
    Prtelemetry.with_span telemetry "multilevel.allocate" @@ fun () ->
    let parts = Array.of_list partitions in
    let n = Array.length parts in
    let analysis = Compatibility.analyse design parts in
    if not (Compatibility.covers_design analysis) then (None, no_stats)
    else begin
      let cost_evaluations =
        Prtelemetry.counter telemetry "core.cost_evaluations"
      in
      let delta_evals = Prtelemetry.counter telemetry "perf.delta_evals" in
      let merges_counter = Prtelemetry.counter telemetry "multilevel.merges" in
      let moves_counter =
        Prtelemetry.counter telemetry "multilevel.refine_moves"
      in
      let passes_counter =
        Prtelemetry.counter telemetry "multilevel.refine_passes"
      in
      let configs = Design.configuration_count design in
      let words = words_for configs in
      let activity =
        Array.init n (fun p ->
            Array.init configs (fun c ->
                Compatibility.active analysis ~bp:p ~config:c))
      in
      let resources = Array.map (fun bp -> bp.Base_partition.resources) parts in
      let masks = Array.map (mask_of_activity ~words) activity in
      let cnodes =
        Array.init n (fun p ->
            { members = [ p ];
              mask = Array.copy masks.(p);
              acts = popcount masks.(p);
              res = resources.(p);
              conflicts = 0;
              alive = true })
      in
      (* --- Coarsening: heavy-edge matching rounds until the node count
         reaches the coarsest target or no admissible merge remains. *)
      let levels = ref 0 in
      let merges = ref 0 in
      let snapshots = ref [] in
      let snapshot () =
        let units = ref [] in
        for i = n - 1 downto 0 do
          if cnodes.(i).alive then units := cnodes.(i).members :: !units
        done;
        Array.of_list !units
      in
      let live_count () =
        Array.fold_left (fun acc c -> if c.alive then acc + 1 else acc) 0 cnodes
      in
      let continue = ref true in
      while !continue do
        let nlive = live_count () in
        if nlive <= options.coarsest then continue := false
        else begin
          let k = max options.coarsest (nlive / 2) in
          let demand =
            Array.fold_left
              (fun acc c ->
                if c.alive then Resource.add acc (Tile.quantize c.res) else acc)
              Resource.zero cnodes
          in
          let eps = epsilon ~budget ~demand in
          let cap r_budget r_demand =
            (1. +. eps) *. float_of_int r_demand /. float_of_int k
            |> Float.max (float_of_int r_budget /. float_of_int k)
          in
          let cap_clb = cap budget.Resource.clb demand.Resource.clb
          and cap_bram = cap budget.Resource.bram demand.Resource.bram
          and cap_dsp = cap budget.Resource.dsp demand.Resource.dsp in
          let admissible a b =
            let merged = Tile.quantize (Resource.max a.res b.res) in
            float_of_int merged.Resource.clb <= cap_clb
            && float_of_int merged.Resource.bram <= cap_bram
            && float_of_int merged.Resource.dsp <= cap_dsp
          in
          (* Score every compatible, balance-admissible pair. *)
          let pairs = ref [] in
          for i = 0 to n - 1 do
            if cnodes.(i).alive then
              for j = i + 1 to n - 1 do
                if
                  cnodes.(j).alive
                  && disjoint cnodes.(i).mask cnodes.(j).mask
                  && admissible cnodes.(i) cnodes.(j)
                then
                  pairs :=
                    ( merge_dtime cnodes.(i) cnodes.(j),
                      -.merge_area_gain cnodes.(i) cnodes.(j),
                      i,
                      j )
                    :: !pairs
              done
          done;
          let pairs = List.sort compare !pairs in
          let matched = Array.make n false in
          let applied = ref 0 in
          let to_merge = nlive - k in
          List.iter
            (fun (_, _, i, j) ->
              if !applied < to_merge && not matched.(i) && not matched.(j)
              then begin
                matched.(i) <- true;
                matched.(j) <- true;
                let a = cnodes.(i) and b = cnodes.(j) in
                a.conflicts <- a.conflicts + b.conflicts + (a.acts * b.acts);
                a.members <- a.members @ b.members;
                Array.iteri (fun w bits -> a.mask.(w) <- a.mask.(w) lor bits)
                  b.mask;
                a.acts <- a.acts + b.acts;
                a.res <- Resource.max a.res b.res;
                b.alive <- false;
                incr applied
              end)
            pairs;
          if !applied = 0 then continue := false
          else begin
            merges := !merges + !applied;
            incr levels;
            snapshots := snapshot () :: !snapshots
          end
        end
      done;
      Prtelemetry.Counter.incr ~by:!merges merges_counter;
      (* --- Initial partition: every coarse node its own region
         (founded at its smallest member index), valid by construction
         since coarse nodes are internally compatible. *)
      let placement = Array.make n (-1) in
      Array.iter
        (fun c ->
          if c.alive then begin
            let rep = List.fold_left min max_int c.members in
            List.iter (fun p -> placement.(p) <- rep) c.members
          end)
        cnodes;
      let energy =
        Energy.create
          ?penalty:(Option.map (fun p -> p.Cost.placement_cost) placement_hook)
          ~budget ~static_overhead:design.Design.static_overhead ~resources
          ~activity placement
      in
      Prtelemetry.Counter.incr cost_evaluations;
      (* Mirror of the committed placement plus a per-region occupancy
         count, so target selection never pays [Energy.placement]'s
         copy. *)
      let place = Array.copy placement in
      let occ = Array.make n 0 in
      Array.iter (fun r -> if r >= 0 then occ.(r) <- occ.(r) + 1) place;
      let deficit_of (e, _, t) =
        if t = max_int then infinity else (e -. float_of_int t) /. 200.
      in
      let cur = ref (Energy.current energy) in
      let first_feasible = ref None in
      let note_feasible (_, feasible, total) =
        if feasible && !first_feasible = None then
          first_feasible := Some total
      in
      note_feasible !cur;
      let improves candidate =
        let _, _, ct = candidate and _, _, bt = !cur in
        let cd = deficit_of candidate and bd = deficit_of !cur in
        cd < bd || (cd = bd && ct < bt)
      in
      let moves = ref 0 in
      let passes = ref 0 in
      let trials = ref 0 in
      let charge () =
        incr trials;
        Prtelemetry.Counter.incr cost_evaluations;
        (match guard with Some g -> Prguard.Budget.charge g | None -> ());
        match guard with
        | Some g when !trials land 31 = 0 && Prguard.Budget.interrupted g ->
          raise Interrupted
        | _ -> ()
      in
      (* Move one unit (a set of co-located partitions) to [target],
         committing member by member through the incremental energy
         kernel; a rejected multi-member move is rolled back the same
         way. Single-member units use propose/commit so rejection costs
         no undo work. *)
      let try_move members r_cur target =
        charge ();
        match members with
        | [ p ] ->
          Prtelemetry.Counter.incr delta_evals;
          let candidate = Energy.propose energy ~part:p ~target in
          if improves candidate then begin
            Energy.commit energy ~part:p ~target;
            true
          end
          else false
        | _ ->
          List.iter
            (fun p ->
              Prtelemetry.Counter.incr delta_evals;
              Energy.commit energy ~part:p ~target)
            members;
          let candidate = Energy.current energy in
          if improves candidate then true
          else begin
            List.iter
              (fun p ->
                Prtelemetry.Counter.incr delta_evals;
                Energy.commit energy ~part:p ~target:r_cur)
              members;
            false
          end
      in
      let accept members r_cur target =
        let count = List.length members in
        if r_cur >= 0 then occ.(r_cur) <- occ.(r_cur) - count;
        if target >= 0 then occ.(target) <- occ.(target) + count;
        List.iter (fun p -> place.(p) <- target) members;
        cur := Energy.current energy;
        note_feasible !cur;
        incr moves;
        Prtelemetry.Counter.incr moves_counter
      in
      (* Unit statistics at one level, for partner ranking. *)
      let unit_stats members =
        let mask = Array.make words 0 in
        let res = ref Resource.zero in
        let acts = ref 0 in
        let conflicts = ref 0 in
        List.iter
          (fun p ->
            let a = popcount masks.(p) in
            conflicts := !conflicts + (!acts * a);
            acts := !acts + a;
            Array.iteri
              (fun w bits -> mask.(w) <- mask.(w) lor bits)
              masks.(p);
            res := Resource.max !res resources.(p))
          members;
        { members;
          mask;
          acts = !acts;
          res = !res;
          conflicts = !conflicts;
          alive = true }
      in
      let refine_level units =
        let n_units = Array.length units in
        let stats = Array.map unit_stats units in
        let reps =
          Array.map (fun members -> List.fold_left min max_int members) units
        in
        (* Top-affinity partners per unit: the regions worth proposing,
           ranked by the merge-delta hyperedge weight. Exhaustive below
           [exhaustive_limit] nodes, where trying every occupied region
           is affordable and closes the optimality gap on small
           designs. *)
        let exhaustive = n <= options.exhaustive_limit in
        let partners =
          if exhaustive then [||]
          else
            Array.init n_units (fun u ->
                let best = ref [] in
                for v = 0 to n_units - 1 do
                  if v <> u && disjoint stats.(u).mask stats.(v).mask then begin
                    let score = merge_dtime stats.(u) stats.(v) in
                    best := (score, v) :: !best
                  end
                done;
                let sorted = List.sort compare !best in
                List.filteri (fun i _ -> i < options.partner_limit) sorted
                |> List.map snd)
        in
        let level_pass () =
          let improved = ref false in
          for u = 0 to n_units - 1 do
            let members = units.(u) in
            let r_cur = place.(List.hd members) in
            let count = List.length members in
            (* Candidate isolation region: an unoccupied region id owned
               by one of the unit's members (skipped when the unit
               already sits alone). *)
            let isolate =
              if r_cur >= 0 && occ.(r_cur) = count then None
              else List.find_opt (fun p -> occ.(p) = 0) members
            in
            let targets =
              let joins =
                if exhaustive then
                  List.filter
                    (fun r -> occ.(r) > 0)
                    (List.init n Fun.id)
                else
                  List.filter_map
                    (fun v ->
                      let r = place.(reps.(v)) in
                      if r >= 0 then Some r else None)
                    partners.(u)
              in
              let joins = List.sort_uniq compare joins in
              let extras =
                (match isolate with Some r -> [ r ] | None -> [])
                @ (if options.promote_static then [ -1 ] else [])
              in
              joins @ extras
            in
            let rec attempt = function
              | [] -> ()
              | t :: rest ->
                if t = r_cur then attempt rest
                else if try_move members r_cur t then begin
                  accept members r_cur t;
                  improved := true
                end
                else attempt rest
            in
            attempt targets
          done;
          !improved
        in
        let continue = ref true in
        let pass = ref 0 in
        while !continue && !pass < options.refine_passes do
          incr pass;
          incr passes;
          Prtelemetry.Counter.incr passes_counter;
          if not (level_pass ()) then continue := false
        done
      in
      (* --- Uncoarsen + refine: coarsest level first (whole-region
         moves restore feasibility), then progressively finer units,
         ending at single partitions. *)
      (try
         List.iter refine_level !snapshots;
         refine_level (Array.init n (fun p -> [ p ]))
       with Interrupted -> ());
      let _, feasible, total = !cur in
      let stats final_total =
        { levels = !levels;
          merges = !merges;
          passes = !passes;
          moves = !moves;
          trials = !trials;
          first_feasible_total = !first_feasible;
          final_total }
      in
      if not feasible then (None, stats None)
      else begin
        (* Renumber regions densely in first-appearance order. *)
        let mapping = Hashtbl.create 16 in
        let next = ref 0 in
        let resolved =
          Array.map
            (fun r ->
              if r < 0 then Scheme.Static
              else begin
                let id =
                  match Hashtbl.find_opt mapping r with
                  | Some id -> id
                  | None ->
                    let id = !next in
                    Hashtbl.add mapping r id;
                    incr next;
                    id
                in
                Scheme.Region id
              end)
            (Energy.placement energy)
        in
        match
          Scheme.make design
            (List.mapi (fun p bp -> (bp, resolved.(p))) (Array.to_list parts))
        with
        | Error _ -> (None, stats None)
        | Ok scheme ->
          (match memo with
           | Some memo ->
             Prtelemetry.Counter.incr cost_evaluations;
             Memo.add memo (Memo.scheme_signature scheme)
               (Cost.evaluate scheme)
           | None -> ());
          (Some scheme, stats (Some total))
      end
    end

let allocate ?options ?telemetry ?memo ?guard ?placement ~budget design
    partitions =
  fst
    (allocate_stats ?options ?telemetry ?memo ?guard ?placement ~budget design
       partitions)
