module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type options = { max_restarts : int; promote_static : bool }

let default_options = { max_restarts = 8; promote_static = true }

(* Scalar area in frame-equivalents, used for deficits and tie-breaks:
   frames contributed per primitive of each kind. *)
let frames_per_clb = float_of_int (Tile.frames_per_tile Clb) /. 20.
let frames_per_bram = float_of_int (Tile.frames_per_tile Bram) /. 4.
let frames_per_dsp = float_of_int (Tile.frames_per_tile Dsp) /. 8.

let scalar (r : Resource.t) =
  (float_of_int r.clb *. frames_per_clb)
  +. (float_of_int r.bram *. frames_per_bram)
  +. (float_of_int r.dsp *. frames_per_dsp)

let deficit ~budget (used : Resource.t) =
  let over a b = max 0 (a - b) in
  scalar
    { Resource.clb = over used.clb budget.Resource.clb;
      bram = over used.bram budget.Resource.bram;
      dsp = over used.dsp budget.Resource.dsp }

(* A live region: its member partitions (priority order), the resident
   partition per configuration (-1 = don't care), the sorted array of
   configurations in which it is active, and cached area/cost. *)
type region = {
  mutable members : int list;
  mutable column : int array;
  mutable active : int array;  (* ascending configs with a resident *)
  mutable resources : Resource.t;
  mutable quantized : Resource.t;
  mutable frames : int;
  mutable conflicts : float;  (* weighted count of reconfiguring pairs *)
  mutable alive : bool;
}

type state = {
  design : Design.t;
  partitions : Base_partition.t array;
  regions : region array;  (* indexed by founding partition *)
  mutable statics : int list;  (* partitions promoted to static *)
  configs : int;
  weights : float array;
      (* Flattened symmetric pair-weight matrix, [i * configs + j]:
         one array load per pair on the hot path, no closure calls. *)
}

let weight state i j = state.weights.((i * state.configs) + j)

let flatten_weights ~configs pair_weight =
  let w = Array.make (configs * configs) 0. in
  for i = 0 to configs - 1 do
    for j = i + 1 to configs - 1 do
      let v = pair_weight i j in
      w.((i * configs) + j) <- v;
      w.((j * configs) + i) <- v
    done
  done;
  w

let active_of_column column =
  let count = ref 0 in
  Array.iter (fun r -> if r >= 0 then incr count) column;
  let active = Array.make !count 0 in
  let k = ref 0 in
  Array.iteri
    (fun c r ->
      if r >= 0 then begin
        active.(!k) <- c;
        incr k
      end)
    column;
  active

(* Weighted sum over unordered config pairs with two distinct
   non-don't-care residents. With the default unit weight this is the
   paper's conflict count (eq. 8's decision variable summed over pairs).
   From-scratch reference — initialisation and the delta-equivalence
   property test; the search itself uses [cross] deltas. *)
let conflicts_of_column state column =
  let n = Array.length column in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let a = column.(i) in
    if a >= 0 then
      for j = i + 1 to n - 1 do
        let b = column.(j) in
        if b >= 0 && a <> b then acc := !acc +. weight state i j
      done
  done;
  !acc

(* The incremental kernel. Regions partition the member set, so two
   mergeable regions always host distinct residents: after a merge,
   every (active-in-a, active-in-b) configuration pair reconfigures.
   The merged conflict weight is therefore
     a.conflicts + b.conflicts + cross a b
   — only the pairs whose residents change are touched, O(|A|·|B|)
   instead of the O(configs^2) column rescan. *)
let cross state a b =
  let acc = ref 0. in
  let aa = a.active and ba = b.active in
  let na = Array.length aa and nb = Array.length ba in
  for i = 0 to na - 1 do
    let row = aa.(i) * state.configs in
    for j = 0 to nb - 1 do
      acc := !acc +. state.weights.(row + ba.(j))
    done
  done;
  !acc

let merged_conflicts state a b = a.conflicts +. b.conflicts +. cross state a b

let refresh_cost state region =
  region.quantized <- Tile.quantize region.resources;
  region.frames <- Tile.frames_of_resources region.resources;
  region.conflicts <- conflicts_of_column state region.column

let initial_state ~pair_weight design partitions analysis =
  let configs = Design.configuration_count design in
  let weights = flatten_weights ~configs pair_weight in
  let regions =
    Array.mapi
      (fun p (bp : Base_partition.t) ->
        let column =
          Array.init configs (fun c ->
              if Compatibility.active analysis ~bp:p ~config:c then p else -1)
        in
        { members = [ p ];
          column;
          active = active_of_column column;
          resources = bp.resources;
          quantized = Resource.zero;
          frames = 0;
          conflicts = 0.;
          alive = true })
      partitions
  in
  let state = { design; partitions; regions; statics = []; configs; weights } in
  Array.iter (refresh_cost state) state.regions;
  state

let copy_state state =
  { state with
    regions =
      Array.map
        (fun r ->
          { r with column = Array.copy r.column; active = Array.copy r.active })
        state.regions;
    statics = state.statics }

let static_resources state =
  List.fold_left
    (fun acc p ->
      Resource.add acc state.partitions.(p).Base_partition.resources)
    state.design.Design.static_overhead state.statics

let used_resources state =
  Array.fold_left
    (fun acc r -> if r.alive then Resource.add acc r.quantized else acc)
    (static_resources state) state.regions

(* Two regions may merge iff no configuration needs both — an ordered
   walk over the two sorted active arrays, O(|A| + |B|). *)
let mergeable a b =
  let aa = a.active and ba = b.active in
  let na = Array.length aa and nb = Array.length ba in
  let rec disjoint i j =
    if i >= na || j >= nb then true
    else if aa.(i) = ba.(j) then false
    else if aa.(i) < ba.(j) then disjoint (i + 1) j
    else disjoint i (j + 1)
  in
  disjoint 0 0

let merged_column a b =
  Array.init (Array.length a.column) (fun c ->
      if a.column.(c) >= 0 then a.column.(c) else b.column.(c))

let merged_active a b =
  (* Merge of two sorted disjoint arrays. *)
  let aa = a.active and ba = b.active in
  let na = Array.length aa and nb = Array.length ba in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na || !j < nb do
    (if !j >= nb || (!i < na && aa.(!i) < ba.(!j)) then begin
       out.(!k) <- aa.(!i);
       incr i
     end
     else begin
       out.(!k) <- ba.(!j);
       incr j
     end);
    incr k
  done;
  out

type move = Merge of int * int | Promote of int

(* Placement-awareness: the demand array of a state under the
   {!Cost.placement} convention (region slots in index order — dead
   slots contribute zero, which penalty hooks ignore — then the static
   side last), and the same array after a candidate move. *)
let state_demands state =
  let n = Array.length state.regions in
  Array.init (n + 1) (fun k ->
      if k = n then static_resources state
      else if state.regions.(k).alive then state.regions.(k).quantized
      else Resource.zero)

let moved_demands state move =
  let d = state_demands state in
  let n = Array.length state.regions in
  (match move with
   | Merge (i, j) ->
     d.(i) <-
       Tile.quantize
         (Resource.max state.regions.(i).resources state.regions.(j).resources);
     d.(j) <- Resource.zero
   | Promote i ->
     let raw =
       List.fold_left
         (fun acc p ->
           Resource.add acc state.partitions.(p).Base_partition.resources)
         Resource.zero state.regions.(i).members
     in
     d.(i) <- Resource.zero;
     d.(n) <- Resource.add d.(n) raw);
  d

(* Evaluate a move against the current state: the reconfiguration-time
   delta and the resulting resource usage. Delta evaluation — no column
   is rebuilt and no O(configs^2) rescan happens. *)
let evaluate_move state used move =
  match move with
  | Merge (i, j) ->
    let a = state.regions.(i) and b = state.regions.(j) in
    let resources = Resource.max a.resources b.resources in
    let quantized = Tile.quantize resources in
    let frames = Tile.frames_of_resources resources in
    let conflicts = merged_conflicts state a b in
    let dtime =
      (float_of_int frames *. conflicts)
      -. (float_of_int a.frames *. a.conflicts)
      -. (float_of_int b.frames *. b.conflicts)
    in
    let new_used =
      Resource.add
        (Resource.sub (Resource.sub used a.quantized) b.quantized)
        quantized
    in
    (dtime, new_used)
  | Promote i ->
    let r = state.regions.(i) in
    let raw =
      List.fold_left
        (fun acc p ->
          Resource.add acc state.partitions.(p).Base_partition.resources)
        Resource.zero r.members
    in
    ( -.(float_of_int r.frames *. r.conflicts),
      Resource.add (Resource.sub used r.quantized) raw )

let apply_move state move =
  match move with
  | Merge (i, j) ->
    let a = state.regions.(i) and b = state.regions.(j) in
    (* Delta update: the merged conflicts come from the incremental
       kernel; only the surviving region is touched. *)
    let conflicts = merged_conflicts state a b in
    a.members <- a.members @ b.members;
    a.column <- merged_column a b;
    a.active <- merged_active a b;
    a.resources <- Resource.max a.resources b.resources;
    a.quantized <- Tile.quantize a.resources;
    a.frames <- Tile.frames_of_resources a.resources;
    a.conflicts <- conflicts;
    b.alive <- false
  | Promote i ->
    let r = state.regions.(i) in
    state.statics <- state.statics @ r.members;
    r.alive <- false

let candidate_moves ~promote_static state =
  let n = Array.length state.regions in
  let moves = ref [] in
  for i = 0 to n - 1 do
    if state.regions.(i).alive then begin
      if promote_static then moves := Promote i :: !moves;
      for j = i + 1 to n - 1 do
        if
          state.regions.(j).alive
          && mergeable state.regions.(i) state.regions.(j)
        then moves := Merge (i, j) :: !moves
      done
    end
  done;
  !moves

(* One greedy descent. Over budget: minimise the deficit, then added time,
   then area. Within budget: apply time-reducing promotions only.
   [evaluate_move]/[apply_move] default to the plain implementations; the
   allocator passes telemetry-counting wrappers. *)
let guard_interrupted = function
  | None -> false
  | Some g -> Prguard.Budget.interrupted g

let greedy ~options ~budget ?guard ?(evaluate_move = evaluate_move)
    ?(apply_move = apply_move) state =
  let continue_ = ref true in
  while !continue_ do
    (* Deadline/cancellation only ([Prguard.Budget.interrupted]): an
       eval-cap-only budget never alters the descent, keeping capped
       runs deterministic. An interrupted descent simply stops; the
       restart loop keeps whatever incumbent it already has. *)
    if guard_interrupted guard then continue_ := false
    else begin
    let used = used_resources state in
    let current_deficit = deficit ~budget used in
    let moves = candidate_moves ~promote_static:options.promote_static state in
    let scored =
      List.map
        (fun m ->
          let dtime, new_used = evaluate_move state used m in
          (m, dtime, new_used, deficit ~budget new_used))
        moves
    in
    let best =
      if current_deficit > 0. then
        (* Progress = not increasing the deficit; merges always shrink
           area so ties are allowed, promotions must strictly help. *)
        let eligible =
          List.filter
            (fun (m, _, _, d) ->
              match m with
              | Merge _ -> d <= current_deficit
              | Promote _ -> d < current_deficit)
            scored
        in
        let better (_, t1, u1, d1) (_, t2, u2, d2) =
          match compare d1 d2 with
          | 0 -> (
            match compare t1 t2 with
            | 0 -> compare (scalar u1) (scalar u2)
            | c -> c)
          | c -> c
        in
        (match List.sort better eligible with m :: _ -> Some m | [] -> None)
      else
        let eligible =
          List.filter
            (fun (m, dtime, _, d) ->
              d = 0.
              && dtime < 0.
              && match m with Promote _ -> true | Merge _ -> false)
            scored
        in
        let better (_, t1, u1, _) (_, t2, u2, _) =
          match compare t1 t2 with
          | 0 -> compare (scalar u1) (scalar u2)
          | c -> c
        in
        (match List.sort better eligible with m :: _ -> Some m | [] -> None)
    in
    (match best with
    | Some (m, _, _, _) -> apply_move state m
    | None -> continue_ := false)
    end
  done;
  if deficit ~budget (used_resources state) > 0. then None else Some state

let scheme_of_state state =
  let next = ref 0 in
  let region_ids = Array.make (Array.length state.regions) (-1) in
  Array.iteri
    (fun i r ->
      if r.alive then begin
        region_ids.(i) <- !next;
        incr next
      end)
    state.regions;
  let placement = Array.make (Array.length state.partitions) Scheme.Static in
  Array.iteri
    (fun i r ->
      if r.alive then
        List.iter
          (fun p -> placement.(p) <- Scheme.Region region_ids.(i))
          r.members)
    state.regions;
  List.iter (fun p -> placement.(p) <- Scheme.Static) state.statics;
  Scheme.make_exn state.design
    (List.mapi
       (fun p bp -> (bp, placement.(p)))
       (Array.to_list state.partitions))

let signature_of_state state =
  let groups =
    Array.to_list state.regions
    |> List.filter_map (fun r -> if r.alive then Some r.members else None)
  in
  Memo.grouping_signature ~parts:state.partitions ~statics:state.statics
    ~groups

(* Rank restart results by the weighted objective (the greedy state's
   summed contributions), then the paper's worst case, then area. *)
let better_scheme a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ((_, va, ea) as a'), Some ((_, vb, eb) as b') ->
    let key value (e : Cost.evaluation) =
      (value, e.worst_frames, scalar e.used)
    in
    if key va ea <= key vb eb then Some a' else Some b'

let allocate ?(options = default_options) ?(pair_weight = fun _ _ -> 1.)
    ?(telemetry = Prtelemetry.null) ?memo ?guard ?placement ~budget design
    partitions =
  match partitions with
  | [] -> None
  | _ ->
    Prtelemetry.with_span telemetry "alloc.allocate" (fun () ->
        let moves_evaluated =
          Prtelemetry.counter telemetry "alloc.moves_evaluated"
        in
        let delta_evals = Prtelemetry.counter telemetry "perf.delta_evals" in
        let merges_accepted =
          Prtelemetry.counter telemetry "alloc.merges_accepted"
        in
        let promotions = Prtelemetry.counter telemetry "alloc.promotions" in
        let restarts_run = Prtelemetry.counter telemetry "alloc.restarts" in
        let cost_evaluations =
          Prtelemetry.counter telemetry "core.cost_evaluations"
        in
        (* Per-move time-delta distribution; {!Prtelemetry.Histogram.dead}
           unless the handle traces, so the default counting path pays a
           single branch per move. *)
        let move_delta = Prtelemetry.histogram telemetry "alloc.move_delta" in
        let pen_of demands =
          match placement with
          | None -> 0
          | Some p -> p.Cost.placement_cost demands
        in
        let evaluate_move state used move =
          Prtelemetry.Counter.incr moves_evaluated;
          (match guard with
           | Some g -> Prguard.Budget.charge g
           | None -> ());
          (match move with
           | Merge _ -> Prtelemetry.Counter.incr delta_evals
           | Promote _ -> ());
          let dtime, new_used = evaluate_move state used move in
          (* The placeability-penalty delta joins the time delta like
             extra frames, so both the descent ranking and the strict
             [dtime < 0] promotion filter see floorplan cost. *)
          let dtime =
            match placement with
            | None -> dtime
            | Some _ ->
              dtime
              +. float_of_int
                   (pen_of (moved_demands state move)
                   - pen_of (state_demands state))
          in
          Prtelemetry.Histogram.observe move_delta dtime;
          (dtime, new_used)
        in
        let apply_move state move =
          (match move with
           | Merge _ -> Prtelemetry.Counter.incr merges_accepted
           | Promote _ -> Prtelemetry.Counter.incr promotions);
          apply_move state move
        in
        let parts = Array.of_list partitions in
        let analysis = Compatibility.analyse design parts in
        if not (Compatibility.covers_design analysis) then None
        else begin
          let base = initial_state ~pair_weight design parts analysis in
          (* Transposition table over restart outcomes: restarts from
             different first moves frequently converge to the same
             allocation, which is then scored (and its scheme built)
             only once. The shared [memo] (engine-level evaluation
             cache) is keyed by the same content signature, so the
             engine's re-evaluation of the returned scheme is a hit
             too. *)
          let results = Memo.create ~telemetry ~capacity:1024 () in
          let run first_move =
            Prtelemetry.Counter.incr restarts_run;
            let state = copy_state base in
            Option.iter (apply_move state) first_move;
            match greedy ~options ~budget ?guard ~evaluate_move ~apply_move state with
            | None -> None
            | Some state ->
              let signature = signature_of_state state in
              Some
                (Memo.find_or_add results signature (fun () ->
                     let weighted_value =
                       Array.fold_left
                         (fun acc r ->
                           if r.alive then
                             acc +. (float_of_int r.frames *. r.conflicts)
                           else acc)
                         0. state.regions
                       (* Restart outcomes also rank placement-first:
                          a realisable allocation beats a cheaper one
                          the floorplan estimator rejects. *)
                       +. float_of_int (pen_of (state_demands state))
                     in
                     let scheme = scheme_of_state state in
                     Prtelemetry.Counter.incr cost_evaluations;
                     let evaluation =
                       match memo with
                       | Some shared ->
                         Memo.find_or_add shared signature (fun () ->
                             Cost.evaluate scheme)
                       | None -> Cost.evaluate scheme
                     in
                     (scheme, weighted_value, evaluation)))
          in
          (* Alternative first moves: the initial state's candidate moves
             ranked by (time delta, area), truncated to the restart budget. *)
          let restarts =
            let used = used_resources base in
            let ranked =
              List.sort
                (fun (_, t1, u1) (_, t2, u2) ->
                  match compare t1 t2 with
                  | 0 -> compare (scalar u1) (scalar u2)
                  | c -> c)
                (List.map
                   (fun m ->
                     let dtime, new_used = evaluate_move base used m in
                     (m, dtime, new_used))
                   (candidate_moves ~promote_static:options.promote_static base))
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | (m, _, _) :: rest -> Some m :: take (n - 1) rest
            in
            None :: take options.max_restarts ranked
          in
          let best =
            List.fold_left
              (fun best first_move ->
                if guard_interrupted guard then best
                else
                let best' = better_scheme best (run first_move) in
                let improved =
                  match (best', best) with
                  | Some (s', _, _), Some (s, _, _) -> s' != s
                  | Some _, None -> true
                  | None, _ -> false
                in
                (match best' with
                 | Some (scheme, value, e) when improved ->
                   if Prtelemetry.tracing telemetry then
                     Prtelemetry.point telemetry "alloc.best"
                       ~attrs:
                         [ ("value", Prtelemetry.Json.Float value);
                           ( "total_frames",
                             Prtelemetry.Json.Int e.Cost.total_frames );
                           ( "worst_frames",
                             Prtelemetry.Json.Int e.Cost.worst_frames );
                           ( "regions",
                             Prtelemetry.Json.Int scheme.Scheme.region_count )
                         ]
                 | _ -> ());
                best')
              None restarts
          in
          Option.map (fun (scheme, _, _) -> scheme) best
        end)

(* Search internals exposed for the delta-equivalence property tests
   (see test/test_perf.ml): the QCheck suite drives random move
   sequences and asserts the incrementally maintained conflict weights
   equal a from-scratch recomputation after every step. *)
module Search = struct
  type nonrec state = state
  type nonrec move = move = Merge of int * int | Promote of int

  let initial ?(pair_weight = fun _ _ -> 1.) design partitions =
    match partitions with
    | [] -> None
    | _ ->
      let parts = Array.of_list partitions in
      let analysis = Compatibility.analyse design parts in
      if not (Compatibility.covers_design analysis) then None
      else Some (initial_state ~pair_weight design parts analysis)

  let moves ?(promote_static = true) state =
    candidate_moves ~promote_static state

  let apply = apply_move

  let evaluate state used move = evaluate_move state used move
  let used = used_resources

  let alive state r = state.regions.(r).alive

  let region_conflicts state r = state.regions.(r).conflicts

  let recompute_conflicts state r =
    conflicts_of_column state state.regions.(r).column

  let merge_delta state i j =
    merged_conflicts state state.regions.(i) state.regions.(j)

  let merge_full state i j =
    conflicts_of_column state
      (merged_column state.regions.(i) state.regions.(j))

  let region_count state = Array.length state.regions
  let signature = signature_of_state
  let to_scheme = scheme_of_state
end
