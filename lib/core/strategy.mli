(** First-class search-backend selector for the engine.

    A strategy names the region-allocation backend {!Engine.solve} runs
    over the candidate partition sets: the paper's greedy descent (the
    default), exact branch-and-bound, simulated annealing, or the
    multilevel coarsen→partition→refine backend for huge designs
    ({!Multilevel}). Strategies compose with both the {!Prguard.Ladder}
    graceful-degradation policy (a ladder rung names a strategy plus a
    budget) and [Auto] device escalation, and are threaded through
    [Tool_flow], [prpart --strategy] and the [prpart serve] shed
    levels. *)

type t =
  | Greedy  (** Agglomerative clustering + greedy allocator (default). *)
  | Exact  (** Branch-and-bound ({!Exact}); exponential, small sets only. *)
  | Anneal  (** Simulated annealing ({!Anneal}). *)
  | Multilevel
      (** Coarsen→initial-partition→uncoarsen+refine over singleton
          mode nodes ({!Multilevel}); near-interactive on 50–500-module
          designs where exact/anneal blow their budgets. *)

val all : t list

val names : string list
(** The valid names, in {!all} order — listed by the {!of_string}
    rejection message. *)

val default : t
(** {!Greedy}, the engine's historical behaviour. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Case-insensitive; unknown names are rejected descriptively with the
    valid set listed (mirroring {!Prguard.Ladder.of_string}). *)

val validate : string -> (t, string) result
(** Alias of {!of_string} — the CLI-facing validation entry point,
    mirroring {!Prguard.Ladder.validate}. *)

val pp : Format.formatter -> t -> unit
