module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type result = {
  scheme : Scheme.t option;
  optimal : bool;
  states : int;
}

(* An in-construction region group; immutable so backtracking is free.

   Conflict counts are maintained incrementally. A fresh single-member
   group has zero conflicting pairs (every resident is the same
   partition), and extending a group with a partition whose active set
   is disjoint from the group's — the compatibility precondition checked
   by [extend_group] — adds exactly |new active| * |group active|
   conflicting pairs: every cross pair has two distinct residents, and
   no within-set pair changes. [conflicts_of_column] remains as the
   from-scratch reference the delta is property-tested against. *)
type group = {
  members : int list;  (* reverse assignment order *)
  column : int array;  (* config -> resident partition or -1 *)
  resources : Resource.t;
  active_count : int;  (* configurations with a resident *)
  conflicts : int;  (* config pairs with distinct residents *)
  contribution : int;  (* frames * conflicts *)
}

let conflicts_of_column column =
  let n = Array.length column in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if column.(i) >= 0 && column.(j) >= 0 && column.(i) <> column.(j) then
        incr count
    done
  done;
  !count

let group_of ~configs ~activity ~active_counts ~parts p =
  let column =
    Array.init configs (fun c -> if activity.(p).(c) then p else -1)
  in
  (* A single resident everywhere that is occupied: no conflicting
     pair, so the contribution is zero whatever the frame count. *)
  { members = [ p ];
    column;
    resources = parts.(p).Base_partition.resources;
    active_count = active_counts.(p);
    conflicts = 0;
    contribution = 0 }

let extend_group ~activity ~active_counts ~parts group p =
  (* [None] when partition [p] is co-active with the group somewhere. *)
  let column = Array.copy group.column in
  let ok = ref true in
  Array.iteri
    (fun c active ->
      if active then
        if column.(c) >= 0 then ok := false else column.(c) <- p)
    activity.(p);
  if not !ok then None
  else begin
    let resources =
      Resource.max group.resources parts.(p).Base_partition.resources
    in
    let conflicts = group.conflicts + (active_counts.(p) * group.active_count) in
    Some
      { members = p :: group.members;
        column;
        resources;
        active_count = group.active_count + active_counts.(p);
        conflicts;
        contribution = Tile.frames_of_resources resources * conflicts }
  end

let allocate ?(promote_static = true) ?(max_states = 2_000_000)
    ?(telemetry = Prtelemetry.null) ?memo ?guard ~budget design parts_list =
  match parts_list with
  | [] -> { scheme = None; optimal = true; states = 0 }
  | _ ->
    Prtelemetry.with_span telemetry "exact.allocate" (fun () ->
    let states_counter = Prtelemetry.counter telemetry "exact.states" in
    let pruned_counter = Prtelemetry.counter telemetry "exact.pruned" in
    let delta_evals = Prtelemetry.counter telemetry "perf.delta_evals" in
    let leaf_evals = Prtelemetry.counter telemetry "core.cost_evaluations" in
    let parts = Array.of_list parts_list in
    let n = Array.length parts in
    (* Depth-resolved introspection ([exact.depth<d>.states]/[.pruned])
       only when tracing: the extra array indexing stays off the default
       counting path. Depth d = partition index being assigned; leaves
       sit at depth n. *)
    let depth_counters =
      if Prtelemetry.tracing telemetry then
        Some
          (Array.init (n + 1) (fun d ->
               ( Prtelemetry.counter telemetry
                   (Printf.sprintf "exact.depth%d.states" d),
                 Prtelemetry.counter telemetry
                   (Printf.sprintf "exact.depth%d.pruned" d) )))
      else None
    in
    let frontier_peak = ref 0 in
    let analysis = Compatibility.analyse design parts in
    if not (Compatibility.covers_design analysis) then
      { scheme = None; optimal = true; states = 0 }
    else begin
      let configs = Design.configuration_count design in
      let activity =
        Array.init n (fun p ->
            Array.init configs (fun c ->
                Compatibility.active analysis ~bp:p ~config:c))
      in
      let active_counts =
        Array.map
          (fun row ->
            Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 row)
          activity
      in
      let states = ref 0 in
      let truncated = ref false in
      let best = ref None in
      let best_total = ref max_int in
      let static_base = design.Design.static_overhead in
      (* Evaluate a complete assignment at a leaf. *)
      let consider groups statics =
        Prtelemetry.Counter.incr leaf_evals;
        (match guard with
         | Some g -> Prguard.Budget.charge g
         | None -> ());
        let used =
          List.fold_left
            (fun acc g -> Resource.add acc (Tile.quantize g.resources))
            (List.fold_left
               (fun acc p ->
                 Resource.add acc parts.(p).Base_partition.resources)
               static_base statics)
            groups
        in
        if Resource.fits used ~within:budget then begin
          let total = List.fold_left (fun acc g -> acc + g.contribution) 0 groups in
          if total <= !best_total then begin
            (* Worst-case and area tie-breaks, computed only when the
               total is competitive. *)
            let frames =
              List.map
                (fun g -> Tile.frames_of_resources g.resources)
                groups
            in
            let worst = ref 0 in
            for i = 0 to configs - 1 do
              for j = i + 1 to configs - 1 do
                let cost = ref 0 in
                List.iter2
                  (fun g f ->
                    let a = g.column.(i) and b = g.column.(j) in
                    if a >= 0 && b >= 0 && a <> b then cost := !cost + f)
                  groups frames;
                if !cost > !worst then worst := !cost
              done
            done;
            let key = (total, !worst, Tile.frames_of_resources used) in
            let replace =
              match !best with
              | None -> true
              | Some (k, _, _) -> key < k
            in
            if replace then begin
              best := Some (key, groups, statics);
              best_total := total
            end
          end
        end
      in
      (* Canonical DFS: partition p joins an existing group, opens the
         next group, or goes static. *)
      let rec assign p groups statics committed =
        if !truncated then ()
        else begin
          incr states;
          Prtelemetry.Counter.incr states_counter;
          (match depth_counters with
           | Some slots ->
             Prtelemetry.Counter.incr (fst slots.(p));
             let open_groups = List.length groups in
             if open_groups > !frontier_peak then frontier_peak := open_groups
           | None -> ());
          (* Deadline/cancellation truncates the DFS like an exhausted
             state budget: the incumbent (if any) is returned with
             [optimal = false]. [interrupted] ignores eval caps, so
             capped runs stay deterministic — the ladder derives
             [max_states] from a rung's eval cap instead. *)
          (match guard with
           | Some g
             when !states land 1023 = 0 && Prguard.Budget.interrupted g ->
             truncated := true
           | _ -> ());
          if !truncated || !states > max_states then truncated := true
          else if committed > !best_total then begin
            (* Bound prune: the committed cost already exceeds the
               incumbent, so the whole subtree is skipped. *)
            Prtelemetry.Counter.incr pruned_counter;
            match depth_counters with
            | Some slots -> Prtelemetry.Counter.incr (snd slots.(p))
            | None -> ()
          end
          else if p = n then consider groups statics
          else begin
            List.iter
              (fun g ->
                match extend_group ~activity ~active_counts ~parts g p with
                | None -> ()
                | Some g' ->
                  Prtelemetry.Counter.incr delta_evals;
                  let rest =
                    List.map (fun other -> if other == g then g' else other)
                      groups
                  in
                  assign (p + 1) rest statics
                    (committed - g.contribution + g'.contribution))
              groups;
            let fresh = group_of ~configs ~activity ~active_counts ~parts p in
            assign (p + 1) (groups @ [ fresh ]) statics
              (committed + fresh.contribution);
            if promote_static then assign (p + 1) groups (p :: statics) committed
          end
        end
      in
      assign 0 [] [] 0;
      if depth_counters <> None then
        Prtelemetry.set_gauge telemetry "exact.frontier_peak"
          (float_of_int !frontier_peak);
      let scheme =
        Option.map
          (fun (_, groups, statics) ->
            let placement = Array.make n Scheme.Static in
            List.iteri
              (fun r g ->
                List.iter (fun p -> placement.(p) <- Scheme.Region r) g.members)
              groups;
            List.iter (fun p -> placement.(p) <- Scheme.Static) statics;
            Scheme.make_exn design
              (List.mapi (fun p bp -> (bp, placement.(p))) parts_list))
          !best
      in
      (* Seed the shared evaluation cache so downstream re-evaluations
         of the returned scheme (the engine's comparison pass) are
         cache hits. *)
      (match (scheme, memo) with
       | Some s, Some shared ->
         ignore
           (Memo.find_or_add shared (Memo.scheme_signature s) (fun () ->
                Cost.evaluate s)
             : Cost.evaluation)
       | _ -> ());
      { scheme; optimal = not !truncated; states = !states }
    end)
