(** Top-level partitioning driver (paper Fig. 6): feasibility check,
    clustering, candidate-set iteration, region-allocation search, and —
    in automatic device mode — escalation to the next larger FPGA when
    nothing better than a single region fits (paper §V). *)

type target =
  | Budget of Fpga.Resource.t
      (** A raw resource budget, like the case study's 6800 CLB / 50 BRAM
          / 150 DSP. *)
  | Fixed of Fpga.Device.t  (** The whole of a specific device. *)
  | Auto
      (** Pick the smallest device of {!Fpga.Device.sweep} that fits the
          single-region lower bound, escalating when partitioning finds
          nothing better than a single region. *)

type objective =
  | Total_frames
      (** The paper's metric: unweighted sum over all configuration
          pairs (eq. 10). *)
  | Weighted of float array array
      (** Expected reconfiguration rate under known transition statistics
          (the paper's future-work extension): entry [(i, j)] weights the
          [i -> j] transition, e.g. [Runtime.Markov.edge_rates]. Must be a
          square matrix over the design's configurations. *)

type options = {
  freq_rule : Cluster.Agglomerative.freq_rule;
  clique_limit : int;
  max_candidate_sets : int;
  allocator : Allocator.options;
  objective : objective;
  worst_limit : int option;
      (** Hard ceiling on the worst-case transition, in frames — the
          paper's real-time/safety-critical requirement that "no
          configuration transition take longer than a stipulated time"
          (eq. 11). Schemes exceeding it are discarded; [solve] fails
          when no explored scheme meets it. *)
}

val default_options : options
(** [Support] frequency rule, 32 candidate sets, default allocator
    options, [Total_frames] objective, no worst-case limit. *)

type search_stats = {
  memo_hits : int;  (** Evaluation-cache hits during this solve. *)
  memo_misses : int;  (** Evaluation-cache misses (model actually ran). *)
  exact_states : int;  (** Branch-and-bound states expanded. *)
  exact_pruned : int;  (** Subtrees cut by the bound. *)
  progress : (int * int) list;
      (** Best-cost-over-evaluations curve: (cumulative cost
          evaluations, best total frames) at each new incumbent, in
          acceptance order. Only collected when the caller's telemetry
          handle is {e tracing}; [[]] otherwise. Capped at a fixed
          sample count (256): when the curve fills up it is thinned to
          every other chronological sample and the sampling stride
          doubles, so arbitrarily long searches keep a bounded,
          deterministic, evenly-spread curve. *)
}
(** Search introspection: counter deltas over one solve (always
    populated, like [cost_evaluations]) plus the tracing-gated
    convergence curve. Rendered by [prpart profile]. *)

type outcome = {
  design : Prdesign.Design.t;
  scheme : Scheme.t;
  evaluation : Cost.evaluation;
  device : Fpga.Device.t option;  (** Set for [Fixed] and [Auto]. *)
  budget : Fpga.Resource.t;  (** The budget actually used. *)
  base_partitions : int;  (** Clusters produced by the agglomerative step. *)
  candidate_sets : int;  (** Candidate partition sets explored. *)
  escalations : int;  (** Device escalations performed ([Auto] only). *)
  cost_evaluations : int;
      (** Cost-model invocations attributable to this solve: full
          {!Cost.evaluate} runs plus the allocator's incremental move
          evaluations. Always populated, even when the caller passed no
          telemetry handle (the engine counts on an internal one). *)
  placement_penalty : int option;
      (** Integer placeability penalty of the winning scheme under the
          caller's [?placement] hook; [None] when the solve was not
          placement-aware. [Some 0] means the estimator proved the
          scheme placeable with zero weighted waste. *)
  search : search_stats;
  degraded : Prguard.Budget.verdict;
      (** How the guard shaped the answer. Equal to
          {!Prguard.Budget.no_budget} ([guarded = false]) when neither
          [budget] nor [ladder] was passed; otherwise [guarded = true]
          and [degraded] reports whether the scheme is a best-so-far
          answer (budget expired, sets skipped, a ladder rung escalated
          past or truncated) rather than a full run, with the expiry
          [reason], the producing ladder [rung] (["baseline"] for the
          seeded single-region/static incumbent), and the evaluation /
          wall-clock usage. *)
}

val solve :
  ?options:options ->
  ?telemetry:Prtelemetry.t ->
  ?strategy:Strategy.t ->
  ?jobs:int ->
  ?verify:bool ->
  ?budget:Prguard.Budget.t ->
  ?ladder:Prguard.Ladder.t ->
  ?placement:Cost.placement ->
  target:target ->
  Prdesign.Design.t ->
  (outcome, string) result
(** Errors are infeasibility reports (the design cannot fit the target,
    even as a single region). The returned scheme always fits the
    budget: in the worst case it is the single-region scheme.

    [placement] (default: none) makes the whole solve placement-aware:
    the hook's integer placeability penalty joins the objective inside
    the [Greedy]/[Anneal]/[Multilevel] searches (and their ladder
    rungs) {e and} the engine's final candidate ranking, so schemes the
    floorplanner cannot realise lose to realisable ones of comparable
    cost. [Exact] keeps its admissible frame-only bounds internally but
    still competes under the penalised final ranking. The hook must be
    pure and deterministic — it is called from parallel worker domains
    — and is typically {!Prfloorplan}'s estimator for the target
    device. Penalty evaluations are counted on the
    ["core.placement_evals"] telemetry counter, and the winning
    scheme's penalty is reported in [outcome.placement_penalty].
    Omitted, every output is bit-identical to the placement-unaware
    engine. Under [Auto] the caller's single hook is used unchanged for
    every attempted device, which is rarely meaningful — resolve the
    device first (the flow layer does).

    [strategy] (default {!Strategy.default}, i.e. [Greedy] — the
    historical pipeline, bit-for-bit) selects the search backend that
    runs inside the candidate-set fan-out: [Greedy] the agglomerative +
    greedy allocator, [Exact] branch-and-bound, [Anneal] simulated
    annealing, [Multilevel] the coarsen→partition→refine backend
    ({!Multilevel}) that scales to 50–500-module designs. Under
    [Multilevel] the clustering/covering passes are skipped entirely:
    the backend runs once over the mode-level node set
    ({!Multilevel.nodes}). All strategies share the feasibility
    precondition, baseline incumbents, worst-case limit, objective-aware
    ranking, guard/ladder composition and verification; only the greedy
    allocator {e searches} under a [Weighted] objective (the others
    optimise total frames and rely on the final ranking, exactly like
    the ladder rungs). The per-solve evaluation cache is tagged with the
    strategy name, so results from different backends can never alias.

    [jobs < 1] is rejected with a descriptive [Error] (never undefined
    [Par] behaviour).

    [budget] (default: none) bounds the solve — wall-clock deadline,
    cost-evaluation cap and/or cooperative cancel token
    ({!Prguard.Budget}). On expiry the engine {e always terminates with
    the best feasible scheme found so far} (at worst the single-region
    baseline) and reports the expiry in [outcome.degraded] instead of
    running to completion or failing. Determinism contract: an
    eval-cap-only budget expires at candidate-set boundaries, in a fixed
    order, so capped runs are fully reproducible (and force [jobs = 1]);
    deadlines and cancellation are polled cooperatively everywhere —
    including across [Par] domains — and are inherently timing
    dependent. With no budget at all, behaviour is bit-for-bit identical
    to an unguarded solve.

    [ladder] (default: none) runs the graceful-degradation escalation
    policy ({!Prguard.Ladder}, typically [exact → anneal → greedy →
    single-region]) instead of the plain candidate-set search: rungs are
    attempted in order under per-rung child budgets and the first rung
    that completes cleanly with an admissible incumbent supplies the
    answer; every rung's best-so-far result is kept as a fallback. A
    [multilevel] rung runs one {!Multilevel} V-cycle over the mode-level
    node set (independent of the candidate sets), so a ladder can
    degrade {e into} multilevel instead of straight to the baseline.
    Recorded as ["guard.rungs_attempted"] / ["guard.rungs_completed"] /
    ["guard.degradations"] / ["guard.sets_skipped"] counters and in
    [outcome.degraded.rung]. Ladder runs force [jobs = 1] (rung eval
    caps must expire deterministically).

    [verify] (default [false]) re-runs the cost model from scratch on
    the winning scheme — bypassing the memo table and the incremental
    kernels — and fails with an explanatory [Error] unless the reported
    evaluation matches bit-for-bit ({!Cost.equal_evaluation}). Counted
    as ["verify.engine_checks"] / ["verify.engine_failures"]. The full
    independent-oracle suite (covering, conflicts, floorplan, bitstream,
    transitions) lives in the [Prverify] library, which layers on top of
    this self-check.

    [jobs] (default 1) fans the candidate-set allocations out across
    that many domains ({!Par}). The parallel path is {e bit-identical}
    to the sequential one: the ordered map preserves input order and
    the winning-scheme fold runs sequentially after the join, so the
    outcome — scheme, evaluation and all counts — does not depend on
    [jobs]. Each domain works against a private counting handle and
    evaluation cache (merged afterwards), so per-allocator spans and
    trace events are not recorded when [jobs > 1]; counters are.

    Scheme evaluations are memoised per solve in a transposition table
    keyed by canonical content signatures ({!Memo.scheme_signature}):
    candidate sets converging to the same allocation — and, under
    [Auto], re-evaluations across device escalations — are cache hits,
    visible as ["perf.cache_hits"] / ["perf.cache_misses"].

    [telemetry] (default {!Prtelemetry.null}, free): an ["engine.solve"]
    span with one ["engine.solve_budget"] child per budget attempted
    (wrapped in ["engine.attempt"] under [Auto]); the instrumentation of
    the clustering, covering and allocation passes it triggers; an
    ["engine.escalations"] counter and ["engine.escalate"] trace points;
    ["scheme.accepted"] / ["scheme.rejected"] trace points per candidate
    set; and an ["engine.best_total_frames"] gauge tracking the
    incumbent. *)

val is_single_region_like : Scheme.t -> bool
(** True when the scheme has exactly one region and nothing promoted to
    static — the escalation trigger. *)
