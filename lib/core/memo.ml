module Base_partition = Cluster.Base_partition

type 'v t = {
  table : (string, 'v) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  hit_counter : Prtelemetry.Counter.t;
  miss_counter : Prtelemetry.Counter.t;
  telemetry : Prtelemetry.t;
  (* Depth-resolved hit/miss counters ([memo.depth<d>.hits]/[.misses]),
     created lazily and only when the handle traces — the plain counters
     above stay the only cost on the default counting path. *)
  depth_counters : (int, Prtelemetry.Counter.t * Prtelemetry.Counter.t) Hashtbl.t;
  depth_enabled : bool;
  tag : string option;
  (* Precomputed ["<tag>!"] key prefix ([""] untagged): every lookup and
     insertion key is namespaced by the tag, so tables tagged with
     different search strategies can never alias entries — even after
     [absorb], which copies raw (already-prefixed) keys. *)
  prefix : string;
}

let create ?(telemetry = Prtelemetry.null) ?(capacity = 65536) ?tag () =
  { table = Hashtbl.create 256;
    capacity = max 1 capacity;
    hits = 0;
    misses = 0;
    hit_counter = Prtelemetry.counter telemetry "perf.cache_hits";
    miss_counter = Prtelemetry.counter telemetry "perf.cache_misses";
    telemetry;
    depth_counters = Hashtbl.create 4;
    depth_enabled = Prtelemetry.tracing telemetry;
    tag;
    prefix = (match tag with None -> "" | Some t -> t ^ "!") }

let tag t = t.tag

let keyed t key = if t.prefix = "" then key else t.prefix ^ key

let depth_slot t d =
  match Hashtbl.find_opt t.depth_counters d with
  | Some slot -> slot
  | None ->
    let slot =
      ( Prtelemetry.counter t.telemetry (Printf.sprintf "memo.depth%d.hits" d),
        Prtelemetry.counter t.telemetry
          (Printf.sprintf "memo.depth%d.misses" d) )
    in
    Hashtbl.add t.depth_counters d slot;
    slot

let find ?depth t key =
  match Hashtbl.find_opt t.table (keyed t key) with
  | Some _ as v ->
    t.hits <- t.hits + 1;
    Prtelemetry.Counter.incr t.hit_counter;
    (if t.depth_enabled then
       match depth with
       | Some d -> Prtelemetry.Counter.incr (fst (depth_slot t d))
       | None -> ());
    v
  | None ->
    t.misses <- t.misses + 1;
    Prtelemetry.Counter.incr t.miss_counter;
    (if t.depth_enabled then
       match depth with
       | Some d -> Prtelemetry.Counter.incr (snd (depth_slot t d))
       | None -> ());
    None

(* Raw insertion (key already namespaced), shared by [add] and
   [absorb]. Bounded by generational clearing: cheaper than per-entry
   eviction and good enough for search workloads where the working set
   turns over wholesale between solves. *)
let add_raw t key value =
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  Hashtbl.replace t.table key value

let add t key value = add_raw t (keyed t key) value

let find_or_add ?depth t key compute =
  match find ?depth t key with
  | Some v -> v
  | None ->
    let v = compute () in
    add t key v;
    v

let hits t = t.hits
let misses t = t.misses
let length t = Hashtbl.length t.table

let iter f t = Hashtbl.iter f t.table

let absorb ~into t = iter (fun k v -> add_raw into k v) t

(* Signatures.

   Encoding: decimal integers with one-character structural separators
   ([,] between ints, [|] between members, [/] between groups, [#]
   before the static set). Unambiguous because the payloads are decimal
   digits only; exact because the table keys on the whole string. *)

let encode_int_list buf sep xs =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf sep;
      Buffer.add_string buf (string_of_int x))
    xs

(* A member is identified by its mode content, which is what determines
   its resources and its activity — partition indices differ across
   candidate sets, mode sets do not. *)
let member_key (parts : Base_partition.t array) p =
  let buf = Buffer.create 16 in
  encode_int_list buf ',' parts.(p).Base_partition.modes;
  Buffer.contents buf

let canonical ~member_keys ~statics ~groups =
  let group_strings =
    List.sort String.compare
      (List.map
         (fun members ->
           String.concat "|"
             (List.sort String.compare (List.map member_keys members)))
         groups)
  in
  let static_string =
    String.concat "|" (List.sort String.compare (List.map member_keys statics))
  in
  String.concat "/" group_strings ^ "#" ^ static_string

let grouping_signature ~parts ~statics ~groups =
  canonical ~member_keys:(member_key parts) ~statics ~groups

let members_signature parts members =
  String.concat "|"
    (List.sort String.compare (List.map (member_key parts) members))

let scheme_signature (s : Scheme.t) =
  let groups =
    List.init s.Scheme.region_count (fun r -> Scheme.region_members s r)
  in
  grouping_signature ~parts:s.Scheme.partitions
    ~statics:(Scheme.static_members s) ~groups

let placement_signature placement =
  (* Canonical renumbering by first appearance; -1 (static) is kept
     as-is. The fast per-search form: one pass, no sorting. *)
  let n = Array.length placement in
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  let buf = Buffer.create (n * 3) in
  for p = 0 to n - 1 do
    if p > 0 then Buffer.add_char buf ',';
    let r = placement.(p) in
    if r < 0 then Buffer.add_char buf 's'
    else begin
      let id =
        match Hashtbl.find_opt mapping r with
        | Some id -> id
        | None ->
          let id = !next in
          Hashtbl.add mapping r id;
          incr next;
          id
      in
      Buffer.add_string buf (string_of_int id)
    end
  done;
  Buffer.contents buf
