(** Design-space exploration on top of the engine.

    The paper notes the tool "can be used to find the best partition for a
    given FPGA or can suggest the smallest FPGA suitable to implement the
    given design"; this module adds the systematic version: sweep budgets
    between the single-region lower bound and the fully static upper
    bound, partition at each, and report the area/reconfiguration-time
    trade-off curve. *)

type point = {
  budget : Fpga.Resource.t;
  total_frames : int;
  worst_frames : int;
  used : Fpga.Resource.t;
  used_frames : int;  (** Scalar area of [used], in frame-equivalents. *)
  regions : int;
  statics : int;
}

val scaled_budgets : ?steps:int -> Prdesign.Design.t -> Fpga.Resource.t list
(** [steps] budgets (default 8) interpolated component-wise between the
    tile-quantised single-region requirement (plus static overhead) and
    the fully static requirement (plus overhead), inclusive. *)

val sweep :
  ?options:Engine.options ->
  ?telemetry:Prtelemetry.t ->
  Prdesign.Design.t ->
  budgets:Fpga.Resource.t list ->
  (Fpga.Resource.t * point option) list
(** Solve at every budget; [None] marks infeasible budgets.

    [telemetry] (default {!Prtelemetry.null}, free): a
    ["design_space.sweep"] span enclosing one full {!Engine.solve}
    instrumentation per budget, ["design_space.feasible"] /
    ["design_space.infeasible"] counters, and a ["design_space.point"]
    trace event per budget (when tracing). *)

val frontier : point list -> point list
(** Pareto-optimal points under (smaller area, smaller total time),
    sorted by ascending area. Duplicate-area points keep the best time. *)

val suggest_device : Prdesign.Design.t -> Fpga.Device.t option
(** Smallest catalogued device whose full resources admit a feasible
    partitioning — the paper's "suggest the smallest FPGA". *)

val render : (Fpga.Resource.t * point option) list -> string
