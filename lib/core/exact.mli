(** Exact region allocation by branch-and-bound, for small candidate sets.

    Enumerates every partition of the candidate set into compatible region
    groups plus an optional static set (canonical set-partition order, so
    each allocation is visited once), pruning branches whose committed
    reconfiguration cost already exceeds the incumbent. Exponential in the
    candidate-set size — intended for validating the greedy
    {!Allocator} (optimality-gap tests and the ablation bench), not for
    production runs on large designs. *)

type result = {
  scheme : Scheme.t option;
      (** Best feasible allocation, or [None] when nothing fits. *)
  optimal : bool;
      (** False when the state budget was exhausted before the search
          space was covered; the scheme (if any) is then only the best
          incumbent. *)
  states : int;  (** Assignments expanded. *)
}

val allocate :
  ?promote_static:bool ->
  ?max_states:int ->
  ?telemetry:Prtelemetry.t ->
  ?memo:Cost.evaluation Memo.t ->
  ?guard:Prguard.Budget.t ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  result
(** [allocate ~budget design candidate_set]. Defaults: promotion enabled,
    [max_states = 2_000_000]. Candidate partitions keep their priority
    order (it defines activity, as in {!Allocator}). Schemes are compared
    by total reconfiguration frames, then worst-case frames, then area in
    frames.

    Group costing is {e incremental}: a fresh group contributes zero
    conflicts and extending a group with a compatible partition adds
    exactly [|new active| * |group active|] conflicting pairs (active
    sets of co-resident partitions are disjoint), so no residency column
    is rescanned during the DFS.

    [memo] (default: none) is the engine-level evaluation cache: the
    returned scheme's evaluation is stored under its canonical
    {!Memo.scheme_signature}, making downstream re-evaluation a hit.

    [guard] (default: none) bounds the search: leaf evaluations are
    charged against the budget, and deadline expiry or cancellation
    ({!Prguard.Budget.interrupted}, polled every 1024 states) truncates
    the DFS exactly like an exhausted [max_states] — the incumbent (if
    any) is returned with [optimal = false]. An eval-cap-only guard
    never alters the search; bound [max_states] instead, which is what
    the engine's degradation ladder derives from a rung's eval cap.

    [telemetry] (default {!Prtelemetry.null}, free): an
    ["exact.allocate"] span; ["exact.states"], ["perf.delta_evals"] and
    ["core.cost_evaluations"] (leaf evaluations) counters. *)

val conflicts_of_column : int array -> int
(** From-scratch conflict count of a residency column (config ->
    resident partition or [-1]) — the reference the incremental group
    costing is property-tested against. Exposed for the Prspeed tests. *)
