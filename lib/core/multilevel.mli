(** Multilevel coarsen→initial-partition→uncoarsen+refine region
    allocation, in the style of multilevel hypergraph partitioners
    (mt-KaHyPar): the backend that scales the engine to 50–500-module
    designs where branch-and-bound and annealing blow their budgets
    (DESIGN.md §12).

    Modes (as singleton base partitions) are the hypergraph nodes; the
    configuration co-occurrence structure supplies the hyperedge
    weights (the reconfiguration-time delta of merging two compatible
    nodes into one region, exactly the greedy allocator's move
    ranking). {b Coarsening} runs heavy-edge matching rounds — only
    compatible (never co-active) nodes may match, so every coarse node
    is a valid region by construction — with balance enforced on the
    full CLB/BRAM/DSP vector via a per-resource epsilon-tightness
    ceiling. The {b initial partition} places each coarse node in its
    own region. {b Uncoarsening} then replays the levels finest-ward,
    {b refining} at each level by moving whole units (coarse nodes,
    then progressively finer sub-units, finally single partitions)
    between regions, into fresh regions, or to static.

    Refinement reuses the {!Anneal.Energy} incremental kernel for
    exact O(affected-region) move costing, so refined schemes stay
    exactly costed: a move is accepted only when it strictly reduces
    (budget deficit, total reconfiguration frames) lexicographically —
    deficit-reducing moves restore feasibility, and once feasible the
    exact evaluated cost is monotonically non-increasing (the property
    the Prscale tests pin).

    Fully deterministic: no randomness, all ties broken by node
    index. *)

type options = {
  coarsest : int;
      (** Stop coarsening at this many nodes (the initial region-count
          target). Default 8. *)
  refine_passes : int;  (** Max refinement passes per level. Default 4. *)
  partner_limit : int;
      (** Candidate target regions per unit, ranked by hyperedge
          affinity. Default 8. *)
  exhaustive_limit : int;
      (** Below this many nodes every occupied region is a candidate
          target (closes the optimality gap on small designs).
          Default 48. *)
  promote_static : bool;  (** Allow moves to the static area. Default
                              [true]. *)
}

val default_options : options

val nodes : Prdesign.Design.t -> Cluster.Base_partition.t list
(** The multilevel node set: one singleton base partition per mode
    used by at least one configuration, weighted by support, in mode-id
    order. Skips the clustering/covering passes entirely — the first
    scalability wall of the default pipeline. *)

type stats = {
  levels : int;  (** Coarsening rounds performed. *)
  merges : int;  (** Node merges across all rounds. *)
  passes : int;  (** Refinement passes across all levels. *)
  moves : int;  (** Accepted refinement moves. *)
  trials : int;  (** Move trials (cost-model invocations). *)
  first_feasible_total : int option;
      (** Total frames when feasibility was first reached — the
          pre-refinement cost the monotonicity property compares the
          final cost against. *)
  final_total : int option;  (** Total frames of the returned scheme. *)
}

val allocate :
  ?options:options ->
  ?telemetry:Prtelemetry.t ->
  ?memo:Cost.evaluation Memo.t ->
  ?guard:Prguard.Budget.t ->
  ?placement:Cost.placement ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option
(** Best feasible scheme of one multilevel V-cycle over the given node
    set (typically {!nodes}), or [None] when no feasible placement was
    reached. Deterministic — bit-identical for any [?jobs] at the
    engine level, since the backend is sequential and runs once.

    [placement] (default: none) threads the placeability penalty into
    every refinement energy (via {!Anneal.Energy}), so refinement
    trades frames against floorplan realisability; omitted, the search
    is bit-identical to the placement-unaware implementation.

    [guard] (default: none): every move trial is charged; deadline
    expiry or cancellation ({!Prguard.Budget.interrupted}, polled every
    32 trials) stops refinement and returns the best committed
    placement. An eval-cap-only guard never alters the search (the cap
    is enforced at the engine's boundaries), keeping capped runs
    deterministic.

    [memo] (default: none): the returned scheme's evaluation is stored
    under its canonical {!Memo.scheme_signature}, making the engine's
    re-evaluation a hit.

    [telemetry] (default {!Prtelemetry.null}, free): a
    ["multilevel.allocate"] span; ["multilevel.merges"],
    ["multilevel.refine_moves"], ["multilevel.refine_passes"],
    ["core.cost_evaluations"] and ["perf.delta_evals"] counters. *)

val allocate_stats :
  ?options:options ->
  ?telemetry:Prtelemetry.t ->
  ?memo:Cost.evaluation Memo.t ->
  ?guard:Prguard.Budget.t ->
  ?placement:Cost.placement ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option * stats
(** {!allocate} plus the per-run search statistics — the hooks the
    QCheck properties and the bench report use. *)
