(** Simulated-annealing region allocation — the search strategy of the
    related work the paper compares against (Montone et al. use simulated
    annealing for PR partitioning/floorplanning). Provided as an
    alternative to the greedy {!Allocator} over the same solution space
    (cluster → region/static assignments, identical cost model), so the
    two heuristics and the exact optimum ({!Exact}) can be compared like
    for like. *)

type options = {
  iterations : int;  (** Metropolis steps. Default 60_000. *)
  initial_temperature : float;  (** In frames; default 20_000. *)
  cooling : float;  (** Geometric factor per step, in (0, 1). Default
                        0.9998. *)
  seed : int;  (** Deterministic RNG seed. Default 1. *)
  promote_static : bool;  (** Allow the static move. Default [true]. *)
}

val default_options : options

val allocate :
  ?options:options ->
  ?telemetry:Prtelemetry.t ->
  ?guard:Prguard.Budget.t ->
  ?placement:Cost.placement ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option
(** Best {e feasible} scheme encountered during the anneal (infeasible
    states are explored via an area-deficit penalty but never returned),
    or [None] when none was found. Deterministic in [options.seed].

    [placement] (default: none) adds the placeability penalty to every
    energy as if it were extra frames, steering the walk towards
    schemes the floorplanner can realise; omitted, the walk is
    bit-identical to the placement-unaware implementation.

    [guard] (default: none) bounds the walk: every Metropolis step is
    charged against the budget, and on deadline expiry or cancellation
    ({!Prguard.Budget.interrupted}, polled every 256 iterations) the
    walk breaks early, returning the best feasible placement found so
    far. An eval-cap-only guard never alters the walk — callers bound
    iterations via [options.iterations] instead, which is what the
    engine's degradation ladder derives from a rung's eval cap.

    Move evaluation is {e incremental}: a move reassigns one partition,
    so only the source and destination regions are re-scored and the
    global sums (total frames, quantized usage, validity) are maintained
    as exact integers — the resulting energies are bit-identical to a
    from-scratch evaluation, preserving the acceptance trajectory of the
    pre-incremental implementation. Revisited placements are served from
    a per-search transposition table keyed by
    {!Memo.placement_signature}.

    [telemetry] (default {!Prtelemetry.null}, free): an
    ["anneal.allocate"] span; ["anneal.steps"], ["anneal.accepted"],
    ["anneal.best_updates"], ["core.cost_evaluations"],
    ["perf.delta_evals"], ["perf.cache_hits"] and ["perf.cache_misses"]
    counters; and an ["anneal.best"] trajectory event per improvement
    (when tracing). *)

(** Incremental energy engine, exposed for the Prspeed property tests:
    drive arbitrary propose/commit sequences (including rejected moves,
    which cost nothing to undo) and check the incrementally maintained
    sums against {!Energy.from_scratch}. Not a stable API for production
    callers — use {!allocate}. *)
module Energy : sig
  type t

  val create :
    ?penalty:(Fpga.Resource.t array -> int) ->
    budget:Fpga.Resource.t ->
    static_overhead:Fpga.Resource.t ->
    resources:Fpga.Resource.t array ->
    activity:bool array array ->
    int array ->
    t
  (** [create ~budget ~static_overhead ~resources ~activity placement]
      builds the engine over [placement] (region id per partition, [-1]
      for static; region ids are partition indices). [activity.(p).(c)]
      states whether partition [p] is active in configuration [c].

      [penalty] (default: none) is the placement-awareness hook: called
      with one demand per region id in order plus the static side last
      (the {!Cost.placement} convention; empty regions contribute
      {!Fpga.Resource.zero}), its integer result joins the energy and
      the comparison total exactly like extra frames. *)

  val current : t -> float * bool * int
  (** Energy, feasibility and objective total (frames plus placeability
      penalty; just frames when no [penalty] hook is installed) of the
      committed placement. Invalid placements (two members of one
      region active in the same configuration) evaluate to
      [(infinity, false, max_int)]. *)

  val propose : t -> part:int -> target:int -> float * bool * int
  (** Candidate evaluation of reassigning [part] to [target] without
      committing — the committed state is untouched, so rejecting the
      move requires no undo work. *)

  val commit : t -> part:int -> target:int -> unit
  (** Install the move, reusing the snapshots of a matching prior
      {!propose} when available and recomputing them otherwise (the
      transposition-hit path). *)

  val placement : t -> int array
  (** Copy of the committed placement. *)

  val from_scratch : t -> float * bool * int
  (** Ground-truth re-evaluation of the committed placement, ignoring
      all incremental state — the oracle the property tests compare
      {!current} against. *)
end
