module Design = Prdesign.Design
module Resource = Fpga.Resource
module Agglomerative = Cluster.Agglomerative

type target = Budget of Resource.t | Fixed of Fpga.Device.t | Auto

type objective = Total_frames | Weighted of float array array

type options = {
  freq_rule : Agglomerative.freq_rule;
  clique_limit : int;
  max_candidate_sets : int;
  allocator : Allocator.options;
  objective : objective;
  worst_limit : int option;
}

let default_options =
  { freq_rule = Agglomerative.Support;
    clique_limit = 100_000;
    max_candidate_sets = 32;
    allocator = Allocator.default_options;
    objective = Total_frames;
    worst_limit = None }

let meets_worst_limit ~options (e : Cost.evaluation) =
  match options.worst_limit with
  | None -> true
  | Some limit -> e.Cost.worst_frames <= limit

(* Search introspection attached to every outcome. Hit/miss and prune
   totals are counter deltas over the solve (cheap, always populated,
   like [cost_evaluations]); [progress] — the best-cost-over-evaluations
   curve — is only collected when the caller's handle traces, so the
   default path allocates nothing. *)
type search_stats = {
  memo_hits : int;
  memo_misses : int;
  exact_states : int;
  exact_pruned : int;
  progress : (int * int) list;
}

let no_search_stats =
  { memo_hits = 0;
    memo_misses = 0;
    exact_states = 0;
    exact_pruned = 0;
    progress = [] }

type outcome = {
  design : Design.t;
  scheme : Scheme.t;
  evaluation : Cost.evaluation;
  device : Fpga.Device.t option;
  budget : Resource.t;
  base_partitions : int;
  candidate_sets : int;
  escalations : int;
  cost_evaluations : int;
  placement_penalty : int option;
  search : search_stats;
  degraded : Prguard.Budget.verdict;
}

let is_single_region_like (s : Scheme.t) =
  s.Scheme.region_count = 1 && Scheme.static_members s = []

(* Scheme ranking under the selected objective: objective value first,
   then the paper's worst case, then area. With a placement hook the
   integer placeability penalty joins the objective value, so schemes
   the floorplanner cannot realise lose the final ranking too — not
   just the allocator-internal searches. *)
let scheme_key ?placement ~objective scheme (e : Cost.evaluation) =
  let value =
    match objective with
    | Total_frames -> float_of_int e.Cost.total_frames
    | Weighted weights -> Cost.weighted_total scheme ~weights
  in
  let value =
    match placement with
    | None -> value
    | Some p -> value +. float_of_int (Cost.placement_penalty p scheme)
  in
  (value, e.Cost.worst_frames, Fpga.Tile.frames_of_resources e.Cost.used)

let better ?placement ~objective a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (sa, ea), Some (sb, eb) ->
    if
      scheme_key ?placement ~objective sa ea
      <= scheme_key ?placement ~objective sb eb
    then Some (sa, ea)
    else Some (sb, eb)

let pair_weight_of_objective ~configs = function
  | Total_frames -> Ok (fun _ _ -> 1.)
  | Weighted weights ->
    if
      Array.length weights <> configs
      || Array.exists (fun row -> Array.length row <> configs) weights
    then Error "objective weight matrix does not match the configurations"
    else Ok (fun i j -> weights.(i).(j) +. weights.(j).(i))

(* Total cost-model invocations attributable to one [solve] call: full
   [Cost.evaluate] runs plus the allocator's incremental move
   evaluations, read back from the telemetry counters as a delta so a
   caller-supplied handle can span several solves. *)
let cost_evaluation_counters tele =
  Prtelemetry.counter_value tele "core.cost_evaluations"
  + Prtelemetry.counter_value tele "alloc.moves_evaluated"

(* What one budget attempt produced, including how the guard shaped it:
   [rung] names the degradation-ladder rung that supplied the winning
   scheme (when a ladder ran), [fell_back] records that the answer is
   best-so-far rather than a full run (sets skipped, a rung escalated
   past, a truncated exact search), [reason] the budget-side cause. *)
type budget_solution = {
  bs_scheme : Scheme.t;
  bs_evaluation : Cost.evaluation;
  bs_partitions : int;
  bs_sets : int;
  bs_rung : string option;
  bs_fell_back : bool;
  bs_reason : Prguard.Budget.reason option;
}

(* Solve for a fixed budget. The single-region scheme is the universal
   fallback: the feasibility precondition guarantees it fits. *)
let solve_budget ~options ~strategy ~tele ~jobs ~memo ~note_progress ?guard
    ?ladder ?placement ~budget design =
  Prtelemetry.with_span tele "engine.solve_budget"
    ~attrs:[ ("budget", Prtelemetry.Json.String (Resource.to_string budget)) ]
  @@ fun () ->
  let evals = Prtelemetry.counter tele "core.cost_evaluations" in
  (* Count every placeability-penalty evaluation on the handle that the
     evaluating code runs against: the shared handle sequentially, the
     worker's private handle inside the parallel fan-out (handles are
     not domain-safe; workers merge in input order, so the total stays
     deterministic for any [jobs]). *)
  let counted_placement telemetry =
    Option.map
      (fun (p : Cost.placement) ->
        let c = Prtelemetry.counter telemetry "core.placement_evals" in
        { p with
          Cost.placement_cost =
            (fun demands ->
              Prtelemetry.Counter.incr c;
              p.Cost.placement_cost demands) })
      placement
  in
  let placement_tele = counted_placement tele in
  (* Every evaluation goes through the shared transposition table keyed
     by canonical content signature: re-scoring the scheme an allocator
     run already evaluated — or a scheme another candidate set converged
     to — is a cache hit. The counter tracks cost-model {e lookups}, as
     before; the table tracks which of them actually ran the model.
     Evaluations are also charged against the guard, so an eval cap
     expires after a deterministic number of lookups. *)
  let evaluate ?depth scheme =
    Prtelemetry.Counter.incr evals;
    (match guard with Some g -> Prguard.Budget.charge g | None -> ());
    Memo.find_or_add ?depth memo (Memo.scheme_signature scheme) (fun () ->
        Cost.evaluate scheme)
  in
  let single = Scheme.single_region design in
  let single_eval = evaluate single in
  if not (Cost.fits single_eval ~budget) then
    Error
      (Format.asprintf
         "design %s does not fit the budget %a even as a single region \
          (needs %a)"
         design.Design.name Resource.pp budget Resource.pp
         single_eval.Cost.used)
  else begin
    match
      pair_weight_of_objective
        ~configs:(Design.configuration_count design)
        options.objective
    with
    | Error message -> Error message
    | Ok pair_weight ->
      let objective = options.objective in
      (* The multilevel node set (one singleton partition per mode) is
         shared between the [Multilevel] strategy and the [Multilevel]
         ladder rung; lazy so the other strategies never pay for it. *)
      let multilevel_nodes = lazy (Multilevel.nodes design) in
      let partitions, sets =
        match (strategy : Strategy.t) with
        | Strategy.Multilevel ->
          (* Coarsening replaces the clustering + covering passes — the
             scalability wall at hundreds of modes — so the multilevel
             backend runs once over the full mode-level node set. *)
          let nodes = Lazy.force multilevel_nodes in
          (nodes, [ nodes ])
        | Strategy.Greedy | Strategy.Exact | Strategy.Anneal ->
          (* Clustering and covering poll the guard's deadline: on huge
             designs the clique structure explodes long before any
             allocator runs, and an un-guarded front-end would render
             the deadline meaningless. Eval caps are deliberately not
             consulted ({!Prguard.Budget.interrupted}), so capped runs
             stay deterministic. *)
          let stop =
            match guard with
            | None -> fun () -> false
            | Some g -> fun () -> Prguard.Budget.interrupted g
          in
          let partitions =
            Agglomerative.run ~freq_rule:options.freq_rule
              ~clique_limit:options.clique_limit ~stop ~telemetry:tele design
          in
          let sets =
            Covering.candidate_sets ~max_sets:options.max_candidate_sets
              ~stop ~telemetry:tele design partitions
          in
          (partitions, sets)
      in
      (* Second textbook fallback: when everything fits statically, zero
         reconfiguration time is trivially optimal (paper §IV-A). *)
      let static_candidate =
        let scheme = Scheme.fully_static design in
        let evaluation = evaluate scheme in
        if Cost.fits evaluation ~budget then Some (scheme, evaluation)
        else None
      in
      let admissible candidate =
        match candidate with
        | Some (_, e) when not (meets_worst_limit ~options e) -> None
        | Some _ | None -> candidate
      in
      let reject set_index reason =
        if Prtelemetry.tracing tele then
          Prtelemetry.point tele "scheme.rejected"
            ~attrs:
              [ ("set", Prtelemetry.Json.Int set_index);
                ("reason", Prtelemetry.Json.String reason) ]
      in
      let accept set_index (e : Cost.evaluation) =
        Prtelemetry.set_gauge tele "engine.best_total_frames"
          (float_of_int e.Cost.total_frames);
        note_progress e;
        if Prtelemetry.tracing tele then
          Prtelemetry.point tele "scheme.accepted"
            ~attrs:
              [ ("set", Prtelemetry.Json.Int set_index);
                ("total_frames", Prtelemetry.Json.Int e.Cost.total_frames);
                ("worst_frames", Prtelemetry.Json.Int e.Cost.worst_frames) ]
      in
      (* Baseline incumbent: the single-region scheme and — when it fits
         — the fully static one, filtered by the worst-case limit. *)
      let initial_candidate () =
        let initial =
          better ?placement:placement_tele ~objective
            (admissible (Some (single, single_eval)))
            (admissible static_candidate)
        in
        (match initial with
         | Some (_, e) ->
           Prtelemetry.set_gauge tele "engine.best_total_frames"
             (float_of_int e.Cost.total_frames);
           note_progress e
         | None -> ());
        initial
      in
      (* Per-set backend dispatch: the strategy selects which allocator
         runs inside the candidate-set fan-out. Only the greedy
         allocator searches under the weighted pair objective; the
         other backends optimise total frames and rely on the final
         objective-aware ranking (matching the ladder rungs). *)
      let promote_static = options.allocator.Allocator.promote_static in
      (* [Exact] is deliberately not placement-aware inside its search
         (branch-and-bound lower bounds would no longer be admissible
         against a penalised objective); its returned scheme still
         competes under the penalised final ranking like everyone
         else. *)
      let allocate_set ~telemetry ~memo ?guard set =
        let placement = counted_placement telemetry in
        match (strategy : Strategy.t) with
        | Strategy.Greedy ->
          Allocator.allocate ~options:options.allocator ~pair_weight
            ~telemetry ~memo ?guard ?placement ~budget design set
        | Strategy.Exact ->
          let r =
            Exact.allocate ~promote_static ~telemetry ~memo ?guard ~budget
              design set
          in
          r.Exact.scheme
        | Strategy.Anneal ->
          let aopts =
            { Anneal.default_options with Anneal.promote_static }
          in
          Anneal.allocate ~options:aopts ~telemetry ?guard ?placement ~budget
            design set
        | Strategy.Multilevel ->
          let mopts =
            { Multilevel.default_options with
              Multilevel.promote_static }
          in
          Multilevel.allocate ~options:mopts ~telemetry ~memo ?guard
            ?placement ~budget design set
      in
      let solution ?rung ?(fell_back = false) ?reason best =
        match best with
        | Some (scheme, evaluation) ->
          Ok
            { bs_scheme = scheme;
              bs_evaluation = evaluation;
              bs_partitions = List.length partitions;
              bs_sets = List.length sets;
              bs_rung = rung;
              bs_fell_back = fell_back;
              bs_reason = reason }
        | None ->
          Error
            (Format.asprintf
               "no explored scheme for %s meets the worst-case limit of %d \
                frames"
               design.Design.name
               (Option.value ~default:0 options.worst_limit))
      in
      (* The default search: allocation fan-out over the candidate sets.
         Sequentially each candidate set runs the allocator against the
         shared telemetry handle and evaluation cache; in parallel each
         set gets its own counting handle and private table (neither is
         domain-safe), and after the ordered join the counters are
         merged and the tables absorbed in input order. The subsequent
         fold is identical in both modes, so the selected scheme — and
         every outcome field — is bit-identical for any [jobs].

         The guard is consulted at candidate-set boundaries: an expired
         budget skips the remaining sets (the eval cap thereby expires
         at a deterministic prefix of the set list, the key to the
         monotonicity property); in parallel mode cancellation/deadline
         are honoured across domains via [Par]'s cooperative cancel. *)
      let greedy_path ?guard () =
        let skipped = ref false in
        let exhausted () =
          match guard with
          | None -> None
          | Some g -> Prguard.Budget.exhausted g
        in
        let allocations =
          if jobs <= 1 then
            List.map
              (fun set ->
                match exhausted () with
                | Some _ ->
                  skipped := true;
                  Prtelemetry.incr tele "guard.sets_skipped";
                  `Skipped
                | None -> `Alloc (allocate_set ~telemetry:tele ~memo ?guard set))
              sets
          else begin
            let cancel, fallback =
              match guard with
              | Some g ->
                ( Some (fun () -> Prguard.Budget.interrupted g),
                  Some (fun _ -> `Cancelled) )
              | None -> (None, None)
            in
            Par.map_list ?cancel ?fallback ~telemetry:tele ~jobs
              (fun set ->
                let worker = Prtelemetry.ensure Prtelemetry.null in
                let worker_memo =
                  Memo.create ~telemetry:worker
                    ~tag:(Strategy.to_string strategy) ()
                in
                let scheme =
                  allocate_set ~telemetry:worker ~memo:worker_memo ?guard set
                in
                `Done (scheme, worker, worker_memo))
              sets
            |> List.map (function
                 | `Done (scheme, worker, worker_memo) ->
                   (* Fold the worker's aggregates (counters, span
                      stats, histograms) into the shared handle in
                      input order — deterministic, and richer than the
                      counter-only merge it replaces. *)
                   Prtelemetry.merge ~into:tele worker;
                   Memo.absorb ~into:memo worker_memo;
                   `Alloc scheme
                 | `Cancelled ->
                   skipped := true;
                   Prtelemetry.incr tele "guard.sets_skipped";
                   `Skipped)
          end
        in
        let best, _ =
          List.fold_left
            (fun (best, set_index) allocation ->
              let best =
                match allocation with
                | `Skipped ->
                  reject set_index "budget";
                  best
                | `Alloc None ->
                  reject set_index "infeasible";
                  best
                | `Alloc (Some scheme) ->
                  let evaluation = evaluate ~depth:set_index scheme in
                  if not (meets_worst_limit ~options evaluation) then begin
                    reject set_index "worst-limit";
                    best
                  end
                  else begin
                    let merged =
                      better ?placement:placement_tele ~objective best
                        (Some (scheme, evaluation))
                    in
                    (match merged with
                     | Some (winner, e) when winner == scheme ->
                       accept set_index e
                     | Some _ | None -> reject set_index "worse");
                    merged
                  end
              in
              (best, set_index + 1))
            (initial_candidate (), 0)
            allocations
        in
        (best, !skipped)
      in
      (* Graceful-degradation ladder: attempt rungs in declared order,
         each under its own (child) budget; the first rung that runs to
         completion with an admissible incumbent supplies the answer,
         and every rung's best-so-far result is kept as a fallback. The
         single-region baseline seeds the incumbent, so an expired
         ladder still returns a feasible scheme. *)
      let ladder_path l =
        let best = ref (initial_candidate ()) in
        let best_rung =
          ref (match !best with Some _ -> Some "baseline" | None -> None)
        in
        let fell_back = ref false in
        let last_reason = ref None in
        let finished = ref false in
        let n_sets = max 1 (List.length sets) in
        let offer name scheme =
          match scheme with
          | None -> ()
          | Some scheme ->
            let evaluation = evaluate scheme in
            if meets_worst_limit ~options evaluation then begin
              let merged =
                better ?placement:placement_tele ~objective !best
                  (Some (scheme, evaluation))
              in
              (match merged with
               | Some (winner, e) when winner == scheme ->
                 best_rung := Some name;
                 Prtelemetry.set_gauge tele "engine.best_total_frames"
                   (float_of_int e.Cost.total_frames);
                 note_progress e
               | Some _ | None -> ());
              best := merged
            end
        in
        List.iter
          (fun (rung : Prguard.Ladder.rung) ->
            if not !finished then begin
              match
                match guard with
                | None -> None
                | Some g -> Prguard.Budget.exhausted g
              with
              | Some r ->
                (* Overall budget gone: remaining rungs are skipped and
                   the incumbent (at worst the baseline) stands. *)
                last_reason := Some r;
                fell_back := true;
                finished := true
              | None ->
                Prtelemetry.incr tele "guard.rungs_attempted";
                let name = Prguard.Ladder.rung_name rung.Prguard.Ladder.kind in
                let rb =
                  match guard with
                  | Some g -> Prguard.Budget.child g rung.Prguard.Ladder.budget
                  | None -> Prguard.Budget.of_spec rung.Prguard.Ladder.budget
                in
                let complete = ref true in
                let each_set f =
                  List.iter
                    (fun set ->
                      match Prguard.Budget.exhausted rb with
                      | Some _ ->
                        complete := false;
                        Prtelemetry.incr tele "guard.sets_skipped"
                      | None -> f set)
                    sets
                in
                (match rung.Prguard.Ladder.kind with
                 | Prguard.Ladder.Single_region -> offer name (Some single)
                 | Prguard.Ladder.Greedy ->
                   each_set (fun set ->
                       offer name
                         (allocate_set ~telemetry:tele ~memo ~guard:rb set))
                 | Prguard.Ladder.Anneal ->
                   (* Derive the per-set iteration count from the rung's
                      eval cap (each Metropolis step charges one eval),
                      deterministically. *)
                   let iterations =
                     match rung.Prguard.Ladder.budget.Prguard.Budget.max_evals with
                     | Some cap ->
                       max 1
                         (min Anneal.default_options.Anneal.iterations
                            (cap / n_sets))
                     | None -> Anneal.default_options.Anneal.iterations
                   in
                   let aopts =
                     { Anneal.default_options with
                       Anneal.iterations;
                       promote_static =
                         options.allocator.Allocator.promote_static }
                   in
                   each_set (fun set ->
                       offer name
                         (Anneal.allocate ~options:aopts ~telemetry:tele
                            ~guard:rb ?placement:placement_tele ~budget design
                            set))
                 | Prguard.Ladder.Multilevel ->
                   (* One V-cycle over the mode-level node set — the rung
                      ignores the candidate sets entirely (coarsening is
                      its own clustering), so a ladder can degrade into
                      multilevel at a cost independent of the set
                      fan-out. *)
                   let mopts =
                     { Multilevel.default_options with
                       Multilevel.promote_static }
                   in
                   offer name
                     (Multilevel.allocate ~options:mopts ~telemetry:tele
                        ~memo ~guard:rb ?placement:placement_tele ~budget
                        design (Lazy.force multilevel_nodes))
                 | Prguard.Ladder.Exact ->
                   (* The state budget derives from the rung's eval cap:
                      leaf evaluations never exceed expanded states, so
                      the cap cannot silently overrun. *)
                   let max_states =
                     match rung.Prguard.Ladder.budget.Prguard.Budget.max_evals with
                     | Some cap -> max 1 (cap / n_sets)
                     | None -> 2_000_000
                   in
                   each_set (fun set ->
                       let r =
                         Exact.allocate
                           ~promote_static:
                             options.allocator.Allocator.promote_static
                           ~max_states ~telemetry:tele ~memo ~guard:rb ~budget
                           design set
                       in
                       if not r.Exact.optimal then complete := false;
                       offer name r.Exact.scheme));
                (match Prguard.Budget.exhausted rb with
                 | Some _ -> complete := false
                 | None -> ());
                if !complete && Option.is_some !best then begin
                  finished := true;
                  Prtelemetry.incr tele "guard.rungs_completed"
                end
                else begin
                  fell_back := true;
                  Prtelemetry.incr tele "guard.degradations";
                  (match Prguard.Budget.exhausted rb with
                   | Some r -> last_reason := Some r
                   | None ->
                     last_reason := Some Prguard.Budget.Eval_cap)
                end
            end)
          l.Prguard.Ladder.rungs;
        solution ?rung:!best_rung ~fell_back:!fell_back ?reason:!last_reason
          !best
      in
      (match ladder with
       | Some l -> ladder_path l
       | None ->
         let best, skipped = greedy_path ?guard () in
         let reason =
           match guard with
           | None -> None
           | Some g -> Prguard.Budget.exhausted g
         in
         solution
           ~fell_back:(skipped || reason <> None)
           ?reason best)
  end

let outcome ~design ~device ~budget ~escalations bs =
  { design;
    scheme = bs.bs_scheme;
    evaluation = bs.bs_evaluation;
    device;
    budget;
    base_partitions = bs.bs_partitions;
    candidate_sets = bs.bs_sets;
    escalations;
    cost_evaluations = 0;
    placement_penalty = None;
    search = no_search_stats;
    degraded =
      { Prguard.Budget.no_budget with
        Prguard.Budget.rung = bs.bs_rung;
        degraded = bs.bs_fell_back;
        reason =
          Option.value ~default:Prguard.Budget.Completed bs.bs_reason } }

let target_label = function
  | Budget _ -> "budget"
  | Fixed device -> device.Fpga.Device.short
  | Auto -> "auto"

(* Post-solve self-check for [?verify]: re-run the cost model directly
   on the winning scheme — bypassing the memo table and every
   incremental kernel — and require bit-for-bit agreement with the
   evaluation the search reported. Any memoisation or delta-kernel
   drift surfaces here as a hard error instead of a silently wrong
   outcome. *)
let verify_outcome ~tele o =
  Prtelemetry.incr tele "verify.engine_checks";
  let fresh = Cost.evaluate o.scheme in
  if Cost.equal_evaluation fresh o.evaluation then Ok o
  else begin
    Prtelemetry.incr tele "verify.engine_failures";
    Error
      (Format.asprintf
         "verification failed for %s: reported evaluation (%a) does not \
          match the from-scratch re-derivation (%a) — memoised or \
          incremental state has diverged from the cost model"
         o.design.Design.name Cost.pp_evaluation o.evaluation
         Cost.pp_evaluation fresh)
  end

(* Fixed ceiling on the stored progress-curve samples: when the curve
   fills up, every other chronological sample is dropped and the
   sampling stride doubles, so arbitrarily long searches keep a bounded,
   deterministic, evenly-thinned curve. *)
let progress_sample_cap = 256

let solve ?(options = default_options) ?(telemetry = Prtelemetry.null)
    ?(strategy = Strategy.default) ?(jobs = 1) ?(verify = false)
    ?budget:time_budget ?ladder ?placement ~target design =
  if jobs < 1 then
    Error
      (Printf.sprintf
         "invalid jobs count %d: the number of solver domains must be at \
          least 1 (use 1 for sequential solving)"
         jobs)
  else begin
    (* Accounting-only budget when a ladder runs unguarded: the verdict
       still reports evaluations/elapsed time, and rung caps charge a
       live parent. An unlimited budget never expires, so behaviour is
       unchanged. *)
    let guard =
      match (time_budget, ladder) with
      | None, Some _ -> Some (Prguard.Budget.make ())
      | g, _ -> g
    in
    (* Determinism: an eval-capped budget (or a ladder, whose rungs carry
       eval caps) must expire at a fixed point of the candidate-set
       order, so those runs are forced onto the sequential path. A
       deadline-only budget keeps the parallel fan-out — cancellation is
       cooperative across domains. *)
    let jobs =
      match guard with
      | Some g when Prguard.Budget.has_eval_cap g || Option.is_some ladder ->
        1
      | _ -> jobs
    in
    (* Always count on a live handle so [cost_evaluations] is populated
       even when the caller did not opt into telemetry. *)
    let tele = Prtelemetry.ensure telemetry in
    (* One evaluation cache per solve: canonical signatures are stable
       across candidate sets and budgets, so [Auto]-mode escalations
       re-use evaluations from earlier attempts too. *)
    (* Tagged with the strategy so evaluations produced under one
       backend can never satisfy a lookup made under another — the
       cache cannot alias multilevel and exact results. *)
    let memo =
      Memo.create ~telemetry:tele ~tag:(Strategy.to_string strategy) ()
    in
    let evaluations_before = cost_evaluation_counters tele in
    (* Baselines for the search-introspection deltas, mirroring
       [evaluations_before]: a caller-supplied handle can span several
       solves, so the outcome reports per-solve differences. *)
    let memo_hits_before = Prtelemetry.counter_value tele "perf.cache_hits" in
    let memo_misses_before =
      Prtelemetry.counter_value tele "perf.cache_misses"
    in
    let exact_states_before = Prtelemetry.counter_value tele "exact.states" in
    let exact_pruned_before = Prtelemetry.counter_value tele "exact.pruned" in
    (* Best-cost-over-evaluations progress curve, appended at each new
       incumbent; only when the caller traces. Capped at
       [progress_sample_cap] stored samples: on overflow the curve is
       thinned to every other chronological sample and the stride
       doubles — deterministic, and bounded however long the search
       runs. *)
    let progress = ref [] in
    let progress_len = ref 0 in
    let progress_stride = ref 1 in
    let progress_seen = ref 0 in
    let note_progress =
      if Prtelemetry.tracing tele then (fun (e : Cost.evaluation) ->
        let keep = !progress_seen mod !progress_stride = 0 in
        incr progress_seen;
        if keep then begin
          progress :=
            ( cost_evaluation_counters tele - evaluations_before,
              e.Cost.total_frames )
            :: !progress;
          incr progress_len;
          if !progress_len >= progress_sample_cap then begin
            (* The list is newest-first: keeping even {e chronological}
               indices keeps the samples whose [progress_seen] stamp is
               a multiple of the doubled stride, so future keeps stay
               aligned with the survivors. *)
            let n = !progress_len in
            progress :=
              List.filteri (fun i _ -> (n - 1 - i) mod 2 = 0) !progress;
            progress_len := List.length !progress;
            progress_stride := !progress_stride * 2
          end
        end)
      else fun _ -> ()
    in
    let result =
      Prtelemetry.with_span tele "engine.solve"
        ~attrs:
          [ ("design", Prtelemetry.Json.String design.Design.name);
            ("target", Prtelemetry.Json.String (target_label target)) ]
      @@ fun () ->
      match target with
      | Budget budget ->
        Result.map
          (outcome ~design ~device:None ~budget ~escalations:0)
          (solve_budget ~options ~strategy ~tele ~jobs ~memo ~note_progress
             ?guard ?ladder ?placement ~budget design)
      | Fixed device ->
        let budget = Fpga.Device.resources device in
        Result.map
          (outcome ~design ~device:(Some device) ~budget ~escalations:0)
          (solve_budget ~options ~strategy ~tele ~jobs ~memo ~note_progress
             ?guard ?ladder ?placement ~budget design)
      | Auto ->
        (* Smallest device fitting the single-region lower bound, then
           escalate while the partitioner cannot beat a single region. *)
        let lower_bound =
          Resource.add
            (Fpga.Tile.quantize (Design.min_region_requirement design))
            design.Design.static_overhead
        in
        (match Fpga.Device.smallest_fitting lower_bound with
         | None ->
           Error
             (Format.asprintf
                "design %s does not fit any catalogued device (needs %a)"
                design.Design.name Resource.pp lower_bound)
         | Some first ->
           let rec attempt device escalations best =
             let budget = Fpga.Device.resources device in
             let best =
               match
                 Prtelemetry.with_span tele "engine.attempt"
                   ~attrs:
                     [ ( "device",
                         Prtelemetry.Json.String device.Fpga.Device.short ) ]
                   (fun () ->
                     solve_budget ~options ~strategy ~tele ~jobs ~memo
                       ~note_progress ?guard ?ladder ?placement ~budget design)
               with
               | Error _ -> best
               | Ok result ->
                 let candidate =
                   outcome ~design ~device:(Some device) ~budget ~escalations
                     result
                 in
                 (match best with
                  | Some b
                    when (b.evaluation.Cost.total_frames,
                          b.evaluation.Cost.worst_frames)
                         <= (candidate.evaluation.Cost.total_frames,
                             candidate.evaluation.Cost.worst_frames) ->
                    Some b
                  | Some _ | None -> Some candidate)
             in
             let should_escalate =
               match best with
               | None -> true
               | Some b -> is_single_region_like b.scheme
             in
             if should_escalate then
               match Fpga.Device.next_larger device with
               | Some next ->
                 Prtelemetry.incr tele "engine.escalations";
                 if Prtelemetry.tracing tele then
                   Prtelemetry.point tele "engine.escalate"
                     ~attrs:
                       [ ( "from",
                           Prtelemetry.Json.String device.Fpga.Device.short );
                         ("to", Prtelemetry.Json.String next.Fpga.Device.short)
                       ];
                 attempt next (escalations + 1) best
               | None -> best
             else best
           in
           (match attempt first 0 None with
            | Some outcome -> Ok outcome
            | None ->
              Error
                (Format.asprintf
                   "design %s could not be partitioned on any device"
                   design.Design.name)))
    in
    let result =
      Result.map
        (fun o ->
          let degraded =
            match (time_budget, ladder) with
            | None, None -> o.degraded
            | _ ->
              let g =
                match guard with Some g -> g | None -> assert false
              in
              let pre = o.degraded in
              let v = Prguard.Budget.verdict ?rung:pre.Prguard.Budget.rung g in
              let reason =
                if v.Prguard.Budget.reason = Prguard.Budget.Completed then
                  pre.Prguard.Budget.reason
                else v.Prguard.Budget.reason
              in
              { v with
                Prguard.Budget.degraded =
                  v.Prguard.Budget.degraded || pre.Prguard.Budget.degraded;
                reason }
          in
          { o with
            cost_evaluations = cost_evaluation_counters tele - evaluations_before;
            placement_penalty =
              Option.map
                (fun p -> Cost.placement_penalty p o.scheme)
                placement;
            search =
              { memo_hits =
                  Prtelemetry.counter_value tele "perf.cache_hits"
                  - memo_hits_before;
                memo_misses =
                  Prtelemetry.counter_value tele "perf.cache_misses"
                  - memo_misses_before;
                exact_states =
                  Prtelemetry.counter_value tele "exact.states"
                  - exact_states_before;
                exact_pruned =
                  Prtelemetry.counter_value tele "exact.pruned"
                  - exact_pruned_before;
                progress = List.rev !progress };
            degraded })
        result
    in
    if verify then Result.bind result (verify_outcome ~tele) else result
  end
