module Design = Prdesign.Design
module Resource = Fpga.Resource
module Agglomerative = Cluster.Agglomerative

type target = Budget of Resource.t | Fixed of Fpga.Device.t | Auto

type objective = Total_frames | Weighted of float array array

type options = {
  freq_rule : Agglomerative.freq_rule;
  clique_limit : int;
  max_candidate_sets : int;
  allocator : Allocator.options;
  objective : objective;
  worst_limit : int option;
}

let default_options =
  { freq_rule = Agglomerative.Support;
    clique_limit = 100_000;
    max_candidate_sets = 32;
    allocator = Allocator.default_options;
    objective = Total_frames;
    worst_limit = None }

let meets_worst_limit ~options (e : Cost.evaluation) =
  match options.worst_limit with
  | None -> true
  | Some limit -> e.Cost.worst_frames <= limit

type outcome = {
  design : Design.t;
  scheme : Scheme.t;
  evaluation : Cost.evaluation;
  device : Fpga.Device.t option;
  budget : Resource.t;
  base_partitions : int;
  candidate_sets : int;
  escalations : int;
  cost_evaluations : int;
}

let is_single_region_like (s : Scheme.t) =
  s.Scheme.region_count = 1 && Scheme.static_members s = []

(* Scheme ranking under the selected objective: objective value first,
   then the paper's worst case, then area. *)
let scheme_key ~objective scheme (e : Cost.evaluation) =
  let value =
    match objective with
    | Total_frames -> float_of_int e.Cost.total_frames
    | Weighted weights -> Cost.weighted_total scheme ~weights
  in
  (value, e.Cost.worst_frames, Fpga.Tile.frames_of_resources e.Cost.used)

let better ~objective a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (sa, ea), Some (sb, eb) ->
    if scheme_key ~objective sa ea <= scheme_key ~objective sb eb then
      Some (sa, ea)
    else Some (sb, eb)

let pair_weight_of_objective ~configs = function
  | Total_frames -> Ok (fun _ _ -> 1.)
  | Weighted weights ->
    if
      Array.length weights <> configs
      || Array.exists (fun row -> Array.length row <> configs) weights
    then Error "objective weight matrix does not match the configurations"
    else Ok (fun i j -> weights.(i).(j) +. weights.(j).(i))

(* Total cost-model invocations attributable to one [solve] call: full
   [Cost.evaluate] runs plus the allocator's incremental move
   evaluations, read back from the telemetry counters as a delta so a
   caller-supplied handle can span several solves. *)
let cost_evaluation_counters tele =
  Prtelemetry.counter_value tele "core.cost_evaluations"
  + Prtelemetry.counter_value tele "alloc.moves_evaluated"

(* Solve for a fixed budget. The single-region scheme is the universal
   fallback: the feasibility precondition guarantees it fits. *)
let solve_budget ~options ~tele ~jobs ~memo ~budget design =
  Prtelemetry.with_span tele "engine.solve_budget"
    ~attrs:[ ("budget", Prtelemetry.Json.String (Resource.to_string budget)) ]
  @@ fun () ->
  let evals = Prtelemetry.counter tele "core.cost_evaluations" in
  (* Every evaluation goes through the shared transposition table keyed
     by canonical content signature: re-scoring the scheme an allocator
     run already evaluated — or a scheme another candidate set converged
     to — is a cache hit. The counter tracks cost-model {e lookups}, as
     before; the table tracks which of them actually ran the model. *)
  let evaluate scheme =
    Prtelemetry.Counter.incr evals;
    Memo.find_or_add memo (Memo.scheme_signature scheme) (fun () ->
        Cost.evaluate scheme)
  in
  let single = Scheme.single_region design in
  let single_eval = evaluate single in
  if not (Cost.fits single_eval ~budget) then
    Error
      (Format.asprintf
         "design %s does not fit the budget %a even as a single region \
          (needs %a)"
         design.Design.name Resource.pp budget Resource.pp
         single_eval.Cost.used)
  else begin
    match
      pair_weight_of_objective
        ~configs:(Design.configuration_count design)
        options.objective
    with
    | Error message -> Error message
    | Ok pair_weight ->
      let objective = options.objective in
      let partitions =
        Agglomerative.run ~freq_rule:options.freq_rule
          ~clique_limit:options.clique_limit ~telemetry:tele design
      in
      let sets =
        Covering.candidate_sets ~max_sets:options.max_candidate_sets
          ~telemetry:tele design partitions
      in
      (* Second textbook fallback: when everything fits statically, zero
         reconfiguration time is trivially optimal (paper §IV-A). *)
      let static_candidate =
        let scheme = Scheme.fully_static design in
        let evaluation = evaluate scheme in
        if Cost.fits evaluation ~budget then Some (scheme, evaluation)
        else None
      in
      let admissible candidate =
        match candidate with
        | Some (_, e) when not (meets_worst_limit ~options e) -> None
        | Some _ | None -> candidate
      in
      let reject set_index reason =
        if Prtelemetry.tracing tele then
          Prtelemetry.point tele "scheme.rejected"
            ~attrs:
              [ ("set", Prtelemetry.Json.Int set_index);
                ("reason", Prtelemetry.Json.String reason) ]
      in
      let accept set_index (e : Cost.evaluation) =
        Prtelemetry.set_gauge tele "engine.best_total_frames"
          (float_of_int e.Cost.total_frames);
        if Prtelemetry.tracing tele then
          Prtelemetry.point tele "scheme.accepted"
            ~attrs:
              [ ("set", Prtelemetry.Json.Int set_index);
                ("total_frames", Prtelemetry.Json.Int e.Cost.total_frames);
                ("worst_frames", Prtelemetry.Json.Int e.Cost.worst_frames) ]
      in
      (* Allocation fan-out. Sequentially each candidate set runs the
         allocator against the shared telemetry handle and evaluation
         cache; in parallel each set gets its own counting handle and
         private table (neither is domain-safe), and after the ordered
         join the counters are merged and the tables absorbed in input
         order. The subsequent fold is identical in both modes, so the
         selected scheme — and every outcome field — is bit-identical
         for any [jobs]. *)
      let allocate_set ~telemetry ~memo set =
        Allocator.allocate ~options:options.allocator ~pair_weight ~telemetry
          ~memo ~budget design set
      in
      let allocations =
        if jobs <= 1 then
          List.map (allocate_set ~telemetry:tele ~memo) sets
        else
          Par.map_list ~jobs
            (fun set ->
              let worker = Prtelemetry.ensure Prtelemetry.null in
              let worker_memo = Memo.create ~telemetry:worker () in
              let scheme = allocate_set ~telemetry:worker ~memo:worker_memo set in
              (scheme, worker, worker_memo))
            sets
          |> List.map (fun (scheme, worker, worker_memo) ->
                 List.iter
                   (fun (name, v) ->
                     if v > 0 then Prtelemetry.incr tele ~by:v name)
                   (Prtelemetry.counters_list worker);
                 Memo.absorb ~into:memo worker_memo;
                 scheme)
      in
      let best, _ =
        List.fold_left
          (fun (best, set_index) allocation ->
            let best =
              match allocation with
              | None ->
                reject set_index "infeasible";
                best
              | Some scheme ->
                let evaluation = evaluate scheme in
                if not (meets_worst_limit ~options evaluation) then begin
                  reject set_index "worst-limit";
                  best
                end
                else begin
                  let merged =
                    better ~objective best (Some (scheme, evaluation))
                  in
                  (match merged with
                   | Some (winner, e) when winner == scheme ->
                     accept set_index e
                   | Some _ | None -> reject set_index "worse");
                  merged
                end
            in
            (best, set_index + 1))
          ( (let initial =
               better ~objective
                 (admissible (Some (single, single_eval)))
                 (admissible static_candidate)
             in
             (match initial with
              | Some (_, e) ->
                Prtelemetry.set_gauge tele "engine.best_total_frames"
                  (float_of_int e.Cost.total_frames)
              | None -> ());
             initial),
            0 )
          allocations
      in
      (match best with
       | Some (scheme, evaluation) ->
         Ok (scheme, evaluation, List.length partitions, List.length sets)
       | None ->
         Error
           (Format.asprintf
              "no explored scheme for %s meets the worst-case limit of %d \
               frames"
              design.Design.name
              (Option.value ~default:0 options.worst_limit)))
  end

let outcome ~design ~device ~budget ~escalations
    (scheme, evaluation, base_partitions, candidate_sets) =
  { design;
    scheme;
    evaluation;
    device;
    budget;
    base_partitions;
    candidate_sets;
    escalations;
    cost_evaluations = 0 }

let target_label = function
  | Budget _ -> "budget"
  | Fixed device -> device.Fpga.Device.short
  | Auto -> "auto"

(* Post-solve self-check for [?verify]: re-run the cost model directly
   on the winning scheme — bypassing the memo table and every
   incremental kernel — and require bit-for-bit agreement with the
   evaluation the search reported. Any memoisation or delta-kernel
   drift surfaces here as a hard error instead of a silently wrong
   outcome. *)
let verify_outcome ~tele o =
  Prtelemetry.incr tele "verify.engine_checks";
  let fresh = Cost.evaluate o.scheme in
  if Cost.equal_evaluation fresh o.evaluation then Ok o
  else begin
    Prtelemetry.incr tele "verify.engine_failures";
    Error
      (Format.asprintf
         "verification failed for %s: reported evaluation (%a) does not \
          match the from-scratch re-derivation (%a) — memoised or \
          incremental state has diverged from the cost model"
         o.design.Design.name Cost.pp_evaluation o.evaluation
         Cost.pp_evaluation fresh)
  end

let solve ?(options = default_options) ?(telemetry = Prtelemetry.null)
    ?(jobs = 1) ?(verify = false) ~target design =
  (* Always count on a live handle so [cost_evaluations] is populated
     even when the caller did not opt into telemetry. *)
  let tele = Prtelemetry.ensure telemetry in
  (* One evaluation cache per solve: canonical signatures are stable
     across candidate sets and budgets, so [Auto]-mode escalations
     re-use evaluations from earlier attempts too. *)
  let memo = Memo.create ~telemetry:tele () in
  let evaluations_before = cost_evaluation_counters tele in
  let result =
    Prtelemetry.with_span tele "engine.solve"
      ~attrs:
        [ ("design", Prtelemetry.Json.String design.Design.name);
          ("target", Prtelemetry.Json.String (target_label target)) ]
    @@ fun () ->
    match target with
    | Budget budget ->
      Result.map
        (outcome ~design ~device:None ~budget ~escalations:0)
        (solve_budget ~options ~tele ~jobs ~memo ~budget design)
    | Fixed device ->
      let budget = Fpga.Device.resources device in
      Result.map
        (outcome ~design ~device:(Some device) ~budget ~escalations:0)
        (solve_budget ~options ~tele ~jobs ~memo ~budget design)
    | Auto ->
      (* Smallest device fitting the single-region lower bound, then
         escalate while the partitioner cannot beat a single region. *)
      let lower_bound =
        Resource.add
          (Fpga.Tile.quantize (Design.min_region_requirement design))
          design.Design.static_overhead
      in
      (match Fpga.Device.smallest_fitting lower_bound with
       | None ->
         Error
           (Format.asprintf
              "design %s does not fit any catalogued device (needs %a)"
              design.Design.name Resource.pp lower_bound)
       | Some first ->
         let rec attempt device escalations best =
           let budget = Fpga.Device.resources device in
           let best =
             match
               Prtelemetry.with_span tele "engine.attempt"
                 ~attrs:
                   [ ( "device",
                       Prtelemetry.Json.String device.Fpga.Device.short ) ]
                 (fun () -> solve_budget ~options ~tele ~jobs ~memo ~budget design)
             with
             | Error _ -> best
             | Ok result ->
               let candidate =
                 outcome ~design ~device:(Some device) ~budget ~escalations
                   result
               in
               (match best with
                | Some b
                  when (b.evaluation.Cost.total_frames,
                        b.evaluation.Cost.worst_frames)
                       <= (candidate.evaluation.Cost.total_frames,
                           candidate.evaluation.Cost.worst_frames) ->
                  Some b
                | Some _ | None -> Some candidate)
           in
           let should_escalate =
             match best with
             | None -> true
             | Some b -> is_single_region_like b.scheme
           in
           if should_escalate then
             match Fpga.Device.next_larger device with
             | Some next ->
               Prtelemetry.incr tele "engine.escalations";
               if Prtelemetry.tracing tele then
                 Prtelemetry.point tele "engine.escalate"
                   ~attrs:
                     [ ( "from",
                         Prtelemetry.Json.String device.Fpga.Device.short );
                       ("to", Prtelemetry.Json.String next.Fpga.Device.short)
                     ];
               attempt next (escalations + 1) best
             | None -> best
           else best
         in
         (match attempt first 0 None with
          | Some outcome -> Ok outcome
          | None ->
            Error
              (Format.asprintf
                 "design %s could not be partitioned on any device"
                 design.Design.name)))
  in
  let result =
    Result.map
      (fun o ->
        { o with
          cost_evaluations = cost_evaluation_counters tele - evaluations_before
        })
      result
  in
  if verify then Result.bind result (verify_outcome ~tele) else result
