(** The paper's reconfiguration-time cost model (eqs. 7–11), in frames.

    A region must be reconfigured between configurations [i] and [j] when
    both configurations use the region and require different resident
    partitions; a configuration that does not use a region leaves its
    content as a don't-care (so a region hosting a single cluster is never
    reconfigured — the "equivalent to static" anchor of §IV-C). Total
    reconfiguration time sums the transition cost over all unordered
    configuration pairs; worst-case is the maximum single transition. *)

type evaluation = {
  region_frames : int array;  (** Frames per region (tile-quantised). *)
  region_conflicts : int array;
      (** Per region: number of unordered configuration pairs requiring
          its reconfiguration. *)
  total_frames : int;  (** Paper eq. 10. *)
  worst_frames : int;  (** Paper eq. 11. *)
  reconfigurable : Fpga.Resource.t;
  static : Fpga.Resource.t;
  used : Fpga.Resource.t;
}

val evaluate : Scheme.t -> evaluation

val fits : evaluation -> budget:Fpga.Resource.t -> bool

val pairwise_frames : Scheme.t -> int -> int -> int
(** [pairwise_frames s i j] — frames written when transitioning between
    configurations [i] and [j] (symmetric, the paper's [t_{con i,j}]).
    @raise Invalid_argument on out-of-range configuration indices. *)

val transition_matrix : Scheme.t -> int array array
(** All pairwise transition costs; entry [(i, j)] is
    [pairwise_frames s i j], diagonal zero. *)

val weighted_total : Scheme.t -> weights:float array array -> float
(** [weighted_total s ~weights] is [Σ_{i≠j} weights.(i).(j) *
    pairwise_frames s i j] — the paper's future-work metric where
    transition statistics are known. With [weights.(i).(j) = 1] for
    [i < j] (0 otherwise) this equals [total_frames]. @raise
    Invalid_argument when the matrix does not match the configuration
    count. *)

val equal_evaluation : evaluation -> evaluation -> bool
(** Bit-for-bit structural equality of two evaluations — what
    {!Engine.solve}'s [?verify] mode and the Prverify oracles use to
    compare a reported evaluation against a from-scratch
    re-derivation. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
