(** The paper's reconfiguration-time cost model (eqs. 7–11), in frames.

    A region must be reconfigured between configurations [i] and [j] when
    both configurations use the region and require different resident
    partitions; a configuration that does not use a region leaves its
    content as a don't-care (so a region hosting a single cluster is never
    reconfigured — the "equivalent to static" anchor of §IV-C). Total
    reconfiguration time sums the transition cost over all unordered
    configuration pairs; worst-case is the maximum single transition. *)

type evaluation = {
  region_frames : int array;  (** Frames per region (tile-quantised). *)
  region_conflicts : int array;
      (** Per region: number of unordered configuration pairs requiring
          its reconfiguration. *)
  total_frames : int;  (** Paper eq. 10. *)
  worst_frames : int;  (** Paper eq. 11. *)
  reconfigurable : Fpga.Resource.t;
  static : Fpga.Resource.t;
  used : Fpga.Resource.t;
}

val evaluate : Scheme.t -> evaluation

val fits : evaluation -> budget:Fpga.Resource.t -> bool

val pairwise_frames : Scheme.t -> int -> int -> int
(** [pairwise_frames s i j] — frames written when transitioning between
    configurations [i] and [j] (symmetric, the paper's [t_{con i,j}]).
    @raise Invalid_argument on out-of-range configuration indices. *)

val transition_matrix : Scheme.t -> int array array
(** All pairwise transition costs; entry [(i, j)] is
    [pairwise_frames s i j], diagonal zero. *)

val weighted_total : Scheme.t -> weights:float array array -> float
(** [weighted_total s ~weights] is [Σ_{i≠j} weights.(i).(j) *
    pairwise_frames s i j] — the paper's future-work metric where
    transition statistics are known. With [weights.(i).(j) = 1] for
    [i < j] (0 otherwise) this equals [total_frames]. @raise
    Invalid_argument when the matrix does not match the configuration
    count. *)

type placement = {
  placement_label : string;  (** Target layout, for traces/diagnostics. *)
  placement_cost : Fpga.Resource.t array -> int;
      (** Integer placeability penalty of one demand per region. Must be
          pure, deterministic and order-insensitive — it is evaluated
          from search inner loops and parallel worker domains. 0 means
          "realisable at no floorplan cost". *)
}
(** Placement-awareness hook threaded through {!Engine.solve} and the
    allocation back-ends. The floorplan estimator sits above [Prcore]
    in the library order, so the penalty arrives as a closure; this
    module fixes only the calling convention: element [i < region_count]
    is region [i]'s requirement, the last element is the static side. *)

val placement_demands : Scheme.t -> Fpga.Resource.t array
(** The demand array a {!placement} closure is called with: one entry
    per region in index order, then the static requirement last. *)

val placement_penalty : placement -> Scheme.t -> int
(** [p.placement_cost (placement_demands s)]. *)

val equal_evaluation : evaluation -> evaluation -> bool
(** Bit-for-bit structural equality of two evaluations — what
    {!Engine.solve}'s [?verify] mode and the Prverify oracles use to
    compare a reported evaluation against a from-scratch
    re-derivation. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
