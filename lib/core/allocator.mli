(** Region allocation search (paper §IV-C, second half).

    Starting from the candidate partition set with every base partition in
    its own region — the static-equivalent allocation with minimum
    reconfiguration time — the search repeatedly applies one of two moves:

    - {b merge} two compatible regions (always shrinks area, never reduces
      reconfiguration time), used to squeeze the design into the budget;
    - {b promote} a region's partitions to the static area (eliminates
      that region's reconfiguration cost, usually at an area cost), the
      paper's "move modes into the static region when possible".

    While over budget the search picks the move that most reduces the
    resource deficit (ties broken by least added reconfiguration time);
    once within budget it keeps applying time-reducing promotions. The
    greedy pass is restarted from each of the most promising first moves
    and the best feasible scheme wins. *)

type options = {
  max_restarts : int;
      (** Number of alternative first moves to try in addition to the pure
          greedy pass. Default 8. *)
  promote_static : bool;
      (** Enable static promotion (disable for the ablation). Default
          [true]. *)
}

val default_options : options

val allocate :
  ?options:options ->
  ?pair_weight:(int -> int -> float) ->
  ?telemetry:Prtelemetry.t ->
  ?memo:Cost.evaluation Memo.t ->
  ?guard:Prguard.Budget.t ->
  ?placement:Cost.placement ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option
(** Best feasible scheme found for one candidate partition set (priority
    order preserved), or [None] when no explored allocation fits the
    budget. Schemes are compared by total reconfiguration frames, then
    worst-case frames, then area.

    [placement] (default: none) makes the descent placement-aware: the
    integer placeability penalty delta of every candidate move joins its
    time delta, and restart outcomes rank on the penalised objective, so
    allocations the floorplanner cannot realise lose to realisable ones.
    Omitted, the search is bit-identical to the placement-unaware
    implementation.

    [guard] (default: none) bounds the search: each move evaluation is
    charged against the budget, and on deadline expiry or cancellation
    ({!Prguard.Budget.interrupted}) the current greedy descent stops and
    remaining restarts are skipped — the best scheme found so far (if
    any) is still returned. An eval-cap-only guard never alters the
    search (only {!Prguard.Budget.interrupted}, which ignores the cap,
    is polled here), keeping capped runs deterministic; the cap is
    enforced at the engine's candidate-set boundaries.

    Move scoring is {e incremental}: per-region conflict weights are
    maintained and a merge is costed from the cached values of its two
    operands plus the cross term over the configuration pairs whose
    residents actually change (see {!Search} and DESIGN.md's
    Performance section), never by rescanning residency columns.

    [pair_weight i j] weights the cost of configurations [i] and [j]
    requiring different region contents (unordered pairs, [i < j]). The
    default unit weight yields the paper's total reconfiguration time;
    passing long-run transition rates (see [Runtime.Markov.edge_rates],
    symmetrised) optimises the expected reconfiguration rate instead —
    the paper's future-work extension. The weights are flattened into a
    dense array once per search, so weighted objectives pay no closure
    overhead on the hot path.

    [memo] (default: none) is the engine-level evaluation cache, keyed
    by canonical content signatures ({!Memo.scheme_signature}): the
    final evaluation of each distinct restart outcome is stored there,
    so the engine's re-evaluation of the returned scheme — and any
    other candidate set converging to the same allocation — is a cache
    hit. Restart outcomes are additionally deduplicated internally, so
    converging restarts never rebuild or re-score a scheme.

    [telemetry] (default {!Prtelemetry.null}, free): an
    ["alloc.allocate"] span; ["alloc.moves_evaluated"],
    ["alloc.merges_accepted"], ["alloc.promotions"], ["alloc.restarts"],
    ["core.cost_evaluations"], ["perf.delta_evals"],
    ["perf.cache_hits"] and ["perf.cache_misses"] counters; and an
    ["alloc.best"] event each time a restart improves the incumbent
    (when tracing). *)

(** Search internals, exposed for the Prspeed property tests: drive
    arbitrary move sequences and check the incrementally maintained
    conflict weights against a from-scratch recomputation. Not a stable
    API for production callers — use {!allocate}. *)
module Search : sig
  type state

  type move = Merge of int * int | Promote of int

  val initial :
    ?pair_weight:(int -> int -> float) ->
    Prdesign.Design.t ->
    Cluster.Base_partition.t list ->
    state option
  (** [None] when the partition list is empty or does not cover the
      design. *)

  val moves : ?promote_static:bool -> state -> move list
  (** Applicable moves of the current state. *)

  val apply : state -> move -> unit

  val evaluate :
    state -> Fpga.Resource.t -> move -> float * Fpga.Resource.t
  (** Delta evaluation of a move: (reconfiguration-time delta, resulting
      usage), given the current usage. *)

  val used : state -> Fpga.Resource.t

  val alive : state -> int -> bool

  val region_conflicts : state -> int -> float
  (** Cached (incrementally maintained) conflict weight of region [r]. *)

  val recompute_conflicts : state -> int -> float
  (** From-scratch recomputation over region [r]'s residency column —
      the reference the cache is tested against. *)

  val merge_delta : state -> int -> int -> float
  (** Conflict weight of the merged region predicted by the delta
      kernel. *)

  val merge_full : state -> int -> int -> float
  (** Conflict weight of the merged region recomputed from the merged
      column. *)

  val region_count : state -> int

  val signature : state -> string
  (** {!Memo.grouping_signature} of the live allocation. *)

  val to_scheme : state -> Scheme.t
end
