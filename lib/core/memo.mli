(** Canonical scheme signatures and the transposition table behind the
    Prspeed memoisation layer.

    A {e signature} is a compact byte string identifying an allocation
    up to region renumbering: the sorted static set plus the region
    member groups, each group sorted and the groups ordered
    lexicographically. Two signature families exist:

    - {!scheme_signature} / {!grouping_signature} encode members by
      their {e mode content}, so they are stable across candidate
      partition sets of the same design — the form the engine-level
      evaluation cache needs (different candidate sets frequently
      converge to the same allocation);
    - {!placement_signature} encodes a raw region-id-per-partition
      array after canonical renumbering — the cheap per-search form the
      annealer's transposition table uses (the partition list is fixed
      within one search).

    Tables are exact (full string keys, no lossy hashing) and bounded:
    when [capacity] entries are reached the table is generationally
    cleared rather than evicted entry-by-entry. Hits and misses are
    mirrored into the [perf.cache_hits] / [perf.cache_misses] telemetry
    counters of the handle supplied at {!create}.

    Tables are {b not} thread-safe; the parallel engine gives each
    domain its own table and merges the counters afterwards. *)

type 'v t

val create :
  ?telemetry:Prtelemetry.t -> ?capacity:int -> ?tag:string -> unit -> 'v t
(** [capacity] defaults to 65536 entries. [telemetry] defaults to
    {!Prtelemetry.null} (counting disabled, table still functional).

    [tag] (default: none) namespaces every key under ["<tag>!"]: the
    engine tags its evaluation caches with the search strategy, so a
    scheme evaluated under one strategy can never satisfy a lookup made
    under another — multilevel and exact results cannot alias even when
    their canonical signatures coincide. {!absorb} copies raw
    (already-namespaced) keys, so folding a worker table into a shared
    one preserves the origin tags. *)

val tag : 'v t -> string option
(** The namespace tag supplied at {!create}, if any. *)

val find : ?depth:int -> 'v t -> string -> 'v option
(** Counts one hit or one miss. With [depth] (the engine passes the
    candidate-set index) and a {e tracing} telemetry handle, the lookup
    is additionally attributed to lazily-created
    [memo.depth<d>.hits]/[.misses] counters — the source of the
    depth-resolved hit-rate table in [prpart profile]. Free on
    non-tracing handles. *)

val add : 'v t -> string -> 'v -> unit
(** Clears the table first when it is full. Replaces existing
    bindings. *)

val find_or_add : ?depth:int -> 'v t -> string -> (unit -> 'v) -> 'v
(** [find] then [add] of the thunk's result on a miss. *)

val hits : 'v t -> int

val misses : 'v t -> int

val length : 'v t -> int

val iter : (string -> 'v -> unit) -> 'v t -> unit
(** Iterate over the live entries (unspecified order). *)

val absorb : into:'v t -> 'v t -> unit
(** [absorb ~into t] adds every entry of [t] to [into] (replacing equal
    keys) — how the parallel engine folds per-domain tables back into
    the shared one after a join. Does not touch hit/miss counts. *)

(** {1 Signatures} *)

val scheme_signature : Scheme.t -> string
(** Canonical content signature of a built scheme. Equal for schemes
    that place the same mode clusters into the same groups, whatever
    the region numbering or partition order. *)

val grouping_signature :
  parts:Cluster.Base_partition.t array ->
  statics:int list ->
  groups:int list list ->
  string
(** The same signature computed from search-internal state — partition
    indices into [parts], statics and per-group member lists in any
    order — without building the scheme. Agrees with
    {!scheme_signature} of the resulting scheme. *)

val members_signature : Cluster.Base_partition.t array -> int list -> string
(** Content signature of a single member set (one region group) — the
    building block of {!grouping_signature}, exposed for group-level
    caches and the signature unit tests. *)

val placement_signature : int array -> string
(** Signature of a region-id-per-partition placement ([-1] = static)
    after canonical renumbering by first appearance. Only valid within
    a fixed partition list. *)
