module Design = Prdesign.Design
module Resource = Fpga.Resource

type evaluation = {
  region_frames : int array;
  region_conflicts : int array;
  total_frames : int;
  worst_frames : int;
  reconfigurable : Resource.t;
  static : Resource.t;
  used : Resource.t;
}

(* Resident partition per (config, region): partition index or -1 for a
   don't-care. *)
let residency (s : Scheme.t) =
  let configs = Design.configuration_count s.design in
  Array.init configs (fun c ->
      Array.init s.region_count (fun r ->
          match Scheme.active_partition s ~config:c ~region:r with
          | Some p -> p
          | None -> -1))

let conflicts_of_column residency_matrix r =
  let configs = Array.length residency_matrix in
  let count = ref 0 in
  for i = 0 to configs - 1 do
    for j = i + 1 to configs - 1 do
      let a = residency_matrix.(i).(r) and b = residency_matrix.(j).(r) in
      if a >= 0 && b >= 0 && a <> b then incr count
    done
  done;
  !count

let evaluate (s : Scheme.t) =
  let resid = residency s in
  let region_frames = Array.init s.region_count (Scheme.region_frames s) in
  let region_conflicts =
    Array.init s.region_count (conflicts_of_column resid)
  in
  let total_frames =
    let acc = ref 0 in
    Array.iteri (fun r f -> acc := !acc + (f * region_conflicts.(r))) region_frames;
    !acc
  in
  let configs = Design.configuration_count s.design in
  let worst_frames =
    let worst = ref 0 in
    for i = 0 to configs - 1 do
      for j = i + 1 to configs - 1 do
        let cost = ref 0 in
        for r = 0 to s.region_count - 1 do
          let a = resid.(i).(r) and b = resid.(j).(r) in
          if a >= 0 && b >= 0 && a <> b then cost := !cost + region_frames.(r)
        done;
        if !cost > !worst then worst := !cost
      done
    done;
    !worst
  in
  let reconfigurable = Scheme.reconfigurable_resources s in
  let static = Scheme.static_resources s in
  { region_frames;
    region_conflicts;
    total_frames;
    worst_frames;
    reconfigurable;
    static;
    used = Resource.add reconfigurable static }

let fits evaluation ~budget = Resource.fits evaluation.used ~within:budget

let pairwise_frames (s : Scheme.t) i j =
  let configs = Design.configuration_count s.design in
  if i < 0 || i >= configs || j < 0 || j >= configs then
    invalid_arg "Cost.pairwise_frames: configuration index out of range";
  let cost = ref 0 in
  for r = 0 to s.region_count - 1 do
    let a =
      match Scheme.active_partition s ~config:i ~region:r with
      | Some p -> p
      | None -> -1
    and b =
      match Scheme.active_partition s ~config:j ~region:r with
      | Some p -> p
      | None -> -1
    in
    if a >= 0 && b >= 0 && a <> b then cost := !cost + Scheme.region_frames s r
  done;
  !cost

(* Shared kernel for the all-pairs entry points: resolve residency and
   region frames once (each [Scheme.active_partition] /
   [Scheme.region_frames] call walks member lists), then fold over the
   upper triangle only. [pairwise_frames] recomputed both per pair
   before this existed; now every pair costs one O(regions) scan over
   precomputed arrays. *)
let fold_pairs (s : Scheme.t) f init =
  let configs = Design.configuration_count s.design in
  let resid = residency s in
  let region_frames = Array.init s.region_count (Scheme.region_frames s) in
  let acc = ref init in
  for i = 0 to configs - 1 do
    for j = i + 1 to configs - 1 do
      let cost = ref 0 in
      for r = 0 to s.region_count - 1 do
        let a = resid.(i).(r) and b = resid.(j).(r) in
        if a >= 0 && b >= 0 && a <> b then cost := !cost + region_frames.(r)
      done;
      acc := f !acc i j !cost
    done
  done;
  !acc

let transition_matrix (s : Scheme.t) =
  let configs = Design.configuration_count s.design in
  let m = Array.make_matrix configs configs 0 in
  (* Compute the upper triangle once and mirror it — the matrix is
     symmetric by construction (pinned by the symmetry unit test). *)
  fold_pairs s
    (fun () i j c ->
      m.(i).(j) <- c;
      m.(j).(i) <- c)
    ();
  m

let weighted_total (s : Scheme.t) ~weights =
  let configs = Design.configuration_count s.design in
  if
    Array.length weights <> configs
    || Array.exists (fun row -> Array.length row <> configs) weights
  then invalid_arg "Cost.weighted_total: weight matrix shape mismatch";
  fold_pairs s
    (fun acc i j c ->
      let w = weights.(i).(j) +. weights.(j).(i) in
      if w <> 0. then acc +. (w *. float_of_int c) else acc)
    0.

(* Placement-awareness hook. The floorplan estimator lives above this
   library in the dependency order, so the penalty arrives as a closure
   over per-region demands; [Prcore] only fixes the calling convention
   (regions 0..n-1 in index order, then the static side last). The
   closure must be pure and deterministic — it is re-evaluated freely,
   including from parallel worker domains. *)
type placement = {
  placement_label : string;
  placement_cost : Fpga.Resource.t array -> int;
}

let placement_demands (s : Scheme.t) =
  Array.init (s.region_count + 1) (fun i ->
      if i < s.region_count then Scheme.region_resources s i
      else Scheme.static_resources s)

let placement_penalty p s = p.placement_cost (placement_demands s)

let equal_evaluation (a : evaluation) (b : evaluation) =
  a.total_frames = b.total_frames
  && a.worst_frames = b.worst_frames
  && a.region_frames = b.region_frames
  && a.region_conflicts = b.region_conflicts
  && Resource.equal a.reconfigurable b.reconfigurable
  && Resource.equal a.static b.static
  && Resource.equal a.used b.used

let pp_evaluation ppf e =
  Format.fprintf ppf
    "total %d frames, worst %d frames, used %a (reconfigurable %a + static %a)"
    e.total_frames e.worst_frames Resource.pp e.used Resource.pp
    e.reconfigurable Resource.pp e.static
