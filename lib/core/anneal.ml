module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
  promote_static : bool;
}

let default_options =
  { iterations = 60_000;
    initial_temperature = 20_000.;
    cooling = 0.9998;
    seed = 1;
    promote_static = true }

(* A self-contained SplitMix64 stream so prcore does not depend on the
   workload-generator library. *)
module Rng = struct
  type t = { mutable state : int64 }

  let mix z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { state = mix (Int64.of_int seed) }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    mix t.state

  let int t bound =
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.
end

(* Scalar area in frame-equivalents, matching the greedy allocator. *)
let scalar (r : Resource.t) =
  (float_of_int r.clb *. 1.8)
  +. (float_of_int r.bram *. 7.5)
  +. (float_of_int r.dsp *. 3.5)

let deficit ~budget (used : Resource.t) =
  let over a b = max 0 (a - b) in
  scalar
    { Resource.clb = over used.clb budget.Resource.clb;
      bram = over used.bram budget.Resource.bram;
      dsp = over used.dsp budget.Resource.dsp }

(* Incremental energy engine. A move reassigns one partition to another
   region (or static), so only the source and destination regions can
   change: their contributions are recomputed and everything else —
   total frames, resource usage, validity — is maintained as exact
   integer sums, guaranteeing bit-identical energies to a from-scratch
   evaluation. [propose] computes the candidate energy without touching
   any cache (a rejected move therefore costs nothing to undo: restore
   one placement cell, O(1)); [commit] installs the already-computed
   region snapshots.

   Energy of a placement: total reconfiguration frames plus a soft
   penalty per frame-equivalent of budget overrun — steep enough that
   feasible states win, shallow enough that the walk can cross short
   infeasible ridges at moderate temperatures. Invalid placements (two
   members of one region active in the same configuration) evaluate to
   (infinity, false, max_int). *)
module Energy = struct
  type snapshot = {
    contribution : int;  (* frames * conflicts; 0 when empty *)
    quantized : Resource.t;  (* zero when empty *)
    collided : bool;  (* two active members in one configuration *)
  }

  type pending = {
    p_part : int;
    p_target : int;
    src : snapshot;  (* new state of the source region (if any) *)
    dst : snapshot;  (* new state of the target region (if any) *)
    p_static : Resource.t;
    p_used : Resource.t;
    p_total : int;
    p_invalid : int;
    p_pen : int;
    p_triple : float * bool * int;
  }

  type t = {
    budget : Resource.t;
    configs : int;
    resources : Resource.t array;  (* per partition *)
    activity : bool array array;  (* partition -> config -> active *)
    placement : int array;  (* committed state; -1 = static *)
    regions : snapshot array;  (* indexed by region id, 0 .. n-1 *)
    penalty_fn : (Resource.t array -> int) option;
        (* placement-awareness hook: integer placeability penalty of
           the per-region demand array (regions then static last) *)
    mutable static_res : Resource.t;
    mutable used : Resource.t;
    mutable total : int;
    mutable invalid : int;  (* regions with a collision *)
    mutable pen : int;  (* committed placeability penalty *)
    mutable pending : pending option;
  }

  let empty_snapshot =
    { contribution = 0; quantized = Resource.zero; collided = false }

  (* Recompute one region from scratch, with partition [part] virtually
     reassigned to [target] (pass [part = -1] for the committed
     state). O(members * configs + configs^2) for the affected region
     only. *)
  let eval_region t r ~part ~target =
    let column = Array.make t.configs (-1) in
    let collided = ref false in
    let resources = ref Resource.zero in
    let occupied = ref 0 in
    let n = Array.length t.placement in
    for p = 0 to n - 1 do
      let home = if p = part then target else t.placement.(p) in
      if home = r then begin
        incr occupied;
        resources := Resource.max !resources t.resources.(p);
        let act = t.activity.(p) in
        for c = 0 to t.configs - 1 do
          if act.(c) then
            if column.(c) >= 0 then collided := true else column.(c) <- p
        done
      end
    done;
    if !occupied = 0 then empty_snapshot
    else begin
      let conflicts = ref 0 in
      for i = 0 to t.configs - 1 do
        if column.(i) >= 0 then
          for j = i + 1 to t.configs - 1 do
            if column.(j) >= 0 && column.(i) <> column.(j) then
              incr conflicts
          done
      done;
      let frames = Tile.frames_of_resources !resources in
      { contribution = frames * !conflicts;
        quantized = Tile.quantize !resources;
        collided = !collided }
    end

  (* The placeability penalty joins the objective exactly like extra
     frames: the energy and the comparison total both carry
     [total + penalty], so every consumer (anneal best-tracking,
     multilevel refinement) ranks penalised schemes lower without any
     further plumbing. With no penalty hook the triple is bit-identical
     to the pre-placement-aware implementation. *)
  let triple_of ~budget ~used ~total ~invalid ~penalty =
    if invalid > 0 then (infinity, false, max_int)
    else begin
      let d = deficit ~budget used in
      let objective = total + penalty in
      (float_of_int objective +. (200. *. d), d = 0., objective)
    end

  (* Demand array of a (possibly overridden) region state: one entry
     per region id in order, then the static side last — the
     {!Cost.placement} calling convention. [snapshot_of] lets [propose]
     substitute the source/destination snapshots without committing. *)
  let penalty_of t ~snapshot_of ~static_res =
    match t.penalty_fn with
    | None -> 0
    | Some f ->
      let n = Array.length t.regions in
      f
        (Array.init (n + 1) (fun i ->
             if i < n then (snapshot_of i).quantized else static_res))

  let committed_penalty t =
    penalty_of t ~snapshot_of:(fun r -> t.regions.(r)) ~static_res:t.static_res

  let create ?penalty ~budget ~static_overhead ~resources ~activity placement =
    let n = Array.length placement in
    let configs = if n = 0 then 0 else Array.length activity.(0) in
    let t =
      { budget;
        configs;
        resources;
        activity;
        placement = Array.copy placement;
        regions = Array.make n empty_snapshot;
        penalty_fn = penalty;
        static_res = static_overhead;
        used = Resource.zero;
        total = 0;
        invalid = 0;
        pen = 0;
        pending = None }
    in
    Array.iteri
      (fun p r ->
        if r = -1 then t.static_res <- Resource.add t.static_res resources.(p))
      t.placement;
    for r = 0 to n - 1 do
      let s = eval_region t r ~part:(-1) ~target:(-1) in
      t.regions.(r) <- s;
      t.total <- t.total + s.contribution;
      if s.collided then t.invalid <- t.invalid + 1
    done;
    t.used <-
      Array.fold_left
        (fun acc s -> Resource.add acc s.quantized)
        t.static_res t.regions;
    t.pen <- committed_penalty t;
    t

  let current t =
    triple_of ~budget:t.budget ~used:t.used ~total:t.total ~invalid:t.invalid
      ~penalty:t.pen

  let placement t = Array.copy t.placement

  let propose t ~part ~target =
    let old = t.placement.(part) in
    if old = target then current t
    else begin
      let res = t.resources.(part) in
      let static_res =
        if old = -1 then Resource.sub t.static_res res
        else if target = -1 then Resource.add t.static_res res
        else t.static_res
      in
      let reeval r =
        if r < 0 then empty_snapshot else eval_region t r ~part ~target
      in
      let src = reeval old and dst = reeval target in
      let swap_contribution acc r fresh =
        if r < 0 then acc
        else acc - t.regions.(r).contribution + fresh.contribution
      in
      let total =
        swap_contribution (swap_contribution t.total old src) target dst
      in
      let swap_quantized acc r fresh =
        if r < 0 then acc
        else
          Resource.add (Resource.sub acc t.regions.(r).quantized)
            fresh.quantized
      in
      let used =
        Resource.add
          (Resource.sub
             (swap_quantized (swap_quantized t.used old src) target dst)
             t.static_res)
          static_res
      in
      let swap_invalid acc r fresh =
        if r < 0 then acc
        else
          acc
          - (if t.regions.(r).collided then 1 else 0)
          + if fresh.collided then 1 else 0
      in
      let invalid = swap_invalid (swap_invalid t.invalid old src) target dst in
      let pen =
        penalty_of t
          ~snapshot_of:(fun r ->
            if r = old then src
            else if r = target then dst
            else t.regions.(r))
          ~static_res
      in
      let triple =
        triple_of ~budget:t.budget ~used ~total ~invalid ~penalty:pen
      in
      t.pending <-
        Some
          { p_part = part;
            p_target = target;
            src;
            dst;
            p_static = static_res;
            p_used = used;
            p_total = total;
            p_invalid = invalid;
            p_pen = pen;
            p_triple = triple };
      triple
    end

  let commit t ~part ~target =
    let old = t.placement.(part) in
    if old <> target then begin
      let pending =
        match t.pending with
        | Some p when p.p_part = part && p.p_target = target -> p
        | Some _ | None ->
          (* No matching proposal (e.g. the evaluation came from the
             transposition table): compute the snapshots now. *)
          ignore (propose t ~part ~target);
          (match t.pending with Some p -> p | None -> assert false)
      in
      if old >= 0 then t.regions.(old) <- pending.src;
      if target >= 0 then t.regions.(target) <- pending.dst;
      t.static_res <- pending.p_static;
      t.used <- pending.p_used;
      t.total <- pending.p_total;
      t.invalid <- pending.p_invalid;
      t.pen <- pending.p_pen;
      t.placement.(part) <- target
    end;
    t.pending <- None

  (* From-scratch reference evaluation of the committed placement — the
     oracle the incremental sums are property-tested against. *)
  let from_scratch t =
    let n = Array.length t.placement in
    let static_res = ref Resource.zero in
    Array.iteri
      (fun p r ->
        if r = -1 then static_res := Resource.add !static_res t.resources.(p))
      t.placement;
    let used = ref !static_res in
    let total = ref 0 in
    let invalid = ref 0 in
    let snapshots = Array.make n empty_snapshot in
    for r = 0 to n - 1 do
      let s = eval_region t r ~part:(-1) ~target:(-1) in
      snapshots.(r) <- s;
      used := Resource.add !used s.quantized;
      total := !total + s.contribution;
      if s.collided then incr invalid
    done;
    (* [from_scratch] ignores the caches entirely but must include the
       caller-supplied static overhead baked into [static_res] at
       creation; recover it as (committed static - sum of member
       resources). *)
    let member_static = !static_res in
    let overhead = Resource.sub t.static_res member_static in
    let used = Resource.add !used overhead in
    let pen =
      penalty_of t
        ~snapshot_of:(fun r -> snapshots.(r))
        ~static_res:t.static_res
    in
    triple_of ~budget:t.budget ~used ~total:!total ~invalid:!invalid
      ~penalty:pen
end

let scheme_of_placement design parts placement =
  (* Renumber regions densely in order of first appearance. *)
  let mapping = Hashtbl.create 8 in
  let next = ref 0 in
  let resolved =
    Array.map
      (fun r ->
        if r = -1 then Scheme.Static
        else begin
          let id =
            match Hashtbl.find_opt mapping r with
            | Some id -> id
            | None ->
              let id = !next in
              Hashtbl.add mapping r id;
              incr next;
              id
          in
          Scheme.Region id
        end)
      placement
  in
  Scheme.make design
    (List.mapi (fun p bp -> (bp, resolved.(p))) (Array.to_list parts))

let allocate ?(options = default_options) ?(telemetry = Prtelemetry.null)
    ?guard ?placement ~budget design partitions =
  let penalty_hook = Option.map (fun p -> p.Cost.placement_cost) placement in
  match partitions with
  | [] -> None
  | _ ->
    Prtelemetry.with_span telemetry "anneal.allocate" (fun () ->
        let steps = Prtelemetry.counter telemetry "anneal.steps" in
        let accepted_moves = Prtelemetry.counter telemetry "anneal.accepted" in
        let best_updates =
          Prtelemetry.counter telemetry "anneal.best_updates"
        in
        let cost_evaluations =
          Prtelemetry.counter telemetry "core.cost_evaluations"
        in
        let delta_evals = Prtelemetry.counter telemetry "perf.delta_evals" in
        let parts = Array.of_list partitions in
        let n = Array.length parts in
        let analysis = Compatibility.analyse design parts in
        if not (Compatibility.covers_design analysis) then None
        else begin
          let configs = Design.configuration_count design in
          let activity =
            Array.init n (fun p ->
                Array.init configs (fun c ->
                    Compatibility.active analysis ~bp:p ~config:c))
          in
          let resources =
            Array.map (fun bp -> bp.Base_partition.resources) parts
          in
          let rng = Rng.make options.seed in
          (* Start all-separate: region id = partition index. *)
          let placement = Array.init n Fun.id in
          let energy_state =
            Energy.create ?penalty:penalty_hook ~budget
              ~static_overhead:design.Design.static_overhead ~resources
              ~activity placement
          in
          (* Transposition table over canonical placement signatures:
             the walk revisits states constantly once the temperature
             drops, and a revisited state is served from the table
             instead of re-running even the delta evaluation. Keyed per
             search (partition indices are only meaningful within this
             allocate call). *)
          let memo = Memo.create ~telemetry () in
          Prtelemetry.Counter.incr cost_evaluations;
          let energy, feasible, total = Energy.current energy_state in
          Memo.add memo
            (Memo.placement_signature placement)
            (energy, feasible, total);
          let current_energy = ref energy in
          let best =
            ref (if feasible then Some (Array.copy placement, total) else None)
          in
          let temperature = ref options.initial_temperature in
          (try
          for iteration = 1 to options.iterations do
            (* Deadline/cancellation break ([interrupted] ignores the
               eval cap, so capped runs stay deterministic); the best
               feasible placement found so far survives the break. *)
            (match guard with
             | Some g
               when iteration land 255 = 0 && Prguard.Budget.interrupted g ->
               raise Exit
             | Some g -> Prguard.Budget.charge g
             | None -> ());
            Prtelemetry.Counter.incr steps;
            let p = Rng.int rng n in
            let old_region = placement.(p) in
            (* Candidate target: another partition's region, a fresh region
               (its own index), or static. *)
            let choice =
              Rng.int rng (n + if options.promote_static then 2 else 1)
            in
            let target =
              if choice < n then placement.(Rng.int rng n)
              else if choice = n then p
              else -1
            in
            if target <> old_region then begin
              placement.(p) <- target;
              Prtelemetry.Counter.incr cost_evaluations;
              let key = Memo.placement_signature placement in
              let energy, feasible, total =
                match Memo.find memo key with
                | Some triple -> triple
                | None ->
                  Prtelemetry.Counter.incr delta_evals;
                  let triple =
                    Energy.propose energy_state ~part:p ~target
                  in
                  Memo.add memo key triple;
                  triple
              in
              let delta = energy -. !current_energy in
              let accept =
                delta < 0.
                || (Float.is_finite delta
                    && Rng.float rng < Float.exp (-.delta /. !temperature))
              in
              if accept then begin
                Prtelemetry.Counter.incr accepted_moves;
                Energy.commit energy_state ~part:p ~target;
                current_energy := energy;
                if feasible then
                  match !best with
                  | Some (_, best_total) when best_total <= total -> ()
                  | Some _ | None ->
                    Prtelemetry.Counter.incr best_updates;
                    if Prtelemetry.tracing telemetry then
                      Prtelemetry.point telemetry "anneal.best"
                        ~attrs:
                          [ ("iteration", Prtelemetry.Json.Int iteration);
                            ("total_frames", Prtelemetry.Json.Int total) ];
                    best := Some (Array.copy placement, total)
              end
              else placement.(p) <- old_region
            end;
            temperature := !temperature *. options.cooling
          done
          with Exit -> ());
          match !best with
          | None -> None
          | Some (placement, _) ->
            (match scheme_of_placement design parts placement with
             | Ok scheme -> Some scheme
             | Error _ -> None)
        end)
