module Design = Prdesign.Design
module Conn_matrix = Prgraph.Conn_matrix
module Wgraph = Prgraph.Wgraph
module Clique = Prgraph.Clique

type freq_rule = Support | Min_edge

let graph_of_matrix matrix =
  Wgraph.create
    ~n:(Conn_matrix.modes matrix)
    ~weight:(fun i j -> Conn_matrix.edge_weight matrix i j)

(* Run the clustering loop and feed every discovered (link, cliques) pair
   to [emit]. Shared by [run] and [trace]. [stop] is polled before each
   link: once it fires, the remaining (lower-weight) links are skipped —
   the partitions found so far, plus the unconditional singletons, are
   still a valid covering base. *)
exception Stopped

let iterate ~freq_rule ~clique_limit ~stop design emit =
  let matrix = Conn_matrix.make design in
  let graph = graph_of_matrix matrix in
  let keep =
    match freq_rule with
    | Support -> fun modes -> Conn_matrix.supported matrix modes
    | Min_edge -> fun _ -> true
  in
  let freq_of modes =
    match freq_rule with
    | Support -> Conn_matrix.support matrix modes
    | Min_edge -> Wgraph.min_internal_weight graph modes
  in
  (try
     List.iter
       (fun (i, j, w) ->
         if stop () then raise Stopped;
         Wgraph.link graph i j;
         let cliques =
           Clique.new_cliques_after_link ~keep ~limit:clique_limit graph i j
         in
         let partitions =
           List.map
             (fun modes ->
               Base_partition.make design ~modes ~freq:(freq_of modes))
             cliques
         in
         emit (i, j, w) partitions)
       (Wgraph.positive_pairs_desc graph)
   with Stopped -> ());
  matrix

let singletons matrix design =
  List.map
    (fun mode ->
      Base_partition.make design ~modes:[ mode ]
        ~freq:(Conn_matrix.node_weight matrix mode))
    (Conn_matrix.active_modes matrix)

let run ?(freq_rule = Support) ?(clique_limit = 100_000)
    ?(stop = fun () -> false) ?(telemetry = Prtelemetry.null) design =
  Prtelemetry.with_span telemetry "cluster.agglomerate"
    ~attrs:[ ("design", Prtelemetry.Json.String design.Design.name) ]
    (fun () ->
      let links = Prtelemetry.counter telemetry "cluster.links" in
      let cliques = Prtelemetry.counter telemetry "cluster.cliques" in
      let acc = ref [] in
      let matrix =
        iterate ~freq_rule ~clique_limit ~stop design (fun (i, j, w) partitions ->
            Prtelemetry.Counter.incr links;
            let found = List.length partitions in
            Prtelemetry.Counter.incr cliques ~by:found;
            if Prtelemetry.tracing telemetry then
              Prtelemetry.point telemetry "cluster.link"
                ~attrs:
                  [ ("i", Prtelemetry.Json.Int i);
                    ("j", Prtelemetry.Json.Int j);
                    ("weight", Prtelemetry.Json.Int w);
                    ("cliques", Prtelemetry.Json.Int found) ];
            acc := List.rev_append partitions !acc)
      in
      let singles = singletons matrix design in
      Prtelemetry.Counter.incr cliques ~by:(List.length singles);
      List.sort Base_partition.compare_priority (singles @ List.rev !acc))

let trace ?(freq_rule = Support) ?(clique_limit = 100_000) design =
  let acc = ref [] in
  let (_ : Conn_matrix.t) =
    iterate ~freq_rule ~clique_limit ~stop:(fun () -> false) design
      (fun link partitions ->
        acc := (link, partitions) :: !acc)
  in
  List.rev !acc
