(** The paper's modified hierarchical clustering with agglomerative
    strategy (§IV-C): starting from disconnected mode nodes, links are
    added in descending edge-weight order; every sub-graph that becomes
    complete is recorded as a base partition with a frequency weight.

    Two frequency rules are provided (see DESIGN.md):

    - [Support] (default): a newly complete sub-graph is kept only when
      its modes co-occur in at least one configuration, and its frequency
      weight is that co-occurrence count. This reproduces the paper's
      Table I exactly.
    - [Min_edge]: the paper's literal rule — every newly complete
      sub-graph is kept and weighted by its minimum internal edge weight
      (node weight for singletons). Kept for the ablation study. *)

type freq_rule = Support | Min_edge

val run :
  ?freq_rule:freq_rule ->
  ?clique_limit:int ->
  ?stop:(unit -> bool) ->
  ?telemetry:Prtelemetry.t ->
  Prdesign.Design.t ->
  Base_partition.t list
(** All base partitions of the design, sorted with
    {!Base_partition.compare_priority} (the covering-list order).
    Singletons cover every mode used by at least one configuration; modes
    used by no configuration (paper's "mode 0") are excluded.
    [clique_limit] bounds enumeration per added link (default 100_000,
    reachable under [Min_edge] and on dense huge-class co-occurrence
    graphs).

    [stop] (default [fun () -> false]) is polled before each link; once
    it returns [true] the remaining (lower-weight) links are skipped and
    the partitions discovered so far are returned — the singletons are
    unconditional, so a truncated result still covers the design. The
    engine threads its budget-guard deadline/cancellation poll here,
    making clustering anytime on designs whose clique structure explodes
    (the 50-500-module huge class, DESIGN.md §12).

    [telemetry] (default {!Prtelemetry.null}, free): a
    ["cluster.agglomerate"] span, ["cluster.links"]/["cluster.cliques"]
    counters, and — when tracing — one ["cluster.link"] event per added
    edge with the cliques it completed. *)

val trace :
  ?freq_rule:freq_rule ->
  ?clique_limit:int ->
  Prdesign.Design.t ->
  ((int * int * int) * Base_partition.t list) list
(** The clustering history: for each link added — [(mode_i, mode_j,
    edge_weight)] in addition order — the base partitions discovered by
    that link. Singleton partitions are not part of the trace (they exist
    before any link is added). *)
