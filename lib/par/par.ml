let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Cooperative cancellation: when [cancel] reports true, items that have
   not started yet are computed with [fallback] instead of [f] (the
   already-ordered result array keeps its shape, so callers can mark
   skipped items with a cheap sentinel). Without a [fallback] the
   [cancel] flag is ignored. *)
let apply ?cancel ?fallback f x =
  match (cancel, fallback) with
  | Some c, Some fb when c () -> fb x
  | _ -> f x

module Pool = struct
  (* Workers block on [work] waiting for batch tasks. A map pushes one
     task per worker; every participant (workers + the caller) then
     steals item indices from a shared atomic cursor, so load balances
     even when per-item costs vary wildly (some designs solve 100x
     slower than others). Completion is signalled by counting finished
     items under the pool mutex — the only lock on the data path, taken
     once per participant per map. *)

  (* Per-domain profiling slot. Each domain writes only its own slot
     (no lock needed on the data path); the coordinator reads them
     after a map completes, which the completion mutex orders. Slot 0
     is the calling domain, slot i the i-th spawned worker. *)
  type stats = {
    mutable tasks : int;  (* batch tasks executed *)
    mutable items : int;  (* stolen item indices *)
    mutable busy_s : float;  (* wall time inside batch tasks *)
    mutable wait_s : float;  (* queue wait of the tasks this slot ran *)
  }

  type task = Run of { work : int -> unit; enqueued : float } | Quit

  type t = {
    jobs : int;
    mutex : Mutex.t;
    work : Condition.t;  (* signalled when [queue] gains a task *)
    idle : Condition.t;  (* signalled when a map finishes items *)
    queue : task Queue.t;
    mutable workers : unit Domain.t list;
    mutable closed : bool;
    telemetry : Prtelemetry.t;
    timed : bool;  (* profile wall clocks only when telemetry is live *)
    queue_wait : Prtelemetry.Histogram.t;  (* ms; dead unless tracing *)
    stats : stats array;
    created : float;
  }

  let now () = Unix.gettimeofday ()

  let worker_loop pool slot =
    let rec next () =
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue do
        Condition.wait pool.work pool.mutex
      done;
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      match task with
      | Quit -> ()
      | Run { work; enqueued } ->
        if pool.timed then begin
          let t0 = now () in
          work slot;
          let s = pool.stats.(slot) in
          s.tasks <- s.tasks + 1;
          s.busy_s <- s.busy_s +. (now () -. t0);
          let wait = t0 -. enqueued in
          s.wait_s <- s.wait_s +. (if wait > 0. then wait else 0.);
          Prtelemetry.Histogram.observe pool.queue_wait
            (if wait > 0. then wait *. 1e3 else 0.)
        end
        else work slot;
        next ()
    in
    next ()

  let create ?(telemetry = Prtelemetry.null) ~jobs () =
    let jobs = max 1 jobs in
    let timed = Prtelemetry.enabled telemetry in
    let pool =
      { jobs;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        workers = [];
        closed = false;
        telemetry;
        timed;
        queue_wait = Prtelemetry.histogram telemetry "par.queue_wait_ms";
        stats =
          Array.init jobs (fun _ ->
              { tasks = 0; items = 0; busy_s = 0.; wait_s = 0. });
        created = (if timed then now () else 0.) }
    in
    if jobs > 1 then
      pool.workers <-
        List.init (jobs - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop pool (i + 1)));
    pool

  let jobs t = t.jobs

  (* Flush the per-domain slots into the pool's telemetry handle:
     gauges [par.domain<i>.{busy_s,idle_s,items,tasks}], cumulative
     counters [par.tasks]/[par.items], and a [par.utilisation] gauge
     (busy time over domains x pool lifetime). Idle is lifetime minus
     busy — for workers that is blocking on the queue, for the caller
     it includes whatever else the caller did. No-op without live
     telemetry. *)
  let profile t =
    if t.timed then begin
      let wall = now () -. t.created in
      let wall = if wall > 0. then wall else 0. in
      let total_busy = ref 0. in
      let total_items = ref 0 in
      let total_tasks = ref 0 in
      Array.iteri
        (fun i s ->
          total_busy := !total_busy +. s.busy_s;
          total_items := !total_items + s.items;
          total_tasks := !total_tasks + s.tasks;
          let key suffix = Printf.sprintf "par.domain%d.%s" i suffix in
          Prtelemetry.set_gauge t.telemetry (key "busy_s") s.busy_s;
          Prtelemetry.set_gauge t.telemetry (key "idle_s")
            (let idle = wall -. s.busy_s in
             if idle > 0. then idle else 0.);
          Prtelemetry.set_gauge t.telemetry (key "wait_s") s.wait_s;
          Prtelemetry.set_gauge t.telemetry (key "items")
            (float_of_int s.items);
          Prtelemetry.set_gauge t.telemetry (key "tasks")
            (float_of_int s.tasks))
        t.stats;
      if !total_items > 0 then
        Prtelemetry.incr t.telemetry "par.items" ~by:!total_items;
      if !total_tasks > 0 then
        Prtelemetry.incr t.telemetry "par.tasks" ~by:!total_tasks;
      if wall > 0. then
        Prtelemetry.set_gauge t.telemetry "par.utilisation"
          (!total_busy /. (float_of_int t.jobs *. wall))
    end

  let shutdown t =
    if not t.closed then begin
      t.closed <- true;
      Mutex.lock t.mutex;
      List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.workers;
      t.workers <- []
    end

  let with_pool ?telemetry ~jobs f =
    let pool = create ?telemetry ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  let map_array ?cancel ?fallback t f xs =
    let f = apply ?cancel ?fallback f in
    let n = Array.length xs in
    let live_workers = List.length t.workers in
    if n = 0 then [||]
    else if live_workers = 0 || n = 1 then begin
      if t.timed then begin
        let t0 = now () in
        let result = Array.map f xs in
        let s = t.stats.(0) in
        s.tasks <- s.tasks + 1;
        s.items <- s.items + n;
        s.busy_s <- s.busy_s +. (now () -. t0);
        result
      end
      else Array.map f xs
    end
    else begin
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let finished = ref 0 (* guarded by t.mutex *) in
      let steal slot =
        let mine = ref 0 in
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            (results.(i) <-
               (try Some (Ok (f xs.(i))) with e -> Some (Error e)));
            incr mine;
            loop ()
          end
        in
        loop ();
        if t.timed then begin
          let s = t.stats.(slot) in
          s.items <- s.items + !mine
        end;
        Mutex.lock t.mutex;
        finished := !finished + !mine;
        if !finished = n then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      in
      (* One batch task per worker; idle workers that find the cursor
         exhausted just report zero items and go back to sleep. *)
      Mutex.lock t.mutex;
      let participants = min live_workers (n - 1) in
      let enqueued = if t.timed then now () else 0. in
      for _ = 1 to participants do
        Queue.push (Run { work = steal; enqueued }) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* The calling domain steals too, then waits for stragglers. *)
      if t.timed then begin
        let t0 = now () in
        steal 0;
        let s = t.stats.(0) in
        s.tasks <- s.tasks + 1;
        s.busy_s <- s.busy_s +. (now () -. t0)
      end
      else steal 0;
      Mutex.lock t.mutex;
      while !finished < n do
        Condition.wait t.idle t.mutex
      done;
      Mutex.unlock t.mutex;
      (* Deterministic error behaviour: re-raise for the lowest index. *)
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* finished = n implies all written *))
        results
    end

  let map_list ?cancel ?fallback t f xs =
    Array.to_list (map_array ?cancel ?fallback t f (Array.of_list xs))
end

let map_array ?cancel ?fallback ?telemetry ~jobs f xs =
  if jobs <= 1 || Array.length xs <= 1 then
    Array.map (apply ?cancel ?fallback f) xs
  else
    Pool.with_pool ?telemetry ~jobs (fun pool ->
        let result = Pool.map_array ?cancel ?fallback pool f xs in
        Pool.profile pool;
        result)

let map_list ?cancel ?fallback ?telemetry ~jobs f xs =
  Array.to_list (map_array ?cancel ?fallback ?telemetry ~jobs f (Array.of_list xs))
