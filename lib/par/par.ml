let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Cooperative cancellation: when [cancel] reports true, items that have
   not started yet are computed with [fallback] instead of [f] (the
   already-ordered result array keeps its shape, so callers can mark
   skipped items with a cheap sentinel). Without a [fallback] the
   [cancel] flag is ignored. *)
let apply ?cancel ?fallback f x =
  match (cancel, fallback) with
  | Some c, Some fb when c () -> fb x
  | _ -> f x

module Pool = struct
  (* Workers block on [work] waiting for batch tasks. A map pushes one
     task per worker; every participant (workers + the caller) then
     steals item indices from a shared atomic cursor, so load balances
     even when per-item costs vary wildly (some designs solve 100x
     slower than others). Completion is signalled by counting finished
     items under the pool mutex — the only lock on the data path, taken
     once per participant per map. *)

  type task = Run of (unit -> unit) | Quit

  type t = {
    jobs : int;
    mutex : Mutex.t;
    work : Condition.t;  (* signalled when [queue] gains a task *)
    idle : Condition.t;  (* signalled when a map finishes items *)
    queue : task Queue.t;
    mutable workers : unit Domain.t list;
    mutable closed : bool;
  }

  let worker_loop pool =
    let rec next () =
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue do
        Condition.wait pool.work pool.mutex
      done;
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      match task with
      | Quit -> ()
      | Run f ->
        f ();
        next ()
    in
    next ()

  let create ~jobs =
    let jobs = max 1 jobs in
    let pool =
      { jobs;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        workers = [];
        closed = false }
    in
    if jobs > 1 then
      pool.workers <-
        List.init (jobs - 1) (fun _ ->
            Domain.spawn (fun () -> worker_loop pool));
    pool

  let jobs t = t.jobs

  let shutdown t =
    if not t.closed then begin
      t.closed <- true;
      Mutex.lock t.mutex;
      List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.workers;
      t.workers <- []
    end

  let with_pool ~jobs f =
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  let map_array ?cancel ?fallback t f xs =
    let f = apply ?cancel ?fallback f in
    let n = Array.length xs in
    let live_workers = List.length t.workers in
    if n = 0 then [||]
    else if live_workers = 0 || n = 1 then Array.map f xs
    else begin
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let finished = ref 0 (* guarded by t.mutex *) in
      let steal () =
        let mine = ref 0 in
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            (results.(i) <-
               (try Some (Ok (f xs.(i))) with e -> Some (Error e)));
            incr mine;
            loop ()
          end
        in
        loop ();
        Mutex.lock t.mutex;
        finished := !finished + !mine;
        if !finished = n then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      in
      (* One batch task per worker; idle workers that find the cursor
         exhausted just report zero items and go back to sleep. *)
      Mutex.lock t.mutex;
      let participants = min live_workers (n - 1) in
      for _ = 1 to participants do
        Queue.push (Run steal) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* The calling domain steals too, then waits for stragglers. *)
      steal ();
      Mutex.lock t.mutex;
      while !finished < n do
        Condition.wait t.idle t.mutex
      done;
      Mutex.unlock t.mutex;
      (* Deterministic error behaviour: re-raise for the lowest index. *)
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* finished = n implies all written *))
        results
    end

  let map_list ?cancel ?fallback t f xs =
    Array.to_list (map_array ?cancel ?fallback t f (Array.of_list xs))
end

let map_array ?cancel ?fallback ~jobs f xs =
  if jobs <= 1 || Array.length xs <= 1 then
    Array.map (apply ?cancel ?fallback f) xs
  else
    Pool.with_pool ~jobs (fun pool -> Pool.map_array ?cancel ?fallback pool f xs)

let map_list ?cancel ?fallback ~jobs f xs =
  Array.to_list (map_array ?cancel ?fallback ~jobs f (Array.of_list xs))
