(** Bounded Domain-based parallelism for the partition search and the
    evaluation sweep (OCaml 5 multicore, no external dependencies).

    The central primitive is a deterministic {e ordered map}: results
    come back indexed by their input position regardless of which domain
    computed them or in which order they finished, so a parallel run is
    bit-identical to the sequential one whenever the per-item function
    is itself deterministic and items do not share mutable state.

    Callers that fan work out repeatedly (the synthetic sweep solves
    ~1000 designs) should create one {!Pool.t} and reuse it; one-shot
    callers can use {!map_array}/{!map_list} which wrap
    {!Pool.with_pool}.

    Graceful fallback: [jobs <= 1] (or a single-item input) never
    spawns a domain — the map runs inline on the calling domain, making
    [--jobs 1] exactly the sequential code path.

    Profiling: a pool created with a live telemetry handle keeps one
    stats slot per domain (tasks, stolen items, busy wall time, queue
    wait) and {!Pool.profile} flushes them as [par.domain<i>.*] gauges,
    [par.tasks]/[par.items] counters, a [par.utilisation] gauge and a
    [par.queue_wait_ms] histogram — the raw material for the per-domain
    table in [prpart profile]. With the default {!Prtelemetry.null}
    handle no clock is ever read. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — the
    CLI's default for [--jobs]. *)

module Pool : sig
  type t
  (** A bounded pool of [jobs - 1] worker domains plus the calling
      domain. Workers block on a condition variable between maps; the
      pool owner must not run two maps concurrently (the engine and
      sweep drive it from a single domain). *)

  val create : ?telemetry:Prtelemetry.t -> jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [max 0 (jobs - 1)] worker domains.
      [jobs] is clamped to at least 1. With a live [telemetry] handle
      the pool records per-domain stats (see {!profile}); timing reads
      the wall clock once per batch task, never per item. *)

  val jobs : t -> int

  val map_array :
    ?cancel:(unit -> bool) ->
    ?fallback:('a -> 'b) ->
    t ->
    ('a -> 'b) ->
    'a array ->
    'b array
  (** Ordered parallel map: [map_array t f xs] equals
      [Array.map f xs] element-for-element. Work is distributed by
      atomic index stealing; the calling domain participates. If any
      [f xs.(i)] raises, the exception of the {e lowest} such index is
      re-raised after all items finish — deterministic error
      behaviour.

      [cancel]/[fallback] implement cooperative cancellation across the
      worker domains: once [cancel ()] reports [true] (it is polled
      immediately before each item starts, on whichever domain steals
      it), remaining items are computed with [fallback] instead of [f] —
      typically a cheap sentinel so the caller can tell skipped items
      apart. Items already in flight run to completion; the result
      array keeps its full shape and order. Without [fallback] the
      [cancel] flag is ignored. *)

  val map_list :
    ?cancel:(unit -> bool) ->
    ?fallback:('a -> 'b) ->
    t ->
    ('a -> 'b) ->
    'a list ->
    'b list
  (** [map_list t f xs] equals [List.map f xs]; see {!map_array}. *)

  val profile : t -> unit
  (** Flush the per-domain stats into the pool's telemetry handle:
      [par.domain<i>.busy_s]/[.idle_s]/[.wait_s]/[.items]/[.tasks]
      gauges (slot 0 is the calling domain), cumulative [par.tasks]/
      [par.items] counters and a [par.utilisation] gauge. Call after
      the maps, before shutdown. No-op without live telemetry. *)

  val shutdown : t -> unit
  (** Terminate and join the worker domains. Idempotent. Maps after
      shutdown run inline (single-domain fallback). *)

  val with_pool : ?telemetry:Prtelemetry.t -> jobs:int -> (t -> 'a) -> 'a
  (** Create, run, and always shut down (also on exceptions). *)
end

val map_array :
  ?cancel:(unit -> bool) ->
  ?fallback:('a -> 'b) ->
  ?telemetry:Prtelemetry.t ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** One-shot ordered map over a temporary pool ([jobs <= 1] runs
    inline without spawning anything). [cancel]/[fallback] as in
    {!Pool.map_array}; they are honoured on the inline path too. With a
    live [telemetry] handle the pool profile is flushed
    ({!Pool.profile}) before the pool shuts down. *)

val map_list :
  ?cancel:(unit -> bool) ->
  ?fallback:('a -> 'b) ->
  ?telemetry:Prtelemetry.t ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** List analogue of {!map_array}. *)
