(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), as used to
    protect configuration bitstreams. Table-driven, dependency-free. *)

val digest : bytes -> int32
(** CRC of a whole buffer. *)

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** Incremental interface: feed a slice into a running CRC (start from
    {!initial}). @raise Invalid_argument on an out-of-range slice. *)

val initial : int32
val finalise : int32 -> int32

val string_digest : string -> int32

val hex_digest : string -> string
(** {!string_digest} as 8 lowercase hex digits — the checksum format of
    the [Prguard.Atomic_io] sidecar files used by [Repository.save] and
    the tool flow's artefact writer. *)
