let polynomial = 0xEDB88320l

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor polynomial (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let initial = 0xFFFFFFFFl
let finalise crc = Int32.logxor crc 0xFFFFFFFFl

let update crc buffer ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buffer then
    invalid_arg "Crc32.update: slice out of range";
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let index =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.get buffer i))))
           0xFFl)
    in
    crc := Int32.logxor table.(index) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let digest buffer =
  finalise (update initial buffer ~pos:0 ~len:(Bytes.length buffer))

let string_digest s = digest (Bytes.of_string s)

let hex_digest s = Printf.sprintf "%08lx" (string_digest s)
