module Scheme = Prcore.Scheme
module Base_partition = Cluster.Base_partition

type entry = {
  region : int;
  partition : int;
  label : string;
  bitstream : Bitstream.t;
}

type t = {
  scheme : Scheme.t;
  device : Fpga.Device.t;
  full : Bitstream.t;
  entries : entry list;
}

let build ?placement ?(telemetry = Prtelemetry.null) ~device
    (scheme : Scheme.t) =
  let design = scheme.Scheme.design in
  Prtelemetry.with_span telemetry "bitgen.build"
    ~attrs:
      [ ("design", Prtelemetry.Json.String design.Prdesign.Design.name);
        ("device", Prtelemetry.Json.String device.Fpga.Device.short) ]
  @@ fun () ->
  let bitstreams = Prtelemetry.counter telemetry "bitgen.bitstreams" in
  let frame_count = Prtelemetry.counter telemetry "bitgen.frames" in
  let generate spec =
    let bitstream = Bitstream.generate spec in
    Prtelemetry.Counter.incr bitstreams;
    Prtelemetry.Counter.incr frame_count ~by:bitstream.Bitstream.header.frames;
    if Prtelemetry.tracing telemetry then
      Prtelemetry.point telemetry "bitgen.entry"
        ~attrs:
          [ ("variant", Prtelemetry.Json.String spec.Bitstream.variant);
            ("region", Prtelemetry.Json.Int spec.Bitstream.region);
            ("frames", Prtelemetry.Json.Int spec.Bitstream.frames);
            ("bytes", Prtelemetry.Json.Int (Bitstream.size_bytes bitstream))
          ];
    bitstream
  in
  let far_of_region r =
    match placement with
    | Some rects when r < Array.length rects -> (
      match rects.(r) with
      | Some (rect : Floorplan.Placer.rect) ->
        Bitstream.far_of_origin ~row:rect.row ~major:rect.col
      | None -> Bitstream.far_of_origin ~row:0 ~major:r)
    | Some _ | None -> Bitstream.far_of_origin ~row:0 ~major:r
  in
  let entries =
    List.concat
      (List.init scheme.Scheme.region_count (fun r ->
           let frames = Scheme.region_frames scheme r in
           List.map
             (fun p ->
               let label =
                 Base_partition.label design scheme.Scheme.partitions.(p)
               in
               { region = r;
                 partition = p;
                 label;
                 bitstream =
                   generate
                     { design = design.Prdesign.Design.name;
                       variant = label;
                       region = r;
                       far = far_of_region r;
                       frames } })
             (Scheme.region_members scheme r)))
  in
  let full =
    generate
      { design = design.Prdesign.Design.name;
        variant = "full";
        region = 0xFFFF;
        far = 0;
        frames = Fpga.Device.total_frames device }
  in
  { scheme; device; full; entries }

(* Filesystem-safe label, matching [Hdl.Ast.mangle] (bitgen cannot
   depend on the HDL library): identifier characters survive, everything
   else becomes '_', and a leading digit is prefixed. *)
let sanitize_label s =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      s
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

let entry_filename (e : entry) =
  Printf.sprintf "prr%d_%s.bit" (e.region + 1) (sanitize_label e.label)

let save ?(fsync = true) ~dir t =
  (* Crash-safe persistence: every bitstream goes through
     [Prguard.Atomic_io] (write-to-temp + fsync + rename) with a CRC32
     sidecar, so a crash mid-save leaves either the old artefact, the
     complete new one, or a mismatch [Prguard.recover] detects — never a
     silently torn bitstream. *)
  match Prguard.Atomic_io.mkdir_p dir with
  | Error _ as e -> e
  | Ok () ->
    let checksum = Crc32.hex_digest in
    let rec write_all acc = function
      | [] -> Ok (List.rev acc)
      | (name, content) :: rest -> (
        let path = Filename.concat dir name in
        match Prguard.Atomic_io.write ~fsync ~checksum ~path content with
        | Error _ as e -> e
        | Ok () ->
          write_all (Prguard.Atomic_io.sidecar path :: path :: acc) rest)
    in
    write_all []
      (("full.bit", Bytes.to_string (Bitstream.serialise t.full))
      :: List.map
           (fun e ->
             (entry_filename e, Bytes.to_string (Bitstream.serialise e.bitstream)))
           t.entries)

let find t ~region ~partition =
  List.find_opt
    (fun e -> e.region = region && e.partition = partition)
    t.entries

let partial_bytes t =
  List.fold_left (fun acc e -> acc + Bitstream.size_bytes e.bitstream) 0 t.entries

let total_bytes t = partial_bytes t + Bitstream.size_bytes t.full

let load_seconds ?(icap = Fpga.Icap.default) entry =
  Fpga.Icap.seconds_of_frames icap entry.bitstream.Bitstream.header.frames

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "bitstream repository for %s on %s\n"
       t.scheme.Scheme.design.Prdesign.Design.name t.device.Fpga.Device.name);
  Buffer.add_string buf
    (Printf.sprintf "  full bitstream: %d frames, %d bytes\n"
       t.full.Bitstream.header.frames
       (Bitstream.size_bytes t.full));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  PRR%d %-24s %6d frames %8d bytes (%.2f ms)\n"
           (e.region + 1) e.label e.bitstream.Bitstream.header.frames
           (Bitstream.size_bytes e.bitstream)
           (1e3 *. load_seconds e)))
    t.entries;
  Buffer.add_string buf
    (Printf.sprintf "  total storage: %d bytes (%d partial)\n" (total_bytes t)
       (partial_bytes t));
  Buffer.contents buf
