(** The bitstream repository of a partitioned design: one partial
    bitstream per (region, hosted cluster) plus the initial full
    bitstream — what the configuration-management software keeps in
    external memory and streams through the ICAP at mode switches. *)

type entry = {
  region : int;
  partition : int;  (** Index into the scheme's partition array. *)
  label : string;  (** Cluster label, e.g. ["{A3, B2}"]. *)
  bitstream : Bitstream.t;
}

type t = private {
  scheme : Prcore.Scheme.t;
  device : Fpga.Device.t;
  full : Bitstream.t;  (** Whole-device initial bitstream. *)
  entries : entry list;  (** Region-major, priority order within. *)
}

val build :
  ?placement:Floorplan.Placer.rect option array ->
  ?telemetry:Prtelemetry.t ->
  device:Fpga.Device.t ->
  Prcore.Scheme.t ->
  t
(** Partial bitstreams take their region's tile-quantised frame count;
    frame addresses come from [placement] (the floorplanner's rectangles,
    regions first) when given, otherwise from a region-index placeholder.
    The full bitstream covers the whole device.

    [telemetry] (default {!Prtelemetry.null}, free): a ["bitgen.build"]
    span, ["bitgen.bitstreams"] / ["bitgen.frames"] counters, and a
    ["bitgen.entry"] trace event per generated bitstream (when
    tracing). *)

val find : t -> region:int -> partition:int -> entry option

val entry_filename : entry -> string
(** Filesystem name of one partial bitstream, ["prr<N>_<label>.bit"]
    with the label sanitised to identifier characters (same mapping as
    [Hdl.Ast.mangle], so {!save} and the tool flow agree on names). *)

val save : ?fsync:bool -> dir:string -> t -> (string list, string) result
(** Persist the repository under [dir] (created if missing):
    [full.bit] plus one {!entry_filename} per partial bitstream, each
    written {e crash-safely} through [Prguard.Atomic_io] (temp + fsync +
    rename) with a CRC32 checksum sidecar ([*.bit.crc32],
    {!Crc32.hex_digest}). A crash mid-save leaves either the previous
    artefact, the complete new one, or a checksum mismatch that
    [Prguard.recover] detects and quarantines — never a silently torn
    bitstream. Returns the written paths (data files and sidecars);
    [fsync] (default [true]) can be disabled for tests. *)

val total_bytes : t -> int
(** Storage for all partial bitstreams plus the full one. *)

val partial_bytes : t -> int
(** Storage for the partial bitstreams only. *)

val load_seconds : ?icap:Fpga.Icap.t -> entry -> float
(** ICAP time to load one partial bitstream. *)

val render : t -> string
(** Human-readable inventory table. *)
