(** Fixed log-bucketed latency/size histograms.

    All histograms share one global bucket layout — 4 sub-buckets per
    power of two (octave), binary exponents clamped to a fixed range,
    plus a dedicated bucket for values at or below zero — so any two
    histograms {!merge} by adding their count arrays: merging is
    associative, commutative, and independent of observation order.
    Bucketing uses [Float.frexp] only (no [log]), so bucket selection
    is exact integer arithmetic on the float representation and
    bit-identical across platforms.

    Summaries are deterministic by construction: {!quantile} reports
    the inclusive {e upper bound} of the bucket holding the requested
    rank (clamped to the observed extrema), never an interpolation, so
    p50/p90/p99 depend only on the merged bucket counts.

    Handles are safe for concurrent {!observe} from multiple domains
    (a per-histogram mutex; the hot path is one lock + four stores). *)

type t

val dead : t
(** The shared no-op histogram: {!observe} does nothing, every reader
    sees an empty distribution. Returned by registry lookups on
    non-tracing telemetry handles so instrumented hot paths stay
    allocation-free. *)

val make : unit -> t
(** A fresh live histogram (329 buckets, all zero). *)

val live : t -> bool
(** [false] only for {!dead}. *)

val observe : t -> float -> unit
(** Record one observation. NaN is ignored; values [<= 0] land in a
    dedicated underflow bucket; [+infinity] in the top bucket. No-op
    on {!dead}. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** Exact observed extrema (not bucket bounds); 0 when empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0, 1]: the inclusive upper bound of the
    bucket containing the rank-[ceil (q * count)] observation, clamped
    to [[min_value, max_value]]. 0 when empty. [quantile h 1.0] is
    exactly [max_value h]. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(inclusive upper bound, count)] in ascending
    bound order — the raw material for Prometheus exposition (which
    needs cumulative counts; see {!Telemetry.exposition}). *)

val merge : into:t -> t -> unit
(** Add [src]'s counts, sum and extrema into [into]. Associative and
    commutative over any sequence of merges. No-op when either handle
    is {!dead} or both are the same histogram. *)

val copy : t -> t
(** An independent snapshot ({!dead} copies to {!dead}). *)

val index : float -> int
(** Bucket index for a value (exposed for tests). *)

val upper_bound : int -> float
(** Inclusive upper bound of a bucket index (exposed for tests). *)

val n_buckets : int
