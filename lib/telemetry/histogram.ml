(* Fixed log-bucketed histogram: every handle shares one global bucket
   layout (4 sub-buckets per power of two, exponents clamped to
   [min_exp, max_exp], plus a dedicated bucket for v <= 0), so two
   histograms recorded on different domains — or different machines —
   merge by adding count arrays. Bucketing uses [Float.frexp] only:
   pure float decomposition, no transcendental functions, hence
   bit-identical across platforms and run orders. *)

let min_exp = -40
let max_exp = 41
let sub_buckets = 4
let octaves = max_exp - min_exp + 1
let n_buckets = 1 + (octaves * sub_buckets) (* bucket 0 holds v <= 0 *)

type t = {
  live : bool;
  lock : Mutex.t;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let dead =
  { live = false;
    lock = Mutex.create ();
    counts = [||];
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity }

let make () =
  { live = true;
    lock = Mutex.create ();
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity }

let live h = h.live

(* Bucket index for a value. [frexp v] gives v = m * 2^e with
   m in [0.5, 1); the mantissa selects one of 4 equal sub-buckets per
   octave. Values at or below zero land in bucket 0; +infinity in the
   top bucket. *)
let index v =
  if v <= 0. then 0
  else if v = infinity then n_buckets - 1
  else begin
    let m, e = Float.frexp v in
    if e < min_exp then 1
    else if e > max_exp then n_buckets - 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. 8.) in
      let sub = if sub < 0 then 0 else if sub >= sub_buckets then sub_buckets - 1 else sub in
      1 + ((e - min_exp) * sub_buckets) + sub
    end
  end

(* Inclusive upper bound of bucket [i]: the value x such that every v
   in the bucket satisfies v <= x. Bucket 0 (v <= 0) reports 0. *)
let upper_bound i =
  if i <= 0 then 0.
  else begin
    let i = i - 1 in
    let e = min_exp + (i / sub_buckets) in
    let sub = i mod sub_buckets in
    Float.ldexp (0.5 +. (float_of_int (sub + 1) /. 8.)) e
  end

let observe h v =
  if h.live && not (Float.is_nan v) then begin
    Mutex.lock h.lock;
    let i = index v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    Mutex.unlock h.lock
  end

let with_lock h f =
  Mutex.lock h.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

let count h = h.count
let sum h = with_lock h (fun () -> h.sum)
let min_value h = with_lock h (fun () -> if h.count = 0 then 0. else h.min_v)
let max_value h = with_lock h (fun () -> if h.count = 0 then 0. else h.max_v)

let mean h =
  with_lock h (fun () ->
      if h.count = 0 then 0. else h.sum /. float_of_int h.count)

(* Deterministic quantile: the inclusive upper bound of the bucket
   containing the rank-[ceil (q * count)] observation, clamped to the
   exact observed extrema (so quantile 1.0 is exactly [max_value] and
   ranks landing in the <=0 bucket report [min_value]). No
   interpolation: the answer depends only on the merged bucket counts,
   never on insertion order. *)
let quantile h q =
  with_lock h (fun () ->
      if h.count = 0 then 0.
      else begin
        let q = if q < 0. then 0. else if q > 1. then 1. else q in
        let target =
          let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
          if r < 1 then 1 else if r > h.count then h.count else r
        in
        let result = ref h.max_v in
        (try
           let cumulative = ref 0 in
           for i = 0 to n_buckets - 1 do
             cumulative := !cumulative + h.counts.(i);
             if !cumulative >= target then begin
               result :=
                 (if i = 0 then h.min_v
                  else begin
                    let u = upper_bound i in
                    let u = if u > h.max_v then h.max_v else u in
                    if u < h.min_v then h.min_v else u
                  end);
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end)

(* Non-empty buckets as (inclusive upper bound, count), ascending. *)
let buckets h =
  with_lock h (fun () ->
      let rows = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.counts.(i) > 0 then
          rows := (upper_bound i, h.counts.(i)) :: !rows
      done;
      !rows)

let snapshot h =
  with_lock h (fun () ->
      (Array.copy h.counts, h.count, h.sum, h.min_v, h.max_v))

let merge ~into src =
  if into.live && src.live && src != into then begin
    let counts, count, sum, min_v, max_v = snapshot src in
    if count > 0 then
      with_lock into (fun () ->
          Array.iteri
            (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
            counts;
          into.count <- into.count + count;
          into.sum <- into.sum +. sum;
          if min_v < into.min_v then into.min_v <- min_v;
          if max_v > into.max_v then into.max_v <- max_v)
  end

let copy h =
  if not h.live then dead
  else begin
    let fresh = make () in
    merge ~into:fresh h;
    fresh
  end
