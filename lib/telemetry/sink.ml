type buffer = { mutable events : Event.t list (* reversed *) }

type stream = { oc : out_channel; owned : bool; mutable closed : bool }

type t = Null | Memory of buffer | Stream of stream

let null = Null

let memory () = Memory { events = [] }

let channel oc = Stream { oc; owned = false; closed = false }

let file path =
  match open_out path with
  | oc -> Ok (Stream { oc; owned = true; closed = false })
  | exception Sys_error message -> Error message

let emit t event =
  match t with
  | Null -> ()
  | Memory b -> b.events <- event :: b.events
  | Stream s ->
    if not s.closed then begin
      output_string s.oc (Event.to_jsonl event);
      output_char s.oc '\n'
    end

let events = function
  | Memory b -> List.rev b.events
  | Null | Stream _ -> []

let is_null = function Null -> true | Memory _ | Stream _ -> false

let close = function
  | Null | Memory _ -> ()
  | Stream s ->
    if not s.closed then begin
      flush s.oc;
      if s.owned then begin
        close_out_noerr s.oc;
        s.closed <- true
      end
    end
