(** The telemetry collector: monotonic span timers, named counters,
    gauges and latency histograms, and a structured event stream, all
    hanging off one handle that is threaded through the partitioning
    pipeline as an optional argument.

    Three operating points:

    - {!null} — the shared dead handle every instrumented function
      defaults to. All operations short-circuit on a single boolean
      test; nothing is allocated, timed or counted.
    - a handle over {!Sink.null} — counters, gauges and span statistics
      aggregate (cheap atomic/float mutations) but no events are built
      or emitted and registry histograms stay {!Histogram.dead}.
      {!Prcore.Engine} uses this internally so its [cost_evaluations]
      outcome field is always populated.
    - a handle over a memory/file sink — full event stream plus live
      registry histograms, exportable as JSONL ({!to_jsonl},
      {!write_jsonl}), as Prometheus text ({!exposition}) and as a
      human summary table ({!summary}).

    Domain safety: counters are atomic, every registry table sits
    behind a per-handle mutex, and histograms carry their own locks, so
    instrumented code inside [Par] workers may share one handle — or
    record into private handles that are folded back with {!merge}.
    [with_span] nesting depth is still tracked per handle, so give each
    worker domain its own handle when span {e events} matter. *)

type t

module Counter : sig
  type t
  (** A named monotonic counter. Obtained from {!val-counter} once
      (outside hot loops) and then bumped with {!incr} — one atomic
      fetch-and-add, no lookup, safe across domains. *)

  val incr : ?by:int -> t -> unit
  (** No-op on counters of the {!null} handle. [by] defaults to 1. *)

  val value : t -> int
end

val null : t
(** The dead handle: not {!enabled}, never records anything. *)

val create : ?clock:(unit -> float) -> Sink.t -> t
(** A live collector over [sink]. [clock] (default [Sys.time], the
    monotone per-process CPU clock) supplies span timestamps in
    seconds; event times are relative to creation. *)

val enabled : t -> bool
(** [false] only for {!null}: counters/gauges/spans aggregate. *)

val tracing : t -> bool
(** [true] when events actually reach a sink — callers use this to skip
    building attribute lists for per-node events on the hot path, and
    the registry histograms are only live under it. *)

val ensure : t -> t
(** [ensure t] is [t] when enabled, otherwise a fresh counting-only
    handle over {!Sink.null} — how the engine guarantees itself live
    counters without the caller opting in. *)

(** {1 Spans} *)

val with_span : t -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: a [Begin] event, the call, and a
    guaranteed matching [End] event (also on exceptions) carrying the
    duration in an [ms] attribute. Durations aggregate per name (count,
    total, extrema, and a log-bucketed {!Histogram} for percentiles)
    for {!summary}. On a dead handle this is exactly [f ()]. *)

(** {1 Counters and gauges} *)

val counter : t -> string -> Counter.t
(** The named counter, created at zero on first use. On {!null} a
    shared dead counter is returned. *)

val incr : t -> ?by:int -> string -> unit
(** Convenience lookup-and-bump for cold paths. *)

val counter_value : t -> string -> int
(** 0 for unknown names. *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option

(** {1 Histograms} *)

val histogram : t -> string -> Histogram.t
(** The named registry histogram, created on first use — but only when
    {!tracing}; otherwise {!Histogram.dead}, so per-move hot paths
    (the allocator observes one delta per evaluated move) cost nothing
    under the default counting handle. Bind once outside the loop. *)

val live_histogram : t -> string -> Histogram.t
(** Like {!histogram} but gated only on the handle being enabled, not on
    a tracing sink: a counting handle (null sink) still records.  For
    coarse-grained observations — one per request or job, never one per
    move — where a long-running service wants percentiles with bounded
    memory.  {!Histogram.dead} on a disabled handle. *)

val observe : t -> string -> float -> unit
(** Convenience lookup-and-observe for cold paths. *)

val histograms_list : t -> (string * Histogram.t) list
(** Sorted by name. *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Fold a worker handle's aggregates into a parent: counters add,
    histograms merge bucket-wise, span statistics combine (calls,
    totals, extrema, capped samples, latency histograms), and gauges
    fill only names the parent has not set. Events are not moved —
    worker handles run over null sinks. Deterministic given
    deterministic worker aggregates; no-op unless both handles are
    live. *)

(** {1 Events} *)

val point : t -> ?attrs:(string * Json.t) list -> string -> unit
(** Emit an instantaneous [Point] event (when {!tracing}). *)

val flush : t -> unit
(** Emit one [Counter]/[Gauge] snapshot event per counter and gauge
    (sorted by name, for determinism). Call once, after the traced
    work, before exporting. *)

(** {1 Export} *)

val events : t -> Event.t list
(** Buffered events (memory sinks only). *)

val to_jsonl : t -> string
(** All buffered events, one JSON object per line. *)

val write_jsonl : t -> string -> (unit, string) result
(** Write {!to_jsonl} to a path; [Error] carries the [Sys_error]. *)

val exposition : t -> string
(** Prometheus text exposition: every counter, gauge, registry
    histogram and span-duration histogram as a [# TYPE]-annotated
    metric family. Names are prefixed with [prpart_] and sanitised
    ([.]/[-] become [_]); histogram buckets are cumulative with the
    mandatory [+Inf] bucket plus [_sum]/[_count] rows. Deterministic:
    families and buckets are emitted in sorted order. Empty string on
    {!null}. *)

type span_stats = {
  span_name : string;
  calls : int;
  total_s : float;
  min_s : float;
  max_s : float;
  samples : float list;  (** Up to 512 durations, most recent first. *)
  latency : Histogram.t;  (** Log-bucketed durations (seconds). *)
}

val span_list : t -> span_stats list
(** Aggregated span timings, sorted by descending total time. *)

val counters_list : t -> (string * int) list
(** Sorted by name. *)

val gauges_list : t -> (string * float) list
(** Sorted by name. *)

val summary : t -> string
(** Human-readable tables (via {!Report.Table}): per-span latency
    (calls, total/mean ms and deterministic p50/p90/p99/max from the
    span histograms) with an ASCII latency histogram
    ({!Report.Histogram}) for spans with enough samples, then counters,
    gauges and registry-histogram percentiles. Empty sections are
    omitted. *)
