(* Prscope: turn a recorded telemetry handle into a profiling report —
   a hierarchical span tree with self/total time, a hot-path ranking,
   deterministic span percentiles, depth-resolved memo/prune tables,
   and the per-domain busy/idle table from the Par pool gauges. Pure
   rendering: everything here reads aggregates that already exist on
   the handle, so it can run after the fact on a loaded trace too. *)

type node = {
  name : string;
  calls : int;
  total_s : float;
  children : node list;
}

let self_s node =
  let nested =
    List.fold_left (fun acc c -> acc +. c.total_s) 0. node.children
  in
  let s = node.total_s -. nested in
  if s < 0. then 0. else s

(* ------------------------------------------------------------- span tree *)

(* Rebuild the call tree from Begin/End events. Same-named siblings
   under one parent merge into a single node (calls accumulate), so
   repeated phases render as one line. Unbalanced traces (an End
   without its Begin, or trailing Begins) degrade gracefully: orphan
   Ends are dropped, unclosed Begins keep zero duration. *)
let span_tree events =
  let ms_of (e : Event.t) =
    match List.assoc_opt "ms" e.Event.attrs with
    | Some j -> (match Json.to_float j with Some f -> f /. 1e3 | None -> 0.)
    | None -> 0.
  in
  (* A mutable scratch node per open frame. *)
  let module Scratch = struct
    type t = {
      name : string;
      mutable calls : int;
      mutable total : float;
      order : (string, t) Hashtbl.t;
      mutable sequence : string list;  (* first-seen child order, reversed *)
    }

    let make name =
      { name; calls = 0; total = 0.; order = Hashtbl.create 4; sequence = [] }

    let child parent name =
      match Hashtbl.find_opt parent.order name with
      | Some c -> c
      | None ->
        let c = make name in
        Hashtbl.add parent.order name c;
        parent.sequence <- name :: parent.sequence;
        c

    let rec freeze scratch =
      { name = scratch.name;
        calls = scratch.calls;
        total_s = scratch.total;
        children =
          List.rev_map
            (fun name -> freeze (Hashtbl.find scratch.order name))
            scratch.sequence }
  end in
  let root = Scratch.make "" in
  let stack = ref [ root ] in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Begin ->
        let parent = List.hd !stack in
        let node = Scratch.child parent e.Event.name in
        node.Scratch.calls <- node.Scratch.calls + 1;
        stack := node :: !stack
      | Event.End -> begin
          match !stack with
          | frame :: (_ :: _ as rest) when frame.Scratch.name = e.Event.name ->
            frame.Scratch.total <- frame.Scratch.total +. ms_of e;
            stack := rest
          | _ -> ()  (* orphan End *)
        end
      | Event.Point | Event.Counter | Event.Gauge -> ())
    events;
  (Scratch.freeze root).children

let ms v = Report.Table.fixed 3 (v *. 1e3)

let render_tree roots =
  let grand_total =
    List.fold_left (fun acc n -> acc +. n.total_s) 0. roots
  in
  let rows = ref [] in
  let rec walk depth node =
    let indent = String.make (2 * depth) ' ' in
    let share =
      if grand_total > 0. then
        Printf.sprintf "%5.1f%%" (100. *. node.total_s /. grand_total)
      else "    -"
    in
    rows :=
      [ indent ^ node.name;
        string_of_int node.calls;
        ms node.total_s;
        ms (self_s node);
        share ]
      :: !rows;
    List.iter (walk (depth + 1)) node.children
  in
  List.iter (walk 0) roots;
  if !rows = [] then "span tree: no trace events recorded\n"
  else
    "span tree (total = children + self):\n"
    ^ Report.Table.render
        ~headers:[ "span"; "calls"; "total ms"; "self ms"; "share" ]
        (List.rev !rows)

(* ------------------------------------------------------------- hot paths *)

(* Rank spans by self time: where the run actually burned CPU once
   nested phases are subtracted out. *)
let hot_paths roots =
  let acc = Hashtbl.create 16 in
  let rec walk node =
    let prev =
      match Hashtbl.find_opt acc node.name with
      | Some (calls, self) -> (calls, self)
      | None -> (0, 0.)
    in
    Hashtbl.replace acc node.name
      (fst prev + node.calls, snd prev +. self_s node);
    List.iter walk node.children
  in
  List.iter walk roots;
  let rows = Hashtbl.fold (fun k (c, s) l -> (k, c, s) :: l) acc [] in
  List.sort
    (fun (na, _, sa) (nb, _, sb) ->
      match compare sb sa with 0 -> String.compare na nb | c -> c)
    rows

let render_hot ?(limit = 10) roots =
  let rows = hot_paths roots in
  let grand = List.fold_left (fun a (_, _, s) -> a +. s) 0. rows in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  if rows = [] then ""
  else
    "hot paths (by self time):\n"
    ^ Report.Table.render
        ~headers:[ "rank"; "span"; "calls"; "self ms"; "share" ]
        (List.mapi
           (fun i (name, calls, self) ->
             [ string_of_int (i + 1);
               name;
               string_of_int calls;
               ms self;
               (if grand > 0. then
                  Printf.sprintf "%5.1f%%" (100. *. self /. grand)
                else "    -") ])
           (take limit rows))

(* ----------------------------------------------------------- percentiles *)

let render_percentiles t =
  let spans = List.filter (fun s -> s.Telemetry.calls > 0) (Telemetry.span_list t) in
  if spans = [] then ""
  else
    "span latency percentiles:\n"
    ^ Report.Table.render
        ~headers:[ "span"; "calls"; "p50 ms"; "p90 ms"; "p99 ms"; "max ms" ]
        (List.map
           (fun s ->
             [ s.Telemetry.span_name;
               string_of_int s.Telemetry.calls;
               ms (Histogram.quantile s.Telemetry.latency 0.50);
               ms (Histogram.quantile s.Telemetry.latency 0.90);
               ms (Histogram.quantile s.Telemetry.latency 0.99);
               ms s.Telemetry.max_s ])
           spans)

(* ---------------------------------------------------- depth-resolved view *)

(* Search layers publish per-depth counters under fixed name schemes:
   [memo.depth<d>.hits]/[.misses] from the engine's scheme memo and
   [exact.depth<d>.states]/[.pruned] from the branch-and-bound. Collect
   whatever depths exist and tabulate them. *)
let depth_of_counter ~prefix ~suffix name =
  let plen = String.length prefix and slen = String.length suffix in
  let n = String.length name in
  if
    n > plen + slen
    && String.sub name 0 plen = prefix
    && String.sub name (n - slen) slen = suffix
  then int_of_string_opt (String.sub name plen (n - plen - slen))
  else None

let depth_table counters ~prefix ~left ~right =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      let slot d =
        match Hashtbl.find_opt table d with
        | Some s -> s
        | None ->
          let s = (ref 0, ref 0) in
          Hashtbl.add table d s;
          s
      in
      (match depth_of_counter ~prefix ~suffix:("." ^ left) name with
       | Some d -> fst (slot d) := v
       | None -> ());
      match depth_of_counter ~prefix ~suffix:("." ^ right) name with
      | Some d -> snd (slot d) := v
      | None -> ())
    counters;
  List.sort compare
    (Hashtbl.fold (fun d (l, r) acc -> (d, !l, !r) :: acc) table [])

let render_memo_depths t =
  let rows =
    depth_table (Telemetry.counters_list t) ~prefix:"memo.depth"
      ~left:"hits" ~right:"misses"
  in
  if rows = [] then ""
  else
    "memo by candidate-set depth:\n"
    ^ Report.Table.render
        ~headers:[ "depth"; "hits"; "misses"; "hit rate" ]
        (List.map
           (fun (d, hits, misses) ->
             let total = hits + misses in
             [ string_of_int d;
               string_of_int hits;
               string_of_int misses;
               (if total = 0 then "-"
                else Report.Table.fixed 3 (float_of_int hits /. float_of_int total)) ])
           rows)

let render_exact_depths t =
  let rows =
    depth_table (Telemetry.counters_list t) ~prefix:"exact.depth"
      ~left:"states" ~right:"pruned"
  in
  if rows = [] then ""
  else
    "branch-and-bound by partition depth:\n"
    ^ Report.Table.render
        ~headers:[ "depth"; "states"; "pruned"; "prune rate" ]
        (List.map
           (fun (d, states, pruned) ->
             let total = states + pruned in
             [ string_of_int d;
               string_of_int states;
               string_of_int pruned;
               (if total = 0 then "-"
                else
                  Report.Table.fixed 3
                    (float_of_int pruned /. float_of_int total)) ])
           rows)

(* ------------------------------------------------------ per-domain table *)

(* The Par pool flushes one gauge set per participating domain. When no
   pool ran (jobs = 1, the inline path) we still render a single-row
   table attributing everything to the calling domain, so the report
   shape is stable. *)
let render_domains t =
  let gauges = Telemetry.gauges_list t in
  let value name = List.assoc_opt name gauges in
  let rec collect i acc =
    let key suffix = Printf.sprintf "par.domain%d.%s" i suffix in
    match value (key "busy_s") with
    | None -> List.rev acc
    | Some busy ->
      let idle = Option.value ~default:0. (value (key "idle_s")) in
      let items =
        int_of_float (Option.value ~default:0. (value (key "items")))
      in
      let tasks =
        int_of_float (Option.value ~default:0. (value (key "tasks")))
      in
      collect (i + 1) ((i, busy, idle, items, tasks) :: acc)
  in
  let rows = collect 0 [] in
  let rows =
    if rows <> [] then rows
    else begin
      (* Inline fallback: all work ran on the calling domain. *)
      let busy =
        List.fold_left
          (fun acc s ->
            if s.Telemetry.span_name = "engine.solve" then
              acc +. s.Telemetry.total_s
            else acc)
          0. (Telemetry.span_list t)
      in
      [ (0, busy, 0., 0, 0) ]
    end
  in
  let util (busy, idle) =
    let wall = busy +. idle in
    if wall > 0. then Printf.sprintf "%5.1f%%" (100. *. busy /. wall) else "    -"
  in
  let header =
    match Telemetry.gauge_value t "par.utilisation" with
    | Some u ->
      Printf.sprintf "per-domain profile (pool utilisation %.1f%%):\n"
        (100. *. u)
    | None -> "per-domain profile:\n"
  in
  header
  ^ Report.Table.render
      ~headers:[ "domain"; "busy ms"; "idle ms"; "busy"; "items"; "tasks" ]
      (List.map
         (fun (i, busy, idle, items, tasks) ->
           [ (if i = 0 then "0 (caller)" else string_of_int i);
             ms busy;
             ms idle;
             util (busy, idle);
             string_of_int items;
             string_of_int tasks ])
         rows)

(* -------------------------------------------------------------- progress *)

(* Best-cost-over-evaluations curve collected by the engine when
   tracing: a coarse convergence view of the search. *)
let render_progress curve =
  match curve with
  | [] -> ""
  | _ ->
    "search progress (best cost over evaluations):\n"
    ^ Report.Table.render
        ~headers:[ "evaluations"; "best total frames" ]
        (List.map
           (fun (evals, best) ->
             [ string_of_int evals; string_of_int best ])
           curve)

(* ---------------------------------------------------------------- report *)

let report t =
  let sections =
    [ render_tree (span_tree (Telemetry.events t));
      render_hot (span_tree (Telemetry.events t));
      render_percentiles t;
      render_memo_depths t;
      render_exact_depths t;
      render_domains t ]
  in
  String.concat "\n" (List.filter (fun s -> s <> "") sections)

(* ------------------------------------------------- exposition validation *)

(* Structural check of a Prometheus text page: every sample line parses
   as [name{labels} value] or [name value]; every histogram family's
   bucket counts are cumulative (non-decreasing, ending at +Inf) and
   agree with its _count row. Used by the CLI smoke test to assert
   metrics.txt stays well-formed. *)
let check_exposition text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let is_metric_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let parse_sample line =
    (* name[{labels}] SP value *)
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_metric_char line.[!i] do incr i done;
    if !i = 0 then Error (Printf.sprintf "bad metric name in %S" line)
    else begin
      let name = String.sub line 0 !i in
      let labels =
        if !i < n && line.[!i] = '{' then begin
          match String.index_from_opt line !i '}' with
          | None -> None
          | Some close ->
            let l = String.sub line (!i + 1) (close - !i - 1) in
            i := close + 1;
            Some l
        end
        else Some ""
      in
      match labels with
      | None -> Error (Printf.sprintf "unterminated labels in %S" line)
      | Some labels ->
        if !i >= n || line.[!i] <> ' ' then
          Error (Printf.sprintf "missing value in %S" line)
        else begin
          let v = String.sub line (!i + 1) (n - !i - 1) in
          match float_of_string_opt v with
          | Some f -> Ok (name, labels, f)
          | None ->
            if v = "+Inf" then Ok (name, labels, infinity)
            else Error (Printf.sprintf "bad value %S in %S" v line)
        end
    end
  in
  let histograms = Hashtbl.create 8 in
  (* name -> (buckets rev list, count option) *)
  let hist name =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h = (ref [], ref None) in
      Hashtbl.add histograms name h;
      h
  in
  let strip name suffix =
    let n = String.length name and s = String.length suffix in
    if n > s && String.sub name (n - s) s = suffix then
      Some (String.sub name 0 (n - s))
    else None
  in
  let rec check_lines = function
    | [] -> Ok ()
    | line :: rest ->
      if String.length line >= 1 && line.[0] = '#' then check_lines rest
      else begin
        match parse_sample line with
        | Error e -> Error e
        | Ok (name, _labels, value) ->
          (match strip name "_bucket" with
           | Some family ->
             let buckets, _ = hist family in
             buckets := value :: !buckets
           | None ->
             (match strip name "_count" with
              | Some family ->
                let _, count = hist family in
                count := Some value
              | None -> ()));
          check_lines rest
      end
  in
  match check_lines lines with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.fold
      (fun family (buckets, count) acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let ordered = List.rev !buckets in
          let rec non_decreasing = function
            | a :: (b :: _ as rest) ->
              if a > b then false else non_decreasing rest
            | _ -> true
          in
          if not (non_decreasing ordered) then
            Error (Printf.sprintf "histogram %s buckets not cumulative" family)
          else begin
            match (List.rev ordered, !count) with
            | last :: _, Some c when last <> c ->
              Error
                (Printf.sprintf "histogram %s +Inf bucket %g <> count %g"
                   family last c)
            | _, None ->
              Error (Printf.sprintf "histogram %s missing _count" family)
            | _ -> Ok ()
          end)
      histograms (Ok ())
