(** One structured telemetry event. The stream a run produces is a flat
    sequence of these, ordered by [seq]; spans appear as balanced
    [Begin]/[End] pairs (nesting is reflected by the [depth] attribute
    the collector adds). *)

type kind =
  | Begin  (** A span (phase) opened. *)
  | End  (** The matching span closed; carries an [ms] attribute. *)
  | Point  (** An instantaneous event (search node, acceptance, …). *)
  | Counter  (** A counter snapshot, emitted by [Telemetry.flush]. *)
  | Gauge  (** A gauge snapshot, emitted by [Telemetry.flush]. *)

type t = {
  seq : int;  (** 1-based, strictly increasing per collector. *)
  time : float;  (** Seconds since the collector was created. *)
  kind : kind;
  name : string;  (** Dotted event name, e.g. ["engine.solve"]. *)
  attrs : (string * Json.t) list;
}

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val to_json : t -> Json.t
(** Schema: [{"seq":…,"t":…,"kind":…,"name":…,"attrs":{…}}]; the
    [attrs] field is omitted when empty. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (attribute order preserved). *)

val to_jsonl : t -> string
(** One JSONL line, without the trailing newline. *)
