module Counter = struct
  (* Atomic so workers inside Par maps can bump shared counters without
     tearing; [live] keeps the null handle's counters free. *)
  type t = { cell : int Atomic.t; live : bool }

  let dead = { cell = Atomic.make 0; live = false }
  let make () = { cell = Atomic.make 0; live = true }

  let incr ?(by = 1) c =
    if c.live then ignore (Atomic.fetch_and_add c.cell by)

  let value c = Atomic.get c.cell
end

type span_acc = {
  mutable calls : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  mutable sample_count : int;
  hist : Histogram.t;  (* always live: spans are cold, dozens per solve *)
}

type t = {
  live : bool;
  sink : Sink.t;
  clock : unit -> float;
  start : float;
  lock : Mutex.t;  (* guards seq/depth and every registry table *)
  mutable seq : int;
  mutable depth : int;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  spans : (string, span_acc) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let null =
  { live = false;
    sink = Sink.null;
    clock = (fun () -> 0.);
    start = 0.;
    lock = Mutex.create ();
    seq = 0;
    depth = 0;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    spans = Hashtbl.create 1;
    histograms = Hashtbl.create 1 }

let create ?(clock = Sys.time) sink =
  { live = true;
    sink;
    clock;
    start = clock ();
    lock = Mutex.create ();
    seq = 0;
    depth = 0;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    spans = Hashtbl.create 16;
    histograms = Hashtbl.create 8 }

let enabled t = t.live
let tracing t = t.live && not (Sink.is_null t.sink)
let ensure t = if t.live then t else create Sink.null

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Must be called with [t.lock] held. *)
let emit_locked t kind name attrs =
  t.seq <- t.seq + 1;
  Sink.emit t.sink
    { Event.seq = t.seq; time = t.clock () -. t.start; kind; name; attrs }

let point t ?(attrs = []) name =
  if tracing t then with_lock t (fun () -> emit_locked t Event.Point name attrs)

(* ----------------------------------------------------------------- spans *)

let max_samples = 512

(* Lock held. *)
let span_acc t name =
  match Hashtbl.find_opt t.spans name with
  | Some acc -> acc
  | None ->
    let acc =
      { calls = 0;
        total = 0.;
        min_v = infinity;
        max_v = neg_infinity;
        samples = [];
        sample_count = 0;
        hist = Histogram.make () }
    in
    Hashtbl.add t.spans name acc;
    acc

(* Lock held. *)
let record_span t name dt =
  let acc = span_acc t name in
  acc.calls <- acc.calls + 1;
  acc.total <- acc.total +. dt;
  if dt < acc.min_v then acc.min_v <- dt;
  if dt > acc.max_v then acc.max_v <- dt;
  if acc.sample_count < max_samples then begin
    acc.samples <- dt :: acc.samples;
    acc.sample_count <- acc.sample_count + 1
  end;
  Histogram.observe acc.hist dt

let with_span t ?(attrs = []) name f =
  if not t.live then f ()
  else begin
    let traced = tracing t in
    with_lock t (fun () ->
        if traced then
          emit_locked t Event.Begin name
            (attrs @ [ ("depth", Json.Int t.depth) ]);
        t.depth <- t.depth + 1);
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = t.clock () -. t0 in
        with_lock t (fun () ->
            t.depth <- t.depth - 1;
            record_span t name dt;
            if traced then
              emit_locked t Event.End name
                [ ("ms", Json.Float (dt *. 1e3)); ("depth", Json.Int t.depth) ]))
      f
  end

(* --------------------------------------------------- counters and gauges *)

let counter t name =
  if not t.live then Counter.dead
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some c -> c
        | None ->
          let c = Counter.make () in
          Hashtbl.add t.counters name c;
          c)

let incr t ?by name = if t.live then Counter.incr ?by (counter t name)

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> Counter.value c
      | None -> 0)

let set_gauge t name v =
  if t.live then with_lock t (fun () -> Hashtbl.replace t.gauges name v)

let gauge_value t name = with_lock t (fun () -> Hashtbl.find_opt t.gauges name)

(* ------------------------------------------------------------ histograms *)

(* Registry histograms are tracing-gated: the per-move hot paths that
   observe into them run millions of times per second with the default
   counting handle, and a dead histogram keeps that free. Span duration
   histograms (above) are always on — spans are coarse-grained. *)
let histogram t name =
  if not (tracing t) then Histogram.dead
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = Histogram.make () in
          Hashtbl.add t.histograms name h;
          h)

(* Live histograms share the registry with [histogram] but are gated only
   on the handle being enabled, not on a tracing sink. They are for
   coarse-grained service-layer observations (one per request, not one per
   move): a long-running daemon needs latency percentiles on the default
   counting handle, whose null sink keeps memory bounded. *)
let live_histogram t name =
  if not t.live then Histogram.dead
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = Histogram.make () in
          Hashtbl.add t.histograms name h;
          h)

let observe t name v = Histogram.observe (histogram t name) v

let histograms_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (with_lock t (fun () ->
         Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.histograms []))

let counters_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (with_lock t (fun () ->
         Hashtbl.fold
           (fun k c acc -> (k, Counter.value c) :: acc)
           t.counters []))

let gauges_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (with_lock t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges []))

let flush t =
  if tracing t then begin
    let counters = counters_list t in
    let gauges = gauges_list t in
    with_lock t (fun () ->
        List.iter
          (fun (name, v) ->
            emit_locked t Event.Counter name [ ("value", Json.Int v) ])
          counters;
        List.iter
          (fun (name, v) ->
            emit_locked t Event.Gauge name [ ("value", Json.Float v) ])
          gauges)
  end

(* ----------------------------------------------------------------- merge *)

(* Fold a worker handle's aggregates into a parent handle. Counters
   add; histograms merge bucket-wise; span statistics combine; gauges
   only fill names the parent has not set (the parent's view wins).
   Events are not transferred — workers run over null sinks. *)
let merge ~into src =
  if into.live && src.live && into != src then begin
    List.iter
      (fun (name, v) -> if v <> 0 then Counter.incr (counter into name) ~by:v)
      (counters_list src);
    List.iter
      (fun (name, v) ->
        with_lock into (fun () ->
            if not (Hashtbl.mem into.gauges name) then
              Hashtbl.replace into.gauges name v))
      (gauges_list src);
    List.iter
      (fun (name, h) ->
        if Histogram.count h > 0 then begin
          let target =
            with_lock into (fun () ->
                match Hashtbl.find_opt into.histograms name with
                | Some existing -> existing
                | None ->
                  let fresh = Histogram.make () in
                  Hashtbl.add into.histograms name fresh;
                  fresh)
          in
          Histogram.merge ~into:target h
        end)
      (histograms_list src);
    let src_spans =
      with_lock src (fun () ->
          Hashtbl.fold (fun k acc rows -> (k, acc) :: rows) src.spans [])
    in
    List.iter
      (fun (name, (acc : span_acc)) ->
        if acc.calls > 0 then
          with_lock into (fun () ->
              let dst = span_acc into name in
              dst.calls <- dst.calls + acc.calls;
              dst.total <- dst.total +. acc.total;
              if acc.min_v < dst.min_v then dst.min_v <- acc.min_v;
              if acc.max_v > dst.max_v then dst.max_v <- acc.max_v;
              List.iter
                (fun sample ->
                  if dst.sample_count < max_samples then begin
                    dst.samples <- sample :: dst.samples;
                    dst.sample_count <- dst.sample_count + 1
                  end)
                acc.samples;
              Histogram.merge ~into:dst.hist acc.hist))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) src_spans)
  end

(* ---------------------------------------------------------------- export *)

let events t = Sink.events t.sink

let to_jsonl t =
  let lines = List.map Event.to_jsonl (events t) in
  match lines with [] -> "" | _ -> String.concat "\n" lines ^ "\n"

let write_jsonl t path =
  match open_out path with
  | exception Sys_error message -> Error message
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        match output_string oc (to_jsonl t) with
        | () -> Ok ()
        | exception Sys_error message -> Error message)

type span_stats = {
  span_name : string;
  calls : int;
  total_s : float;
  min_s : float;
  max_s : float;
  samples : float list;
  latency : Histogram.t;
}

let span_list t =
  let rows =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun name (acc : span_acc) rows ->
            { span_name = name;
              calls = acc.calls;
              total_s = acc.total;
              min_s = (if acc.calls = 0 then 0. else acc.min_v);
              max_s = (if acc.calls = 0 then 0. else acc.max_v);
              samples = acc.samples;
              latency = acc.hist }
            :: rows)
          t.spans [])
  in
  List.sort
    (fun a b ->
      match compare b.total_s a.total_s with
      | 0 -> String.compare a.span_name b.span_name
      | c -> c)
    rows

(* ------------------------------------------------------------ exposition *)

(* Prometheus text format. Metric names are sanitised (dots and dashes
   to underscores) and prefixed so scrapes from several tools do not
   collide. Histogram buckets are cumulative with a trailing +Inf, as
   the format requires; only non-empty buckets are listed. *)

let metric_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "prpart_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let float_repr f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let exposition_histogram buf name h =
  let metric = metric_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" metric);
  let cumulative = ref 0 in
  List.iter
    (fun (le, c) ->
      cumulative := !cumulative + c;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" metric (float_repr le)
           !cumulative))
    (Histogram.buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" metric (Histogram.count h));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" metric (float_repr (Histogram.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" metric (Histogram.count h))

let exposition t =
  if not t.live then ""
  else begin
    let buf = Buffer.create 2048 in
    List.iter
      (fun (name, v) ->
        let metric = metric_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" metric);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" metric v))
      (counters_list t);
    List.iter
      (fun (name, v) ->
        let metric = metric_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" metric);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" metric (float_repr v)))
      (gauges_list t);
    List.iter
      (fun (name, h) ->
        if Histogram.count h > 0 then exposition_histogram buf name h)
      (histograms_list t);
    List.iter
      (fun s ->
        if s.calls > 0 then
          exposition_histogram buf (s.span_name ^ ".seconds") s.latency)
      (List.sort
         (fun a b -> String.compare a.span_name b.span_name)
         (span_list t));
    Buffer.contents buf
  end

(* --------------------------------------------------------------- summary *)

let ms v = Report.Table.fixed 3 (v *. 1e3)

let summary t =
  if not t.live then "telemetry: disabled\n"
  else begin
    let buf = Buffer.create 1024 in
    let spans = span_list t in
    if spans <> [] then begin
      Buffer.add_string buf "phase timings (CPU):\n";
      Buffer.add_string buf
        (Report.Table.render
           ~headers:
             [ "phase"; "calls"; "total ms"; "mean ms"; "p50 ms"; "p90 ms";
               "p99 ms"; "max ms" ]
           (List.map
              (fun s ->
                [ s.span_name;
                  string_of_int s.calls;
                  ms s.total_s;
                  ms (s.total_s /. float_of_int (max 1 s.calls));
                  ms (Histogram.quantile s.latency 0.50);
                  ms (Histogram.quantile s.latency 0.90);
                  ms (Histogram.quantile s.latency 0.99);
                  ms s.max_s ])
              spans));
      (* Latency distribution for repeated spans. *)
      List.iter
        (fun s ->
          if s.calls >= 8 && s.max_s > 0. then begin
            let hi = s.max_s *. 1e3 in
            let histogram =
              Report.Histogram.make ~lo:0. ~hi ~buckets:8
                (List.map (fun v -> v *. 1e3) s.samples)
            in
            Buffer.add_string buf
              (Printf.sprintf "\nlatency of %s (ms, %d samples):\n" s.span_name
                 (List.length s.samples));
            Buffer.add_string buf (Report.Histogram.render histogram)
          end)
        spans
    end;
    let counters = counters_list t in
    if counters <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "counters:\n";
      Buffer.add_string buf
        (Report.Table.render ~headers:[ "counter"; "value" ]
           (List.map (fun (k, v) -> [ k; string_of_int v ]) counters))
    end;
    let gauges = gauges_list t in
    if gauges <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "gauges:\n";
      Buffer.add_string buf
        (Report.Table.render ~headers:[ "gauge"; "value" ]
           (List.map (fun (k, v) -> [ k; Report.Table.fixed 3 v ]) gauges))
    end;
    let histograms = histograms_list t in
    let observed = List.filter (fun (_, h) -> Histogram.count h > 0) histograms in
    if observed <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "distributions:\n";
      Buffer.add_string buf
        (Report.Table.render
           ~headers:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
           (List.map
              (fun (k, h) ->
                [ k;
                  string_of_int (Histogram.count h);
                  Report.Table.fixed 3 (Histogram.quantile h 0.50);
                  Report.Table.fixed 3 (Histogram.quantile h 0.90);
                  Report.Table.fixed 3 (Histogram.quantile h 0.99);
                  Report.Table.fixed 3 (Histogram.max_value h) ])
              observed))
    end;
    if Buffer.length buf = 0 then "telemetry: no data recorded\n"
    else Buffer.contents buf
  end
