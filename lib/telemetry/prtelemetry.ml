(** Structured tracing, metrics and profiling hooks for the
    partitioning pipeline. See {!Telemetry} for the collector API,
    {!Sink} for output targets, {!Event} for the JSONL schema and
    {!Json} for the value encoding.

    The whole collector API is re-exported at this level, so callers
    write [Prtelemetry.create (Prtelemetry.Sink.memory ())],
    [Prtelemetry.with_span t "engine.solve" f], etc. *)

module Json = Json
module Event = Event
module Sink = Sink
module Histogram = Histogram
module Telemetry = Telemetry
module Scope = Scope
include Telemetry
