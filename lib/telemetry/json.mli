(** A minimal, dependency-free JSON value type with an encoder and a
    strict recursive-descent parser — just enough for the telemetry
    event stream (JSONL export and the round-trip tests). Kept in the
    telemetry library on purpose: the repo's policy is no external
    dependencies beyond the sealed container ({!Xmllite} plays the same
    role for XML). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) encoding. Strings are escaped per RFC 8259;
    non-finite floats encode as [null] (JSON has no NaN/inf). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without [.]/[e]/[E] parse as [Int], others as [Float]. Supports the
    escapes the encoder emits (plus [\u00XX]). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
(** [Int] and [Float]. *)

val to_str : t -> string option
(** [String] payloads only. *)
