(** Prscope: profiling reports over a recorded {!Telemetry} handle.

    Pure rendering — every function reads aggregates (events, span
    statistics, counters, gauges) that already exist on the handle, so
    reports can also be produced after the fact from a loaded trace.
    The [prpart profile] verb composes {!report}; the pieces are
    exposed separately for tests and custom front-ends. *)

type node = {
  name : string;
  calls : int;  (** Begin events merged at this tree position. *)
  total_s : float;  (** Inclusive wall time (children + self). *)
  children : node list;  (** First-seen order; same-named siblings merge. *)
}

val span_tree : Event.t list -> node list
(** Rebuild the call tree from Begin/End events. Unbalanced traces
    degrade gracefully: orphan End events are dropped, unclosed Begin
    events keep zero duration. *)

val self_s : node -> float
(** Inclusive time minus the children's inclusive time (clamped at 0). *)

val render_tree : node list -> string
(** Indented span tree with calls, total ms, self ms and share of the
    grand total. *)

val hot_paths : node list -> (string * int * float) list
(** Spans ranked by accumulated self time (name, calls, self seconds),
    descending; ties break by name. *)

val render_hot : ?limit:int -> node list -> string
(** The top [limit] (default 10) hot paths as a table. *)

val render_percentiles : Telemetry.t -> string
(** Deterministic p50/p90/p99/max per span, from the span histograms. *)

val render_memo_depths : Telemetry.t -> string
(** Hit/miss/hit-rate table from [memo.depth<d>.hits]/[.misses]
    counters; empty string when no depth counters exist. *)

val render_exact_depths : Telemetry.t -> string
(** States/pruned/prune-rate table from [exact.depth<d>.states]/
    [.pruned] counters; empty string when absent. *)

val render_domains : Telemetry.t -> string
(** Busy/idle/items/tasks per domain from the [par.domain<i>.*] gauges
    the pool flushes, headed by [par.utilisation] when present. When no
    pool ran, a single caller-domain row is synthesised from the
    [engine.solve] span so the report shape is stable. *)

val render_progress : (int * int) list -> string
(** Best-cost-over-evaluations table (pairs of cumulative cost
    evaluations and best total frames); empty string for []. *)

val report : Telemetry.t -> string
(** The full profile: span tree, hot paths, span percentiles, memo and
    branch-and-bound depth tables, per-domain table. Empty sections are
    omitted. *)

val check_exposition : string -> (unit, string) result
(** Structural validation of a Prometheus text page ({!Telemetry.exposition}):
    sample lines parse, histogram buckets are cumulative, and each
    family's [+Inf] bucket equals its [_count]. *)
