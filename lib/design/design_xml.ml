module Xml = Xmllite.Xml

exception Malformed of string

type limits = {
  xml : Xml.limits;
  max_modules : int;
  max_modes_per_module : int;
  max_configurations : int;
}

exception
  Too_large of { what : string; actual : int; maximum : int }

let default_limits =
  { xml = Xml.default_limits;
    max_modules = 512;
    max_modes_per_module = 256;
    max_configurations = 4096 }

let unlimited =
  { xml = Xml.unlimited;
    max_modules = max_int;
    max_modes_per_module = max_int;
    max_configurations = max_int }

let check_count ~what ~maximum actual =
  if actual > maximum then raise (Too_large { what; actual; maximum })

let limit_message = function
  | Too_large { what; actual; maximum } ->
    Some
      (Printf.sprintf "input guard: %d %s exceed the ceiling of %d" actual
         what maximum)
  | Xml.Limit_exceeded { limit; actual; maximum } ->
    Some
      (Printf.sprintf "input guard: document %s %d exceeds the ceiling of %d"
         limit actual maximum)
  | _ -> None

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let required_attr name node =
  match Xml.attr name node with
  | Some v -> v
  | None -> fail "<%s> is missing attribute %S" (Xml.tag node) name

let resource_of_attrs node =
  let get name = Option.value ~default:0 (Xml.int_attr name node) in
  let check name =
    match Xml.attr name node with
    | Some raw when int_of_string_opt raw = None ->
      fail "<%s> attribute %s=%S is not an integer" (Xml.tag node) name raw
    | Some _ | None -> ()
  in
  List.iter check [ "clb"; "bram"; "dsp" ];
  let clb = get "clb" and bram = get "bram" and dsp = get "dsp" in
  if clb < 0 || bram < 0 || dsp < 0 then
    fail "<%s> has a negative resource count" (Xml.tag node);
  Fpga.Resource.make ~bram ~dsp clb

let mode_of_xml node =
  Mode.make (required_attr "name" node) (resource_of_attrs node)

let module_of_xml ~limits node =
  let mode_nodes = Xml.find_all "mode" node in
  check_count ~what:"modes in one module"
    ~maximum:limits.max_modes_per_module (List.length mode_nodes);
  let modes = List.map mode_of_xml mode_nodes in
  if modes = [] then fail "module %S has no modes" (required_attr "name" node);
  Pmodule.make (required_attr "name" node) modes

let configuration_of_xml ~modules node =
  let name = required_attr "name" node in
  let choice use =
    let module_name = required_attr "module" use in
    let mode_name = required_attr "mode" use in
    let rec find m =
      if m >= Array.length modules then
        fail "configuration %S uses unknown module %S" name module_name
      else if modules.(m).Pmodule.name = module_name then m
      else find (m + 1)
    in
    let m = find 0 in
    match Pmodule.find_mode modules.(m) mode_name with
    | Some k -> (m, k)
    | None ->
      fail "configuration %S uses unknown mode %S of module %S" name
        mode_name module_name
  in
  let uses = Xml.find_all "use" node in
  if uses = [] then fail "configuration %S uses no modules" name;
  Configuration.make name (List.map choice uses)

let of_xml ?(limits = unlimited) root =
  if Xml.tag root <> "design" then fail "root element must be <design>";
  let name = required_attr "name" root in
  let static_overhead =
    match Xml.find_opt "static" root with
    | Some node -> resource_of_attrs node
    | None -> Fpga.Resource.zero
  in
  let module_nodes = Xml.find_all "module" root in
  check_count ~what:"modules" ~maximum:limits.max_modules
    (List.length module_nodes);
  let modules = List.map (module_of_xml ~limits) module_nodes in
  let marr = Array.of_list modules in
  let configurations =
    match Xml.find_opt "configurations" root with
    | None -> fail "design %S has no <configurations> element" name
    | Some node ->
      let config_nodes = Xml.find_all "configuration" node in
      check_count ~what:"configurations" ~maximum:limits.max_configurations
        (List.length config_nodes);
      List.map (configuration_of_xml ~modules:marr) config_nodes
  in
  let allow_unused_modes =
    match Xml.attr "allow_unused_modes" root with
    | Some "true" -> true
    | Some "false" | None -> false
    | Some other ->
      fail "allow_unused_modes must be \"true\" or \"false\", not %S" other
  in
  match
    Design.create ~allow_unused_modes ~static_overhead ~name ~modules
      ~configurations ()
  with
  | Ok design -> design
  | Error issues -> fail "invalid design %S: %s" name (String.concat "; " issues)

let resource_attrs (r : Fpga.Resource.t) =
  [ ("clb", string_of_int r.clb);
    ("bram", string_of_int r.bram);
    ("dsp", string_of_int r.dsp) ]

let has_unused_mode (d : Design.t) =
  let used = Array.make (Design.mode_count d) false in
  for c = 0 to Design.configuration_count d - 1 do
    List.iter (fun m -> used.(m) <- true) (Design.config_mode_ids d c)
  done;
  Array.exists not used

let to_xml (d : Design.t) =
  let static =
    if Fpga.Resource.is_zero d.static_overhead then []
    else [ Xml.Element ("static", resource_attrs d.static_overhead, []) ]
  in
  let module_xml (m : Pmodule.t) =
    let mode_xml (mode : Mode.t) =
      Xml.Element
        ("mode", ("name", mode.name) :: resource_attrs mode.resources, [])
    in
    Xml.Element
      ( "module",
        [ ("name", m.name) ],
        List.map mode_xml (Array.to_list m.modes) )
  in
  let config_xml (c : Configuration.t) =
    let use (mi, ki) =
      let m = d.modules.(mi) in
      Xml.Element
        ( "use",
          [ ("module", m.Pmodule.name);
            ("mode", m.Pmodule.modes.(ki).Mode.name) ],
          [] )
    in
    Xml.Element ("configuration", [ ("name", c.name) ], List.map use c.choices)
  in
  Xml.Element
    ( "design",
      (("name", d.name)
       ::
       (if has_unused_mode d then [ ("allow_unused_modes", "true") ] else [])),
      static
      @ List.map module_xml (Array.to_list d.modules)
      @ [ Xml.Element
            ( "configurations",
              [],
              List.map config_xml (Array.to_list d.configurations) ) ] )

let load_string ?(limits = unlimited) s =
  of_xml ~limits (Xml.parse_string ~limits:limits.xml s)

let load_file ?(limits = unlimited) path =
  of_xml ~limits (Xml.parse_file ~limits:limits.xml path)
let to_string d = Xml.to_string (to_xml d)

let save_file path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string d))
