(** The designs used in the paper, built in for the examples, tests and the
    experiment harness. *)

val running_example : Design.t
(** The §III/IV running example: modules A (3 modes), B (2), C (3) and the
    five configurations whose connectivity matrix and base partitions the
    paper walks through (Table I). The paper gives no areas for these
    modes; the resource numbers here are plausible placeholders shaped like
    Fig. 3 (A2 and B1 are the large modes). *)

val video_receiver : Design.t
(** The §V case study: a wireless video receiver with Table II's resource
    utilisation (verbatim, including the zero-area "None" recovery mode)
    and the first, 8-configuration set. Static overhead is not part of the
    paper's 6800-CLB budget, so it is left at zero here. *)

val video_receiver_alt : Design.t
(** The same receiver with the modified 5-configuration set of Table V. *)

val montone_example : Design.t
(** The §IV-D "special conditions" example borrowed from Montone et al.:
    five single-mode modules (CAN, FIR, Ethernet, FPU, CRC) and two
    configurations with no mode relations. Areas are plausible
    placeholders; the paper gives none. *)

val fragmented_filter : Design.t
(** A fragmentation stress shape for the placement-aware search: three
    single-mode modules that never co-run — X (4000 CLBs), Y (600 CLBs
    + 1 BRAM) and W (400 CLBs). Pure resource counting merges Y and W;
    on small column-striped fabrics that split cannot be floorplanned
    and the post-hoc feedback loop escalates devices, while a
    placement-aware search lands XY | W on the smaller part. *)

val case_study_budget : Fpga.Resource.t
(** The FPGA resources the paper reserves for the PR design in the case
    study: 6800 CLBs, 50 BRAMs, 150 DSP slices. *)

val all : (string * Design.t) list
(** Name/design pairs for CLI lookup. *)

val find : string -> Design.t option
