(** XML serialisation of design descriptions — the input format of the
    paper's proposed tool flow (Fig. 2 takes "design files … and a list of
    valid configurations … in XML format").

    Schema:
    {v
    <design name="..." allow_unused_modes="true|false">
      <static clb="90" bram="8" dsp="0"/>          (optional)
      <module name="F">
        <mode name="Filter1" clb="818" bram="0" dsp="28"/>
        ...
      </module>
      ...
      <configurations>
        <configuration name="c1">
          <use module="F" mode="Filter1"/>
          ...
        </configuration>
        ...
      </configurations>
    </design>
    v} *)

exception Malformed of string
(** Raised when the XML is well-formed but does not match the schema, or
    when the resulting design fails {!Design.create} validation. *)

(** {1 Input guards}

    Untrusted descriptions (the batch front-end parses whatever a
    manifest points at) are bounded: the underlying XML document is
    subject to {!Xmllite.Xml.limits} (size, nesting depth), and the
    decoded design to element-count ceilings. Violations raise the typed
    {!Too_large} / {!Xmllite.Xml.Limit_exceeded}, distinguishable from
    schema errors ({!Malformed}) and syntax errors. *)

type limits = {
  xml : Xmllite.Xml.limits;  (** Document size / nesting ceilings. *)
  max_modules : int;
  max_modes_per_module : int;
  max_configurations : int;
}

exception Too_large of { what : string; actual : int; maximum : int }
(** An element-count ceiling was exceeded; [what] names it
    (["modules"], ["modes in one module"], ["configurations"]). *)

val default_limits : limits
(** Generous ceilings ({!Xmllite.Xml.default_limits}, 512 modules, 256
    modes per module, 4096 configurations) — far above any legitimate
    design, so guarded loading is behaviour-identical to unguarded
    loading on sane inputs. *)

val unlimited : limits
(** No ceilings — the historical behaviour (and the default). *)

val limit_message : exn -> string option
(** Human-readable rendering of {!Too_large} and
    {!Xmllite.Xml.Limit_exceeded}; [None] for any other exception. *)

val of_xml : ?limits:limits -> Xmllite.Xml.t -> Design.t
(** Element-count ceilings only (the document is already parsed);
    [limits] defaults to {!unlimited}. *)

val to_xml : Design.t -> Xmllite.Xml.t

val load_string : ?limits:limits -> string -> Design.t
(** @raise Malformed on schema/validation errors.
    @raise Xmllite.Xml.Parse_error on malformed XML.
    @raise Too_large when [limits] is given and a count ceiling is hit.
    @raise Xmllite.Xml.Limit_exceeded on document size/depth. *)

val load_file : ?limits:limits -> string -> Design.t
val save_file : string -> Design.t -> unit
val to_string : Design.t -> string
