let res ?bram ?dsp clb = Fpga.Resource.make ?bram ?dsp clb
let mode name r = Mode.make name r

let running_example =
  (* Mode sizes are placeholders shaped like the paper's Fig. 3: A2 and B1
     are the large modes of their modules. *)
  let a =
    Pmodule.make "A"
      [ mode "A1" (res 100 ~dsp:2);
        mode "A2" (res 400 ~bram:2 ~dsp:4);
        mode "A3" (res 250 ~bram:1) ]
  and b =
    Pmodule.make "B"
      [ mode "B1" (res 350 ~bram:3 ~dsp:6); mode "B2" (res 120 ~bram:1) ]
  and c =
    Pmodule.make "C"
      [ mode "C1" (res 200 ~dsp:3);
        mode "C2" (res 150 ~bram:2);
        mode "C3" (res 300 ~bram:1 ~dsp:1) ]
  in
  let conf name al bl cl =
    Configuration.make name [ (0, al - 1); (1, bl - 1); (2, cl - 1) ]
  in
  Design.create_exn ~name:"running-example" ~modules:[ a; b; c ]
    ~configurations:
      [ conf "conf1" 3 2 3;
        conf "conf2" 1 1 1;
        conf "conf3" 3 2 1;
        conf "conf4" 1 2 2;
        conf "conf5" 2 2 3 ]
    ()

(* Table II, verbatim. *)
let receiver_modules =
  [ Pmodule.make "F"
      [ mode "Filter1" (res 818 ~dsp:28); mode "Filter2" (res 500 ~dsp:34) ];
    Pmodule.make "R"
      [ mode "Fine" (res 318 ~bram:1 ~dsp:13);
        mode "Coarse1" (res 195 ~bram:1 ~dsp:5);
        mode "Coarse2" (res 123 ~dsp:8);
        mode "None" (res 0) ];
    Pmodule.make "M" [ mode "BPSK" (res 50 ~dsp:2); mode "QPSK" (res 97 ~dsp:4) ];
    Pmodule.make "D"
      [ mode "Viterbi" (res 630 ~bram:2);
        mode "Turbo" (res 748 ~bram:15 ~dsp:4);
        mode "DPC" (res 234 ~bram:2) ];
    Pmodule.make "V"
      [ mode "MPEG4" (res 4700 ~bram:40 ~dsp:65);
        mode "MPEG2" (res 4558 ~bram:16 ~dsp:32);
        mode "JPEG" (res 2780 ~bram:6 ~dsp:9) ] ]

(* Module order above: F=0, R=1, M=2, D=3, V=4; modes are 1-based in the
   paper's F1/R3/... notation. *)
let receiver_conf name (f, r, m, d, v) =
  Configuration.make name
    [ (0, f - 1); (1, r - 1); (2, m - 1); (3, d - 1); (4, v - 1) ]

let video_receiver =
  Design.create_exn ~allow_unused_modes:true ~name:"video-receiver"
    ~modules:receiver_modules
    ~configurations:
      (List.mapi
         (fun i c -> receiver_conf (Printf.sprintf "c%d" (i + 1)) c)
         [ (1, 3, 1, 1, 1);
           (1, 3, 1, 1, 2);
           (1, 3, 1, 1, 3);
           (2, 1, 2, 3, 1);
           (2, 2, 1, 1, 1);
           (2, 2, 1, 1, 2);
           (2, 2, 1, 1, 3);
           (1, 2, 1, 2, 2) ])
    ()

let video_receiver_alt =
  Design.create_exn ~allow_unused_modes:true ~name:"video-receiver-alt"
    ~modules:receiver_modules
    ~configurations:
      (List.mapi
         (fun i c -> receiver_conf (Printf.sprintf "m%d" (i + 1)) c)
         [ (1, 3, 1, 1, 1);
           (1, 2, 1, 1, 3);
           (2, 3, 1, 1, 3);
           (1, 1, 2, 3, 1);
           (2, 1, 2, 3, 2) ])
    ()

let montone_example =
  (* Five single-mode modules and two disjoint configurations; areas are
     placeholders (the source paper gives none). *)
  let single name r = Pmodule.make name [ mode name r ] in
  Design.create_exn ~name:"montone-example"
    ~modules:
      [ single "CAN" (res 400 ~bram:2);
        single "FIR" (res 300 ~dsp:12);
        single "ETH" (res 900 ~bram:4);
        single "FPU" (res 1100 ~dsp:8);
        single "CRC" (res 150) ]
    ~configurations:
      [ Configuration.make "can-fir" [ (0, 0); (1, 0) ];
        Configuration.make "eth-fpu-crc" [ (2, 0); (3, 0); (4, 0) ] ]
    ()

(* The paper states a budget of 6800 CLBs / 50 BRAMs / 150 DSPs, but that
   budget cannot hold even the paper's own Table III solution under exact
   tile accounting (Turbo alone needs 15 BRAMs and MPEG4 40, in different
   regions). We keep the paper's budget-to-modular-requirement ratio
   (about 1.03-1.04x) against our exactly-accounted modular footprint of
   6700 CLBs / 60 BRAMs / 144 DSPs instead; see DESIGN.md. *)
let case_study_budget = res 6900 ~bram:62 ~dsp:150

(* A fragmentation stress shape for the placement-aware search: three
   single-mode modules that never co-run, one huge (X), one mid-sized
   needing a scarce BRAM column (Y), one small (W). Resource-count
   partitioning happily merges Y and W (smallest time delta), but on
   column-striped small fabrics the X | YW split leaves no window
   covering YW's BRAM beside X's bulk — the floorplanner fails and the
   post-hoc feedback loop must escalate devices. A placement-aware
   search pays the extra frames for XY | W instead, which strip-packs
   on the smaller device. *)
let fragmented_filter =
  let single name r = Pmodule.make name [ mode name r ] in
  Design.create_exn ~name:"fragmented-filter"
    ~modules:
      [ single "X" (res 4000);
        single "Y" (res 600 ~bram:1);
        single "W" (res 400) ]
    ~configurations:
      [ Configuration.make "cx" [ (0, 0) ];
        Configuration.make "cy" [ (1, 0) ];
        Configuration.make "cw" [ (2, 0) ] ]
    ()

let all =
  [ ("running-example", running_example);
    ("video-receiver", video_receiver);
    ("video-receiver-alt", video_receiver_alt);
    ("montone-example", montone_example);
    ("fragmented-filter", fragmented_filter) ]

let find name = List.assoc_opt name all
