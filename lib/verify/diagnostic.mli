(** Typed diagnostics produced by the Prverify oracles.

    Every diagnostic carries a {e stable code} (never renumbered once
    released — mutation-kill tests and downstream tooling key on them),
    a severity, and the pipeline stage whose invariant was violated.

    Code inventory (see DESIGN.md §7 for the full contract):

    - [V-DSN-00x] — design well-formedness ("design" stage)
    - [V-CVR-00x] — covering / conflict-freedom ("cover" stage)
    - [V-CST-00x] — cost re-derivation and budgets ("cost" stage)
    - [V-FLP-00x] — floorplan geometry and resources ("floorplan" stage)
    - [V-BIT-00x] — bitstream repository round-trips ("bitstream" stage)
    - [V-TRN-00x] — configuration-transition reachability ("transition"
      stage) *)

type severity = Error | Warning

type t = {
  code : string;  (** Stable diagnostic code, e.g. ["V-CVR-001"]. *)
  severity : severity;
  stage : string;  (** Pipeline stage, e.g. ["cover"]. *)
  message : string;
}

val error : code:string -> stage:string -> ('a, unit, string, t) format4 -> 'a
(** [error ~code ~stage fmt ...] builds an [Error]-severity diagnostic
    with a printf-formatted message. *)

val warning :
  code:string -> stage:string -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val ok : t list -> bool
(** No [Error]-severity diagnostics in the list (warnings allowed). *)

val has_code : string -> t list -> bool
(** Any diagnostic carrying exactly this code? *)

val severity_name : severity -> string

val render : t -> string
(** One line: ["error[V-CVR-001] cover: ..."]. *)

val render_report : t list -> string
(** Multi-line report: one {!render} line per diagnostic (input order)
    followed by a summary line ([ok] / [N error(s), M warning(s)]).
    Never empty — a clean run renders as
    ["verification OK (0 errors, 0 warnings)\n"]. *)

val compare : t -> t -> int
(** Orders by code, then severity (errors first), then message. *)

val pp : Format.formatter -> t -> unit
