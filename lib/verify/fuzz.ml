module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Engine = Prcore.Engine
module Resource = Fpga.Resource
module Placer = Floorplan.Placer
module Layout = Floorplan.Layout

type failure = { seed : int; design : string; what : string }

type summary = {
  designs : int;
  solved : int;
  skipped : int;
  failures : failure list;
}

(* {!Prcore.Engine.verify_outcome} prefixes its self-check reports with
   this; anything else in an [Error] is an infeasibility report, which
   the fuzzer counts as a skip rather than a failure. *)
let is_verification_failure message =
  String.length message >= 19 && String.sub message 0 19 = "verification failed"

let run ?(count = 200) ?(seed = 2013) ?(jobs = 2) () =
  let classes = Array.of_list Synth.Generator.all_classes in
  let solved = ref 0 and skipped = ref 0 and failures = ref [] in
  for i = 0 to count - 1 do
    let design_seed = seed + i in
    let rng = Synth.Rng.make design_seed in
    let cls = classes.(i mod Array.length classes) in
    let design = Synth.Generator.generate rng cls ~index:i in
    let fail what =
      failures :=
        { seed = design_seed; design = design.Design.name; what } :: !failures
    in
    (* 1. The generator's output must satisfy the design oracle. *)
    let diagnostics = Oracle.check_design design in
    if not (Diagnostic.ok diagnostics) then
      fail
        (Printf.sprintf "design oracle rejected the generator output:\n%s"
           (Diagnostic.render_report diagnostics))
    else begin
      (* 2. Solve with the engine's memo-vs-fresh self-check armed. *)
      match Engine.solve ~verify:true ~target:Engine.Auto design with
      | Error message ->
        if is_verification_failure message then fail message else incr skipped
      | Ok outcome ->
        incr solved;
        (* 3. The parallel engine must be bit-identical to the
           sequential one. *)
        (match Engine.solve ~verify:true ~jobs ~target:Engine.Auto design with
         | Error message ->
           fail
             (Printf.sprintf
                "parallel solve (jobs=%d) failed where sequential \
                 succeeded: %s"
                jobs message)
         | Ok par ->
           if
             not (Cost.equal_evaluation outcome.Engine.evaluation
                    par.Engine.evaluation)
           then
             fail
               (Printf.sprintf
                  "jobs=1 and jobs=%d disagree on the evaluation: %s vs %s"
                  jobs
                  (Format.asprintf "%a" Cost.pp_evaluation
                     outcome.Engine.evaluation)
                  (Format.asprintf "%a" Cost.pp_evaluation
                     par.Engine.evaluation))
           else if
             Scheme.describe outcome.Engine.scheme
             <> Scheme.describe par.Engine.scheme
           then
             fail
               (Printf.sprintf
                  "jobs=1 and jobs=%d converge to different schemes" jobs));
        (* 4. The reported evaluation must match a direct (memo-free)
           cost-model run... *)
        let fresh = Cost.evaluate outcome.Engine.scheme in
        if not (Cost.equal_evaluation fresh outcome.Engine.evaluation) then
          fail
            (Printf.sprintf
               "reported evaluation diverges from a direct Cost.evaluate: \
                %s vs %s"
               (Format.asprintf "%a" Cost.pp_evaluation
                  outcome.Engine.evaluation)
               (Format.asprintf "%a" Cost.pp_evaluation fresh));
        (* 5. ...and the oracle's fully independent re-derivation. *)
        let derived = Oracle.derive_evaluation outcome.Engine.scheme in
        if not (Cost.equal_evaluation derived outcome.Engine.evaluation) then
          fail
            (Printf.sprintf
               "reported evaluation diverges from the independent oracle \
                derivation: %s vs %s"
               (Format.asprintf "%a" Cost.pp_evaluation
                  outcome.Engine.evaluation)
               (Format.asprintf "%a" Cost.pp_evaluation derived));
        (* 6. Check-after-solve: the full outcome oracle suite. *)
        let report = Checker.check_outcome outcome in
        if not (Diagnostic.ok report) then
          fail
            (Printf.sprintf "check-after-solve found violations:\n%s"
               (Diagnostic.render_report report));
        (* 7. The multilevel backend: sequential vs parallel must be
           bit-identical (the backend is deterministic by construction)
           and its scheme must survive the independent oracle
           re-derivation. A multilevel miss on a design the default
           pipeline solved is legal (different search space), so an
           infeasibility error is not a failure. *)
        (match
           Engine.solve ~strategy:Prcore.Strategy.Multilevel
             ~target:Engine.Auto design
         with
         | Error message ->
           if is_verification_failure message then
             fail ("multilevel: " ^ message)
         | Ok ml ->
           (match
              Engine.solve ~strategy:Prcore.Strategy.Multilevel ~jobs
                ~target:Engine.Auto design
            with
            | Error message ->
              fail
                (Printf.sprintf
                   "multilevel parallel solve (jobs=%d) failed where \
                    sequential succeeded: %s"
                   jobs message)
            | Ok par ->
              if
                not
                  (Cost.equal_evaluation ml.Engine.evaluation
                     par.Engine.evaluation)
                || Scheme.describe ml.Engine.scheme
                   <> Scheme.describe par.Engine.scheme
              then
                fail
                  (Printf.sprintf
                     "multilevel jobs=1 and jobs=%d diverge: %s vs %s" jobs
                     (Format.asprintf "%a" Cost.pp_evaluation
                        ml.Engine.evaluation)
                     (Format.asprintf "%a" Cost.pp_evaluation
                        par.Engine.evaluation)));
           let derived = Oracle.derive_evaluation ml.Engine.scheme in
           if not (Cost.equal_evaluation derived ml.Engine.evaluation) then
             fail
               (Printf.sprintf
                  "multilevel evaluation diverges from the independent \
                   oracle derivation: %s vs %s"
                  (Format.asprintf "%a" Cost.pp_evaluation
                     ml.Engine.evaluation)
                  (Format.asprintf "%a" Cost.pp_evaluation derived)))
    end
  done;
  { designs = count;
    solved = !solved;
    skipped = !skipped;
    failures = List.rev !failures }

let render_summary s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz: %d designs, %d solved, %d skipped, %d failure%s\n"
       s.designs s.solved s.skipped
       (List.length s.failures)
       (if List.length s.failures = 1 then "" else "s"));
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "  seed %d (%s): %s\n" f.seed f.design f.what))
    s.failures;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Mutation kills.                                                     *)

type kill = {
  label : string;
  expected : string;
  killed : bool;
  precise : bool;
  codes : string list;
}

let error_codes diagnostics =
  List.sort_uniq compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code)
       (Diagnostic.errors diagnostics))

let kill_of ~label ~expected diagnostics =
  let codes = error_codes diagnostics in
  { label;
    expected;
    killed = List.mem expected codes;
    precise = List.for_all (fun c -> c = expected) codes;
    codes }

(* Drop one mode from every member of the single-region grouping. The
   candidate is the first used mode whose removal leaves every member
   non-empty and isolates the covering oracle (some other drops also
   create co-activity, which is a different corruption class). *)
let drop_covered_mode design grouping =
  let corrupt mode =
    List.map
      (fun (m : Oracle.member) ->
        { m with Oracle.modes = List.filter (( <> ) mode) m.Oracle.modes })
      grouping
  in
  let viable =
    List.filter
      (fun mode ->
        List.exists
          (fun (m : Oracle.member) -> List.mem mode m.Oracle.modes)
          grouping
        && List.for_all
             (fun (m : Oracle.member) -> m.Oracle.modes <> [])
             (corrupt mode))
      (Design.all_mode_ids design)
  in
  let pick =
    match
      List.find_opt
        (fun mode ->
          error_codes (Oracle.check_grouping design (corrupt mode))
          = [ "V-CVR-001" ])
        viable
    with
    | Some mode -> mode
    | None -> List.hd viable
  in
  Oracle.check_grouping design (corrupt pick)

(* Split a maximal cluster (one contained in no other member) into two
   region mates: the configuration needing the whole cluster must then
   activate both halves simultaneously — a region conflict, while
   coverage stays complete. *)
let split_cluster design grouping =
  let subset a b = List.for_all (fun m -> List.mem m b) a in
  let maximal (m : Oracle.member) =
    List.length m.Oracle.modes >= 2
    && m.Oracle.place <> Oracle.Static
    && not
         (List.exists
            (fun (m' : Oracle.member) ->
              m' != m && subset m.Oracle.modes m'.Oracle.modes)
            grouping)
  in
  let rec split acc = function
    | [] -> List.rev acc
    | (m : Oracle.member) :: rest when maximal m ->
      List.rev_append acc
        ({ m with Oracle.modes = [ List.hd m.Oracle.modes ] }
         :: { m with Oracle.modes = List.tl m.Oracle.modes }
         :: rest)
    | m :: rest -> split (m :: acc) rest
  in
  Oracle.check_grouping design (split [] grouping)

let bounding_box (a : Placer.rect) (b : Placer.rect) =
  let row = min a.Placer.row b.Placer.row
  and col = min a.Placer.col b.Placer.col in
  { Placer.row;
    col;
    height =
      max (a.Placer.row + a.Placer.height) (b.Placer.row + b.Placer.height)
      - row;
    width =
      max (a.Placer.col + a.Placer.width) (b.Placer.col + b.Placer.width)
      - col }

let mutation_kills () =
  let design = Design_library.video_receiver in
  let budget = Design_library.case_study_budget in
  (* The partitioned case-study scheme (for the cost corruptions)... *)
  let outcome =
    match Engine.solve ~target:(Engine.Budget budget) design with
    | Ok o -> o
    | Error m -> invalid_arg ("Fuzz.mutation_kills: case study solve: " ^ m)
  in
  (* ...and the one-module-per-region reference (for the floorplan,
     bitstream and transition corruptions — guaranteed multi-region). *)
  let multi = Scheme.one_module_per_region design in
  let demands = Oracle.derive_demands multi in
  let device, placed =
    match Placer.fit_on_sweep demands with
    | Some (device, outcome) -> (device, outcome)
    | None -> invalid_arg "Fuzz.mutation_kills: case study does not place"
  in
  let layout = Layout.make device in
  let single = Scheme.single_region design in
  let grouping = Oracle.grouping_of_scheme single in
  let eval = outcome.Engine.evaluation in
  [ kill_of ~label:"drop-covered-mode" ~expected:"V-CVR-001"
      (drop_covered_mode design grouping);
    kill_of ~label:"split-cluster" ~expected:"V-CVR-004"
      (split_cluster design grouping);
    kill_of ~label:"overlap-rects" ~expected:"V-FLP-001"
      (let placements = Array.copy placed.Placer.placements in
       let placed_indices =
         List.filter
           (fun i -> placements.(i) <> None)
           (List.init (Array.length placements) Fun.id)
       in
       (match placed_indices with
        | i :: j :: _ ->
          (match (placements.(i), placements.(j)) with
           | Some a, Some b -> placements.(i) <- Some (bounding_box a b)
           | _ -> ())
        | _ -> ());
       Oracle.check_floorplan ~layout ~demands placements);
    kill_of ~label:"flip-region-frames" ~expected:"V-CST-003"
      (Oracle.check_cost outcome.Engine.scheme
         { eval with
           Cost.region_frames =
             Array.mapi
               (fun i f -> if i = 0 then f + 1 else f)
               eval.Cost.region_frames });
    kill_of ~label:"corrupt-total" ~expected:"V-CST-001"
      (Oracle.check_cost outcome.Engine.scheme
         { eval with Cost.total_frames = eval.Cost.total_frames + 7 });
    kill_of ~label:"corrupt-worst" ~expected:"V-CST-002"
      (Oracle.check_cost outcome.Engine.scheme
         { eval with Cost.worst_frames = eval.Cost.worst_frames + 7 });
    kill_of ~label:"corrupt-crc" ~expected:"V-BIT-002"
      (let repo = Bitgen.Repository.build ~device multi in
       match repo.Bitgen.Repository.entries with
       | [] -> []
       | entry :: _ ->
         let bytes =
           Bytes.copy
             (Bitgen.Bitstream.serialise entry.Bitgen.Repository.bitstream)
         in
         let last = Bytes.length bytes - 1 in
         Bytes.set bytes last
           (Char.chr (Char.code (Bytes.get bytes last) lxor 0xFF));
         Oracle.check_serialised
           ~context:
             (Printf.sprintf "corrupted %s" entry.Bitgen.Repository.label)
           bytes);
    kill_of ~label:"shrink-budget" ~expected:"V-CST-006"
      (let used = (Oracle.derive_evaluation outcome.Engine.scheme).Cost.used in
       Oracle.check_budget outcome.Engine.scheme
         ~budget:
           { Resource.clb = max 0 (used.Resource.clb - 1);
             bram = used.Resource.bram;
             dsp = used.Resource.dsp });
    kill_of ~label:"empty-repository" ~expected:"V-TRN-001"
      (let empty =
         Bitgen.Repository.build ~device (Scheme.fully_static design)
       in
       Oracle.check_transitions ~repository:empty multi) ]

let all_killed kills =
  kills <> [] && List.for_all (fun k -> k.killed && k.precise) kills

let render_kills kills =
  let b = Buffer.create 256 in
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "%-20s %-10s %s%s\n" k.label k.expected
           (if k.killed then "killed" else "MISSED")
           (if k.precise then ""
            else
              Printf.sprintf " (also fired: %s)"
                (String.concat ", "
                   (List.filter (( <> ) k.expected) k.codes)))))
    kills;
  Buffer.add_string b
    (Printf.sprintf "mutation kills: %d/%d killed precisely\n"
       (List.length (List.filter (fun k -> k.killed && k.precise) kills))
       (List.length kills));
  Buffer.contents b
