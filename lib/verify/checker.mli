(** Aggregated verification entry points: bundle the stage oracles into
    the checks the engine, the tool flow and the CLI consume, with
    [verify.*] telemetry.

    Telemetry (all optional, free on {!Prtelemetry.null}): a
    ["verify.check"] span per aggregate call, and ["verify.oracles"],
    ["verify.diagnostics"], ["verify.errors"], ["verify.warnings"]
    counters. *)

val check_design :
  ?telemetry:Prtelemetry.t -> Prdesign.Design.t -> Diagnostic.t list
(** The design well-formedness oracle ({!Oracle.check_design}). *)

val check_outcome :
  ?telemetry:Prtelemetry.t -> Prcore.Engine.outcome -> Diagnostic.t list
(** Everything derivable from a solve alone: design well-formedness,
    covering/conflict-freedom of the winning scheme, from-scratch cost
    re-derivation against the reported evaluation, budget satisfaction,
    and transition-matrix cross-checks (no repository yet). A
    placement-aware solve on a known device additionally gets its
    reported placement penalty re-derived independently
    ({!Oracle.check_placement_penalty}). *)

val check_implementation :
  ?telemetry:Prtelemetry.t ->
  outcome:Prcore.Engine.outcome ->
  layout:Floorplan.Layout.t ->
  placement:Floorplan.Placer.outcome ->
  repository:Bitgen.Repository.t ->
  unit ->
  Diagnostic.t list
(** The full pipeline check: {!check_outcome} plus floorplan
    disjointness/bounds/resource satisfaction, bitstream repository
    round-trips, and transition reachability against the repository. *)

val ok : Diagnostic.t list -> bool
(** {!Diagnostic.ok}. *)

val render_report : Diagnostic.t list -> string
(** {!Diagnostic.render_report}. *)

val summary_line : Diagnostic.t list -> string
(** One line, e.g. ["verify: 2 errors, 1 warning"] or ["verify: OK"]. *)
