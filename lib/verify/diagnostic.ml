type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  stage : string;
  message : string;
}

let make severity ~code ~stage fmt =
  Printf.ksprintf (fun message -> { code; severity; stage; message }) fmt

let error ~code ~stage fmt = make Error ~code ~stage fmt
let warning ~code ~stage fmt = make Warning ~code ~stage fmt

let is_error d = d.severity = Error
let errors l = List.filter is_error l
let warnings l = List.filter (fun d -> d.severity = Warning) l
let ok l = not (List.exists is_error l)
let has_code code l = List.exists (fun d -> d.code = code) l

let severity_name = function Error -> "error" | Warning -> "warning"

let render d =
  Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.code d.stage
    d.message

let render_report l =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (render d);
      Buffer.add_char buf '\n')
    l;
  let e = List.length (errors l) and w = List.length (warnings l) in
  let plural n = if n = 1 then "" else "s" in
  Buffer.add_string buf
    (if e = 0 then
       Printf.sprintf "verification OK (0 errors, %d warning%s)\n" w (plural w)
     else
       Printf.sprintf "verification FAILED (%d error%s, %d warning%s)\n" e
         (plural e) w (plural w));
  Buffer.contents buf

let severity_rank = function Error -> 0 | Warning -> 1

let compare a b =
  match String.compare a.code b.code with
  | 0 -> (
    match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
    | 0 -> String.compare a.message b.message
    | c -> c)
  | c -> c

let pp ppf d = Format.pp_print_string ppf (render d)
