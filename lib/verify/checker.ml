module Engine = Prcore.Engine

let count ~telemetry ~oracles diagnostics =
  Prtelemetry.incr telemetry ~by:oracles "verify.oracles";
  Prtelemetry.incr telemetry ~by:(List.length diagnostics) "verify.diagnostics";
  Prtelemetry.incr telemetry
    ~by:(List.length (Diagnostic.errors diagnostics))
    "verify.errors";
  Prtelemetry.incr telemetry
    ~by:(List.length (Diagnostic.warnings diagnostics))
    "verify.warnings";
  diagnostics

let check_design ?(telemetry = Prtelemetry.null) design =
  Prtelemetry.with_span telemetry "verify.check"
    ~attrs:[ ("subject", Prtelemetry.Json.String "design") ]
  @@ fun () -> count ~telemetry ~oracles:1 (Oracle.check_design design)

let outcome_oracles (outcome : Engine.outcome) =
  [ Oracle.check_design outcome.Engine.design;
    Oracle.check_scheme outcome.Engine.scheme;
    Oracle.check_cost outcome.Engine.scheme outcome.Engine.evaluation;
    Oracle.check_budget outcome.Engine.scheme ~budget:outcome.Engine.budget;
    Oracle.check_transitions outcome.Engine.scheme ]
  (* Placement-aware solves report the winning scheme's penalty; when
     the target device is known its layout is reproducible, so the
     oracle re-derives the penalty independently. Budget targets leave
     [device = None] (the hook modelled the smallest fitting device,
     which the outcome does not record) and are skipped. *)
  @
  match (outcome.Engine.placement_penalty, outcome.Engine.device) with
  | Some reported, Some device ->
    [ Oracle.check_placement_penalty outcome.Engine.scheme
        ~layout:(Floorplan.Layout.make device) ~reported ]
  | _ -> []

let check_outcome ?(telemetry = Prtelemetry.null) outcome =
  Prtelemetry.with_span telemetry "verify.check"
    ~attrs:[ ("subject", Prtelemetry.Json.String "outcome") ]
  @@ fun () ->
  let oracles = outcome_oracles outcome in
  count ~telemetry ~oracles:(List.length oracles) (List.concat oracles)

let check_implementation ?(telemetry = Prtelemetry.null) ~outcome ~layout
    ~placement ~repository () =
  Prtelemetry.with_span telemetry "verify.check"
    ~attrs:[ ("subject", Prtelemetry.Json.String "implementation") ]
  @@ fun () ->
  let oracles =
    outcome_oracles outcome
    @ [ Oracle.check_placement outcome.Engine.scheme ~layout placement;
        Oracle.check_repository repository;
        (* Reachability needs the repository; the plain transition
           cross-check already ran in [outcome_oracles]. Keep only the
           repository-dependent diagnostics here to avoid duplicates. *)
        List.filter
          (fun (d : Diagnostic.t) -> d.Diagnostic.code = "V-TRN-001")
          (Oracle.check_transitions ~repository outcome.Engine.scheme) ]
  in
  count ~telemetry ~oracles:(List.length oracles) (List.concat oracles)

let ok = Diagnostic.ok
let render_report = Diagnostic.render_report

let summary_line diagnostics =
  let e = List.length (Diagnostic.errors diagnostics)
  and w = List.length (Diagnostic.warnings diagnostics) in
  if e = 0 && w = 0 then "verify: OK"
  else
    Printf.sprintf "verify: %d error%s, %d warning%s" e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
