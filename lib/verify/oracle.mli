(** Independent invariant oracles for every stage of the partitioning
    pipeline.

    {b Independence contract.} Each oracle re-derives its invariant
    from scratch — greedy activity resolution, residency, frame counts,
    resource sums, transition costs and floorplan coverage are all
    reimplemented here over the raw design/scheme data. Oracles may read
    validated inputs ({!Prdesign.Design} accessors, {!Fpga} arithmetic,
    {!Floorplan.Layout} topology) and exercise the codecs they check
    ({!Bitgen.Bitstream.serialise}/[parse]), but they may {b not} call
    the optimised code paths whose results they validate: no
    {!Prcore.Memo}, no allocator/annealer incremental kernels, no
    {!Prcore.Cost.evaluate}, no {!Prcore.Compatibility}. A drift bug in
    those layers therefore cannot hide itself from the oracles.

    Scheme-shaped invariants come in two forms: a high-level entry
    taking a validated {!Prcore.Scheme.t}, and a raw {!grouping} entry
    that accepts arbitrary (possibly corrupt) member lists — the form
    the mutation-kill tests feed with seeded corruptions that
    {!Prcore.Scheme.make} would reject. *)

(** {1 Raw groupings} *)

type place = Static | Region of int

type member = {
  modes : int list;  (** Flat mode ids of the cluster. *)
  place : place;
}

type grouping = member list
(** A scheme stripped to its raw content, in priority order. *)

val grouping_of_scheme : Prcore.Scheme.t -> grouping

(** {1 Design well-formedness} ([V-DSN-00x], stage ["design"]) *)

val check_design : Prdesign.Design.t -> Diagnostic.t list
(** [V-DSN-001] empty configuration; [V-DSN-002] module/mode reference
    out of range; [V-DSN-003] connectivity-matrix asymmetry (or a
    diagonal disagreeing with the column sums, or a weight disagreeing
    with a direct co-occurrence recount); [V-DSN-004] (warning) mode
    used by no configuration; [V-DSN-005] (warning) two configurations
    with identical mode sets. *)

(** {1 Covering and conflict-freedom} ([V-CVR-00x], stage ["cover"]) *)

val check_grouping : Prdesign.Design.t -> grouping -> Diagnostic.t list
(** [V-CVR-001] a configuration mode no active member provides;
    [V-CVR-002] empty or non-dense region numbering; [V-CVR-003]
    malformed member (empty or out-of-range mode list, negative
    region); [V-CVR-004] a region hosting two members that are
    simultaneously active in one configuration; [V-CVR-005] (warning)
    a member active in no configuration. *)

val check_scheme : Prcore.Scheme.t -> Diagnostic.t list
(** {!check_grouping} over {!grouping_of_scheme}. *)

(** {1 Cost re-derivation} ([V-CST-00x], stage ["cost"]) *)

val derive_evaluation : Prcore.Scheme.t -> Prcore.Cost.evaluation
(** From-scratch re-derivation of the full cost evaluation (residency,
    frames, conflicts, totals, resource sums) without touching
    {!Prcore.Cost}. *)

val check_cost :
  Prcore.Scheme.t -> Prcore.Cost.evaluation -> Diagnostic.t list
(** Compares a {e reported} evaluation against {!derive_evaluation},
    field by field: [V-CST-001] total frames, [V-CST-002] worst-case
    frames, [V-CST-003] per-region frames, [V-CST-004] resource totals,
    [V-CST-005] per-region conflict counts. A mismatch means memoised
    or incremental state diverged from the cost model. *)

val check_budget :
  Prcore.Scheme.t -> budget:Fpga.Resource.t -> Diagnostic.t list
(** [V-CST-006] the re-derived resource usage exceeds the budget. *)

(** {1 Floorplan} ([V-FLP-00x], stage ["floorplan"]) *)

val derive_demands : Prcore.Scheme.t -> Floorplan.Placer.demand array
(** Tile demands re-derived from the scheme: one entry per region (max
    member resources) plus a final static entry. *)

val check_floorplan :
  layout:Floorplan.Layout.t ->
  demands:Floorplan.Placer.demand array ->
  Floorplan.Placer.rect option array ->
  Diagnostic.t list
(** [V-FLP-001] two placements overlap; [V-FLP-002] a placement exceeds
    the fabric bounds; [V-FLP-003] a placement's window covers fewer
    tiles of some kind than its demand; [V-FLP-004] a non-empty demand
    left unplaced; [V-FLP-005] a zero-volume demand carries a non-empty
    rectangle (it must get {!Floorplan.Placer.empty_rect}). *)

val check_placement :
  Prcore.Scheme.t ->
  layout:Floorplan.Layout.t ->
  Floorplan.Placer.outcome ->
  Diagnostic.t list
(** {!check_floorplan} over {!derive_demands}, plus [V-FLP-004] for
    every index the placer itself reported as failed. *)

val derive_placement_penalty :
  layout:Floorplan.Layout.t -> Prcore.Scheme.t -> int
(** Independent re-derivation of {!Floorplan.Estimate}'s integer
    placeability penalty for the scheme's re-derived demands on
    [layout] — direct column scans, no code shared with the
    estimator. *)

val check_placement_penalty :
  Prcore.Scheme.t ->
  layout:Floorplan.Layout.t ->
  reported:int ->
  Diagnostic.t list
(** [V-FLP-006] the placement penalty a placement-aware solve reported
    ({!Prcore.Engine.outcome}[.placement_penalty]) does not equal
    {!derive_placement_penalty}'s value. *)

(** {1 Bitstream repository} ([V-BIT-00x], stage ["bitstream"]) *)

val check_serialised :
  context:string ->
  ?region:int ->
  ?frames:int ->
  ?variant:string ->
  bytes ->
  Diagnostic.t list
(** Round-trips serialised bitstream bytes through
    {!Bitgen.Bitstream.parse}: [V-BIT-002] parse or CRC failure (or a
    re-serialisation that is not byte-identical); [V-BIT-003] frame
    count differing from [frames]; [V-BIT-004] region/variant metadata
    differing from the expectations. *)

val check_repository : Bitgen.Repository.t -> Diagnostic.t list
(** [V-BIT-001] a (region, member) pair with no repository entry (or an
    entry for an unknown pair); [V-BIT-002..004] per-entry round-trip
    checks with the expected frame counts re-derived from the scheme;
    the full bitstream must carry the device's total frame count. *)

(** {1 Transition reachability} ([V-TRN-00x], stage ["transition"]) *)

val transition_table : Prcore.Scheme.t -> int array array
(** From-scratch all-pairs transition cost, in frames. *)

val check_transitions :
  ?repository:Bitgen.Repository.t -> Prcore.Scheme.t -> Diagnostic.t list
(** [V-TRN-001] a configuration pair whose transition needs a partial
    bitstream the repository does not hold (only with [repository]);
    [V-TRN-002] {!Prcore.Cost.transition_matrix} disagreeing with the
    from-scratch {!transition_table}; [V-TRN-003] an asymmetric matrix
    or non-zero diagonal. *)
