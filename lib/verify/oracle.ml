module Design = Prdesign.Design
module Configuration = Prdesign.Configuration
module Pmodule = Prdesign.Pmodule
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile
module D = Diagnostic

type place = Static | Region of int
type member = { modes : int list; place : place }
type grouping = member list

let grouping_of_scheme (s : Scheme.t) =
  List.init (Array.length s.Scheme.partitions) (fun p ->
      { modes = s.Scheme.partitions.(p).Base_partition.modes;
        place =
          (match s.Scheme.placement.(p) with
           | Scheme.Static -> Static
           | Scheme.Region r -> Region r) })

(* ------------------------------------------------------------------ *)
(* Shared from-scratch machinery.                                      *)

(* Greedy best-coverage activity resolution, re-implemented from the
   documented semantics (paper §IV-C): repeatedly pick the member
   covering the most still-uncovered modes of the configuration
   (earliest member on ties), until nothing new is covered. Returns the
   active flags and the modes left unprovided. *)
let resolve_activity (members : member array) config_modes =
  let n = Array.length members in
  let active = Array.make n false in
  let uncovered = ref config_modes in
  let rec loop () =
    if !uncovered <> [] then begin
      let best = ref (-1) and best_covered = ref 0 in
      for p = 0 to n - 1 do
        let covered =
          List.length
            (List.filter (fun m -> List.mem m members.(p).modes) !uncovered)
        in
        if covered > !best_covered then begin
          best := p;
          best_covered := covered
        end
      done;
      if !best >= 0 then begin
        active.(!best) <- true;
        uncovered :=
          List.filter
            (fun m -> not (List.mem m members.(!best).modes))
            !uncovered;
        loop ()
      end
    end
  in
  loop ();
  (active, !uncovered)

(* Activity per configuration over the whole member list. *)
let activity_table design (members : member array) =
  let configs = Design.configuration_count design in
  Array.init configs (fun c ->
      resolve_activity members (Design.config_mode_ids design c))

let region_count_of (members : member array) =
  Array.fold_left
    (fun acc m ->
      match m.place with Region r -> max acc (r + 1) | Static -> acc)
    0 members

let region_members_of (members : member array) r =
  let acc = ref [] in
  Array.iteri
    (fun p m ->
      match m.place with
      | Region r' when r' = r -> acc := p :: !acc
      | Region _ | Static -> ())
    members;
  List.rev !acc

(* Resident member per (config, region): the lowest-index active member
   of the region, or -1 when the configuration leaves the region as a
   don't-care. *)
let residency design (members : member array) =
  let activity = activity_table design members in
  let regions = region_count_of members in
  Array.map
    (fun (active, _) ->
      Array.init regions (fun r ->
          match List.find_opt (fun p -> active.(p)) (region_members_of members r)
          with
          | Some p -> p
          | None -> -1))
    activity

let member_resources design (m : member) =
  Resource.sum (List.map (Design.mode_resources design) m.modes)

let region_resources_of design (members : member array) r =
  List.fold_left
    (fun acc p -> Resource.max acc (member_resources design members.(p)))
    Resource.zero (region_members_of members r)

let members_of_scheme s = Array.of_list (grouping_of_scheme s)

(* ------------------------------------------------------------------ *)
(* Design well-formedness.                                             *)

let stage_design = "design"

let check_design (design : Design.t) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let module_count = Design.module_count design in
  let configs = Design.configuration_count design in
  (* Structural checks straight off the configuration records. *)
  Array.iteri
    (fun c (conf : Configuration.t) ->
      if conf.Configuration.choices = [] then
        emit
          (D.error ~code:"V-DSN-001" ~stage:stage_design
             "configuration %d (%s) selects no modes" c conf.Configuration.name);
      List.iter
        (fun (m, k) ->
          if m < 0 || m >= module_count then
            emit
              (D.error ~code:"V-DSN-002" ~stage:stage_design
                 "configuration %s references module %d outside [0, %d)"
                 conf.Configuration.name m module_count)
          else begin
            let modes = Pmodule.mode_count design.Design.modules.(m) in
            if k < 0 || k >= modes then
              emit
                (D.error ~code:"V-DSN-002" ~stage:stage_design
                   "configuration %s references mode %d of module %s \
                    outside [0, %d)"
                   conf.Configuration.name k
                   design.Design.modules.(m).Pmodule.name modes)
          end)
        conf.Configuration.choices)
    design.Design.configurations;
  (* Connectivity-matrix cross-check: the matrix must be symmetric, its
     diagonal must equal the column sums, and every weight must agree
     with a direct recount of configuration co-occurrence. *)
  let matrix = Prgraph.Conn_matrix.make design in
  let modes = Design.mode_count design in
  let co_occurrence i j =
    let count = ref 0 in
    for c = 0 to configs - 1 do
      let active = Design.config_mode_ids design c in
      if List.mem i active && List.mem j active then incr count
    done;
    !count
  in
  (try
     for i = 0 to modes - 1 do
       for j = i to modes - 1 do
         let w = Prgraph.Conn_matrix.edge_weight matrix i j in
         let w' = Prgraph.Conn_matrix.edge_weight matrix j i in
         if w <> w' then
           emit
             (D.error ~code:"V-DSN-003" ~stage:stage_design
                "connectivity matrix asymmetric at (%s, %s): %d vs %d"
                (Design.mode_name design i) (Design.mode_name design j) w w');
         let expected = co_occurrence i j in
         if w <> expected then
           emit
             (D.error ~code:"V-DSN-003" ~stage:stage_design
                "connectivity weight (%s, %s) is %d but %d configurations \
                 co-activate the pair"
                (Design.mode_name design i) (Design.mode_name design j) w
                expected)
       done;
       if
         Prgraph.Conn_matrix.edge_weight matrix i i
         <> Prgraph.Conn_matrix.node_weight matrix i
       then
         emit
           (D.error ~code:"V-DSN-003" ~stage:stage_design
              "connectivity diagonal of %s disagrees with its column sum"
              (Design.mode_name design i))
     done
   with Invalid_argument message ->
     emit
       (D.error ~code:"V-DSN-003" ~stage:stage_design
          "connectivity matrix rejected an in-range probe: %s" message));
  (* Unused modes and duplicate configurations. *)
  List.iter
    (fun mode ->
      if Prgraph.Conn_matrix.node_weight matrix mode = 0 then
        emit
          (D.warning ~code:"V-DSN-004" ~stage:stage_design
             "mode %s is used by no configuration"
             (Design.mode_name design mode)))
    (Design.all_mode_ids design);
  for i = 0 to configs - 1 do
    for j = i + 1 to configs - 1 do
      if Design.config_mode_ids design i = Design.config_mode_ids design j then
        emit
          (D.warning ~code:"V-DSN-005" ~stage:stage_design
             "configurations %s and %s select identical mode sets"
             design.Design.configurations.(i).Configuration.name
             design.Design.configurations.(j).Configuration.name)
    done
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Covering and conflict-freedom.                                      *)

let stage_cover = "cover"

let check_grouping design (grouping : grouping) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let members = Array.of_list grouping in
  let mode_count = Design.mode_count design in
  let malformed = ref false in
  Array.iteri
    (fun p (m : member) ->
      if m.modes = [] then begin
        malformed := true;
        emit
          (D.error ~code:"V-CVR-003" ~stage:stage_cover
             "member %d has an empty mode list" p)
      end;
      List.iter
        (fun mode ->
          if mode < 0 || mode >= mode_count then begin
            malformed := true;
            emit
              (D.error ~code:"V-CVR-003" ~stage:stage_cover
                 "member %d references mode id %d outside [0, %d)" p mode
                 mode_count)
          end)
        m.modes;
      match m.place with
      | Region r when r < 0 ->
        malformed := true;
        emit
          (D.error ~code:"V-CVR-003" ~stage:stage_cover
             "member %d is assigned negative region %d" p r)
      | Region _ | Static -> ())
    members;
  if !malformed then List.rev !out
  else begin
    let regions = region_count_of members in
    for r = 0 to regions - 1 do
      if region_members_of members r = [] then
        emit
          (D.error ~code:"V-CVR-002" ~stage:stage_cover
             "region numbering is not dense: region %d of %d is empty" r
             regions)
    done;
    let activity = activity_table design members in
    let configs = Design.configuration_count design in
    let ever_active = Array.make (Array.length members) false in
    for c = 0 to configs - 1 do
      let active, uncovered = activity.(c) in
      Array.iteri (fun p a -> if a then ever_active.(p) <- true) active;
      if uncovered <> [] then
        emit
          (D.error ~code:"V-CVR-001" ~stage:stage_cover
             "configuration %s is not covered: no member provides %s"
             design.Design.configurations.(c).Configuration.name
             (String.concat ", "
                (List.map (Design.mode_name design) uncovered)));
      for r = 0 to regions - 1 do
        let co_active =
          List.filter (fun p -> active.(p)) (region_members_of members r)
        in
        if List.length co_active > 1 then
          emit
            (D.error ~code:"V-CVR-004" ~stage:stage_cover
               "region %d hosts %d simultaneously active members in \
                configuration %s (members %s)"
               r (List.length co_active)
               design.Design.configurations.(c).Configuration.name
               (String.concat ", " (List.map string_of_int co_active)))
      done
    done;
    Array.iteri
      (fun p a ->
        if not a then
          emit
            (D.warning ~code:"V-CVR-005" ~stage:stage_cover
               "member %d is active in no configuration" p))
      ever_active;
    List.rev !out
  end

let check_scheme (s : Scheme.t) =
  check_grouping s.Scheme.design (grouping_of_scheme s)

(* ------------------------------------------------------------------ *)
(* Cost re-derivation.                                                 *)

let stage_cost = "cost"

let derive_evaluation (s : Scheme.t) =
  let design = s.Scheme.design in
  let members = members_of_scheme s in
  let regions = region_count_of members in
  let region_frames =
    Array.init regions (fun r ->
        Tile.frames_of_resources (region_resources_of design members r))
  in
  let resid = residency design members in
  let configs = Design.configuration_count design in
  let region_conflicts =
    Array.init regions (fun r ->
        let count = ref 0 in
        for i = 0 to configs - 1 do
          for j = i + 1 to configs - 1 do
            let a = resid.(i).(r) and b = resid.(j).(r) in
            if a >= 0 && b >= 0 && a <> b then incr count
          done
        done;
        !count)
  in
  let total_frames =
    let acc = ref 0 in
    Array.iteri (fun r f -> acc := !acc + (f * region_conflicts.(r))) region_frames;
    !acc
  in
  let worst_frames =
    let worst = ref 0 in
    for i = 0 to configs - 1 do
      for j = i + 1 to configs - 1 do
        let cost = ref 0 in
        for r = 0 to regions - 1 do
          let a = resid.(i).(r) and b = resid.(j).(r) in
          if a >= 0 && b >= 0 && a <> b then cost := !cost + region_frames.(r)
        done;
        if !cost > !worst then worst := !cost
      done
    done;
    !worst
  in
  let static =
    Array.fold_left
      (fun acc (m : member) ->
        match m.place with
        | Static -> Resource.add acc (member_resources design m)
        | Region _ -> acc)
      design.Design.static_overhead members
  in
  let reconfigurable =
    let acc = ref Resource.zero in
    for r = 0 to regions - 1 do
      acc :=
        Resource.add !acc (Tile.quantize (region_resources_of design members r))
    done;
    !acc
  in
  { Cost.region_frames;
    region_conflicts;
    total_frames;
    worst_frames;
    reconfigurable;
    static;
    used = Resource.add reconfigurable static }

let check_cost (s : Scheme.t) (reported : Cost.evaluation) =
  let fresh = derive_evaluation s in
  let out = ref [] in
  let emit d = out := d :: !out in
  if reported.Cost.total_frames <> fresh.Cost.total_frames then
    emit
      (D.error ~code:"V-CST-001" ~stage:stage_cost
         "reported total of %d frames; re-derivation gives %d"
         reported.Cost.total_frames fresh.Cost.total_frames);
  if reported.Cost.worst_frames <> fresh.Cost.worst_frames then
    emit
      (D.error ~code:"V-CST-002" ~stage:stage_cost
         "reported worst case of %d frames; re-derivation gives %d"
         reported.Cost.worst_frames fresh.Cost.worst_frames);
  if reported.Cost.region_frames <> fresh.Cost.region_frames then
    emit
      (D.error ~code:"V-CST-003" ~stage:stage_cost
         "reported per-region frames [%s]; re-derivation gives [%s]"
         (String.concat "; "
            (Array.to_list (Array.map string_of_int reported.Cost.region_frames)))
         (String.concat "; "
            (Array.to_list (Array.map string_of_int fresh.Cost.region_frames))));
  if reported.Cost.region_conflicts <> fresh.Cost.region_conflicts then
    emit
      (D.error ~code:"V-CST-005" ~stage:stage_cost
         "reported per-region conflicts [%s]; re-derivation gives [%s]"
         (String.concat "; "
            (Array.to_list
               (Array.map string_of_int reported.Cost.region_conflicts)))
         (String.concat "; "
            (Array.to_list
               (Array.map string_of_int fresh.Cost.region_conflicts))));
  if
    not
      (Resource.equal reported.Cost.reconfigurable fresh.Cost.reconfigurable
      && Resource.equal reported.Cost.static fresh.Cost.static
      && Resource.equal reported.Cost.used fresh.Cost.used)
  then
    emit
      (D.error ~code:"V-CST-004" ~stage:stage_cost
         "reported resources (used %s = reconfigurable %s + static %s) \
          disagree with the re-derivation (used %s = reconfigurable %s + \
          static %s)"
         (Resource.to_string reported.Cost.used)
         (Resource.to_string reported.Cost.reconfigurable)
         (Resource.to_string reported.Cost.static)
         (Resource.to_string fresh.Cost.used)
         (Resource.to_string fresh.Cost.reconfigurable)
         (Resource.to_string fresh.Cost.static));
  List.rev !out

let check_budget (s : Scheme.t) ~budget =
  let fresh = derive_evaluation s in
  if Resource.fits fresh.Cost.used ~within:budget then []
  else
    [ D.error ~code:"V-CST-006" ~stage:stage_cost
        "re-derived usage %s exceeds the budget %s"
        (Resource.to_string fresh.Cost.used)
        (Resource.to_string budget) ]

(* ------------------------------------------------------------------ *)
(* Floorplan.                                                          *)

let stage_floorplan = "floorplan"

let derive_demands (s : Scheme.t) =
  let design = s.Scheme.design in
  let members = members_of_scheme s in
  let regions = region_count_of members in
  Array.init (regions + 1) (fun i ->
      if i < regions then
        Floorplan.Placer.demand_of_resources
          (region_resources_of design members i)
      else begin
        let static =
          Array.fold_left
            (fun acc (m : member) ->
              match m.place with
              | Static -> Resource.add acc (member_resources design m)
              | Region _ -> acc)
            design.Design.static_overhead members
        in
        Floorplan.Placer.demand_of_resources static
      end)

let demand_volume (d : Floorplan.Placer.demand) =
  d.Floorplan.Placer.clb_tiles + d.Floorplan.Placer.bram_tiles
  + d.Floorplan.Placer.dsp_tiles

let label_of_demand regions i =
  if i < regions then Printf.sprintf "PRR%d" (i + 1) else "static"

let check_floorplan ~layout ~demands placements =
  let out = ref [] in
  let emit d = out := d :: !out in
  let rows = Floorplan.Layout.rows layout
  and width = Floorplan.Layout.width layout in
  let n = Array.length demands in
  let regions = n - 1 in
  let label = label_of_demand regions in
  if Array.length placements <> n then
    emit
      (D.error ~code:"V-FLP-004" ~stage:stage_floorplan
         "%d demands but %d placements" n (Array.length placements));
  let rect_of i =
    if i >= Array.length placements then None else placements.(i)
  in
  for i = 0 to n - 1 do
    match rect_of i with
    | None ->
      if demand_volume demands.(i) > 0 then
        emit
          (D.error ~code:"V-FLP-004" ~stage:stage_floorplan
             "%s (demand %d/%d/%d tiles) is unplaced" (label i)
             demands.(i).Floorplan.Placer.clb_tiles
             demands.(i).Floorplan.Placer.bram_tiles
             demands.(i).Floorplan.Placer.dsp_tiles)
    | Some (rect : Floorplan.Placer.rect) ->
      if demand_volume demands.(i) = 0 then begin
        (* A zero-volume demand must carry the degenerate empty rect:
           a real rectangle would consume fabric (and participate in
           overlap checks) for nothing. *)
        if rect.Floorplan.Placer.height > 0 && rect.Floorplan.Placer.width > 0
        then
          emit
            (D.error ~code:"V-FLP-005" ~stage:stage_floorplan
               "%s demands no tiles but was placed on a non-empty \
                rectangle (%a)"
               (label i)
               (fun () r -> Format.asprintf "%a" Floorplan.Placer.pp_rect r)
               rect)
      end
      else if
        rect.Floorplan.Placer.row < 0 || rect.Floorplan.Placer.col < 0
        || rect.Floorplan.Placer.height <= 0
        || rect.Floorplan.Placer.width <= 0
        || rect.Floorplan.Placer.row + rect.Floorplan.Placer.height > rows
        || rect.Floorplan.Placer.col + rect.Floorplan.Placer.width > width
      then
        emit
          (D.error ~code:"V-FLP-002" ~stage:stage_floorplan
             "%s placement (%a) exceeds the %dx%d fabric" (label i)
             (fun () r -> Format.asprintf "%a" Floorplan.Placer.pp_rect r)
             rect rows width)
      else begin
        let covered kind =
          rect.Floorplan.Placer.height
          * Floorplan.Layout.count_in_window layout
              ~first:rect.Floorplan.Placer.col
              ~width:rect.Floorplan.Placer.width kind
        in
        List.iter
          (fun (kind, need) ->
            let have = covered kind in
            if have < need then
              emit
                (D.error ~code:"V-FLP-003" ~stage:stage_floorplan
                   "%s covers %d %s tiles but needs %d" (label i) have
                   (Tile.kind_name kind) need))
          [ (Tile.Clb, demands.(i).Floorplan.Placer.clb_tiles);
            (Tile.Bram, demands.(i).Floorplan.Placer.bram_tiles);
            (Tile.Dsp, demands.(i).Floorplan.Placer.dsp_tiles) ]
      end
  done;
  (* Pairwise disjointness of the non-empty placements. *)
  let overlap (a : Floorplan.Placer.rect) (b : Floorplan.Placer.rect) =
    let open Floorplan.Placer in
    a.height > 0 && a.width > 0 && b.height > 0 && b.width > 0
    && a.row < b.row + b.height
    && b.row < a.row + a.height
    && a.col < b.col + b.width
    && b.col < a.col + a.width
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match (rect_of i, rect_of j) with
      | Some a, Some b when overlap a b ->
        emit
          (D.error ~code:"V-FLP-001" ~stage:stage_floorplan
             "%s and %s overlap (%s vs %s)" (label i) (label j)
             (Format.asprintf "%a" Floorplan.Placer.pp_rect a)
             (Format.asprintf "%a" Floorplan.Placer.pp_rect b))
      | _ -> ()
    done
  done;
  List.rev !out

(* Independent re-derivation of {!Floorplan.Estimate}'s integer
   placeability penalty, from the layout and the scheme's re-derived
   demands alone: canonical order (decreasing volume, then per-kind
   counts), per-kind capacity deficits, per-demand possibility on the
   empty fabric, and the left-to-right full-height strip packing with
   8x-weighted BRAM/DSP waste. Deliberately written against direct
   [Layout] column scans — no prefix sums, no shared code with the
   estimator — so any drift in either implementation surfaces as a
   V-FLP-006 mismatch. *)
let derive_placement_penalty ~layout (s : Scheme.t) =
  let rows = Floorplan.Layout.rows layout in
  let fabric_width = Floorplan.Layout.width layout in
  let count kind ~first ~w =
    Floorplan.Layout.count_in_window layout ~first ~width:w kind
  in
  let ds =
    derive_demands s |> Array.to_list
    |> List.filter (fun d -> demand_volume d > 0)
    |> List.sort (fun (a : Floorplan.Placer.demand) b ->
           compare
             ( demand_volume b,
               b.Floorplan.Placer.clb_tiles,
               b.Floorplan.Placer.bram_tiles,
               b.Floorplan.Placer.dsp_tiles )
             ( demand_volume a,
               a.Floorplan.Placer.clb_tiles,
               a.Floorplan.Placer.bram_tiles,
               a.Floorplan.Placer.dsp_tiles ))
  in
  let capacity kind = rows * count kind ~first:0 ~w:fabric_width in
  let cols_needed tiles = (tiles + rows - 1) / rows in
  let min_window ~first (d : Floorplan.Placer.demand) =
    let nc = cols_needed d.Floorplan.Placer.clb_tiles
    and nb = cols_needed d.Floorplan.Placer.bram_tiles
    and nd = cols_needed d.Floorplan.Placer.dsp_tiles in
    let satisfies w =
      count Tile.Clb ~first ~w >= nc
      && count Tile.Bram ~first ~w >= nb
      && count Tile.Dsp ~first ~w >= nd
    in
    let rec go w =
      if first + w > fabric_width then None
      else if satisfies w then Some w
      else go (w + 1)
    in
    go (max 1 (nc + nb + nd))
  in
  let need sel = List.fold_left (fun acc d -> acc + sel d) 0 ds in
  let deficit kind sel = max 0 (need sel - capacity kind) in
  let deficit_tiles =
    deficit Tile.Clb (fun (d : Floorplan.Placer.demand) ->
        d.Floorplan.Placer.clb_tiles)
    + deficit Tile.Bram (fun d -> d.Floorplan.Placer.bram_tiles)
    + deficit Tile.Dsp (fun d -> d.Floorplan.Placer.dsp_tiles)
  in
  let impossible =
    List.length (List.filter (fun d -> min_window ~first:0 d = None) ds)
  in
  let cursor = ref 0 in
  let waste = ref 0 in
  let overflow_tiles = ref 0 in
  List.iter
    (fun (d : Floorplan.Placer.demand) ->
      match min_window ~first:!cursor d with
      | Some w ->
        let covered kind = rows * count kind ~first:!cursor ~w in
        waste :=
          !waste
          + (covered Tile.Clb - d.Floorplan.Placer.clb_tiles)
          + (8 * (covered Tile.Bram - d.Floorplan.Placer.bram_tiles))
          + (8 * (covered Tile.Dsp - d.Floorplan.Placer.dsp_tiles));
        cursor := !cursor + w
      | None -> overflow_tiles := !overflow_tiles + demand_volume d)
    ds;
  if deficit_tiles > 0 || impossible > 0 then
    (1 lsl 26) + (16 * deficit_tiles) + (64 * impossible)
  else if !overflow_tiles > 0 then (1 lsl 22) + (16 * !overflow_tiles) + !waste
  else !waste

let check_placement_penalty (s : Scheme.t) ~layout ~reported =
  let derived = derive_placement_penalty ~layout s in
  if derived = reported then []
  else
    [ D.error ~code:"V-FLP-006" ~stage:stage_floorplan
        "reported placement penalty %d does not match the independent \
         re-derivation %d"
        reported derived ]

let check_placement (s : Scheme.t) ~layout
    (outcome : Floorplan.Placer.outcome) =
  let demands = derive_demands s in
  let base =
    check_floorplan ~layout ~demands outcome.Floorplan.Placer.placements
  in
  let regions = Array.length demands - 1 in
  base
  @ List.map
      (fun i ->
        D.error ~code:"V-FLP-004" ~stage:stage_floorplan
          "placer reported %s as unplaceable" (label_of_demand regions i))
      outcome.Floorplan.Placer.failed

(* ------------------------------------------------------------------ *)
(* Bitstream repository.                                               *)

let stage_bitstream = "bitstream"

let check_serialised ~context ?region ?frames ?variant bytes =
  match Bitgen.Bitstream.parse bytes with
  | Error message ->
    [ D.error ~code:"V-BIT-002" ~stage:stage_bitstream
        "%s: round-trip parse failed: %s" context message ]
  | Ok parsed ->
    let out = ref [] in
    let emit d = out := d :: !out in
    if not (Bytes.equal (Bitgen.Bitstream.serialise parsed) bytes) then
      emit
        (D.error ~code:"V-BIT-002" ~stage:stage_bitstream
           "%s: re-serialisation is not byte-identical" context);
    (match frames with
     | Some expected
       when parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.frames <> expected
       ->
       emit
         (D.error ~code:"V-BIT-003" ~stage:stage_bitstream
            "%s: carries %d frames but the region needs %d" context
            parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.frames expected)
     | Some _ | None -> ());
    (match region with
     | Some expected
       when parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.region <> expected
       ->
       emit
         (D.error ~code:"V-BIT-004" ~stage:stage_bitstream
            "%s: targets region %d but belongs to region %d" context
            parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.region expected)
     | Some _ | None -> ());
    (match variant with
     | Some expected
       when parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.variant <> expected
       ->
       emit
         (D.error ~code:"V-BIT-004" ~stage:stage_bitstream
            "%s: variant %S does not match the expected label %S" context
            parsed.Bitgen.Bitstream.header.Bitgen.Bitstream.variant expected)
     | Some _ | None -> ());
    List.rev !out

let check_repository (repo : Bitgen.Repository.t) =
  let scheme = repo.Bitgen.Repository.scheme in
  let design = scheme.Scheme.design in
  let members = members_of_scheme scheme in
  let regions = region_count_of members in
  let region_frames =
    Array.init regions (fun r ->
        Tile.frames_of_resources (region_resources_of design members r))
  in
  let out = ref [] in
  let emit d = out := d :: !out in
  (* Every (region, member) pair must have exactly one entry. *)
  for r = 0 to regions - 1 do
    List.iter
      (fun p ->
        let matching =
          List.filter
            (fun (e : Bitgen.Repository.entry) ->
              e.Bitgen.Repository.region = r
              && e.Bitgen.Repository.partition = p)
            repo.Bitgen.Repository.entries
        in
        match matching with
        | [] ->
          emit
            (D.error ~code:"V-BIT-001" ~stage:stage_bitstream
               "no partial bitstream for member %d in region %d" p r)
        | [ _ ] -> ()
        | _ :: _ :: _ ->
          emit
            (D.error ~code:"V-BIT-001" ~stage:stage_bitstream
               "member %d in region %d has %d repository entries" p r
               (List.length matching)))
      (region_members_of members r)
  done;
  (* Every entry must reference a real (region, member) pair and
     round-trip byte-identically with the frame count the region's
     re-derived area demands. *)
  List.iter
    (fun (e : Bitgen.Repository.entry) ->
      let r = e.Bitgen.Repository.region in
      if
        r < 0 || r >= regions
        || not
             (List.mem e.Bitgen.Repository.partition
                (region_members_of members r))
      then
        emit
          (D.error ~code:"V-BIT-004" ~stage:stage_bitstream
             "repository entry %s targets unknown region %d / member %d"
             e.Bitgen.Repository.label r e.Bitgen.Repository.partition)
      else
        List.iter emit
          (check_serialised
             ~context:(Printf.sprintf "PRR%d %s" (r + 1) e.Bitgen.Repository.label)
             ~region:r ~frames:region_frames.(r)
             ~variant:e.Bitgen.Repository.label
             (Bitgen.Bitstream.serialise e.Bitgen.Repository.bitstream)))
    repo.Bitgen.Repository.entries;
  List.iter emit
    (check_serialised ~context:"full bitstream"
       ~frames:(Fpga.Device.total_frames repo.Bitgen.Repository.device)
       (Bitgen.Bitstream.serialise repo.Bitgen.Repository.full));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Transition reachability.                                            *)

let stage_transition = "transition"

let transition_table (s : Scheme.t) =
  let design = s.Scheme.design in
  let members = members_of_scheme s in
  let regions = region_count_of members in
  let region_frames =
    Array.init regions (fun r ->
        Tile.frames_of_resources (region_resources_of design members r))
  in
  let resid = residency design members in
  let configs = Design.configuration_count design in
  Array.init configs (fun i ->
      Array.init configs (fun j ->
          if i = j then 0
          else begin
            let cost = ref 0 in
            for r = 0 to regions - 1 do
              let a = resid.(i).(r) and b = resid.(j).(r) in
              if a >= 0 && b >= 0 && a <> b then
                cost := !cost + region_frames.(r)
            done;
            !cost
          end))

let check_transitions ?repository (s : Scheme.t) =
  let design = s.Scheme.design in
  let configs = Design.configuration_count design in
  let out = ref [] in
  let emit d = out := d :: !out in
  let fresh = transition_table s in
  let config_name c =
    design.Prdesign.Design.configurations.(c).Configuration.name
  in
  (* Cross-check the pipeline's shared all-pairs kernel. *)
  let reported = Cost.transition_matrix s in
  for i = 0 to configs - 1 do
    if reported.(i).(i) <> 0 then
      emit
        (D.error ~code:"V-TRN-003" ~stage:stage_transition
           "transition matrix diagonal (%s) is %d, not 0" (config_name i)
           reported.(i).(i));
    for j = i + 1 to configs - 1 do
      if reported.(i).(j) <> reported.(j).(i) then
        emit
          (D.error ~code:"V-TRN-003" ~stage:stage_transition
             "transition matrix asymmetric at (%s, %s): %d vs %d"
             (config_name i) (config_name j) reported.(i).(j)
             reported.(j).(i));
      if reported.(i).(j) <> fresh.(i).(j) then
        emit
          (D.error ~code:"V-TRN-002" ~stage:stage_transition
             "transition %s -> %s reported as %d frames; re-derivation \
              gives %d"
             (config_name i) (config_name j) reported.(i).(j) fresh.(i).(j))
    done
  done;
  (* Reachability: every region load any configuration pair demands must
     have its partial bitstream in the repository. *)
  (match repository with
   | None -> ()
   | Some repo ->
     let members = members_of_scheme s in
     let resid = residency design members in
     let regions = region_count_of members in
     for i = 0 to configs - 1 do
       for j = 0 to configs - 1 do
         if i <> j then
           for r = 0 to regions - 1 do
             let a = resid.(i).(r) and b = resid.(j).(r) in
             if a >= 0 && b >= 0 && a <> b then
               if Bitgen.Repository.find repo ~region:r ~partition:b = None
               then
                 emit
                   (D.error ~code:"V-TRN-001" ~stage:stage_transition
                      "transition %s -> %s is unreachable: region %d needs \
                       member %d but the repository holds no bitstream for it"
                      (config_name i) (config_name j) r b)
           done
       done
     done);
  List.rev !out
