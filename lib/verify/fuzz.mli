(** Differential fuzzing and seeded mutation-kill over the whole
    pipeline.

    {!run} draws random synthetic designs ({!Synth.Generator}) and, for
    each: requires the design oracle to pass, solves with [verify:true]
    (the engine's memo-vs-fresh self-check), cross-checks the
    sequential and parallel engines ([jobs = 1] vs [jobs > 1] must be
    bit-identical), compares the reported evaluation against both a
    direct {!Prcore.Cost.evaluate} and the independent
    {!Oracle.derive_evaluation}, runs the full
    {!Checker.check_outcome} oracle suite (check-after-solve), and
    repeats the seq-vs-par differential for the multilevel backend
    ([strategy = Multilevel]) with its evaluation re-derived by the
    oracle.

    {!mutation_kills} is the harness's proof that no oracle is dead
    code: each corruption class seeds exactly one violation into
    otherwise-valid pipeline artefacts and records whether the matching
    diagnostic code fires. *)

type failure = {
  seed : int;
  design : string;
  what : string;  (** Human-readable description of the divergence. *)
}

type summary = {
  designs : int;  (** Designs generated. *)
  solved : int;  (** Designs the engine could place on some device. *)
  skipped : int;  (** Designs infeasible for every catalogued device. *)
  failures : failure list;
}

val run : ?count:int -> ?seed:int -> ?jobs:int -> unit -> summary
(** [count] defaults to 200, [seed] to 2013, [jobs] to 2 (the parallel
    side of the seq-vs-par comparison). Deterministic in [seed]. *)

val render_summary : summary -> string

type kill = {
  label : string;  (** Corruption class, e.g. ["drop-covered-mode"]. *)
  expected : string;  (** The diagnostic code that must fire. *)
  killed : bool;  (** The expected code fired. *)
  precise : bool;  (** No {e other} error code fired. *)
  codes : string list;  (** Distinct error codes observed. *)
}

val mutation_kills : unit -> kill list
(** Seeded corruption classes over the video-receiver case study:
    dropping a covered mode ([V-CVR-001]), splitting a cluster into
    co-active region mates ([V-CVR-004]), overlapping two floorplan
    rectangles ([V-FLP-001]), flipping a region frame count
    ([V-CST-003]), corrupting a total ([V-CST-001]) and a worst case
    ([V-CST-002]), corrupting one CRC byte ([V-BIT-002]), shrinking the
    budget below usage ([V-CST-006]), and checking transitions against
    an empty repository ([V-TRN-001]). *)

val all_killed : kill list -> bool
(** Every kill fired its expected code, and nothing else. *)

val render_kills : kill list -> string
