(** Synthetic PR design generator, following the paper's recipe (§V):
    equal numbers of logic-, memory-, DSP- and DSP-and-memory-intensive
    designs; 2–6 modules with 2–4 modes each; 25–4000 CLBs per mode with
    class-dependent BRAM/DSP ranges; a 90 CLB + 8 BRAM static overhead
    (the paper's open-source ICAP controller); and random configurations
    generated until every mode is used at least once. *)

type circuit_class =
  | Logic_intensive
  | Memory_intensive
  | Dsp_intensive
  | Dsp_memory_intensive

val class_name : circuit_class -> string
val all_classes : circuit_class list

type spec = {
  modules : int * int;  (** Inclusive module-count range, default (2, 6). *)
  modes : int * int;  (** Modes per module, default (2, 4). *)
  clb : int * int;  (** CLBs per mode, default (25, 4000). *)
  absence_probability : float;
      (** Chance a module is absent from a configuration (the paper's
          "mode 0"), default 0.15. *)
  extra_configs : int * int;
      (** Extra random configurations beyond those needed to exercise
          every mode, default (1, 4). *)
}

val default_spec : spec

val huge_spec : spec
(** The huge class: 50–500 modules of 2–3 modes each, 25–400 CLBs per
    mode, absence 0.25, 2–6 extra configurations — the population the
    multilevel backend targets (DESIGN.md §12). Module names beyond the
    sixth are ["M7"], ["M8"], … so small-design seeds stay stable. *)

val validate_spec : spec -> (spec, string) result
(** Reject out-of-range spec parameters with a description of the
    offending field (empty or inverted ranges, counts below 1,
    [absence_probability] outside [0, 1)). {!generate}, {!batch} and
    {!huge} raise [Invalid_argument] with the same message instead of
    looping or failing deep inside the generator. *)

val generate :
  ?spec:spec -> Rng.t -> circuit_class -> index:int -> Prdesign.Design.t
(** One synthetic design named after the class and index. Every mode is
    used by at least one configuration; configuration contents are
    pairwise distinct.

    @raise Invalid_argument when [spec] fails {!validate_spec}. *)

val batch :
  ?spec:spec -> seed:int -> count:int -> unit ->
  (circuit_class * Prdesign.Design.t) list
(** [count] designs with the classes interleaved in equal proportion
    (the paper's 1000-design population uses [count = 1000], i.e. 250 per
    class). Deterministic in [seed].

    @raise Invalid_argument when [spec] fails {!validate_spec}. *)

val huge :
  ?cls:circuit_class -> seed:int -> modules:int -> unit -> Prdesign.Design.t
(** One {!huge_spec} design pinned to exactly [modules] modules
    (default class [Logic_intensive]). Deterministic in [seed].

    @raise Invalid_argument when [modules < 1]. *)
