module Design = Prdesign.Design
module Resource = Fpga.Resource

type circuit_class =
  | Logic_intensive
  | Memory_intensive
  | Dsp_intensive
  | Dsp_memory_intensive

let class_name = function
  | Logic_intensive -> "logic"
  | Memory_intensive -> "memory"
  | Dsp_intensive -> "dsp"
  | Dsp_memory_intensive -> "dsp-memory"

let all_classes =
  [ Logic_intensive; Memory_intensive; Dsp_intensive; Dsp_memory_intensive ]

type spec = {
  modules : int * int;
  modes : int * int;
  clb : int * int;
  absence_probability : float;
  extra_configs : int * int;
}

let default_spec =
  { modules = (2, 6);
    modes = (2, 4);
    clb = (25, 4000);
    absence_probability = 0.15;
    extra_configs = (1, 4) }

(* The huge class (DESIGN.md §12): 50–500 modules with few modes and
   modest per-mode areas, the population the multilevel backend is built
   for. Higher absence keeps configurations sparse, as real many-module
   adaptive systems are. *)
let huge_spec =
  { modules = (50, 500);
    modes = (2, 3);
    clb = (25, 400);
    absence_probability = 0.25;
    extra_configs = (2, 6) }

(* Out-of-range parameters are rejected up front with a description —
   the generator must never spin (or crash deep inside [Rng.range]) on
   a bad spec. *)
let validate_spec spec =
  let range_ok (lo, hi) = lo >= 1 && hi >= lo in
  if not (range_ok spec.modules) then
    Error
      (Printf.sprintf "modules range (%d, %d) invalid: need 1 <= lo <= hi"
         (fst spec.modules) (snd spec.modules))
  else if not (range_ok spec.modes) then
    Error
      (Printf.sprintf "modes range (%d, %d) invalid: need 1 <= lo <= hi"
         (fst spec.modes) (snd spec.modes))
  else if not (range_ok spec.clb) then
    Error
      (Printf.sprintf "clb range (%d, %d) invalid: need 1 <= lo <= hi"
         (fst spec.clb) (snd spec.clb))
  else if
    not
      (Float.is_finite spec.absence_probability
      && spec.absence_probability >= 0.
      && spec.absence_probability < 1.)
  then
    Error
      (Printf.sprintf
         "absence_probability %g invalid: need 0 <= p < 1 (p = 1 would \
          make every random configuration empty)"
         spec.absence_probability)
  else if
    not (fst spec.extra_configs >= 0
        && snd spec.extra_configs >= fst spec.extra_configs)
  then
    Error
      (Printf.sprintf
         "extra_configs range (%d, %d) invalid: need 0 <= lo <= hi"
         (fst spec.extra_configs) (snd spec.extra_configs))
  else Ok spec

(* BRAM/DSP ranges as a function of the mode's CLB count and the circuit
   class. Divisors are chosen so that even a six-module design of maximal
   modes stays within the largest catalogued device (see DESIGN.md). *)
let secondary_resources rng cls clb =
  let between lo hi = if hi <= lo then lo else Rng.range rng lo hi in
  match cls with
  | Logic_intensive -> (between 0 (clb / 300), between 0 (clb / 300))
  | Memory_intensive -> (between (clb / 100) (clb / 60), between 0 (clb / 400))
  | Dsp_intensive -> (between 0 (clb / 400), between (clb / 100) (clb / 64))
  | Dsp_memory_intensive ->
    (between (clb / 150) (clb / 80), between (clb / 150) (clb / 80))

(* The paper's static region: its open-source ICAP controller and
   associated logic. *)
let static_overhead = Resource.make ~bram:8 90

let module_names = [| "A"; "B"; "C"; "D"; "E"; "F" |]

(* The first six modules keep their historical letter names (old seeds
   stay stable); beyond that the huge class switches to "M7", "M8", … *)
let module_name m =
  if m < Array.length module_names then module_names.(m)
  else Printf.sprintf "M%d" (m + 1)

let generate ?(spec = default_spec) rng cls ~index =
  (match validate_spec spec with
   | Ok _ -> ()
   | Error message -> invalid_arg ("Synth.Generator.generate: " ^ message));
  let n_modules = Rng.range rng (fst spec.modules) (snd spec.modules) in
  let modules =
    List.init n_modules (fun m ->
        let n_modes = Rng.range rng (fst spec.modes) (snd spec.modes) in
        let modes =
          List.init n_modes (fun k ->
              let clb = Rng.range rng (fst spec.clb) (snd spec.clb) in
              let bram, dsp = secondary_resources rng cls clb in
              Prdesign.Mode.make
                (Printf.sprintf "%s%d" (module_name m) (k + 1))
                (Resource.make ~bram ~dsp clb))
        in
        Prdesign.Pmodule.make (module_name m) modes)
  in
  let marr = Array.of_list modules in
  let mode_counts = Array.map Prdesign.Pmodule.mode_count marr in
  let used = Array.map (fun n -> Array.make n false) mode_counts in
  (* A random configuration; [targets] forces specific modules to use a
     specific (so far unused) mode. *)
  let random_config targets =
    List.filter_map
      (fun m ->
        match List.assoc_opt m targets with
        | Some k -> Some (m, k)
        | None ->
          if Rng.float rng < spec.absence_probability then None
          else Some (m, Rng.int rng mode_counts.(m)))
      (List.init n_modules Fun.id)
  in
  let configs = ref [] in
  let add_config choices =
    (* Keep configuration contents pairwise distinct and non-empty. *)
    if choices <> [] && not (List.mem choices !configs) then begin
      configs := choices :: !configs;
      List.iter (fun (m, k) -> used.(m).(k) <- true) choices;
      true
    end
    else false
  in
  (* Sweep until every mode is exercised: each round targets one unused
     mode per module, so the loop terminates after at most
     [max modes per module] productive rounds. *)
  let rec sweep guard =
    let targets =
      List.filter_map
        (fun m ->
          let unused =
            List.filter (fun k -> not (used.(m).(k)))
              (List.init mode_counts.(m) Fun.id)
          in
          match unused with
          | [] -> None
          | ks -> Some (m, List.nth ks (Rng.int rng (List.length ks))))
        (List.init n_modules Fun.id)
    in
    if targets <> [] && guard > 0 then begin
      ignore (add_config (random_config targets));
      sweep (guard - 1)
    end
  in
  sweep 64;
  (* Belt and braces: if the randomised sweep ran out of attempts (only
     possible under pathological duplicate collisions), add a minimal
     single-module configuration per still-unused mode. *)
  Array.iteri
    (fun m flags ->
      Array.iteri
        (fun k seen -> if not seen then ignore (add_config [ (m, k) ]))
        flags)
    used;
  let extras = Rng.range rng (fst spec.extra_configs) (snd spec.extra_configs) in
  for _ = 1 to extras do
    ignore (add_config (random_config []))
  done;
  let configurations =
    List.mapi
      (fun i choices ->
        Prdesign.Configuration.make (Printf.sprintf "c%d" (i + 1)) choices)
      (List.rev !configs)
  in
  Design.create_exn ~static_overhead
    ~name:(Printf.sprintf "synth-%s-%04d" (class_name cls) index)
    ~modules ~configurations ()

let batch ?spec ~seed ~count () =
  let rng = Rng.make seed in
  let classes = Array.of_list all_classes in
  List.init count (fun i ->
      let cls = classes.(i mod Array.length classes) in
      (cls, generate ?spec (Rng.split rng) cls ~index:i))

let huge ?(cls = Logic_intensive) ~seed ~modules () =
  let spec = { huge_spec with modules = (modules, modules) } in
  (match validate_spec spec with
   | Ok _ -> ()
   | Error message -> invalid_arg ("Synth.Generator.huge: " ^ message));
  generate ~spec (Rng.make seed) cls ~index:modules
