(** Complete sub-graph (clique) detection for the clustering loop.

    The agglomerative algorithm adds one link at a time and then asks for
    the sub-graphs that {e became} complete with that link; a clique
    containing the new edge is new exactly when the edge was its last
    missing link, so enumeration is restricted to cliques through the new
    edge. A monotone [keep] predicate (the configuration-support filter)
    prunes the search: once a set fails [keep], no superset is explored. *)

val new_cliques_after_link :
  ?keep:(int list -> bool) ->
  ?limit:int ->
  Wgraph.t ->
  int ->
  int ->
  int list list
(** [new_cliques_after_link g u v] enumerates every node set [s] with
    [u, v ∈ s] such that [s] is a clique of [g] and [keep s] holds (for
    [s] and, transitively, all explored subsets). Call immediately {e
    after} [Wgraph.link g u v]. Sets are sorted ascending; the result
    contains no duplicates. [limit] (default [100_000]) bounds both the
    number of cliques returned and the enumeration itself — on dense
    graphs the unexplored remainder is exponentially larger than the
    recorded prefix, so the cut-off keeps a single link's cost bounded.
    @raise Invalid_argument if [u] and [v] are not linked. *)

val maximal_cliques : Wgraph.t -> int list list
(** All maximal cliques of the linked graph (Bron–Kerbosch with pivoting),
    each sorted ascending; used by tests and analysis tools. Isolated
    nodes are returned as singleton cliques. *)
