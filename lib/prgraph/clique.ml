let new_cliques_after_link ?(keep = fun _ -> true) ?(limit = 100_000) g u v =
  if not (Wgraph.linked g u v) then
    invalid_arg "Clique.new_cliques_after_link: nodes are not linked";
  let base = if u < v then [ u; v ] else [ v; u ] in
  let candidates = Wgraph.common_neighbours g u v in
  let results = ref [] in
  let count = ref 0 in
  let add clique =
    results := List.sort Int.compare clique :: !results;
    incr count
  in
  (* Extend [clique] (sorted) with candidates drawn in ascending order so
     each clique is produced exactly once. Exploration stops outright at
     [limit]: past it nothing more would be recorded, and on dense
     co-occurrence graphs (hundreds of mutually linked modes) the
     enumeration tree is exponentially larger than the recorded prefix. *)
  let rec extend clique = function
    | [] -> ()
    | _ when !count >= limit -> ()
    | c :: rest ->
      if
        List.for_all (fun x -> Wgraph.linked g x c) clique
        && keep (clique @ [ c ])
      then begin
        let bigger = clique @ [ c ] in
        add bigger;
        extend bigger rest
      end;
      extend clique rest
  in
  if keep base then begin
    add base;
    if !count < limit then extend base candidates
  end;
  List.rev !results

let maximal_cliques g =
  let n = Wgraph.size g in
  let results = ref [] in
  let to_list set = List.filter (fun i -> set.(i)) (List.init n Fun.id) in
  (* Bron-Kerbosch with pivoting over bool-array node sets; graphs here
     are tiny (tens of nodes), so clarity beats bit tricks. *)
  let rec bron r p x =
    let p_nodes = to_list p and x_nodes = to_list x in
    if p_nodes = [] && x_nodes = [] then results := to_list r :: !results
    else begin
      let pivot =
        let best = ref (-1) and best_deg = ref (-1) in
        List.iter
          (fun c ->
            let deg =
              List.length (List.filter (fun w -> Wgraph.linked g c w) p_nodes)
            in
            if deg > !best_deg then begin
              best := c;
              best_deg := deg
            end)
          (p_nodes @ x_nodes);
        !best
      in
      let expand = List.filter (fun v -> not (Wgraph.linked g pivot v)) p_nodes in
      List.iter
        (fun v ->
          let restrict set =
            Array.mapi (fun i b -> b && Wgraph.linked g v i) set
          in
          let r' = Array.copy r in
          r'.(v) <- true;
          bron r' (restrict p) (restrict x);
          p.(v) <- false;
          x.(v) <- true)
        expand
    end
  in
  bron (Array.make n false) (Array.make n true) (Array.make n false);
  List.sort compare !results
