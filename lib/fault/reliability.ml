type t = {
  mutable faults : (Injector.kind * int) list;
  mutable retries : int;
  mutable recovered : int;
  mutable failed : int;
  mutable dropped : int;
  mutable fallbacks : int;
  mutable budget_exhausted : int;
  mutable backoff_s : float;
  mutable wasted_s : float;
  region_faults : int array;
  mutable completed : bool;
}

let create ~regions =
  if regions < 0 then invalid_arg "Reliability.create: negative region count";
  { faults = List.map (fun k -> (k, 0)) Injector.all_kinds;
    retries = 0;
    recovered = 0;
    failed = 0;
    dropped = 0;
    fallbacks = 0;
    budget_exhausted = 0;
    backoff_s = 0.;
    wasted_s = 0.;
    region_faults = Array.make regions 0;
    completed = true }

let record_fault t kind ~region =
  t.faults <-
    List.map
      (fun (k, n) -> if k = kind then (k, n + 1) else (k, n))
      t.faults;
  if region >= 0 && region < Array.length t.region_faults then
    t.region_faults.(region) <- t.region_faults.(region) + 1

let record_retry t = t.retries <- t.retries + 1
let record_backoff t s = t.backoff_s <- t.backoff_s +. s
let record_wasted t s = t.wasted_s <- t.wasted_s +. s
let record_recovered t = t.recovered <- t.recovered + 1
let record_failed_load t = t.failed <- t.failed + 1
let record_dropped_transition t = t.dropped <- t.dropped + 1
let record_fallback t = t.fallbacks <- t.fallbacks + 1
let record_budget_exhausted t = t.budget_exhausted <- t.budget_exhausted + 1
let mark_incomplete t = t.completed <- false

type summary = {
  faults_by_kind : (Injector.kind * int) list;
  total_faults : int;
  retries : int;
  recovered_loads : int;
  failed_loads : int;
  dropped_transitions : int;
  fallbacks : int;
  budget_exhausted : int;
  backoff_seconds : float;
  wasted_seconds : float;
  added_seconds : float;
  mttr_seconds : float;
  region_faults : int array;
  completed : bool;
}

let snapshot t =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 t.faults in
  let added = t.backoff_s +. t.wasted_s in
  { faults_by_kind = t.faults;
    total_faults = total;
    retries = t.retries;
    recovered_loads = t.recovered;
    failed_loads = t.failed;
    dropped_transitions = t.dropped;
    fallbacks = t.fallbacks;
    budget_exhausted = t.budget_exhausted;
    backoff_seconds = t.backoff_s;
    wasted_seconds = t.wasted_s;
    added_seconds = added;
    mttr_seconds =
      (if t.recovered = 0 then 0. else added /. float_of_int t.recovered);
    region_faults = Array.copy t.region_faults;
    completed = t.completed }

let equal a b =
  a.faults_by_kind = b.faults_by_kind
  && a.total_faults = b.total_faults
  && a.retries = b.retries
  && a.recovered_loads = b.recovered_loads
  && a.failed_loads = b.failed_loads
  && a.dropped_transitions = b.dropped_transitions
  && a.fallbacks = b.fallbacks
  && a.budget_exhausted = b.budget_exhausted
  && a.backoff_seconds = b.backoff_seconds
  && a.wasted_seconds = b.wasted_seconds
  && a.region_faults = b.region_faults
  && a.completed = b.completed

let render s =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "Reliability report:";
  line "  faults injected        %d" s.total_faults;
  List.iter
    (fun (k, n) ->
      if n > 0 then line "    %-18s %d" (Injector.kind_name k) n)
    s.faults_by_kind;
  line "  retries                %d" s.retries;
  line "  recovered loads        %d" s.recovered_loads;
  line "  failed loads           %d" s.failed_loads;
  line "  dropped transitions    %d" s.dropped_transitions;
  line "  safe-config fallbacks  %d" s.fallbacks;
  if s.budget_exhausted > 0 then
    line "  budget exhaustions     %d" s.budget_exhausted;
  line "  added latency          %.3f ms (%.3f ms backoff + %.3f ms wasted)"
    (1e3 *. s.added_seconds) (1e3 *. s.backoff_seconds)
    (1e3 *. s.wasted_seconds);
  line "  MTTR                   %.3f ms" (1e3 *. s.mttr_seconds);
  Array.iteri
    (fun r n -> if n > 0 then line "  PRR%d faults            %d" (r + 1) n)
    s.region_faults;
  line "  run %s" (if s.completed then "completed" else "ABORTED");
  Buffer.contents buf

