(** Recovery policies and retry/backoff parameters for the resilient
    reconfiguration loop.

    When a region load keeps failing after its bounded retries, the
    policy decides how the runtime degrades:

    - {!Abort}: no retries at all — the first injected fault ends the
      run with an error (the brittle baseline).
    - {!Retry_then_fail}: bounded retries with backoff; if the load
      still fails the run ends with an error.
    - {!Skip_transition}: bounded retries; on exhaustion the adaptation
      step is dropped — the system stays in its previous configuration
      (regions already reprogrammed this step keep their new content,
      exactly like real hardware) and the walk continues.
    - {!Fallback_safe_config}: bounded retries; on exhaustion the
      runtime reconfigures to a designated safe configuration and
      continues from there. This policy never fails a run. *)

type policy = Retry_then_fail | Fallback_safe_config | Skip_transition | Abort

val all_policies : policy list
val policy_name : policy -> string
val policy_of_string : string -> policy option

type retry = {
  max_attempts : int;  (** Attempts per region load, >= 1. *)
  base_backoff_s : float;  (** Wait before the first retry. *)
  backoff_multiplier : float;  (** Exponential growth factor, >= 1. *)
  max_backoff_s : float;  (** Backoff cap. *)
  jitter : float;
      (** Fraction of the backoff added as deterministic jitter in
          [0, jitter): 0.2 means up to +20%. In [0, 1]. *)
  transition_budget_s : float option;
      (** Wall-clock budget (fetch + programming + backoff) for one
          adaptation step; once exceeded, remaining retries are
          forfeited and the policy applies. [None] = unbounded. *)
}

val default_retry : retry
(** 4 attempts, 100 us base backoff, x2 growth capped at 10 ms, 20%
    jitter, no transition budget. *)

val validate_retry : retry -> (unit, string) result

val backoff_seconds : retry -> attempt:int -> unit_jitter:float -> float
(** Backoff before retrying after failed attempt number [attempt]
    (1-based): [base * multiplier^(attempt-1)] capped at [max_backoff_s],
    scaled by [1 + jitter * unit_jitter] with [unit_jitter] drawn
    uniformly from [0, 1) by the caller (pass 0 for jitter-free).
    @raise Invalid_argument when [attempt < 1] or [unit_jitter] is
    outside [0, 1]. *)
