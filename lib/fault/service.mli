(** Deterministic fault injection for the {e serving} layer.

    Where {!Injector} models hardware reconfiguration faults inside a
    simulated runtime, this module models the failures a partitioning
    {e daemon fleet} must survive: a replica killed mid-solve or
    mid-cache-write, a cache entry torn on disk, a connection reset
    before the reply, a reply delayed past the client's patience. The
    serve layer asks at three injection points whether the next
    operation faults; answers come from a seeded PRNG plus an exact
    schedule, so a chaos run replays bit-for-bit under a fixed spec.

    This module only {e decides}; actuation (calling [exit 137], tearing
    bytes, shutting sockets down) lives in [Prserve.Chaos] so the fault
    model stays pure and unit-testable. *)

type kind =
  | Crash_solve  (** Replica exits with SIGKILL semantics mid-solve. *)
  | Crash_cache_write
      (** Replica tears the on-disk entry, then dies — the kill -9
          mid-cache-write scenario shared-cache recovery must absorb. *)
  | Torn_cache_write
      (** Entry bytes torn (truncated data under a full-content
          sidecar) but the replica lives — a media/filesystem tear. *)
  | Conn_reset  (** Connection shut down instead of delivering a reply. *)
  | Slow_reply  (** Reply delayed by [spec.slow_reply_ms]. *)

val all_kinds : kind list
(** In declaration order. *)

val kind_name : kind -> string
(** CLI token: ["kill-solve"], ["kill-cache-write"], ["torn-cache-write"],
    ["conn-reset"], ["slow-reply"]. *)

val kind_of_string : string -> kind option

type point = Solve_point | Cache_write_point | Reply_point
(** The three injection points in the serve layer. Each numbers its own
    operations independently (unlike {!Injector.op}, which shares one
    counter): a schedule entry [kill-solve@2] fires on the third solve
    no matter how many cache writes interleave. *)

val all_points : point list
val point_name : point -> string
val applies : kind -> point -> bool

type spec = {
  seed : int;
  rates : (kind * float) list;
      (** Per-operation probability of each kind, each in [0, 1]. *)
  schedule : (int * kind) list;
      (** Unconditional faults by zero-based per-point operation index. *)
  slow_reply_ms : float;  (** Delay applied by {!Slow_reply}. *)
  max_faults : int option;
      (** Total injection budget; [None] is unbounded. Keeps
          probabilistic chaos from starving a soak of successes. *)
}

val disabled : spec
(** Never fires: no rates, no schedule. *)

val validate : spec -> (unit, string) result
val active : spec -> bool

val spec_to_string : spec -> string
(** Canonical single-flag form, e.g.
    ["seed=42,kill-solve@0,conn-reset=0.05,slow-ms=120"]. *)

val spec_of_string : string -> (spec, string) result
(** Parses the {!spec_to_string} grammar: comma-separated [seed=N],
    [max-faults=N], [slow-ms=F], [kind@index] (schedule) and [kind=rate]
    tokens. Validates before returning. *)

type t
(** Live state: spec, PRNG, per-point operation counters. *)

val start : spec -> t
(** @raise Invalid_argument when {!validate} rejects the spec. *)

val spec : t -> spec

val operations : t -> point -> int
(** Operations drawn so far at [point]. *)

val faults_injected : t -> int

val draw : t -> point -> kind option
(** Ask whether the next operation at [point] faults. Consumes the
    point's operation index and one PRNG draw per applicable kind (hit
    or miss), so the fault stream is a pure function of the spec and the
    per-point operation sequence. Returns [None] once [max_faults] is
    exhausted. *)
