type kind =
  | Crash_solve
  | Crash_cache_write
  | Torn_cache_write
  | Conn_reset
  | Slow_reply

let all_kinds =
  [ Crash_solve; Crash_cache_write; Torn_cache_write; Conn_reset; Slow_reply ]

let kind_name = function
  | Crash_solve -> "kill-solve"
  | Crash_cache_write -> "kill-cache-write"
  | Torn_cache_write -> "torn-cache-write"
  | Conn_reset -> "conn-reset"
  | Slow_reply -> "slow-reply"

let kind_of_string s = List.find_opt (fun k -> kind_name k = s) all_kinds

type point = Solve_point | Cache_write_point | Reply_point

let all_points = [ Solve_point; Cache_write_point; Reply_point ]

let point_name = function
  | Solve_point -> "solve"
  | Cache_write_point -> "cache-write"
  | Reply_point -> "reply"

let applies kind point =
  match (kind, point) with
  | Crash_solve, Solve_point -> true
  | (Crash_cache_write | Torn_cache_write), Cache_write_point -> true
  | (Conn_reset | Slow_reply), Reply_point -> true
  | Crash_solve, (Cache_write_point | Reply_point) -> false
  | (Crash_cache_write | Torn_cache_write), (Solve_point | Reply_point) ->
    false
  | (Conn_reset | Slow_reply), (Solve_point | Cache_write_point) -> false

type spec = {
  seed : int;
  rates : (kind * float) list;
  schedule : (int * kind) list;
  slow_reply_ms : float;
  max_faults : int option;
}

let disabled =
  { seed = 0; rates = []; schedule = []; slow_reply_ms = 100.;
    max_faults = None }

let validate spec =
  let bad_rate =
    List.find_opt (fun (_, r) -> r < 0. || r > 1. || Float.is_nan r) spec.rates
  in
  match bad_rate with
  | Some (k, r) ->
    Error (Printf.sprintf "rate %g for %s outside [0, 1]" r (kind_name k))
  | None ->
    if List.exists (fun (i, _) -> i < 0) spec.schedule then
      Error "scheduled fault at a negative operation index"
    else if spec.slow_reply_ms < 0. || Float.is_nan spec.slow_reply_ms then
      Error "slow-ms must be >= 0"
    else (
      match spec.max_faults with
      | Some n when n < 0 -> Error "max-faults must be >= 0"
      | Some _ | None -> Ok ())

let active spec =
  (match spec.max_faults with Some 0 -> false | Some _ | None -> true)
  && (List.exists (fun (_, r) -> r > 0.) spec.rates || spec.schedule <> [])

(* ------------------------------------------------------- spec grammar *)

(* A spec serialises to a comma-separated token list so it can ride on a
   single CLI flag:

     seed=42,kill-solve@0,torn-cache-write@1,conn-reset=0.05,slow-ms=120

   [kind@index] schedules an unconditional fault at the zero-based
   operation index of the kind's injection point; [kind=rate] sets the
   per-operation probability. *)
let spec_to_string spec =
  let buf = Buffer.create 64 in
  let add token =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf token
  in
  add (Printf.sprintf "seed=%d" spec.seed);
  List.iter
    (fun (i, k) -> add (Printf.sprintf "%s@%d" (kind_name k) i))
    spec.schedule;
  List.iter
    (fun (k, r) -> add (Printf.sprintf "%s=%g" (kind_name k) r))
    spec.rates;
  if spec.slow_reply_ms <> disabled.slow_reply_ms then
    add (Printf.sprintf "slow-ms=%g" spec.slow_reply_ms);
  (match spec.max_faults with
   | Some n -> add (Printf.sprintf "max-faults=%d" n)
   | None -> ());
  Buffer.contents buf

let spec_of_string s =
  let tokens =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let parse acc token =
    match acc with
    | Error _ -> acc
    | Ok spec -> (
      match String.index_opt token '@' with
      | Some at -> (
        let name = String.sub token 0 at in
        let idx =
          String.sub token (at + 1) (String.length token - at - 1)
        in
        match (kind_of_string name, int_of_string_opt idx) with
        | Some kind, Some i when i >= 0 ->
          Ok { spec with schedule = spec.schedule @ [ (i, kind) ] }
        | Some _, _ ->
          Error (Printf.sprintf "bad schedule index in %S" token)
        | None, _ -> Error (Printf.sprintf "unknown fault kind in %S" token))
      | None -> (
        match String.index_opt token '=' with
        | None -> Error (Printf.sprintf "unparseable chaos token %S" token)
        | Some eq -> (
          let name = String.sub token 0 eq in
          let value =
            String.sub token (eq + 1) (String.length token - eq - 1)
          in
          match name with
          | "seed" -> (
            match int_of_string_opt value with
            | Some seed -> Ok { spec with seed }
            | None -> Error (Printf.sprintf "bad seed %S" value))
          | "slow-ms" -> (
            match float_of_string_opt value with
            | Some ms when ms >= 0. -> Ok { spec with slow_reply_ms = ms }
            | _ -> Error (Printf.sprintf "bad slow-ms %S" value))
          | "max-faults" -> (
            match int_of_string_opt value with
            | Some n when n >= 0 -> Ok { spec with max_faults = Some n }
            | _ -> Error (Printf.sprintf "bad max-faults %S" value))
          | _ -> (
            match (kind_of_string name, float_of_string_opt value) with
            | Some kind, Some rate ->
              Ok { spec with rates = spec.rates @ [ (kind, rate) ] }
            | None, _ ->
              Error (Printf.sprintf "unknown fault kind in %S" token)
            | Some _, None ->
              Error (Printf.sprintf "bad rate in %S" token)))))
  in
  match List.fold_left parse (Ok disabled) tokens with
  | Error _ as e -> e
  | Ok spec -> (
    match validate spec with
    | Ok () -> Ok spec
    | Error msg -> Error msg)

(* ---------------------------------------------------------- live state *)

type t = {
  spec : spec;
  rng : Synth.Rng.t;
  counters : (point, int) Hashtbl.t;
      (* Each injection point numbers its own operations: [kill-solve@2]
         is the third solve regardless of interleaved cache writes. *)
  mutable injected : int;
}

let start spec =
  (match validate spec with
   | Ok () -> ()
   | Error message -> invalid_arg ("Service.start: " ^ message));
  { spec;
    rng = Synth.Rng.make spec.seed;
    counters = Hashtbl.create 8;
    injected = 0 }

let spec t = t.spec
let faults_injected t = t.injected

let operations t point =
  match Hashtbl.find_opt t.counters point with Some n -> n | None -> 0

(* One probabilistic decision per applicable kind in declaration order;
   a draw is consumed hit or miss so the stream depends only on the
   operation sequence (same discipline as [Injector]). *)
let probabilistic t point =
  List.fold_left
    (fun fired kind ->
      if not (applies kind point) then fired
      else begin
        let rate =
          match List.assoc_opt kind t.spec.rates with
          | Some r -> r
          | None -> 0.
        in
        let u = Synth.Rng.float t.rng in
        match fired with
        | Some _ -> fired
        | None -> if rate > 0. && u < rate then Some kind else None
      end)
    None all_kinds

let draw t point =
  let index = operations t point in
  Hashtbl.replace t.counters point (index + 1);
  let scheduled =
    List.find_opt
      (fun (i, kind) -> i = index && applies kind point)
      t.spec.schedule
  in
  let fault =
    match scheduled with
    | Some (_, kind) -> Some kind
    | None -> probabilistic t point
  in
  let budget_ok =
    match t.spec.max_faults with
    | None -> true
    | Some n -> t.injected < n
  in
  match fault with
  | Some _ when budget_ok ->
    t.injected <- t.injected + 1;
    fault
  | Some _ | None -> None
