(** Fault injection and recovery modelling for the reconfiguration
    runtime. See {!Injector} for the typed fault model and deterministic
    seeded injector, {!Recovery} for degradation policies and
    retry/backoff parameters, {!Reliability} for the report the
    resilient runtime produces, and {!Service} for the serving-layer
    chaos model (replica kills, torn cache writes, connection resets).

    The resilient simulation loop itself lives in [Runtime.Resilient]
    (the runtime layer depends on this library, not the reverse), and
    chaos actuation lives in [Prserve.Chaos]. *)

module Injector = Injector
module Recovery = Recovery
module Reliability = Reliability
module Service = Service
