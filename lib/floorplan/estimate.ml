module Tile = Fpga.Tile

(* Deterministic placeability estimator: a cheap stand-in for a full
   [Placer.place] run, usable as a cost penalty inside the allocation
   search (thousands of evaluations per solve). Instead of the placer's
   exhaustive rectangle scan it answers with a column-prefix-sum
   capacity analysis plus a left-to-right full-height strip packing of
   the demands in a canonical order. The strip packing, when it
   succeeds, is itself a valid placement (full-height windows over
   disjoint column ranges), which is what makes the [Placeable] verdict
   sound rather than heuristic. *)

type t = {
  layout : Layout.t;
  rows : int;
  width : int;
  (* prefix.(k).(c) = columns of kind [k] in [0, c); kinds indexed
     Clb=0, Bram=1, Dsp=2. *)
  prefix : int array array;
}

let kind_index = function Tile.Clb -> 0 | Tile.Bram -> 1 | Tile.Dsp -> 2

let create layout =
  let width = Layout.width layout in
  let prefix = Array.init 3 (fun _ -> Array.make (width + 1) 0) in
  for c = 0 to width - 1 do
    let k = kind_index (Layout.kind_at layout c) in
    for i = 0 to 2 do
      prefix.(i).(c + 1) <- prefix.(i).(c) + (if i = k then 1 else 0)
    done
  done;
  { layout; rows = Layout.rows layout; width; prefix }

let layout t = t.layout

let in_window t kind ~first ~width =
  let p = t.prefix.(kind_index kind) in
  p.(first + width) - p.(first)

type verdict = Placeable | Crowded | Infeasible

type result = {
  verdict : verdict;
  penalty : int;
  fragmentation : float;
}

(* Penalty bands. Frame totals on catalogue-sized devices run well
   below [crowded_base], so a scheme the strip packing cannot realise
   never out-ranks one it can on frame count alone, while schemes
   within one band still order by how badly they miss (overflow /
   deficit tiles) and then by scarce-column waste. All-integer so the
   verify oracle can re-derive the exact value independently. *)
let crowded_base = 1 lsl 22
let infeasible_base = 1 lsl 26

(* Canonical demand order: decreasing tile volume, then per-kind counts.
   Independent of the caller's array order, so any two schemes with the
   same multiset of region demands score identically. *)
let canonical demands =
  let tiles =
    Array.to_list (Array.map Placer.demand_of_resources demands)
  in
  let nonzero = List.filter (fun d -> Placer.volume d > 0) tiles in
  List.sort
    (fun (a : Placer.demand) b ->
      compare
        (Placer.volume b, b.clb_tiles, b.bram_tiles, b.dsp_tiles)
        (Placer.volume a, a.clb_tiles, a.bram_tiles, a.dsp_tiles))
    nonzero

(* Smallest [w] such that the full-height window [first, first+w)
   satisfies [d], or [None] when even the remaining fabric does not. *)
let min_window t ~first (d : Placer.demand) =
  (* Columns needed at full height, per kind. *)
  let need tiles = (tiles + t.rows - 1) / t.rows in
  let need_clb = need d.clb_tiles
  and need_bram = need d.bram_tiles
  and need_dsp = need d.dsp_tiles in
  let satisfies w =
    in_window t Tile.Clb ~first ~width:w >= need_clb
    && in_window t Tile.Bram ~first ~width:w >= need_bram
    && in_window t Tile.Dsp ~first ~width:w >= need_dsp
  in
  let rec search w =
    if first + w > t.width then None
    else if satisfies w then Some w
    else search (w + 1)
  in
  search (max 1 (need_clb + need_bram + need_dsp))

let weighted_waste t ~first ~width (d : Placer.demand) =
  let covered kind = t.rows * in_window t kind ~first ~width in
  (covered Tile.Clb - d.clb_tiles)
  + (8 * (covered Tile.Bram - d.bram_tiles))
  + (8 * (covered Tile.Dsp - d.dsp_tiles))

let assess t demands =
  let ds = canonical demands in
  (* Per-kind capacity: tile deficits that no placement can recover. *)
  let capacity kind = t.rows * in_window t kind ~first:0 ~width:t.width in
  let need_of sel = List.fold_left (fun acc d -> acc + sel d) 0 ds in
  let deficit kind sel = max 0 (need_of sel - capacity kind) in
  let deficit_tiles =
    deficit Tile.Clb (fun (d : Placer.demand) -> d.clb_tiles)
    + deficit Tile.Bram (fun d -> d.bram_tiles)
    + deficit Tile.Dsp (fun d -> d.dsp_tiles)
  in
  (* Per-demand possibility: some full-height window on the empty
     fabric must satisfy each demand on its own. *)
  let impossible =
    List.fold_left
      (fun acc d ->
        match min_window t ~first:0 d with
        | Some _ -> acc
        | None -> acc + 1)
      0 ds
  in
  (* Left-to-right strip packing in canonical order: each demand takes
     the minimal full-height window from the running cursor. Success is
     a constructive placement proof. *)
  let cursor = ref 0 in
  let waste = ref 0 in
  let overflow_tiles = ref 0 in
  let scarce_wasted = ref 0 in
  List.iter
    (fun (d : Placer.demand) ->
      match min_window t ~first:!cursor d with
      | Some w ->
        waste := !waste + weighted_waste t ~first:!cursor ~width:w d;
        let covered kind = t.rows * in_window t kind ~first:!cursor ~width:w in
        scarce_wasted :=
          !scarce_wasted
          + (covered Tile.Bram - d.bram_tiles)
          + (covered Tile.Dsp - d.dsp_tiles);
        cursor := !cursor + w
      | None -> overflow_tiles := !overflow_tiles + Placer.volume d)
    ds;
  let scarce_total = capacity Tile.Bram + capacity Tile.Dsp in
  let fragmentation =
    if scarce_total = 0 then 0.
    else
      Float.min 1.
        (float_of_int (max 0 !scarce_wasted) /. float_of_int scarce_total)
  in
  if deficit_tiles > 0 || impossible > 0 then
    { verdict = Infeasible;
      penalty = infeasible_base + (16 * deficit_tiles) + (64 * impossible);
      fragmentation }
  else if !overflow_tiles > 0 then
    { verdict = Crowded;
      penalty = crowded_base + (16 * !overflow_tiles) + !waste;
      fragmentation }
  else { verdict = Placeable; penalty = !waste; fragmentation }

let penalty t demands = (assess t demands).penalty
