module Tile = Fpga.Tile

type rect = { row : int; height : int; col : int; width : int }
type demand = { clb_tiles : int; bram_tiles : int; dsp_tiles : int }

let demand_of_resources r =
  let clb_tiles, bram_tiles, dsp_tiles = Tile.tiles_of_resources r in
  { clb_tiles; bram_tiles; dsp_tiles }

(* The one canonical representation of a zero-volume demand's placement.
   Every consumer ([pp_rect], [render_map], the verify oracle) goes
   through [is_empty] instead of interpreting the fields ad hoc, so an
   empty placement can never be mistaken for a claim on cell (0,0). *)
let empty_rect = { row = 0; height = 0; col = 0; width = 0 }
let is_empty r = r.height <= 0 || r.width <= 0

type outcome = {
  placements : rect option array;
  failed : int list;
  utilisation : float;
}

let volume d = d.clb_tiles + d.bram_tiles + d.dsp_tiles

let satisfies layout ~height ~col ~width d =
  let enough kind need =
    height * Layout.count_in_window layout ~first:col ~width kind >= need
  in
  enough Tile.Clb d.clb_tiles
  && enough Tile.Bram d.bram_tiles
  && enough Tile.Dsp d.dsp_tiles

(* Smallest-area placement: try every height (1 .. rows); for each height
   and row origin, grow a left-to-right window until the demand fits and
   the cells are free; keep the candidate with the fewest tiles. *)
let find_spot layout occupied d =
  let rows = Layout.rows layout and total_width = Layout.width layout in
  let best = ref None in
  (* Prefer the rectangle that wastes the fewest scarce tiles: BRAM and
     DSP columns are an order of magnitude rarer than CLB columns, so a
     region that does not need them should not sit on them. *)
  let consider rect =
    let covered kind =
      rect.height
      * Layout.count_in_window layout ~first:rect.col ~width:rect.width kind
    in
    let waste =
      (covered Tile.Clb - d.clb_tiles)
      + (8 * (covered Tile.Bram - d.bram_tiles))
      + (8 * (covered Tile.Dsp - d.dsp_tiles))
    in
    let area = rect.height * rect.width in
    match !best with
    | Some (_, (best_waste, best_area))
      when (best_waste, best_area) <= (waste, area) ->
      ()
    | Some _ | None -> best := Some (rect, (waste, area))
  in
  for height = 1 to rows do
    for row = 0 to rows - height do
      for col = 0 to total_width - 1 do
        (* Widen incrementally from this origin: each step checks only the
           freshly added column, so a blocked column aborts the origin. *)
        let column_free c =
          let free = ref true in
          for r = row to row + height - 1 do
            if occupied.(r).(c) then free := false
          done;
          !free
        in
        (* Keep widening past the first satisfying width: every
           satisfying window from this origin competes on the
           (waste, area) key, so the tie-break sees wider windows too
           instead of stopping at the narrowest one. Once a satisfying
           width has been recorded the exploration is bounded by the
           best area seen so far — a strictly larger window can only
           beat the incumbent if its area still undercuts it. *)
        let rec widen ~satisfied width =
          if col + width > total_width then ()
          else if not (column_free (col + width - 1)) then ()
          else begin
            let sat = satisfies layout ~height ~col ~width d in
            if sat then consider { row; height; col; width };
            let satisfied = satisfied || sat in
            let continue_ =
              if not satisfied then true
              else
                match !best with
                | Some (_, (_, best_area)) ->
                  (width + 1) * height <= best_area
                | None -> true
            in
            if continue_ then widen ~satisfied (width + 1)
          end
        in
        widen ~satisfied:false 1
      done
    done
  done;
  Option.map fst !best

(* Full-height strip fallback: the greedy smallest-area search can paint
   itself into a corner (an early region blocking every window a later
   one needs) that a plain left-to-right strip of full-height windows
   avoids — the constructive proof behind [Estimate]'s [Placeable]
   verdict. Demands take minimal full-height windows from a running
   cursor, in the estimator's canonical order (decreasing volume, then
   per-kind counts), so whenever the estimator proves a packing exists
   this fallback reproduces it and [place] stays at least as strong as
   the estimate. *)
let strip_pack layout demands =
  let rows = Layout.rows layout and total_width = Layout.width layout in
  let order =
    List.sort
      (fun i j ->
        let key i =
          let d = demands.(i) in
          (volume d, d.clb_tiles, d.bram_tiles, d.dsp_tiles)
        in
        compare (key j) (key i))
      (List.init (Array.length demands) Fun.id)
  in
  let placements = Array.make (Array.length demands) None in
  let rec min_window ~first width d =
    if first + width > total_width then None
    else if satisfies layout ~height:rows ~col:first ~width d then Some width
    else min_window ~first (width + 1) d
  in
  let cursor = ref 0 in
  let ok = ref true in
  List.iter
    (fun i ->
      if volume demands.(i) = 0 then placements.(i) <- Some empty_rect
      else if !ok then
        match min_window ~first:!cursor 1 demands.(i) with
        | Some width ->
          placements.(i) <- Some { row = 0; height = rows; col = !cursor; width };
          cursor := !cursor + width
        | None -> ok := false)
    order;
  if !ok then Some placements else None

let place ?(telemetry = Prtelemetry.null) layout demands =
  Prtelemetry.with_span telemetry "floorplan.place"
    ~attrs:[ ("demands", Prtelemetry.Json.Int (Array.length demands)) ]
  @@ fun () ->
  let placed_counter = Prtelemetry.counter telemetry "floorplan.placed" in
  let failed_counter = Prtelemetry.counter telemetry "floorplan.failed" in
  let rows = Layout.rows layout and width = Layout.width layout in
  let occupied = Array.make_matrix rows width false in
  let placements = Array.make (Array.length demands) None in
  let order =
    List.sort
      (fun i j -> Int.compare (volume demands.(j)) (volume demands.(i)))
      (List.init (Array.length demands) Fun.id)
  in
  let trace_spot i rect =
    if Prtelemetry.tracing telemetry then
      Prtelemetry.point telemetry "floorplan.spot"
        ~attrs:
          (("demand", Prtelemetry.Json.Int i)
           ::
           (match rect with
            | None -> [ ("placed", Prtelemetry.Json.Bool false) ]
            | Some r ->
              [ ("placed", Prtelemetry.Json.Bool true);
                ("row", Prtelemetry.Json.Int r.row);
                ("height", Prtelemetry.Json.Int r.height);
                ("col", Prtelemetry.Json.Int r.col);
                ("width", Prtelemetry.Json.Int r.width) ]))
  in
  let failed = ref [] in
  List.iter
    (fun i ->
      if volume demands.(i) = 0 then placements.(i) <- Some empty_rect
      else
        match find_spot layout occupied demands.(i) with
        | None ->
          trace_spot i None;
          failed := i :: !failed
        | Some rect ->
          trace_spot i (Some rect);
          placements.(i) <- Some rect;
          for r = rect.row to rect.row + rect.height - 1 do
            for c = rect.col to rect.col + rect.width - 1 do
              occupied.(r).(c) <- true
            done
          done)
    order;
  let placements, failed =
    if !failed = [] then (placements, [])
    else
      match strip_pack layout demands with
      | Some strip ->
        Prtelemetry.incr telemetry "floorplan.strip_rescues";
        (strip, [])
      | None -> (placements, List.sort Int.compare !failed)
  in
  Array.iteri
    (fun i rect ->
      if volume demands.(i) > 0 then
        if rect <> None then Prtelemetry.Counter.incr placed_counter
        else Prtelemetry.Counter.incr failed_counter)
    placements;
  (* The rectangles are pairwise disjoint on both paths, so the covered
     cell count is just the summed areas. *)
  let covered =
    Array.fold_left
      (fun acc rect ->
        match rect with
        | Some r -> acc + (r.height * r.width)
        | None -> acc)
      0 placements
  in
  let utilisation = float_of_int covered /. float_of_int (rows * width) in
  Prtelemetry.set_gauge telemetry "floorplan.utilisation" utilisation;
  { placements; failed; utilisation }

let fits layout demands = (place layout demands).failed = []

let fit_on_sweep ?(within = Fpga.Device.sweep) demands =
  let sorted = List.sort Fpga.Device.compare_capacity within in
  let rec attempt = function
    | [] -> None
    | device :: rest ->
      let outcome = place (Layout.make device) demands in
      if outcome.failed = [] then Some (device, outcome) else attempt rest
  in
  attempt sorted

(* 59 distinct glyphs ('1'-'9', 'a'-'z', then the uppercase letters
   minus 'B' and 'D'), then a constant '+' "many regions" marker.
   Neither the alphabet nor the fallback ever collides with the '#'
   overlap marker or the '.'/'B'/'D' free-cell glyphs, so every map
   character stays unambiguous however many regions are rendered. *)
let glyph_alphabet =
  "123456789abcdefghijklmnopqrstuvwxyzACEFGHIJKLMNOPQRSTUVWXYZ"

let glyph i =
  if i < 0 then invalid_arg "Placer.glyph"
  else if i < String.length glyph_alphabet then glyph_alphabet.[i]
  else '+'

let render_map layout placements =
  let rows = Layout.rows layout and width = Layout.width layout in
  let grid =
    Array.init rows (fun _ ->
        Bytes.init width (fun c ->
            match Layout.kind_at layout c with
            | Tile.Clb -> '.'
            | Tile.Bram -> 'B'
            | Tile.Dsp -> 'D'))
  in
  Array.iteri
    (fun i rect ->
      match rect with
      | Some r when not (is_empty r) ->
        for row = r.row to r.row + r.height - 1 do
          for col = r.col to r.col + r.width - 1 do
            let current = Bytes.get grid.(row) col in
            Bytes.set grid.(row) col
              (if current = '.' || current = 'B' || current = 'D' then glyph i
               else '#')
          done
        done
      | Some _ | None -> ())
    placements;
  String.concat "\n" (Array.to_list (Array.map Bytes.to_string grid)) ^ "\n"

let pp_rect ppf r =
  if is_empty r then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "rows %d-%d, cols %d-%d" r.row
      (r.row + r.height - 1)
      r.col
      (r.col + r.width - 1)
