module Tile = Fpga.Tile

type rect = { row : int; height : int; col : int; width : int }
type demand = { clb_tiles : int; bram_tiles : int; dsp_tiles : int }

let demand_of_resources r =
  let clb_tiles, bram_tiles, dsp_tiles = Tile.tiles_of_resources r in
  { clb_tiles; bram_tiles; dsp_tiles }

type outcome = {
  placements : rect option array;
  failed : int list;
  utilisation : float;
}

let volume d = d.clb_tiles + d.bram_tiles + d.dsp_tiles

let satisfies layout ~height ~col ~width d =
  let enough kind need =
    height * Layout.count_in_window layout ~first:col ~width kind >= need
  in
  enough Tile.Clb d.clb_tiles
  && enough Tile.Bram d.bram_tiles
  && enough Tile.Dsp d.dsp_tiles

(* Smallest-area placement: try every height (1 .. rows); for each height
   and row origin, grow a left-to-right window until the demand fits and
   the cells are free; keep the candidate with the fewest tiles. *)
let find_spot layout occupied d =
  let rows = Layout.rows layout and total_width = Layout.width layout in
  let best = ref None in
  (* Prefer the rectangle that wastes the fewest scarce tiles: BRAM and
     DSP columns are an order of magnitude rarer than CLB columns, so a
     region that does not need them should not sit on them. *)
  let consider rect =
    let covered kind =
      rect.height
      * Layout.count_in_window layout ~first:rect.col ~width:rect.width kind
    in
    let waste =
      (covered Tile.Clb - d.clb_tiles)
      + (8 * (covered Tile.Bram - d.bram_tiles))
      + (8 * (covered Tile.Dsp - d.dsp_tiles))
    in
    let area = rect.height * rect.width in
    match !best with
    | Some (_, (best_waste, best_area))
      when (best_waste, best_area) <= (waste, area) ->
      ()
    | Some _ | None -> best := Some (rect, (waste, area))
  in
  for height = 1 to rows do
    for row = 0 to rows - height do
      for col = 0 to total_width - 1 do
        (* Widen incrementally from this origin: each step checks only the
           freshly added column, so a blocked column aborts the origin. *)
        let column_free c =
          let free = ref true in
          for r = row to row + height - 1 do
            if occupied.(r).(c) then free := false
          done;
          !free
        in
        (* Keep widening past the first satisfying width: every
           satisfying window from this origin competes on the
           (waste, area) key, so the tie-break sees wider windows too
           instead of stopping at the narrowest one. Once a satisfying
           width has been recorded the exploration is bounded by the
           best area seen so far — a strictly larger window can only
           beat the incumbent if its area still undercuts it. *)
        let rec widen ~satisfied width =
          if col + width > total_width then ()
          else if not (column_free (col + width - 1)) then ()
          else begin
            let sat = satisfies layout ~height ~col ~width d in
            if sat then consider { row; height; col; width };
            let satisfied = satisfied || sat in
            let continue_ =
              if not satisfied then true
              else
                match !best with
                | Some (_, (_, best_area)) ->
                  (width + 1) * height <= best_area
                | None -> true
            in
            if continue_ then widen ~satisfied (width + 1)
          end
        in
        widen ~satisfied:false 1
      done
    done
  done;
  Option.map fst !best

let place ?(telemetry = Prtelemetry.null) layout demands =
  Prtelemetry.with_span telemetry "floorplan.place"
    ~attrs:[ ("demands", Prtelemetry.Json.Int (Array.length demands)) ]
  @@ fun () ->
  let placed_counter = Prtelemetry.counter telemetry "floorplan.placed" in
  let failed_counter = Prtelemetry.counter telemetry "floorplan.failed" in
  let rows = Layout.rows layout and width = Layout.width layout in
  let occupied = Array.make_matrix rows width false in
  let placements = Array.make (Array.length demands) None in
  let order =
    List.sort
      (fun i j -> Int.compare (volume demands.(j)) (volume demands.(i)))
      (List.init (Array.length demands) Fun.id)
  in
  let trace_spot i rect =
    if Prtelemetry.tracing telemetry then
      Prtelemetry.point telemetry "floorplan.spot"
        ~attrs:
          (("demand", Prtelemetry.Json.Int i)
           ::
           (match rect with
            | None -> [ ("placed", Prtelemetry.Json.Bool false) ]
            | Some r ->
              [ ("placed", Prtelemetry.Json.Bool true);
                ("row", Prtelemetry.Json.Int r.row);
                ("height", Prtelemetry.Json.Int r.height);
                ("col", Prtelemetry.Json.Int r.col);
                ("width", Prtelemetry.Json.Int r.width) ]))
  in
  let failed = ref [] in
  List.iter
    (fun i ->
      if volume demands.(i) = 0 then
        placements.(i) <- Some { row = 0; height = 0; col = 0; width = 0 }
      else
        match find_spot layout occupied demands.(i) with
        | None ->
          Prtelemetry.Counter.incr failed_counter;
          trace_spot i None;
          failed := i :: !failed
        | Some rect ->
          Prtelemetry.Counter.incr placed_counter;
          trace_spot i (Some rect);
          placements.(i) <- Some rect;
          for r = rect.row to rect.row + rect.height - 1 do
            for c = rect.col to rect.col + rect.width - 1 do
              occupied.(r).(c) <- true
            done
          done)
    order;
  let covered = ref 0 in
  Array.iter (Array.iter (fun b -> if b then incr covered)) occupied;
  let utilisation = float_of_int !covered /. float_of_int (rows * width) in
  Prtelemetry.set_gauge telemetry "floorplan.utilisation" utilisation;
  { placements; failed = List.sort Int.compare !failed; utilisation }

let fits layout demands = (place layout demands).failed = []

let fit_on_sweep ?(within = Fpga.Device.sweep) demands =
  let sorted = List.sort Fpga.Device.compare_capacity within in
  let rec attempt = function
    | [] -> None
    | device :: rest ->
      let outcome = place (Layout.make device) demands in
      if outcome.failed = [] then Some (device, outcome) else attempt rest
  in
  attempt sorted

let render_map layout placements =
  let rows = Layout.rows layout and width = Layout.width layout in
  let grid =
    Array.init rows (fun _ ->
        Bytes.init width (fun c ->
            match Layout.kind_at layout c with
            | Tile.Clb -> '.'
            | Tile.Bram -> 'B'
            | Tile.Dsp -> 'D'))
  in
  let glyph i =
    if i < 9 then Char.chr (Char.code '1' + i)
    else Char.chr (Char.code 'a' + ((i - 9) mod 26))
  in
  Array.iteri
    (fun i rect ->
      match rect with
      | Some r when r.height > 0 ->
        for row = r.row to r.row + r.height - 1 do
          for col = r.col to r.col + r.width - 1 do
            let current = Bytes.get grid.(row) col in
            Bytes.set grid.(row) col
              (if current = '.' || current = 'B' || current = 'D' then glyph i
               else '#')
          done
        done
      | Some _ | None -> ())
    placements;
  String.concat "\n" (Array.to_list (Array.map Bytes.to_string grid)) ^ "\n"

let pp_rect ppf r =
  Format.fprintf ppf "rows %d-%d, cols %d-%d" r.row
    (r.row + r.height - 1)
    r.col
    (r.col + r.width - 1)
