(** Cheap deterministic placeability estimate for a set of region
    demands on a device layout — the search-side half of the paper's
    partitioning/floorplanning feedback loop.

    A full {!Placer.place} run scans every rectangle origin and is far
    too slow to sit inside the allocation inner loop. This estimator
    answers in (near) linear time with two checks over column prefix
    sums:

    - {b capacity}: per-kind tile totals against the whole fabric, and
      each demand against the widest possible full-height window —
      violations no placement can fix;
    - {b strip packing}: the demands, in a canonical order (decreasing
      tile volume, then per-kind counts — independent of input order),
      are packed left to right into minimal full-height windows. A
      successful packing is itself a valid placement, so [Placeable] is
      a constructive proof, never a guess; the converse does not hold —
      schemes the strip rejects may still place, and score [Crowded].

    The penalty is all-integer so the verify oracle can re-derive it
    bit-exactly: [Placeable] schemes pay only their scarce-column waste
    (BRAM/DSP columns covered but unused, weighted 8x like the placer's
    own tie-break), [Crowded] adds a band constant plus 16 per
    unpackable tile, [Infeasible] a larger band constant plus 16 per
    deficit tile and 64 per impossible demand. Band constants dominate
    any frame total on catalogue-sized devices, so the search prefers
    any realisable scheme over any unrealisable one but can still rank
    within a band. *)

type t
(** Prefix-sum tables for one {!Layout.t}; cheap to build, immutable and
    safe to share across domains. *)

val create : Layout.t -> t
val layout : t -> Layout.t

type verdict =
  | Placeable  (** The strip packing realised every demand. *)
  | Crowded
      (** Capacity suffices but the strip packing could not realise
          every demand; a full placer run may still succeed. *)
  | Infeasible
      (** Per-kind tile capacity or a single demand's best possible
          window is exceeded; no placement exists. *)

type result = {
  verdict : verdict;
  penalty : int;
      (** 0 or small scarce-column waste when [Placeable]; banded as
          described above otherwise. *)
  fragmentation : float;
      (** Fraction of the fabric's BRAM/DSP tiles covered by windows
          that did not need them, in [0, 1] — how badly the packing
          strands scarce columns. *)
}

val assess : t -> Fpga.Resource.t array -> result
(** Estimate for one demand set (one resource requirement per region,
    zero-volume entries ignored). Deterministic and order-insensitive:
    permuting the array never changes the result. *)

val penalty : t -> Fpga.Resource.t array -> int
(** [(assess t demands).penalty]. *)
