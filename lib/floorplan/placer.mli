(** First-fit rectangular region placement onto a columnar layout.

    PR regions must be rectangles of whole tiles that do not overlap
    (§IV-B), so a placement is a span of configuration rows times a span
    of columns providing enough tiles of every kind. The placer validates
    that a partitioning scheme is actually realisable on the device — the
    feasibility feedback loop the paper leaves to future work. *)

type rect = { row : int; height : int; col : int; width : int }

type demand = { clb_tiles : int; bram_tiles : int; dsp_tiles : int }

val demand_of_resources : Fpga.Resource.t -> demand
(** Tile demand of a region with the given resource requirement. *)

val volume : demand -> int
(** Total tiles demanded, all kinds. *)

val empty_rect : rect
(** The canonical placement of a zero-volume demand: a degenerate
    rectangle claiming no cells. All consumers must test {!is_empty}
    rather than interpret the coordinate fields (which are all zero and
    would otherwise read as cell (0,0)'s origin). *)

val is_empty : rect -> bool
(** The rectangle covers no cells (zero height or width). *)

type outcome = {
  placements : rect option array;
      (** One per demand, in input order; [None] only on failure.
          Zero-volume demands place as [Some empty_rect]. *)
  failed : int list;  (** Indices of unplaceable demands. *)
  utilisation : float;  (** Fraction of device tiles covered by regions. *)
}

val place : ?telemetry:Prtelemetry.t -> Layout.t -> demand array -> outcome
(** Big-rocks-first first-fit: demands are placed in decreasing tile
    volume; each is given the smallest-area free rectangle (scanning
    heights from one row up, columns left to right) satisfying its tile
    counts. If the greedy pass strands a demand, the whole set is
    retried as a left-to-right strip of minimal full-height windows in
    {!Estimate}'s canonical order — so whenever the estimator's
    [Placeable] verdict proves a packing exists, [place] finds one.

    [telemetry] (default {!Prtelemetry.null}, free): a
    ["floorplan.place"] span, ["floorplan.placed"] / ["floorplan.failed"]
    counters, a ["floorplan.strip_rescues"] counter (greedy failures
    rescued by the strip fallback), a ["floorplan.utilisation"] gauge,
    and a ["floorplan.spot"] trace event per nonempty demand (when
    tracing). *)

val fits : Layout.t -> demand array -> bool
(** [place] succeeded for every demand. *)

val fit_on_sweep :
  ?within:Fpga.Device.t list ->
  demand array ->
  (Fpga.Device.t * outcome) option
(** Smallest device of [within] (default {!Fpga.Device.sweep}, capacity
    order) on which every demand places — the floorplanning feedback loop
    of the paper's future work: a partitioning that fits by resource
    count may still be unplaceable as rectangles, in which case the next
    larger device is tried. *)

val pp_rect : Format.formatter -> rect -> unit
(** ["rows a-b, cols c-d"], or ["empty"] for an {!is_empty} rectangle. *)

val glyph : int -> char
(** Map glyph of region [i]: ['1'..'9'] for 0-8, ['a'..'z'] for 9-34,
    then the uppercase letters minus ['B'] and ['D'] for 35-58 — 59
    distinct glyphs — and the constant ['+'] "many regions" fallback
    beyond. Neither alphabet nor fallback ever collides with the ['#']
    overlap marker or the ['.']/['B']/['D'] free-cell glyphs.
    @raise Invalid_argument on a negative index. *)

val render_map : Layout.t -> rect option array -> string
(** ASCII floorplan: one character cell per (row, column). Region [i] is
    drawn with {!glyph}[ i]; free CLB columns print ['.'], free BRAM
    columns ['B'], free DSP columns ['D']. Overlapping rectangles (which
    {!place} never produces) render ['#']; {!is_empty} rectangles draw
    nothing. *)
