module Design = Prdesign.Design
module Engine = Prcore.Engine
module Scheme = Prcore.Scheme
module Resource = Fpga.Resource

type resilience = {
  fault : Runtime.Resilient.config;
  walk_steps : int;
  walk_seed : int;
  memory : Runtime.Fetch.memory;
}

let default_resilience =
  { fault =
      { Runtime.Resilient.default_config with
        spec = Prfault.Injector.uniform ~rate:0.01 () };
    walk_steps = 1000;
    walk_seed = 1;
    memory = Runtime.Fetch.flash }

type options = {
  engine : Engine.options;
  strategy : Prcore.Strategy.t;
  icap : Fpga.Icap.t;
  floorplan_feedback : bool;
  placement_aware : bool;
  telemetry : Prtelemetry.t;
  resilience : resilience option;
  jobs : int;
  verify : bool;
  budget : Prguard.Budget.spec option;
  ladder : Prguard.Ladder.t option;
}

let default_options =
  { engine = Engine.default_options;
    strategy = Prcore.Strategy.default;
    icap = Fpga.Icap.default;
    floorplan_feedback = true;
    placement_aware = false;
    telemetry = Prtelemetry.null;
    resilience = None;
    jobs = 1;
    verify = false;
    budget = None;
    ladder = None }

type report = {
  design : Design.t;
  outcome : Engine.outcome;
  device : Fpga.Device.t;
  layout : Floorplan.Layout.t;
  placement : Floorplan.Placer.outcome;
  floorplan_escalations : int;
  wrappers : (string * string) list;
  repository : Bitgen.Repository.t;
  telemetry : Prtelemetry.t;
  resilience :
    (Runtime.Resilient.outcome, Runtime.Resilient.failure) result option;
  diagnostics : Prverify.Diagnostic.t list option;
}

let demands_of_scheme (scheme : Scheme.t) =
  Array.init
    (scheme.Scheme.region_count + 1)
    (fun i ->
      if i < scheme.Scheme.region_count then
        Floorplan.Placer.demand_of_resources (Scheme.region_resources scheme i)
      else Floorplan.Placer.demand_of_resources (Scheme.static_resources scheme))

let device_for_budget used =
  match Fpga.Device.smallest_fitting used with
  | Some device -> Ok device
  | None -> Error "no catalogued device fits the partitioned design"

let try_place ~telemetry device scheme =
  let layout = Floorplan.Layout.make device in
  let placement =
    Floorplan.Placer.place ~telemetry layout (demands_of_scheme scheme)
  in
  if placement.Floorplan.Placer.failed = [] then Some (layout, placement)
  else None

(* The single escalation choke point: every floorplan-driven device
   escalation — whichever target route takes it — goes through here, so
   the ["flow.floorplan_escalations"] counter and the
   [floorplan_escalations] report field are incremented in lockstep and
   can never drift. Returns the updated count; callers must thread it. *)
let escalate ~telemetry ~reason ~escalations device next =
  Prtelemetry.incr telemetry "flow.floorplan_escalations";
  if Prtelemetry.tracing telemetry then
    Prtelemetry.point telemetry "flow.escalate"
      ~attrs:
        [ ("reason", Prtelemetry.Json.String reason);
          ("from", Prtelemetry.Json.String device.Fpga.Device.short);
          ("to", Prtelemetry.Json.String next.Fpga.Device.short) ];
  escalations + 1

(* Placement-awareness hook for one concrete device: the floorplan
   estimator's integer penalty over that device's column layout, in the
   {!Prcore.Cost.placement} calling convention. *)
let placement_hook device =
  let estimate = Floorplan.Estimate.create (Floorplan.Layout.make device) in
  { Prcore.Cost.placement_label = device.Fpga.Device.short;
    placement_cost = Floorplan.Estimate.penalty estimate }

(* Which device the placement hook should model for a given target:
   [Fixed] names it; a [Budget] is approximated by the smallest device
   fitting it (the same choice [device_for_budget] will make for a
   budget-saturating scheme); [Auto]'s device is unknown before the
   solve, so the first attempt runs unaware and every feedback
   re-partition (which comes back as [Fixed]) is aware. *)
let placement_for ~(options : options) target =
  if not options.placement_aware then None
  else
    match (target : Engine.target) with
    | Engine.Fixed device -> Some (placement_hook device)
    | Engine.Budget budget ->
      Option.map placement_hook (Fpga.Device.smallest_fitting budget)
    | Engine.Auto -> None

(* Partition, then floorplan with the feedback loop: on placement failure
   pick the next larger device and (for device-driven targets) re-run the
   partitioner against it. *)
let rec implement ~(options : options) ?guard ~target ~escalations design =
  let telemetry = options.telemetry in
  let placement = placement_for ~options target in
  match
    Engine.solve ~options:options.engine ~telemetry
      ~strategy:options.strategy ~jobs:options.jobs ~verify:options.verify
      ?budget:guard ?ladder:options.ladder ?placement ~target design
  with
  | Error message -> Error message
  | Ok outcome ->
    (match outcome.Engine.placement_penalty with
     | Some penalty ->
       Prtelemetry.incr telemetry "flow.placement_aware_runs";
       Prtelemetry.set_gauge telemetry "flow.placement_penalty"
         (float_of_int penalty)
     | None -> ());
    let device_result =
      match outcome.Engine.device with
      | Some device -> Ok device
      | None -> device_for_budget outcome.Engine.evaluation.Prcore.Cost.used
    in
    (match device_result with
     | Error message -> Error message
     | Ok device ->
       (match try_place ~telemetry device outcome.Engine.scheme with
        | Some (layout, placement) ->
          Ok (outcome, device, layout, placement, escalations)
        | None ->
          if not options.floorplan_feedback then
            Error
              (Printf.sprintf
                 "scheme for %s fits %s by resource count but cannot be \
                  floorplanned (enable the feedback loop or pick a larger \
                  device)"
                 design.Design.name device.Fpga.Device.short)
          else begin
            match Fpga.Device.next_larger device with
            | None ->
              Error
                (Printf.sprintf
                   "design %s cannot be floorplanned on any catalogued device"
                   design.Design.name)
            | Some next ->
              (match target with
               | Engine.Budget _ ->
                 (* The budget stays authoritative: keep the scheme, just
                    look for a device whose fabric can host it. Each step
                    counts through [escalate] before the placement
                    attempt, so the returned count and the telemetry
                    counter advance together. *)
                 let rec escalate_device device next escalations =
                   let escalations =
                     escalate ~telemetry ~reason:"floorplan" ~escalations
                       device next
                   in
                   match try_place ~telemetry next outcome.Engine.scheme with
                   | Some (layout, placement) ->
                     Ok (outcome, next, layout, placement, escalations)
                   | None ->
                     (match Fpga.Device.next_larger next with
                      | Some larger -> escalate_device next larger escalations
                      | None ->
                        Error
                          (Printf.sprintf
                             "design %s cannot be floorplanned on any \
                              catalogued device"
                             design.Design.name))
                 in
                 escalate_device device next escalations
               | Engine.Fixed _ | Engine.Auto ->
                 let escalations =
                   escalate ~telemetry ~reason:"repartition" ~escalations
                     device next
                 in
                 implement ~options ?guard ~target:(Engine.Fixed next)
                   ~escalations design)
          end))

let run ?(options = default_options) ~target design =
  let telemetry = options.telemetry in
  Prtelemetry.with_span telemetry "flow.run"
    ~attrs:[ ("design", Prtelemetry.Json.String design.Design.name) ]
  @@ fun () ->
  (* One live budget for the whole flow: floorplan-feedback
     re-partitioning attempts share the same deadline, so the flow's
     total latency stays bounded. *)
  let guard = Option.map Prguard.Budget.of_spec options.budget in
  match implement ~options ?guard ~target ~escalations:0 design with
  | Error message -> Error message
  | Ok (outcome, device, layout, placement, floorplan_escalations) ->
    let wrappers = Hdl.Wrapper.emit_scheme outcome.Engine.scheme in
    let repository =
      Bitgen.Repository.build ~placement:placement.Floorplan.Placer.placements
        ~telemetry ~device outcome.Engine.scheme
    in
    let resilience =
      match options.resilience with
      | None -> None
      | Some r ->
        let configs = Design.configuration_count design in
        if configs < 2 || r.walk_steps <= 0 then None
        else begin
          let rng = Synth.Rng.make r.walk_seed in
          let sequence =
            Runtime.Manager.random_walk
              ~rand:(fun n -> Synth.Rng.int rng n)
              ~configs ~steps:r.walk_steps ~initial:0
          in
          Some
            (Runtime.Resilient.simulate ~icap:options.icap ~memory:r.memory
               ~telemetry ~fault:r.fault outcome.Engine.scheme ~initial:0
               ~sequence)
        end
    in
    let diagnostics =
      if not options.verify then None
      else
        Some
          (Prverify.Checker.check_implementation ~telemetry ~outcome ~layout
             ~placement ~repository ())
    in
    Ok
      { design;
        outcome;
        device;
        layout;
        placement;
        floorplan_escalations;
        wrappers;
        repository;
        telemetry;
        resilience;
        diagnostics }

let render_resilience r =
  match r.resilience with
  | None -> ""
  | Some assessment ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "resilience assessment (fault-injected walk):\n";
    (match assessment with
     | Ok o ->
       Buffer.add_string buf
         (Format.asprintf "  %a\n" Runtime.Manager.pp_stats
            o.Runtime.Resilient.stats);
       (match o.Runtime.Resilient.fetch with
        | Some report ->
          Buffer.add_string buf
            (Printf.sprintf "  %s\n" (Runtime.Fetch.render report))
        | None -> ());
       Buffer.add_string buf
         (Prfault.Reliability.render o.Runtime.Resilient.reliability)
     | Error f ->
       Buffer.add_string buf
         (Printf.sprintf "  %s\n" (Runtime.Resilient.render_failure f));
       Buffer.add_string buf
         (Prfault.Reliability.render f.Runtime.Resilient.reliability));
    Buffer.contents buf

let render_summary r =
  let buf = Buffer.create 512 in
  let scheme = r.outcome.Engine.scheme in
  Buffer.add_string buf
    (Printf.sprintf "== PR tool flow: %s ==\n" (Design.summary r.design));
  Buffer.add_string buf
    (Printf.sprintf "device: %s (floorplan escalations: %d)\n"
       r.device.Fpga.Device.name r.floorplan_escalations);
  Buffer.add_string buf (Scheme.describe scheme);
  Buffer.add_string buf
    (Format.asprintf "%a\n" Prcore.Cost.pp_evaluation r.outcome.Engine.evaluation);
  (* Only guarded runs print the verdict, keeping unguarded reports
     bit-identical to the pre-guard flow. *)
  (if r.outcome.Engine.degraded.Prguard.Budget.guarded then
     Buffer.add_string buf
       (Printf.sprintf "guard: %s\n"
          (Prguard.Budget.render_verdict r.outcome.Engine.degraded)));
  Array.iteri
    (fun i rect ->
      let label =
        if i < scheme.Scheme.region_count then Printf.sprintf "PRR%d" (i + 1)
        else "static"
      in
      match rect with
      | Some rect ->
        Buffer.add_string buf
          (Format.asprintf "  %-7s -> %a\n" label Floorplan.Placer.pp_rect rect)
      | None -> Buffer.add_string buf (Printf.sprintf "  %-7s -> ?\n" label))
    r.placement.Floorplan.Placer.placements;
  Buffer.add_string buf "floorplan map:\n";
  Buffer.add_string buf
    (Floorplan.Placer.render_map r.layout
       r.placement.Floorplan.Placer.placements);
  Buffer.add_string buf
    (Printf.sprintf "wrappers: %d Verilog files\n" (List.length r.wrappers));
  Buffer.add_string buf (Bitgen.Repository.render r.repository);
  (match r.diagnostics with
   | None -> ()
   | Some diagnostics ->
     Buffer.add_string buf
       (Printf.sprintf "%s\n" (Prverify.Checker.summary_line diagnostics));
     if not (Prverify.Checker.ok diagnostics) then
       Buffer.add_string buf (Prverify.Checker.render_report diagnostics));
  Buffer.add_string buf (render_resilience r);
  if Prtelemetry.enabled r.telemetry then begin
    Buffer.add_string buf
      (Printf.sprintf "cost evaluations: %d\n"
         r.outcome.Engine.cost_evaluations);
    Buffer.add_string buf (Prtelemetry.summary r.telemetry)
  end;
  Buffer.contents buf

let write_outputs ?(fsync = true) ~dir r =
  (* Crash-safe artefact rendering: the output directory is created with
     its ancestors if missing, and every file goes through
     [Prguard.Atomic_io] (write-to-temp + fsync + rename, CRC32 sidecar)
     so a crash or failure mid-write leaves no torn artefact — either the
     previous file survives, the complete new one landed, or the sidecar
     mismatch is detected by [Prguard.recover].  On a failed write the
     temporary file is removed before the error is returned. *)
  match Prguard.Atomic_io.mkdir_p dir with
  | Error _ as e -> e
  | Ok () ->
    let checksum = Bitgen.Crc32.hex_digest in
    let exception Failed of string in
    let written = ref [] in
    let write name content =
      let path = Filename.concat dir name in
      match Prguard.Atomic_io.write ~fsync ~checksum ~path content with
      | Error message -> raise (Failed message)
      | Ok () ->
        written := Prguard.Atomic_io.sidecar path :: path :: !written
    in
    (try
       List.iter (fun (name, verilog) -> write name verilog) r.wrappers;
       List.iter
         (fun (e : Bitgen.Repository.entry) ->
           write
             (Printf.sprintf "prr%d_%s.bit" (e.region + 1)
                (Hdl.Ast.mangle e.label))
             (Bytes.to_string (Bitgen.Bitstream.serialise e.bitstream)))
         r.repository.Bitgen.Repository.entries;
       write "full.bit"
         (Bytes.to_string
            (Bitgen.Bitstream.serialise r.repository.Bitgen.Repository.full));
       write "design.xml" (Prdesign.Design_xml.to_string r.design);
       write "report.txt" (render_summary r);
       (match r.resilience with
        | Some _ -> write "reliability.txt" (render_resilience r)
        | None -> ());
       (match r.diagnostics with
        | Some diagnostics ->
          write "verify.txt" (Prverify.Checker.render_report diagnostics)
        | None -> ());
       if Prtelemetry.enabled r.telemetry then begin
         write "stats.txt" (Prtelemetry.summary r.telemetry);
         (* Prometheus text exposition beside the human summary, so a
            scrape (or the Prscope checker) can consume the same run. *)
         write "metrics.txt" (Prtelemetry.exposition r.telemetry);
         if Prtelemetry.tracing r.telemetry then begin
           Prtelemetry.flush r.telemetry;
           write "trace.jsonl" (Prtelemetry.to_jsonl r.telemetry)
         end
       end;
       Ok (List.rev !written)
     with
     | Failed message -> Error message
     | Sys_error message -> Error message)
