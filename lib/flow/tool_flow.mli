(** The proposed PR tool flow of the paper's Fig. 2, end to end:

    1. take a validated design description (resource requirements stand in
       for the XST synthesis results),
    2. run the partitioning algorithm ({!Prcore.Engine}),
    3. create wrapper modules for the combined modes ({!Hdl.Wrapper}),
    4. floorplan the regions ({!Floorplan.Placer}) — with the
       feedback-driven device escalation the paper leaves to future work:
       when the rectangles do not fit, the next larger device is selected
       and partitioning re-runs against it,
    5. generate the full and partial bitstreams ({!Bitgen.Repository}).

    The result bundles every artefact a downstream build would consume. *)

type resilience = {
  fault : Runtime.Resilient.config;  (** What faults and how to recover. *)
  walk_steps : int;  (** Length of the assessment walk. *)
  walk_seed : int;  (** Seed of the random adaptation walk. *)
  memory : Runtime.Fetch.memory;  (** Bitstream store to fetch from. *)
}
(** Post-build stress test: replay a seeded random adaptation walk over
    the final scheme under fault injection ({!Runtime.Resilient}) and
    report how the deployment would degrade. *)

val default_resilience : resilience
(** 1% uniform fault rate, safe-config fallback, 1000 steps from
    configuration flash, seed 1. *)

type options = {
  engine : Prcore.Engine.options;
  strategy : Prcore.Strategy.t;
      (** Search backend for the partitioning engine (default
          {!Prcore.Strategy.default}, the historical greedy pipeline;
          see {!Prcore.Engine.solve}'s [strategy]). *)
  icap : Fpga.Icap.t;
  floorplan_feedback : bool;
      (** Escalate and re-partition when placement fails (default
          [true]). With [false] a placement failure is an error. *)
  placement_aware : bool;
      (** Feed floorplan feasibility into the partition search itself
          (default [false], bit-identical to the placement-unaware
          flow): the target device's column layout is handed to the
          engine as a {!Prcore.Cost.placement} penalty hook built on
          {!Floorplan.Estimate}, so the search avoids schemes the
          floorplanner cannot realise {e before} the post-hoc feedback
          loop has to escalate devices. [Fixed] targets use the named
          device; a [Budget] uses the smallest catalogued device
          fitting it; [Auto]'s first attempt runs unaware (its device
          is unknown) and every feedback re-partition is aware. Counted
          under ["flow.placement_aware_runs"], with the winning
          scheme's penalty in the ["flow.placement_penalty"] gauge and
          [outcome.placement_penalty]. *)
  telemetry : Prtelemetry.t;
      (** Telemetry handle threaded through every stage (default
          {!Prtelemetry.null}, free). A live handle collects a
          ["flow.run"] span over the full engine / floorplan / bitgen
          instrumentation, a ["flow.floorplan_escalations"] counter and
          ["flow.escalate"] trace points, and makes {!render_summary}
          append a telemetry section and {!write_outputs} emit
          [stats.txt] (plus [trace.jsonl] when the handle traces). *)
  resilience : resilience option;
      (** When set, {!run} appends a fault-injected walk assessment to
          the report (default [None]; skipped for designs with fewer
          than two configurations). *)
  jobs : int;
      (** Worker domains for the engine's candidate-set fan-out
          (default 1, sequential); results are bit-identical for any
          value (see {!Prcore.Engine.solve}). *)
  verify : bool;
      (** Run the independent-oracle suite over the finished
          implementation (default [false]). Arms the engine's
          memo-vs-fresh self-check ({!Prcore.Engine.solve}'s [verify])
          and records {!Prverify.Checker.check_implementation}'s
          diagnostics in the report — {!render_summary} then appends a
          verification section and {!write_outputs} emits [verify.txt].
          Counted under the ["verify.*"] telemetry keys. *)
  budget : Prguard.Budget.spec option;
      (** Wall-clock / evaluation budget for the partition search
          (default [None], unlimited — bit-identical to the unguarded
          flow). One live {!Prguard.Budget.t} is created per {!run} and
          shared across floorplan-feedback re-partitioning rounds, so
          the deadline bounds the {e whole} flow, not each attempt.
          When the search degrades, {!render_summary} adds a [guard:]
          line and [outcome.degraded] carries the verdict. *)
  ladder : Prguard.Ladder.t option;
      (** Graceful-degradation ladder for the per-candidate-set
          allocation (default [None]; see {!Prcore.Engine.solve}). *)
}

val default_options : options

val placement_hook : Fpga.Device.t -> Prcore.Cost.placement
(** The {!Floorplan.Estimate} placeability penalty over [device]'s
    column layout, packaged in the engine's {!Prcore.Cost.placement}
    convention — what the flow installs when [placement_aware] is set,
    exposed so the CLI's [partition] command (and tests) can build the
    same hook for a resolved target device. *)

type report = {
  design : Prdesign.Design.t;
  outcome : Prcore.Engine.outcome;
  device : Fpga.Device.t;  (** Device the design was implemented on. *)
  layout : Floorplan.Layout.t;
  placement : Floorplan.Placer.outcome;
      (** Rectangles for each region, then the static area. *)
  floorplan_escalations : int;
      (** Devices rejected by the placement feedback loop. *)
  wrappers : (string * string) list;  (** Verilog files, step 3/4. *)
  repository : Bitgen.Repository.t;  (** Bitstreams, step 7. *)
  telemetry : Prtelemetry.t;
      (** The handle the flow ran with — {!Prtelemetry.null} unless the
          caller opted in via {!options}. *)
  resilience :
    (Runtime.Resilient.outcome, Runtime.Resilient.failure) result option;
      (** The fault-injected walk assessment when
          [options.resilience] was set — [Error] when the configured
          recovery policy let the walk abort. *)
  diagnostics : Prverify.Diagnostic.t list option;
      (** The independent-oracle verdict over the implementation when
          [options.verify] was set: [Some []] (or warnings only) is a
          clean bill of health; errors mean an invariant of the
          pipeline's own artefacts was violated. *)
}

val run :
  ?options:options ->
  target:Prcore.Engine.target ->
  Prdesign.Design.t ->
  (report, string) result
(** For a [Budget] target the partitioning is solved once and only the
    floorplan device escalates; for [Fixed]/[Auto] targets the feedback
    loop re-partitions on each larger device. *)

val render_summary : report -> string

val render_resilience : report -> string
(** The resilience section of {!render_summary} alone; [""] when the
    assessment did not run. *)

val write_outputs :
  ?fsync:bool -> dir:string -> report -> (string list, string) result
(** Write every artefact under [dir] (created with its missing ancestors):
    the wrapper [.v] files, one [.bit] per bitstream, the design
    description [design.xml] and a [report.txt]; with live telemetry also
    a [stats.txt] summary and (when tracing) the [trace.jsonl] event
    stream; with [options.verify] also the [verify.txt] oracle report.

    Every file is written {e crash-safely} through
    {!Prguard.Atomic_io.write} (temp in the destination directory + fsync
    + rename) with a CRC32 checksum sidecar ([<file>.crc32]), so an
    interrupted run leaves either the previous artefact or the complete
    new one — and {!Prguard.recover} detects anything in between.
    Temporary files are cleaned up on failure paths.

    Returns the written paths (data files and their sidecars), or
    [Error message] when the directory cannot be created or a file cannot
    be written (no exception escapes to the caller). [fsync] (default
    [true]) can be disabled for tests. *)
