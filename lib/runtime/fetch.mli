(** Bitstream fetch modelling.

    The paper notes that "the actual reconfiguration time also depends
    upon additional factors such as the delay in fetching partial
    bitstreams from external memory and transfer speed through the
    internal configuration interface". This module models that fetch
    path: partial bitstreams live in external memory behind a bandwidth
    plus fixed latency, with an optional on-chip cache (BRAM-backed
    buffer) holding recently or frequently used bitstreams so hot
    reconfigurations stream at full ICAP rate.

    Sizes are in frames; byte sizes follow UG191 (164 bytes/frame). *)

type memory = {
  bandwidth_bytes_per_s : float;  (** Sustained external read bandwidth. *)
  latency_s : float;  (** Fixed per-fetch setup latency. *)
}

val flash : memory
(** Slow configuration flash: 20 MB/s, 100 us setup. *)

val ddr : memory
(** DDR-class store: 800 MB/s, 1 us setup. *)

val fetch_seconds : memory -> frames:int -> float
(** Time to pull one partial bitstream from external memory (zero for
    zero frames). @raise Invalid_argument on negative frames. *)

(** {1 On-chip bitstream cache} *)

type policy = Lru | Fifo | Largest_out
(** Eviction policies: least-recently-used, first-in-first-out, or evict
    the largest resident first. *)

type cache

val create_cache : ?policy:policy -> capacity_frames:int -> unit -> cache
(** An empty cache holding at most [capacity_frames] frames of bitstream
    payload. A bitstream larger than the whole capacity is never cached.
    @raise Invalid_argument on a negative capacity. *)

val policy : cache -> policy
val capacity_frames : cache -> int
val resident_frames : cache -> int

type access = { key : int * int; frames : int; hit : bool; seconds : float }
(** One bitstream access: [key] identifies (region, partition). On a hit
    the fetch costs nothing (the ICAP streams from on-chip memory); on a
    miss the external fetch time applies and the bitstream is inserted,
    evicting according to the policy. *)

val access : cache -> memory -> key:int * int -> frames:int -> access

val invalidate : cache -> key:int * int -> unit
(** Drop a resident bitstream (no-op when absent). The resilient runtime
    uses this when a cached image turns out corrupt and must be
    re-fetched from external memory. *)

val residents : cache -> ((int * int) * int) list
(** Resident [(key, frames)] entries, eviction order first (head = next
    LRU/FIFO victim). Exposed for invariant checking and diagnostics. *)

val stats : cache -> int * int
(** [(hits, misses)] since creation. *)

(** {1 Walk-level accounting} *)

type report = {
  reconfigurations : int;
  hits : int;
  misses : int;
  icap_seconds : float;  (** Pure configuration-port time. *)
  fetch_seconds : float;  (** External-memory stall time (misses only). *)
  total_seconds : float;
}

val simulate_walk :
  ?icap:Fpga.Icap.t ->
  ?cache:cache ->
  memory:memory ->
  Prcore.Scheme.t ->
  initial:int ->
  sequence:int list ->
  report
(** Replay an adaptation walk like {!Manager.simulate}, adding fetch
    stalls: every region reload fetches its bitstream (through the cache
    when one is given) before streaming it to the ICAP. *)

val render : report -> string
