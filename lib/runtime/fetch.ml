type memory = {
  bandwidth_bytes_per_s : float;
  latency_s : float;
}

let flash = { bandwidth_bytes_per_s = 20e6; latency_s = 100e-6 }
let ddr = { bandwidth_bytes_per_s = 800e6; latency_s = 1e-6 }

let fetch_seconds memory ~frames =
  if frames < 0 then invalid_arg "Fetch.fetch_seconds: negative frames";
  if frames = 0 then 0.
  else
    memory.latency_s
    +. (float_of_int (Fpga.Frame.bytes_of_frames frames)
        /. memory.bandwidth_bytes_per_s)

type policy = Lru | Fifo | Largest_out

(* Residents kept in an ordered list: head = next eviction victim under
   LRU/FIFO (the list is maintained oldest-first; LRU refreshes on hit,
   FIFO does not). Caches hold at most tens of bitstreams, so lists are
   fine. *)
type cache = {
  policy : policy;
  capacity : int;
  mutable residents : ((int * int) * int) list;  (* key, frames *)
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ?(policy = Lru) ~capacity_frames () =
  if capacity_frames < 0 then
    invalid_arg "Fetch.create_cache: negative capacity";
  { policy;
    capacity = capacity_frames;
    residents = [];
    used = 0;
    hits = 0;
    misses = 0 }

let policy t = t.policy
let capacity_frames t = t.capacity
let resident_frames t = t.used
let stats t = (t.hits, t.misses)

type access = { key : int * int; frames : int; hit : bool; seconds : float }

let evict_one t =
  match t.policy with
  | Lru | Fifo -> (
    match t.residents with
    | [] -> ()
    | (_, frames) :: rest ->
      t.residents <- rest;
      t.used <- t.used - frames)
  | Largest_out ->
    let largest =
      List.fold_left
        (fun acc (_, frames) -> max acc frames)
        0 t.residents
    in
    let rec drop = function
      | [] -> []
      | (_, frames) :: rest when frames = largest ->
        t.used <- t.used - frames;
        rest
      | entry :: rest -> entry :: drop rest
    in
    t.residents <- drop t.residents

let insert t key frames =
  if frames <= t.capacity then begin
    while t.used + frames > t.capacity do
      evict_one t
    done;
    t.residents <- t.residents @ [ (key, frames) ];
    t.used <- t.used + frames
  end

(* Single pass: remove [key]'s entry (if resident) and return it along
   with the remaining list in order. *)
let extract key residents =
  let rec scan acc = function
    | [] -> None
    | ((k, _) as entry) :: rest when k = key ->
      Some (entry, List.rev_append acc rest)
    | entry :: rest -> scan (entry :: acc) rest
  in
  scan [] residents

let access t memory ~key ~frames =
  if frames < 0 then invalid_arg "Fetch.access: negative frames";
  match extract key t.residents with
  | Some (entry, rest) ->
    t.hits <- t.hits + 1;
    (match t.policy with
     | Lru ->
       (* Refresh: move to the tail, reusing the single extraction pass. *)
       t.residents <- rest @ [ entry ]
     | Fifo | Largest_out -> ());
    { key; frames; hit = true; seconds = 0. }
  | None ->
    t.misses <- t.misses + 1;
    insert t key frames;
    { key; frames; hit = false; seconds = fetch_seconds memory ~frames }

let invalidate t ~key =
  match extract key t.residents with
  | None -> ()
  | Some ((_, frames), rest) ->
    t.residents <- rest;
    t.used <- t.used - frames

let residents t = t.residents

type report = {
  reconfigurations : int;
  hits : int;
  misses : int;
  icap_seconds : float;
  fetch_seconds : float;
  total_seconds : float;
}

let simulate_walk ?(icap = Fpga.Icap.default) ?cache ~memory scheme ~initial
    ~sequence =
  let reconfigurations = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let icap_time = ref 0. in
  let fetch_time = ref 0. in
  let trace (event : Manager.event) =
    List.iter
      (fun region ->
        incr reconfigurations;
        let frames = Prcore.Scheme.region_frames scheme region in
        icap_time := !icap_time +. Fpga.Icap.seconds_of_frames icap frames;
        let partition =
          match
            Prcore.Scheme.active_partition scheme ~config:event.Manager.to_config
              ~region
          with
          | Some p -> p
          | None -> -1
        in
        let stall =
          match cache with
          | None -> fetch_seconds memory ~frames
          | Some cache ->
            let a = access cache memory ~key:(region, partition) ~frames in
            if a.hit then incr hits else incr misses;
            a.seconds
        in
        (match cache with
         | None -> incr misses
         | Some _ -> ());
        fetch_time := !fetch_time +. stall)
      event.Manager.regions_reconfigured
  in
  let (_ : Manager.stats) =
    Manager.simulate ~icap ~trace scheme ~initial ~sequence
  in
  { reconfigurations = !reconfigurations;
    hits = !hits;
    misses = !misses;
    icap_seconds = !icap_time;
    fetch_seconds = !fetch_time;
    total_seconds = !icap_time +. !fetch_time }

let render r =
  Printf.sprintf
    "%d region reloads (%d cache hits, %d misses): %.3f ms ICAP + %.3f ms \
     fetch = %.3f ms"
    r.reconfigurations r.hits r.misses (1e3 *. r.icap_seconds)
    (1e3 *. r.fetch_seconds) (1e3 *. r.total_seconds)
