module Design = Prdesign.Design

type t = {
  design_name : string;
  initial : int;
  sequence : int list;
}

let check design c =
  if c < 0 || c >= Design.configuration_count design then
    invalid_arg "Trace: configuration index out of range"

let record design ~initial ~sequence =
  check design initial;
  List.iter (check design) sequence;
  { design_name = design.Design.name; initial; sequence }

let of_markov design ~chain ~rand ~steps ~initial =
  let configs = Design.configuration_count design in
  if Markov.configs chain <> configs then
    invalid_arg "Trace.of_markov: chain does not match the design";
  check design initial;
  let pick from =
    let u = rand () in
    let rec walk j acc =
      if j >= configs - 1 then j
      else begin
        let acc = acc +. Markov.probability chain ~from ~into:j in
        if u < acc then j else walk (j + 1) acc
      end
    in
    walk 0 0.
  in
  let rec build current n acc =
    if n = 0 then List.rev acc
    else
      let next = pick current in
      build next (n - 1) (next :: acc)
  in
  { design_name = design.Design.name;
    initial;
    sequence = build initial steps [] }

let simulate ?icap ?telemetry scheme trace =
  let design = scheme.Prcore.Scheme.design in
  if design.Design.name <> trace.design_name then
    invalid_arg "Trace.simulate: trace belongs to a different design";
  Manager.simulate ?icap ?telemetry scheme ~initial:trace.initial
    ~sequence:trace.sequence

let simulate_resilient ?icap ?memory ?cache ?telemetry ?fault scheme trace =
  let design = scheme.Prcore.Scheme.design in
  if design.Design.name <> trace.design_name then
    invalid_arg "Trace.simulate_resilient: trace belongs to a different design";
  Resilient.simulate ?icap ?memory ?cache ?telemetry ?fault scheme
    ~initial:trace.initial ~sequence:trace.sequence

let config_name design c =
  design.Design.configurations.(c).Prdesign.Configuration.name

let to_string design t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# prpart-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "design %s\n" t.design_name);
  Buffer.add_string buf
    (Printf.sprintf "initial %s\n" (config_name design t.initial));
  List.iter
    (fun c -> Buffer.add_string buf (config_name design c ^ "\n"))
    t.sequence;
  Buffer.contents buf

let config_by_name design name =
  let rec search c =
    if c >= Design.configuration_count design then None
    else if config_name design c = name then Some c
    else search (c + 1)
  in
  search 0

let of_string design text =
  let lines =
    List.filter
      (fun line -> line <> "" && line.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' text))
  in
  let resolve name =
    match config_by_name design name with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown configuration %S" name)
  in
  let rec parse lines state =
    match (lines, state) with
    | [], Some (initial, acc) ->
      Ok
        { design_name = design.Design.name;
          initial;
          sequence = List.rev acc }
    | [], None -> Error "trace has no initial configuration"
    | line :: rest, state -> (
      match String.split_on_char ' ' line with
      | [ "design"; name ] ->
        if name <> design.Design.name then
          Error
            (Printf.sprintf "trace is for design %S, not %S" name
               design.Design.name)
        else parse rest state
      | [ "initial"; name ] -> (
        match state with
        | Some _ -> Error "duplicate initial line"
        | None -> (
          match resolve name with
          | Ok c -> parse rest (Some (c, []))
          | Error e -> Error e))
      | [ name ] -> (
        match state with
        | None -> Error "configuration before the initial line"
        | Some (initial, acc) -> (
          match resolve name with
          | Ok c -> parse rest (Some (initial, c :: acc))
          | Error e -> Error e))
      | _ -> Error (Printf.sprintf "unparseable line %S" line))
  in
  parse lines None

let save_file design path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string design t))

let load_file design path =
  match open_in path with
  | exception Sys_error message -> Error message
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        of_string design (really_input_string ic (in_channel_length ic)))

let length t = List.length t.sequence
