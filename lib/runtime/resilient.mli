(** Fault-tolerant configuration-manager simulation: {!Manager.simulate}
    extended with a fallible fetch/program path driven by a
    {!Prfault.Injector} and a bounded-retry recovery loop.

    Every region load becomes a loop of (fetch the partial bitstream,
    program it through the ICAP), where either operation can fault.
    Failed attempts are retried with exponential backoff and
    deterministic jitter; a corrupted image is invalidated from the
    on-chip cache and re-fetched; an aborted programming pass leaves the
    region's content garbage (forcing a reload even if the old partition
    is wanted later). When a load exhausts its retries — or blows the
    per-transition time budget — the configured
    {!Prfault.Recovery.policy} decides between failing the run, dropping
    the adaptation step, or degrading to a designated safe
    configuration.

    {b Equivalence guarantee}: with an inactive injector the simulation
    reproduces {!Manager.simulate}'s statistics and (when [memory] is
    given) {!Fetch.simulate_walk}'s report {e bit-for-bit} — identical
    integers and identical floats, because the arithmetic runs in the
    same order. The fault machinery only ever adds accounting on top.

    {b Determinism}: all randomness (fault draws, backoff jitter)
    derives from [fault.spec.seed], so two runs of the same scenario
    yield {!Prfault.Reliability.equal} summaries. *)

type config = {
  spec : Prfault.Injector.spec;  (** What faults, how often. *)
  policy : Prfault.Recovery.policy;
  retry : Prfault.Recovery.retry;
  safe_config : int option;
      (** Degraded-mode configuration for
          {!Prfault.Recovery.Fallback_safe_config}; defaults to the
          run's [initial]. *)
}

val default_config : config
(** Inactive injector, [Fallback_safe_config], {!Prfault.Recovery.default_retry},
    safe config = initial. *)

type outcome = {
  stats : Manager.stats;
      (** Logical adaptation accounting — each region load counted once
          on success, like {!Manager.simulate}. Dropped steps contribute
          nothing; safe-config fallback loads do count. *)
  fetch : Fetch.report option;
      (** Physical fetch/ICAP accounting when [memory] was given:
          includes the time burnt by failed attempts, while
          [reconfigurations] counts successful loads only. *)
  reliability : Prfault.Reliability.summary;
  final_config : int;
      (** Where the walk ended (differs from the last sequence element
          after drops or fallbacks). *)
  operations : int;  (** Fault-injection operations drawn. *)
}

type failure = {
  failed_step : int;  (** 1-based step of the fatal fault. *)
  failed_region : int;
  kind : Prfault.Injector.kind;
  reliability : Prfault.Reliability.summary;
      (** Accounting up to the abort. *)
}

val render_failure : failure -> string
(** One-line description, e.g.
    ["reconfiguration failed at step 12 (PRR2, icap-crc-error)"]. *)

val simulate :
  ?icap:Fpga.Icap.t ->
  ?memory:Fetch.memory ->
  ?cache:Fetch.cache ->
  ?trace:(Manager.event -> unit) ->
  ?telemetry:Prtelemetry.t ->
  ?fault:config ->
  Prcore.Scheme.t ->
  initial:int ->
  sequence:int list ->
  (outcome, failure) result
(** Replay [sequence] from [initial] under fault injection.

    Without [memory] the external fetch path is not modelled: no fetch
    operations are drawn (only programming faults apply) and
    [outcome.fetch] is [None]. [cache] is only consulted when [memory]
    is present.

    [trace] observes every step like {!Manager.simulate}; the event's
    [to_config] is the {e requested} target even when the step is
    dropped or degraded, and [regions_reconfigured]/[frames] cover the
    successful loads only.

    [Error] is returned only under the [Abort] and [Retry_then_fail]
    policies; [Skip_transition] and [Fallback_safe_config] always
    complete.

    [telemetry] (default {!Prtelemetry.null}): a ["runtime.resilient"]
    span; ["runtime.steps"], ["runtime.transitions"],
    ["runtime.frames"], ["fault.injected"], ["fault.retries"],
    ["fault.recovered"], ["fault.dropped_transitions"] and
    ["fault.fallbacks"] counters; ["fault.added_seconds"] and
    ["fault.mttr_seconds"] gauges; and a ["fault.inject"] trace point
    per injected fault (when tracing).

    @raise Invalid_argument on out-of-range configuration indices
    (including [fault.safe_config]) or an invalid injector/retry
    specification. *)
