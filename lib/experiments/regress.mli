(** Bench regression tracking: diff two BENCH metric documents under
    per-metric tolerance rules.

    Pure comparison logic — the bench front-end loads two entries of
    [BENCH_history.jsonl] (or a pinned baseline file) and feeds the
    parsed JSON in; [make perf-compare] fails when {!regressed} is
    non-empty. Kept benchmark-free so thresholds are unit-testable. *)

type direction = Higher_better | Lower_better

type rule = {
  pattern : string;
      (** Substring matched against the flattened dotted key
          (e.g. ["speedup"] covers ["sweep.speedup"]). First matching
          rule wins. *)
  direction : direction;
  tolerance_pct : float;  (** Allowed harmful change, in percent. *)
}

val default_rules : rule list
(** Throughput up ([moves_per_sec]), latency down ([ms_per_run],
    [ns_per_run], [seconds]), [speedup] and [hit_rate] up, multilevel
    convergence ([refine_passes]) and quality ([gap_vs_anneal_pct])
    down — with generous tolerances (10–50 %) because bench hosts are
    noisy; the target is step changes, not jitter. *)

val flatten : Prtelemetry.Json.t -> (string * float) list
(** Numeric leaves as dotted keys in document order; booleans, strings
    and arrays are skipped. *)

type verdict = Within | Improved | Regressed | Missing

type finding = {
  key : string;
  baseline : float;
  latest : float;  (** NaN when [Missing]. *)
  change_pct : float;
  verdict : verdict;
}

val compare :
  ?rules:rule list ->
  baseline:Prtelemetry.Json.t ->
  latest:Prtelemetry.Json.t ->
  unit ->
  finding list
(** One finding per baseline metric covered by a rule, in baseline
    document order. A metric absent from [latest] is [Missing] (treated
    as a regression — a renamed metric must move its baseline); metrics
    new in [latest] are ignored; near-zero baselines are [Within]. *)

val regressed : finding list -> finding list
(** The failures: [Regressed] plus [Missing]. *)

val render : finding list -> string
(** Table of metric/baseline/latest/change/verdict plus a one-line
    summary. *)
