(* Bench regression tracking: diff the latest BENCH metrics against a
   stored baseline under per-metric tolerance rules. Pure — the bench
   front-end loads the history JSONL and feeds two parsed documents in,
   so thresholds and verdicts are unit-testable without running a
   single benchmark. *)

module Json = Prtelemetry.Json

type direction = Higher_better | Lower_better

type rule = {
  pattern : string;  (* substring of the flattened dotted key *)
  direction : direction;
  tolerance_pct : float;
}

(* Generous tolerances: bench numbers come from shared, noisy hosts.
   The point is to catch step changes (a 2x slowdown from an accidental
   O(n^2), a cache whose hit rate collapsed), not 5% jitter. *)
let default_rules =
  [ { pattern = "moves_per_sec"; direction = Higher_better;
      tolerance_pct = 30. };
    { pattern = "ms_per_run"; direction = Lower_better; tolerance_pct = 30. };
    { pattern = "ns_per_run"; direction = Lower_better; tolerance_pct = 30. };
    { pattern = "speedup"; direction = Higher_better; tolerance_pct = 20. };
    { pattern = "hit_rate"; direction = Higher_better; tolerance_pct = 10. };
    { pattern = "p99_ms"; direction = Lower_better; tolerance_pct = 50. };
    { pattern = "p50_ms"; direction = Lower_better; tolerance_pct = 50. };
    { pattern = "qps"; direction = Higher_better; tolerance_pct = 40. };
    { pattern = "seconds"; direction = Lower_better; tolerance_pct = 40. };
    (* Prscale: the huge-design V-cycle. More refinement passes means
       refinement stopped converging; a growing gap against the
       eval-capped anneal means multilevel quality slipped. Both are
       deterministic, so the tolerance only absorbs intentional
       tuning. *)
    { pattern = "refine_passes"; direction = Lower_better;
      tolerance_pct = 50. };
    { pattern = "gap_vs_anneal_pct"; direction = Lower_better;
      tolerance_pct = 50. };
    (* Placement-aware flow: losing an avoided escalation means the
       aware search stopped beating the post-hoc feedback loop
       (deterministic, so zero tolerance); penalty evaluations are the
       estimator's share of the search cost. The aware solve latency is
       already covered by the ms_per_run rule above. *)
    { pattern = "escalations_avoided"; direction = Higher_better;
      tolerance_pct = 0. };
    { pattern = "placement_penalty_evals"; direction = Lower_better;
      tolerance_pct = 50. };
    (* Chaos soak: correctness counters, not performance numbers.  A
       lost or wrong reply under fault injection is a serving bug, so
       the tolerance is zero — any non-zero latest value against the
       all-zero baseline regresses (see the near-zero-baseline branch
       in [compare]). *)
    { pattern = "lost_replies"; direction = Lower_better;
      tolerance_pct = 0. };
    { pattern = "wrong_replies"; direction = Lower_better;
      tolerance_pct = 0. } ]

(* Flatten a JSON document to dotted-key numeric leaves, in document
   order: {"sweep":{"speedup":1.2}} -> [("sweep.speedup", 1.2)].
   Booleans, strings and arrays are skipped — only numbers can regress
   numerically. *)
let flatten json =
  let rec walk prefix acc = function
    | Json.Int n -> (prefix, float_of_int n) :: acc
    | Json.Float f -> (prefix, f) :: acc
    | Json.Obj fields ->
      List.fold_left
        (fun acc (key, v) ->
          let path = if prefix = "" then key else prefix ^ "." ^ key in
          walk path acc v)
        acc fields
    | Json.Null | Json.Bool _ | Json.String _ | Json.List _ -> acc
  in
  List.rev (walk "" [] json)

let rule_for rules key =
  List.find_opt
    (fun r ->
      let p = r.pattern and k = key in
      let pl = String.length p and kl = String.length k in
      let rec scan i =
        if i + pl > kl then false
        else if String.sub k i pl = p then true
        else scan (i + 1)
      in
      scan 0)
    rules

type verdict = Within | Improved | Regressed | Missing

type finding = {
  key : string;
  baseline : float;
  latest : float;  (* nan when [Missing] *)
  change_pct : float;
  verdict : verdict;
}

(* Compare every baseline metric that a rule covers against the latest
   document. Metrics present only in the latest run are new — never a
   regression. A near-zero baseline cannot express a percentage change:
   under a non-zero tolerance it is reported [Within] (the rule asks
   for slack we cannot measure), but under a zero-tolerance rule any
   movement in the worse direction is [Regressed] — that is exactly the
   contract of counters like chaos.lost_replies whose baseline is 0 and
   must stay 0. *)
let compare ?(rules = default_rules) ~baseline ~latest () =
  let latest_metrics = flatten latest in
  List.filter_map
    (fun (key, base) ->
      match rule_for rules key with
      | None -> None
      | Some rule ->
        let finding =
          match List.assoc_opt key latest_metrics with
          | None ->
            { key; baseline = base; latest = Float.nan; change_pct = 0.;
              verdict = Missing }
          | Some now ->
            if Float.abs base < 1e-12 then begin
              let worse =
                match rule.direction with
                | Higher_better -> now < base -. 1e-12
                | Lower_better -> now > base +. 1e-12
              in
              let verdict =
                if worse && rule.tolerance_pct <= 0. then Regressed
                else Within
              in
              { key; baseline = base; latest = now; change_pct = 0.;
                verdict }
            end
            else begin
              let change = 100. *. (now -. base) /. Float.abs base in
              let verdict =
                match rule.direction with
                | Higher_better ->
                  if change < -.rule.tolerance_pct then Regressed
                  else if change > rule.tolerance_pct then Improved
                  else Within
                | Lower_better ->
                  if change > rule.tolerance_pct then Regressed
                  else if change < -.rule.tolerance_pct then Improved
                  else Within
              in
              { key; baseline = base; latest = now; change_pct = change;
                verdict }
            end
        in
        Some finding)
    (flatten baseline)

let regressed findings =
  List.filter (fun f -> f.verdict = Regressed || f.verdict = Missing) findings

let verdict_label = function
  | Within -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"

let render findings =
  if findings = [] then "bench-compare: no covered metrics in baseline\n"
  else begin
    let table =
      Report.Table.render
        ~headers:[ "metric"; "baseline"; "latest"; "change"; "verdict" ]
        (List.map
           (fun f ->
             [ f.key;
               Printf.sprintf "%.4g" f.baseline;
               (if f.verdict = Missing then "-"
                else Printf.sprintf "%.4g" f.latest);
               (if f.verdict = Missing then "-"
                else Printf.sprintf "%+.1f%%" f.change_pct);
               verdict_label f.verdict ])
           findings)
    in
    let bad = regressed findings in
    let footer =
      if bad = [] then
        Printf.sprintf "bench-compare: %d metric(s) within tolerance\n"
          (List.length findings)
      else
        Printf.sprintf "bench-compare: %d regression(s) out of %d metric(s)\n"
          (List.length bad) (List.length findings)
    in
    table ^ footer
  end
