module Design = Prdesign.Design
module Engine = Prcore.Engine
module Cost = Prcore.Cost
module Scheme = Prcore.Scheme
module Schemes = Baselines.Schemes
module Resource = Fpga.Resource

type row = {
  name : string;
  cls : Synth.Generator.circuit_class;
  device : Fpga.Device.t;
  escalations : int;
  proposed_total : int;
  proposed_worst : int;
  modular_total : int;
  modular_worst : int;
  single_total : int;
  single_worst : int;
  modular_fits : bool;
  modular_device : Fpga.Device.t option;
  regions : int;
  statics : int;
}

let row_of_design ~options (cls, design) =
  match Engine.solve ~options ~target:Engine.Auto design with
  | Error _ -> None
  | Ok outcome ->
    let device =
      match outcome.Engine.device with
      | Some d -> d
      | None -> assert false (* Auto always reports a device *)
    in
    let modular = Schemes.one_module_per_region design in
    let single = Schemes.single_region design in
    let modular_need =
      Resource.add modular.evaluation.Cost.used Resource.zero
    in
    Some
      { name = design.Design.name;
        cls;
        device;
        escalations = outcome.Engine.escalations;
        proposed_total = outcome.Engine.evaluation.Cost.total_frames;
        proposed_worst = outcome.Engine.evaluation.Cost.worst_frames;
        modular_total = modular.evaluation.Cost.total_frames;
        modular_worst = modular.evaluation.Cost.worst_frames;
        single_total = single.evaluation.Cost.total_frames;
        single_worst = single.evaluation.Cost.worst_frames;
        modular_fits =
          Cost.fits modular.evaluation ~budget:outcome.Engine.budget;
        modular_device = Fpga.Device.smallest_fitting modular_need;
        regions = outcome.Engine.scheme.Scheme.region_count;
        statics = List.length (Scheme.static_members outcome.Engine.scheme) }

(* Contiguous block distribution: split [xs] into at most [blocks]
   chunks whose sizes differ by at most one, preserving order. The
   parallel map then hands each participant a block instead of a single
   design — the per-task overhead (queue push, condition signal, result
   cell) amortises over the block, which is what un-did the 0.59x
   fan-out regression the profiler attributed to task granularity. *)
let chunk ~blocks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let blocks = max 1 (min blocks n) in
    let base = n / blocks and extra = n mod blocks in
    let rec build i start acc =
      if i = blocks then List.rev acc
      else begin
        let len = base + if i < extra then 1 else 0 in
        build (i + 1) (start + len) (Array.sub arr start len :: acc)
      end
    in
    build 0 0 []
  end

let run ?(count = 1000) ?(seed = 2013) ?(options = Engine.default_options)
    ?(jobs = 1) ?(telemetry = Prtelemetry.null) ?spec () =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Sweep.run: invalid jobs count %d: the number of solver domains \
          must be at least 1 (use 1 for sequential solving)"
         jobs);
  (* More domains than cores is pure overhead for this CPU-bound
     workload (the profiler showed the fan-out losing to sequential on
     oversubscribed hosts), so the effective fan-out is clamped; the
     row list is identical either way. *)
  let jobs = min jobs (Par.recommended_jobs ()) in
  let designs = Synth.Generator.batch ?spec ~seed ~count () in
  (* Per-design latency distribution, live only under a tracing handle
     ([Prtelemetry.histogram] is dead otherwise) — timing never affects
     the rows, so traced runs stay bit-identical too. *)
  let design_ms = Prtelemetry.histogram telemetry "sweep.design_ms" in
  let timed = Prtelemetry.Histogram.live design_ms in
  let solve_one entry =
    if timed then begin
      let t0 = Unix.gettimeofday () in
      let row = row_of_design ~options entry in
      Prtelemetry.Histogram.observe design_ms
        ((Unix.gettimeofday () -. t0) *. 1e3);
      row
    end
    else row_of_design ~options entry
  in
  (* One solve per design, no shared mutable state (each [Engine.solve]
     creates its own telemetry handle and evaluation cache), so the
     ordered parallel map over contiguous blocks is bit-identical to
     the sequential [List.filter_map]. *)
  if jobs <= 1 then List.filter_map solve_one designs
  else
    chunk ~blocks:(jobs * 4) designs
    |> Par.map_list ~telemetry ~jobs (fun block ->
           Array.to_list (Array.map solve_one block))
    |> List.concat
    |> List.filter_map Fun.id

type summary = {
  rows : int;
  skipped : int;
  escalated : int;
  smaller_than_modular : int;
  beats_modular_total_pct : float;
  beats_modular_worst_pct : float;
  matches_single_worst_pct : float;
  beats_single_total_pct : float;
}

let summarise ~skipped rows =
  let pct pred = 100. *. Report.Stats.fraction pred rows in
  { rows = List.length rows;
    skipped;
    escalated = List.length (List.filter (fun r -> r.escalations > 0) rows);
    smaller_than_modular =
      List.length
        (List.filter
           (fun r ->
             match r.modular_device with
             | None -> true (* modular fits no device at all *)
             | Some md -> Fpga.Device.compare_capacity r.device md < 0)
           rows);
    beats_modular_total_pct =
      pct (fun r -> r.proposed_total < r.modular_total);
    beats_modular_worst_pct =
      pct (fun r -> r.proposed_worst < r.modular_worst);
    matches_single_worst_pct =
      pct (fun r -> r.proposed_worst <= r.single_worst);
    beats_single_total_pct =
      pct (fun r -> r.proposed_total < r.single_total) }

let device_order rows =
  List.sort_uniq
    (fun a b -> Fpga.Device.compare_capacity a b)
    (List.map (fun r -> r.device) rows)

let metric_values metric scheme row =
  match (metric, scheme) with
  | `Total, `Proposed -> row.proposed_total
  | `Total, `Modular -> row.modular_total
  | `Total, `Single -> row.single_total
  | `Worst, `Proposed -> row.proposed_worst
  | `Worst, `Modular -> row.modular_worst
  | `Worst, `Single -> row.single_worst

let render_fig ~metric rows =
  let headers =
    [ "Device"; "Designs"; "Proposed"; "1 Mod/Region"; "Single region" ]
  in
  let table_rows =
    List.map
      (fun device ->
        let group =
          List.filter
            (fun r -> r.device.Fpga.Device.short = device.Fpga.Device.short)
            rows
        in
        let mean scheme =
          Report.Stats.mean
            (List.map
               (fun r -> float_of_int (metric_values metric scheme r))
               group)
        in
        [ device.Fpga.Device.short;
          string_of_int (List.length group);
          Report.Table.fixed 0 (mean `Proposed);
          Report.Table.fixed 0 (mean `Modular);
          Report.Table.fixed 0 (mean `Single) ])
      (device_order rows)
  in
  let title =
    match metric with
    | `Total -> "Mean total reconfiguration time (frames) per target FPGA"
    | `Worst -> "Mean worst-case reconfiguration time (frames) per target FPGA"
  in
  title ^ "\n" ^ Report.Table.render ~headers table_rows

let percent_changes ~metric ~baseline rows =
  List.map
    (fun r ->
      let proposed = metric_values metric `Proposed r in
      let base =
        match baseline with
        | `Modular -> metric_values metric `Modular r
        | `Single -> metric_values metric `Single r
      in
      Schemes.percent_change ~proposed ~baseline:base)
    rows

let render_fig9 rows =
  let panel title metric baseline =
    let values = percent_changes ~metric ~baseline rows in
    let histogram = Report.Histogram.make ~lo:(-10.) ~hi:100. ~buckets:11 values in
    Printf.sprintf "(%s) %% change, %s\n%s" title
      (match (metric, baseline) with
       | `Total, `Modular -> "total time vs 1 module/region"
       | `Total, `Single -> "total time vs single region"
       | `Worst, `Modular -> "worst time vs 1 module/region"
       | `Worst, `Single -> "worst time vs single region")
      (Report.Histogram.render histogram)
  in
  String.concat "\n"
    [ panel "a" `Total `Modular;
      panel "b" `Total `Single;
      panel "c" `Worst `Modular;
      panel "d" `Worst `Single ]

let render_summary s =
  String.concat "\n"
    [ Printf.sprintf "designs partitioned: %d (skipped %d that fit no device)"
        s.rows s.skipped;
      Printf.sprintf
        "re-iterated on a larger FPGA: %d  (paper: 201 of 1000)" s.escalated;
      Printf.sprintf
        "fit a smaller FPGA than one-module-per-region needs: %d  (paper: 13)"
        s.smaller_than_modular;
      Printf.sprintf
        "beats 1 module/region on total time: %.1f%%  (paper: 73%%)"
        s.beats_modular_total_pct;
      Printf.sprintf
        "beats 1 module/region on worst time: %.1f%%  (paper: 70%%)"
        s.beats_modular_worst_pct;
      Printf.sprintf
        "improves or matches single-region worst time: %.1f%%  (paper: 87.5%%)"
        s.matches_single_worst_pct;
      Printf.sprintf
        "beats single region on total time: %.1f%%  (paper: 100%%)"
        s.beats_single_total_pct;
      "" ]
