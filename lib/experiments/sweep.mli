(** The synthetic-design sweep behind the paper's Figs. 7–9 and the §V
    headline statistics: partition every generated design on the smallest
    suitable Virtex-5 device and compare total and worst-case
    reconfiguration time against the one-module-per-region and
    single-region schemes. One sweep feeds all three figures. *)

type row = {
  name : string;
  cls : Synth.Generator.circuit_class;
  device : Fpga.Device.t;  (** Device the proposed scheme landed on. *)
  escalations : int;
  proposed_total : int;
  proposed_worst : int;
  modular_total : int;
  modular_worst : int;
  single_total : int;
  single_worst : int;
  modular_fits : bool;  (** Modular scheme fits the chosen device. *)
  modular_device : Fpga.Device.t option;
      (** Smallest device fitting the modular scheme. *)
  regions : int;
  statics : int;
}

val chunk : blocks:int -> 'a list -> 'a array list
(** Split a list into at most [blocks] non-empty contiguous blocks
    whose sizes differ by at most one, preserving element order —
    the parallel fan-out granularity (exposed for tests). *)

val run :
  ?count:int -> ?seed:int -> ?options:Prcore.Engine.options ->
  ?jobs:int -> ?telemetry:Prtelemetry.t -> ?spec:Synth.Generator.spec ->
  unit ->
  row list
(** Defaults: 1000 designs, seed 2013, default engine options, default
    generator recipe. Designs that fit no catalogued device are skipped
    (reported by {!type-summary}).

    [jobs] (default 1) solves designs concurrently ({!Par.map_list})
    over contiguous design {e blocks} (about four per domain) rather
    than one task per design, and is clamped to
    {!Par.recommended_jobs} — oversubscribing a small host was measured
    strictly slower than sequential. Each solve is independent and
    deterministic and blocks preserve order, so the row list is
    bit-identical to the sequential run for any [jobs].

    [telemetry] (default {!Prtelemetry.null}) records a
    [sweep.design_ms] per-design latency histogram (tracing handles
    only) and the {!Par.Pool.profile} per-domain gauges when a pool
    runs.

    @raise Invalid_argument when [jobs < 1], with a message naming the
    offending value. *)

type summary = {
  rows : int;
  skipped : int;
  escalated : int;  (** Designs needing a larger device (paper: 201). *)
  smaller_than_modular : int;
      (** Designs fitting a smaller device than the modular scheme needs
          (paper: 13). *)
  beats_modular_total_pct : float;  (** Paper: ~73 %. *)
  beats_modular_worst_pct : float;  (** Paper: ~70 %. *)
  matches_single_worst_pct : float;
      (** Improves or matches single-region worst case (paper: 87.5 %). *)
  beats_single_total_pct : float;  (** Paper: 100 %. *)
}

val summarise : skipped:int -> row list -> summary

val render_fig :
  metric:[ `Total | `Worst ] -> row list -> string
(** Figs. 7/8 analogue: per-device groups (in sweep order) with design
    counts and mean frames of the three schemes. *)

val render_fig9 : row list -> string
(** The four percentage-change histograms of Fig. 9, -10 % to 100 % in
    10-point buckets. *)

val render_summary : summary -> string

val percent_changes :
  metric:[ `Total | `Worst ] ->
  baseline:[ `Modular | `Single ] ->
  row list ->
  float list
(** The improvement distribution feeding one Fig. 9 panel. *)
