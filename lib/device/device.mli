(** Xilinx device catalogue: the paper's Virtex-5 parts plus a
    7-series-style family ({!series7}) with a different column
    geometry.

    Devices are modelled at the granularity the partitioner and floorplanner
    need: a number of configuration rows, and per-row column counts for each
    tile kind. Totals therefore come out tile-consistent (every primitive
    belongs to a whole tile). Capacities approximate the DS100 data sheet;
    the exact constants only set feasibility thresholds, not the algorithm's
    behaviour (see DESIGN.md). The paper counts "CLBs" interchangeably with
    slices, and so do we. *)

type family = Lx | Lxt | Sxt | Fxt | Artix | Kintex

type t = private {
  name : string;  (** e.g. ["XC5VFX70T"] or ["XC7A35T"]. *)
  short : string;  (** e.g. ["FX70T"], as used on the paper's figure axes. *)
  family : family;
  rows : int;  (** Configuration rows; a frame spans one row. *)
  clb_cols : int;  (** CLB tile columns per row. *)
  bram_cols : int;
  dsp_cols : int;
}

val family_name : family -> string
val pp : Format.formatter -> t -> unit

val resources : t -> Resource.t
(** Total primitives: [rows * cols * primitives_per_tile] per kind. *)

val total_tiles : t -> int
val total_frames : t -> int
(** Full-device configuration size in frames (CLB/BRAM/DSP tiles only). *)

val catalogue : t list
(** All modelled {e Virtex-5} devices in ascending capacity order — the
    historical catalogue, deliberately unchanged by the 7-series
    additions so every output derived from it stays bit-identical. *)

val series7 : t list
(** The 7-series-style family (Artix/Kintex class parts, ["XC7"] name
    prefix) in ascending capacity order: taller fabric and a richer
    BRAM/DSP column mix than the Virtex-5 parts, so floorplan
    feasibility genuinely differs between families for the same
    demand. Tile-consistent approximations in the spirit of
    DS180/DS181; not part of {!catalogue} or {!sweep}. *)

val families : (string * t list) list
(** The modelled families by name: [("virtex5", catalogue);
    ("series7", series7)]. *)

val sweep : t list
(** The nine devices appearing on the axes of the paper's Figs. 7–8, in the
    paper's order: LX20T, LX30, FX30T, SX35T, FX50T, SX70T, FX95T, FX130T,
    FX200T. *)

val find : string -> t option
(** Lookup by [short] or full [name], case-insensitive, across every
    family ({!catalogue} then {!series7}). *)

val find_exn : string -> t
(** @raise Not_found when the device is not in the catalogue. *)

val smallest_fitting : ?within:t list -> Resource.t -> t option
(** Smallest device (of [within], default {!sweep}) whose resources
    dominate the requirement. *)

val next_larger : ?within:t list -> t -> t option
(** Successor of a device in the capacity ordering of [within] (default
    {!sweep}); [None] when already the largest. *)

val compare_capacity : t -> t -> int
(** Orders by CLB count, then BRAM, then DSP, then name. *)
