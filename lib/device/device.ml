type family = Lx | Lxt | Sxt | Fxt | Artix | Kintex

type t = {
  name : string;
  short : string;
  family : family;
  rows : int;
  clb_cols : int;
  bram_cols : int;
  dsp_cols : int;
}

let family_name = function
  | Lx -> "LX"
  | Lxt -> "LXT"
  | Sxt -> "SXT"
  | Fxt -> "FXT"
  | Artix -> "Artix-7"
  | Kintex -> "Kintex-7"

let resources d =
  let per kind cols = d.rows * cols * Tile.primitives_per_tile kind in
  { Resource.clb = per Tile.Clb d.clb_cols;
    bram = per Tile.Bram d.bram_cols;
    dsp = per Tile.Dsp d.dsp_cols }

let total_tiles d = d.rows * (d.clb_cols + d.bram_cols + d.dsp_cols)

let total_frames d =
  let per kind cols = d.rows * cols * Tile.frames_per_tile kind in
  per Tile.Clb d.clb_cols + per Tile.Bram d.bram_cols
  + per Tile.Dsp d.dsp_cols

let pp ppf d =
  Format.fprintf ppf "%s(%a)" d.short Resource.pp (resources d)

let device ?(prefix = "XC5V") short family rows clb_cols bram_cols dsp_cols =
  { name = prefix ^ short; short; family; rows; clb_cols; bram_cols; dsp_cols }

(* Capacities are tile-consistent approximations of DS100; see DESIGN.md. *)
let lx20t = device "LX20T" Lxt 3 52 2 1
let lx30 = device "LX30" Lx 4 60 2 1
let fx30t = device "FX30T" Fxt 4 64 4 2
let sx35t = device "SX35T" Sxt 4 68 5 6
let fx50t = device "FX50T" Fxt 6 60 5 3
let sx70t = device "SX70T" Sxt 8 70 5 5
let fx70t = device "FX70T" Fxt 8 70 5 2
let fx95t = device "FX95T" Fxt 10 74 6 2
let fx130t = device "FX130T" Fxt 10 102 8 4
let fx200t = device "FX200T" Fxt 12 128 10 4

let sweep =
  [ lx20t; lx30; fx30t; sx35t; fx50t; sx70t; fx95t; fx130t; fx200t ]

let compare_capacity a b =
  let ra = resources a and rb = resources b in
  match Resource.compare ra rb with
  | 0 -> String.compare a.name b.name
  | c -> c

let catalogue =
  List.sort compare_capacity
    [ lx20t; lx30; fx30t; sx35t; fx50t; sx70t; fx70t; fx95t; fx130t; fx200t ]

(* A 7-series-style family beside the Virtex-5 catalogue: taller fabric
   (more configuration rows per device class) and a markedly richer
   BRAM/DSP column mix, so the same logical demand meets a genuinely
   different column geometry. Tile-consistent approximations in the
   spirit of DS180/DS181 — like the Virtex-5 constants, they set
   feasibility thresholds only. The paper's sweep ({!sweep}) and the
   default catalogue stay Virtex-5 so every historical output is
   unchanged; these devices are reachable by name ({!find}) and through
   {!families}. *)
let series7_device = device ~prefix:"XC7"

let a15t = series7_device "A15T" Artix 2 40 3 2
let a35t = series7_device "A35T" Artix 4 50 4 3
let a50t = series7_device "A50T" Artix 4 62 5 4
let a100t = series7_device "A100T" Artix 6 78 6 5
let k70t = series7_device "K70T" Kintex 6 66 7 6
let k160t = series7_device "K160T" Kintex 8 84 8 7
let k325t = series7_device "K325T" Kintex 10 112 10 9

let series7 =
  List.sort compare_capacity [ a15t; a35t; a50t; a100t; k70t; k160t; k325t ]

let families = [ ("virtex5", catalogue); ("series7", series7) ]

let find key =
  let key = String.uppercase_ascii key in
  List.find_opt
    (fun d -> d.short = key || d.name = key)
    (catalogue @ series7)

let find_exn key =
  match find key with
  | Some d -> d
  | None -> raise Not_found

let smallest_fitting ?(within = sweep) need =
  let fits d = Resource.fits need ~within:(resources d) in
  List.find_opt fits (List.sort compare_capacity within)

let next_larger ?(within = sweep) d =
  let sorted = List.sort compare_capacity within in
  let rec after = function
    | [] -> None
    | x :: rest ->
      if compare_capacity x d > 0 then Some x else after rest
  in
  after sorted
