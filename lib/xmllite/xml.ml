type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of { line : int; column : int; message : string }

type limits = { max_bytes : int; max_depth : int }

exception Limit_exceeded of { limit : string; actual : int; maximum : int }

let default_limits = { max_bytes = 16 * 1024 * 1024; max_depth = 128 }
let unlimited = { max_bytes = max_int; max_depth = max_int }

let check_limit ~limit ~actual ~maximum =
  if actual > maximum then raise (Limit_exceeded { limit; actual; maximum })

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Numeric character references are validated strictly: the digit string
   must be non-empty and contain digits of the reference's base only
   (OCaml's [int_of_string] leniency would otherwise accept malformed
   forms like [&#1_0;], [&#+65;] or [&#0x41;]), and the code point must
   be a valid Unicode scalar value other than NUL — surrogates and
   anything above U+10FFFF are rejected. Accepted references are emitted
   as UTF-8, so code points at and beyond 128 decode instead of being
   left behind as raw [&...;] text. *)
let decode_reference name =
  match name with
  | "amp" -> Some "&"
  | "lt" -> Some "<"
  | "gt" -> Some ">"
  | "quot" -> Some "\""
  | "apos" -> Some "'"
  | _ ->
    let is_decimal c = c >= '0' && c <= '9' in
    let is_hex c =
      is_decimal c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    in
    let numeric prefix base valid_digit =
      let n = String.length prefix in
      if String.length name > n && String.sub name 0 n = prefix then begin
        let digits = String.sub name n (String.length name - n) in
        if not (String.for_all valid_digit digits) then None
        else
          match int_of_string_opt (base ^ digits) with
          | Some code when code > 0 && Uchar.is_valid code ->
            let buf = Buffer.create 4 in
            Buffer.add_utf_8_uchar buf (Uchar.of_int code);
            Some (Buffer.contents buf)
          | Some _ | None -> None
      end
      else None
    in
    (match numeric "#x" "0x" is_hex with
     | Some s -> Some s
     | None -> numeric "#" "" is_decimal)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | Some j when j - i - 1 <= 8 ->
        let name = String.sub s (i + 1) (j - i - 1) in
        (match decode_reference name with
         | Some repl ->
           Buffer.add_string buf repl;
           loop (j + 1)
         | None ->
           Buffer.add_char buf '&';
           loop (i + 1))
      | Some _ | None ->
        Buffer.add_char buf '&';
        loop (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

(* A hand-rolled recursive-descent parser over a string with explicit
   position tracking; error positions are 1-based. *)
module Parser = struct
  type state = { src : string; limits : limits; mutable pos : int }

  let line_col st upto =
    let line = ref 1 and col = ref 1 in
    for i = 0 to min upto (String.length st.src) - 1 do
      if st.src.[i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    (!line, !col)

  let fail st message =
    let line, column = line_col st st.pos in
    raise (Parse_error { line; column; message })

  let eof st = st.pos >= String.length st.src
  let peek st = if eof st then '\000' else st.src.[st.pos]
  let advance st = st.pos <- st.pos + 1

  let looking_at st prefix =
    let n = String.length prefix in
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

  let expect st prefix =
    if looking_at st prefix then st.pos <- st.pos + String.length prefix
    else fail st (Printf.sprintf "expected %S" prefix)

  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

  let skip_space st =
    while (not (eof st)) && is_space (peek st) do
      advance st
    done

  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'

  let read_name st =
    let start = st.pos in
    while (not (eof st)) && is_name_char (peek st) do
      advance st
    done;
    if st.pos = start then fail st "expected a name";
    String.sub st.src start (st.pos - start)

  let skip_until st terminator =
    let n = String.length st.src in
    let rec loop () =
      if st.pos >= n then fail st (Printf.sprintf "unterminated %S" terminator)
      else if looking_at st terminator then
        st.pos <- st.pos + String.length terminator
      else begin
        advance st;
        loop ()
      end
    in
    loop ()

  (* Skip comments, processing instructions and declarations that may appear
     between nodes. Returns [true] if something was skipped. *)
  let skip_misc st =
    if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_until st "-->";
      true
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      skip_until st "?>";
      true
    end
    else if looking_at st "<!" then begin
      st.pos <- st.pos + 2;
      skip_until st ">";
      true
    end
    else false

  let read_attribute st =
    let name = read_name st in
    skip_space st;
    expect st "=";
    skip_space st;
    let quote = peek st in
    if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
    advance st;
    let start = st.pos in
    while (not (eof st)) && peek st <> quote do
      advance st
    done;
    if eof st then fail st "unterminated attribute value";
    let raw = String.sub st.src start (st.pos - start) in
    advance st;
    (name, unescape raw)

  let rec read_element st depth =
    check_limit ~limit:"depth" ~actual:depth ~maximum:st.limits.max_depth;
    expect st "<";
    let tag = read_name st in
    let rec attrs acc =
      skip_space st;
      match peek st with
      | '/' ->
        expect st "/>";
        Element (tag, List.rev acc, [])
      | '>' ->
        advance st;
        let children = read_content st tag depth in
        Element (tag, List.rev acc, children)
      | _ -> attrs (read_attribute st :: acc)
    in
    attrs []

  and read_content st tag depth =
    let rec loop acc =
      if eof st then fail st (Printf.sprintf "unterminated element <%s>" tag)
      else if looking_at st "</" then begin
        st.pos <- st.pos + 2;
        let closing = read_name st in
        skip_space st;
        expect st ">";
        if closing <> tag then
          fail st
            (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
        List.rev acc
      end
      else if skip_misc st then loop acc
      else if peek st = '<' then loop (read_element st (depth + 1) :: acc)
      else begin
        let start = st.pos in
        while (not (eof st)) && peek st <> '<' do
          advance st
        done;
        let raw = String.sub st.src start (st.pos - start) in
        if String.trim raw = "" then loop acc
        else loop (Text (unescape raw) :: acc)
      end
    in
    loop []

  let document st =
    let rec prologue () =
      skip_space st;
      if skip_misc st then prologue ()
    in
    prologue ();
    if eof st || peek st <> '<' then fail st "expected a root element";
    let root = read_element st 1 in
    let rec epilogue () =
      skip_space st;
      if skip_misc st then epilogue ()
      else if not (eof st) then fail st "trailing content after root element"
    in
    epilogue ();
    root
end

let parse_string ?(limits = unlimited) s =
  check_limit ~limit:"bytes" ~actual:(String.length s)
    ~maximum:limits.max_bytes;
  Parser.document { Parser.src = s; limits; pos = 0 }

let parse_file ?(limits = unlimited) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* Reject oversized documents from the file length alone, before
         the bytes are pulled into memory. *)
      let length = in_channel_length ic in
      check_limit ~limit:"bytes" ~actual:length ~maximum:limits.max_bytes;
      parse_string ~limits (really_input_string ic length))

let to_string ?(indent = 2) doc =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec node depth = function
    | Text s ->
      pad depth;
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '\n'
    | Element (tag, attrs, children) ->
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
        attrs;
      (match children with
       | [] -> Buffer.add_string buf "/>\n"
       | [ Text s ] ->
         Buffer.add_char buf '>';
         Buffer.add_string buf (escape s);
         Buffer.add_string buf (Printf.sprintf "</%s>\n" tag)
       | children ->
         Buffer.add_string buf ">\n";
         List.iter (node (depth + 1)) children;
         pad depth;
         Buffer.add_string buf (Printf.sprintf "</%s>\n" tag))
  in
  node 0 doc;
  Buffer.contents buf

let tag = function
  | Element (tag, _, _) -> tag
  | Text _ -> invalid_arg "Xml.tag: text node"

let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let attr_exn name node =
  match attr name node with
  | Some v -> v
  | None -> raise Not_found

let children = function
  | Element (_, _, children) -> children
  | Text _ -> []

let child_elements node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let find_all name node =
  List.filter
    (function Element (tag, _, _) -> tag = name | Text _ -> false)
    (children node)

let find_opt name node =
  List.find_opt
    (function Element (tag, _, _) -> tag = name | Text _ -> false)
    (children node)

let text_content node =
  let buf = Buffer.create 32 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element (_, _, children) -> List.iter go children
  in
  go node;
  String.trim (Buffer.contents buf)

let int_attr name node = Option.bind (attr name node) int_of_string_opt
