(** Minimal XML parser and printer.

    Supports the subset of XML needed for PR design descriptions: nested
    elements, attributes, character data, comments, processing instructions
    (skipped), and the five predefined entities. Namespaces, DTDs and CDATA
    sections are out of scope. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string  (** Character data with entities already decoded. *)

exception Parse_error of { line : int; column : int; message : string }
(** Raised by the parsing functions on malformed input. *)

val parse_string : string -> t
(** [parse_string s] parses [s] into the single root element.
    @raise Parse_error on malformed input or a non-element root. *)

val parse_file : string -> t
(** [parse_file path] reads and parses the file at [path].
    @raise Sys_error if the file cannot be read. *)

val to_string : ?indent:int -> t -> string
(** [to_string ?indent doc] pretty-prints [doc]; [indent] is the number of
    spaces per nesting level (default 2). Attribute values and text are
    escaped on output. *)

val escape : string -> string
(** Escape the five characters with predefined entities: ampersand,
    angle brackets, double and single quote. *)

val unescape : string -> string
(** Decode the five predefined entities and decimal/hex character
    references. References are validated strictly (digits only — no
    [int_of_string] extensions such as [&#1_0;] or [&#0x42;]) and
    decoded to UTF-8 for any Unicode scalar value up to U+10FFFF;
    surrogates, zero, out-of-range code points, unknown entities and
    malformed references are left verbatim. *)

(** {1 Accessors} *)

val tag : t -> string
(** [tag e] is the tag name of an element.
    @raise Invalid_argument on [Text]. *)

val attr : string -> t -> string option
(** [attr name e] is the value of attribute [name] on element [e]. *)

val attr_exn : string -> t -> string
(** Like {!attr} but raises [Not_found] when absent. *)

val children : t -> t list
(** Child nodes of an element (empty for [Text]). *)

val child_elements : t -> t list
(** Child nodes that are elements, in document order. *)

val find_all : string -> t -> t list
(** [find_all tag e] is every direct child element of [e] named [tag]. *)

val find_opt : string -> t -> t option
(** First direct child element named [tag], if any. *)

val text_content : t -> string
(** Concatenated character data of a node and its descendants, trimmed. *)

val int_attr : string -> t -> int option
(** [attr] converted with [int_of_string_opt]. *)
