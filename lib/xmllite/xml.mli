(** Minimal XML parser and printer.

    Supports the subset of XML needed for PR design descriptions: nested
    elements, attributes, character data, comments, processing instructions
    (skipped), and the five predefined entities. Namespaces, DTDs and CDATA
    sections are out of scope. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string  (** Character data with entities already decoded. *)

exception Parse_error of { line : int; column : int; message : string }
(** Raised by the parsing functions on malformed input. *)

(** {1 Input guards}

    Untrusted documents (the batch front-end feeds arbitrary files to the
    parser) are bounded before and during parsing: a document larger than
    [max_bytes] is rejected up front, and element nesting deeper than
    [max_depth] is rejected as soon as it is encountered — a
    pathological [<a><a><a>…] document costs O(max_depth), not O(input).
    Both violations raise the {e typed} {!Limit_exceeded} (never a bare
    [Failure]), so callers can distinguish resource-guard rejections from
    syntax errors ({!Parse_error}). *)

type limits = {
  max_bytes : int;  (** Maximum document size in bytes. *)
  max_depth : int;  (** Maximum element nesting depth (root = 1). *)
}

exception Limit_exceeded of { limit : string; actual : int; maximum : int }
(** [limit] names the violated ceiling (["bytes"] or ["depth"]). *)

val default_limits : limits
(** Generous ceilings for trusted inputs: 16 MiB, depth 128 — far above
    any legitimate design description, so guarded parsing is
    behaviour-identical to unguarded parsing on well-formed inputs. *)

val unlimited : limits
(** No ceilings (both fields [max_int]) — the historical behaviour. *)

val parse_string : ?limits:limits -> string -> t
(** [parse_string s] parses [s] into the single root element.
    [limits] defaults to {!unlimited}.
    @raise Parse_error on malformed input or a non-element root.
    @raise Limit_exceeded when [limits] is given and exceeded. *)

val parse_file : ?limits:limits -> string -> t
(** [parse_file path] reads and parses the file at [path].
    @raise Sys_error if the file cannot be read.
    @raise Limit_exceeded when [limits] is given and exceeded (the size
    ceiling is checked against the file length {e before} reading it). *)

val to_string : ?indent:int -> t -> string
(** [to_string ?indent doc] pretty-prints [doc]; [indent] is the number of
    spaces per nesting level (default 2). Attribute values and text are
    escaped on output. *)

val escape : string -> string
(** Escape the five characters with predefined entities: ampersand,
    angle brackets, double and single quote. *)

val unescape : string -> string
(** Decode the five predefined entities and decimal/hex character
    references. References are validated strictly (digits only — no
    [int_of_string] extensions such as [&#1_0;] or [&#0x42;]) and
    decoded to UTF-8 for any Unicode scalar value up to U+10FFFF;
    surrogates, zero, out-of-range code points, unknown entities and
    malformed references are left verbatim. *)

(** {1 Accessors} *)

val tag : t -> string
(** [tag e] is the tag name of an element.
    @raise Invalid_argument on [Text]. *)

val attr : string -> t -> string option
(** [attr name e] is the value of attribute [name] on element [e]. *)

val attr_exn : string -> t -> string
(** Like {!attr} but raises [Not_found] when absent. *)

val children : t -> t list
(** Child nodes of an element (empty for [Text]). *)

val child_elements : t -> t list
(** Child nodes that are elements, in document order. *)

val find_all : string -> t -> t list
(** [find_all tag e] is every direct child element of [e] named [tag]. *)

val find_opt : string -> t -> t option
(** First direct child element named [tag], if any. *)

val text_content : t -> string
(** Concatenated character data of a node and its descendants, trimmed. *)

val int_attr : string -> t -> int option
(** [attr] converted with [int_of_string_opt]. *)
