(* Tests for the columnar layout and the rectangular placer. *)

module Device = Fpga.Device
module Tile = Fpga.Tile
module Resource = Fpga.Resource
module Layout = Floorplan.Layout
module Placer = Floorplan.Placer

let layout_of name = Layout.make (Device.find_exn name)

let count_kind layout kind =
  List.length (Layout.columns_of_kind layout kind)

let layout_tests =
  [ Alcotest.test_case "column counts match the device" `Quick (fun () ->
        List.iter
          (fun (d : Device.t) ->
            let layout = Layout.make d in
            Alcotest.(check int) "width"
              (d.clb_cols + d.bram_cols + d.dsp_cols)
              (Layout.width layout);
            Alcotest.(check int) "clb" d.clb_cols (count_kind layout Tile.Clb);
            Alcotest.(check int) "bram" d.bram_cols (count_kind layout Tile.Bram);
            Alcotest.(check int) "dsp" d.dsp_cols (count_kind layout Tile.Dsp))
          Device.catalogue);
    Alcotest.test_case "rows come from the device" `Quick (fun () ->
        Alcotest.(check int) "fx70t rows" 8 (Layout.rows (layout_of "FX70T")));
    Alcotest.test_case "special columns are spread out" `Quick (fun () ->
        (* No two BRAM columns adjacent on any catalogued device. *)
        List.iter
          (fun d ->
            let layout = Layout.make d in
            let brams = Layout.columns_of_kind layout Tile.Bram in
            let rec no_adjacent = function
              | a :: (b :: _ as rest) -> b - a > 1 && no_adjacent rest
              | [ _ ] | [] -> true
            in
            Alcotest.(check bool) (d.Device.short ^ " spread") true
              (no_adjacent brams))
          Device.catalogue);
    Alcotest.test_case "count_in_window" `Quick (fun () ->
        let layout = layout_of "LX30" in
        let full = Layout.width layout in
        Alcotest.(check int) "all brams" 2
          (Layout.count_in_window layout ~first:0 ~width:full Tile.Bram);
        Alcotest.(check int) "empty window" 0
          (Layout.count_in_window layout ~first:0 ~width:0 Tile.Clb));
    Alcotest.test_case "window bounds checked" `Quick (fun () ->
        let layout = layout_of "LX30" in
        match
          Layout.count_in_window layout ~first:0
            ~width:(Layout.width layout + 1) Tile.Clb
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "kind_at bounds checked" `Quick (fun () ->
        let layout = layout_of "LX30" in
        match Layout.kind_at layout (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "pp renders one char per column" `Quick (fun () ->
        let layout = layout_of "LX20T" in
        let s = Format.asprintf "%a" Layout.pp layout in
        Alcotest.(check int) "length" (Layout.width layout) (String.length s))
  ]

let demand clb bram dsp =
  Placer.demand_of_resources (Resource.make ~bram ~dsp clb)

let verify_placement layout demands (outcome : Placer.outcome) =
  (* Each placed rectangle provides its tile demand, rectangles are within
     bounds and pairwise disjoint. *)
  let rects =
    Array.to_list outcome.placements
    |> List.filter_map Fun.id
    |> List.filter (fun (r : Placer.rect) -> r.height > 0)
  in
  List.iter
    (fun (r : Placer.rect) ->
      Alcotest.(check bool) "within device" true
        (r.row >= 0
         && r.row + r.height <= Layout.rows layout
         && r.col >= 0
         && r.col + r.width <= Layout.width layout))
    rects;
  let overlap (a : Placer.rect) (b : Placer.rect) =
    a.row < b.row + b.height
    && b.row < a.row + a.height
    && a.col < b.col + b.width
    && b.col < a.col + a.width
  in
  let rec pairwise = function
    | [] -> ()
    | r :: rest ->
      List.iter
        (fun r' ->
          Alcotest.(check bool) "disjoint" false (overlap r r'))
        rest;
      pairwise rest
  in
  pairwise rects;
  Array.iteri
    (fun i rect ->
      match rect with
      | Some (r : Placer.rect) when r.height > 0 ->
        let d : Placer.demand = demands.(i) in
        let covered kind =
          r.height * Layout.count_in_window layout ~first:r.col ~width:r.width kind
        in
        Alcotest.(check bool) "clb satisfied" true
          (covered Tile.Clb >= d.clb_tiles);
        Alcotest.(check bool) "bram satisfied" true
          (covered Tile.Bram >= d.bram_tiles);
        Alcotest.(check bool) "dsp satisfied" true
          (covered Tile.Dsp >= d.dsp_tiles)
      | Some _ | None -> ())
    outcome.placements

let placer_tests =
  [ Alcotest.test_case "demand_of_resources quantises" `Quick (fun () ->
        let d = demand 21 1 9 in
        Alcotest.(check int) "clb tiles" 2 d.Placer.clb_tiles;
        Alcotest.(check int) "bram tiles" 1 d.bram_tiles;
        Alcotest.(check int) "dsp tiles" 2 d.dsp_tiles);
    Alcotest.test_case "single small region places" `Quick (fun () ->
        let layout = layout_of "LX30" in
        let demands = [| demand 100 4 8 |] in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "no failures" [] outcome.failed;
        verify_placement layout demands outcome);
    Alcotest.test_case "several regions place disjointly" `Quick (fun () ->
        let layout = layout_of "FX70T" in
        let demands =
          [| demand 400 8 8; demand 1000 16 16; demand 200 0 0; demand 60 4 0 |]
        in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "no failures" [] outcome.failed;
        verify_placement layout demands outcome;
        Alcotest.(check bool) "utilisation sane" true
          (outcome.utilisation > 0. && outcome.utilisation <= 1.));
    Alcotest.test_case "zero demand occupies nothing" `Quick (fun () ->
        let layout = layout_of "LX20T" in
        let demands = [| demand 0 0 0; demand 100 0 0 |] in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "no failures" [] outcome.failed;
        match outcome.placements.(0) with
        | Some r -> Alcotest.(check int) "empty rect" 0 (r.height * r.width)
        | None -> Alcotest.fail "zero demand should trivially place");
    Alcotest.test_case "oversized demand fails" `Quick (fun () ->
        let layout = layout_of "LX20T" in
        let demands = [| demand 10_000 0 0 |] in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "failed" [ 0 ] outcome.failed;
        Alcotest.(check bool) "fits mirror" false (Placer.fits layout demands));
    Alcotest.test_case "scarce-resource demand beyond device fails" `Quick
      (fun () ->
        let layout = layout_of "LX20T" in
        (* LX20T has 24 BRAMs = 6 tiles. *)
        let outcome = Placer.place layout [| demand 20 28 0 |] in
        Alcotest.(check (list int)) "failed" [ 0 ] outcome.failed);
    Alcotest.test_case "regions needing no BRAM avoid BRAM columns" `Quick
      (fun () ->
        (* Waste-aware scoring: a pure-CLB region on a fresh device should
           not cover any BRAM or DSP column if a CLB-only window exists. *)
        let layout = layout_of "FX130T" in
        let outcome = Placer.place layout [| demand 100 0 0 |] in
        match outcome.placements.(0) with
        | Some r ->
          Alcotest.(check int) "no bram" 0
            (Layout.count_in_window layout ~first:r.col ~width:r.width Tile.Bram);
          Alcotest.(check int) "no dsp" 0
            (Layout.count_in_window layout ~first:r.col ~width:r.width Tile.Dsp)
        | None -> Alcotest.fail "expected placement");
    Alcotest.test_case "case-study scheme floorplans on FX130T" `Quick
      (fun () ->
        let design = Prdesign.Design_library.video_receiver in
        match
          Prcore.Engine.solve
            ~target:
              (Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
            design
        with
        | Error m -> Alcotest.fail m
        | Ok o ->
          let scheme = o.Prcore.Engine.scheme in
          let layout = layout_of "FX130T" in
          let demands =
            Array.init
              (scheme.Prcore.Scheme.region_count + 1)
              (fun i ->
                if i < scheme.Prcore.Scheme.region_count then
                  Placer.demand_of_resources
                    (Prcore.Scheme.region_resources scheme i)
                else
                  Placer.demand_of_resources
                    (Prcore.Scheme.static_resources scheme))
          in
          let outcome = Placer.place layout demands in
          Alcotest.(check (list int)) "all placed" [] outcome.failed;
          verify_placement layout demands outcome) ]

(* Regression: [find_spot] used to stop widening a window at the first
   satisfying width, so a slightly wider window with strictly less scarce-
   tile waste was never even considered.  The fixed placer keeps widening
   (bounded by the best area seen) and must therefore agree with a
   brute-force enumeration of {e every} free rectangle on the
   (waste, area) objective. *)

let spot_cost layout (d : Placer.demand) (r : Placer.rect) =
  let covered kind =
    r.height * Layout.count_in_window layout ~first:r.col ~width:r.width kind
  in
  let waste =
    (covered Tile.Clb - d.Placer.clb_tiles)
    + (8 * (covered Tile.Bram - d.bram_tiles))
    + (8 * (covered Tile.Dsp - d.dsp_tiles))
  in
  (waste, r.height * r.width)

(* Exhaustive oracle on an empty layout: the minimal (waste, area) over
   every rectangle of whole tiles that satisfies [d]. *)
let oracle_best_cost layout (d : Placer.demand) =
  let rows = Layout.rows layout and width = Layout.width layout in
  let best = ref None in
  for height = 1 to rows do
    for row = 0 to rows - height do
      for col = 0 to width - 1 do
        for w = 1 to width - col do
          let r : Placer.rect = { row; height; col; width = w } in
          let covered kind =
            height * Layout.count_in_window layout ~first:col ~width:w kind
          in
          if
            covered Tile.Clb >= d.Placer.clb_tiles
            && covered Tile.Bram >= d.bram_tiles
            && covered Tile.Dsp >= d.dsp_tiles
          then begin
            let cost = spot_cost layout d r in
            match !best with
            | Some b when b <= cost -> ()
            | Some _ | None -> best := Some cost
          end
        done
      done
    done
  done;
  !best

let check_against_oracle device (d : Placer.demand) =
  let layout = layout_of device in
  let outcome = Placer.place layout [| d |] in
  match (outcome.placements.(0), oracle_best_cost layout d) with
  | None, None -> ()
  | Some r, Some best ->
    let got = spot_cost layout d r in
    Alcotest.(check (pair int int))
      (Printf.sprintf "optimal (waste, area) on %s" device)
      best got
  | Some _, None -> Alcotest.fail "placer placed an unsatisfiable demand"
  | None, Some _ -> Alcotest.fail "placer missed a satisfiable demand"

let spot_oracle_tests =
  let case name device d =
    Alcotest.test_case name `Quick (fun () -> check_against_oracle device d)
  in
  [ case "clb-only demand" "LX30" (demand 400 0 0);
    case "bram-heavy demand" "LX30" (demand 50 12 0);
    case "dsp-heavy demand" "SX35T" (demand 50 0 24);
    case "mixed demand" "SX35T" (demand 600 8 12);
    case "near-capacity demand" "LX20T" (demand 900 4 4);
    case "single tile" "LX20T" (demand 1 0 0);
    Alcotest.test_case "clb-only region avoids scarce columns" `Quick
      (fun () ->
        (* A pure-CLB demand must not sit on BRAM/DSP columns when free
           CLB columns can serve it: zero scarce-tile waste. *)
        let layout = layout_of "LX30" in
        let d = demand 200 0 0 in
        let outcome = Placer.place layout [| d |] in
        match outcome.placements.(0) with
        | None -> Alcotest.fail "expected a placement"
        | Some r ->
          let covered kind =
            r.Placer.height
            * Layout.count_in_window layout ~first:r.col ~width:r.width kind
          in
          Alcotest.(check int) "no bram columns" 0 (covered Tile.Bram);
          Alcotest.(check int) "no dsp columns" 0 (covered Tile.Dsp)) ]

(* ------------------------------------------------------------------ *)
(* Map glyphs: regression for the aliasing beyond 35 regions, and the
   empty-rect normalisation of zero-volume demands. *)

let map_tests =
  [ Alcotest.test_case "glyphs are distinct below the fallback" `Quick
      (fun () ->
        let glyphs = List.init 59 Placer.glyph in
        let distinct = List.sort_uniq Char.compare glyphs in
        Alcotest.(check int) "59 distinct glyphs" 59 (List.length distinct);
        List.iteri
          (fun i g ->
            Alcotest.(check bool)
              (Printf.sprintf "glyph %d avoids map markers" i)
              false
              (List.mem g [ '#'; '.'; 'B'; 'D'; '+' ]))
          glyphs;
        Alcotest.(check char) "fallback" '+' (Placer.glyph 59);
        Alcotest.(check char) "fallback is constant" '+' (Placer.glyph 4096);
        match Placer.glyph (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "40-region map stays unambiguous" `Quick (fun () ->
        (* Regression: beyond 35 regions the old alphabet ran out and
           aliased region glyphs with the '#' overlap marker. *)
        let layout = layout_of "FX130T" in
        let demands = Array.init 40 (fun _ -> demand 1 0 0) in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "all placed" [] outcome.failed;
        let map = Placer.render_map layout outcome.placements in
        Alcotest.(check bool) "no overlap marker" false
          (String.contains map '#');
        Array.iteri
          (fun i rect ->
            match rect with
            | Some (r : Placer.rect) when not (Placer.is_empty r) ->
              let g = Placer.glyph i in
              Alcotest.(check bool)
                (Printf.sprintf "glyph %c of region %d is on the map" g i)
                true (String.contains map g)
            | Some _ | None -> ())
          outcome.placements);
    Alcotest.test_case "many-region fallback never collides" `Quick
      (fun () ->
        let layout = layout_of "FX200T" in
        let demands = Array.init 62 (fun _ -> demand 1 0 0) in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "all placed" [] outcome.failed;
        let map = Placer.render_map layout outcome.placements in
        Alcotest.(check bool) "fallback rendered" true
          (String.contains map '+');
        Alcotest.(check bool) "no overlap marker" false
          (String.contains map '#'));
    Alcotest.test_case "zero demand normalises to the empty rect" `Quick
      (fun () ->
        let layout = layout_of "LX20T" in
        let demands = [| demand 0 0 0; demand 100 0 0 |] in
        let outcome = Placer.place layout demands in
        Alcotest.(check (list int)) "no failures" [] outcome.failed;
        (match outcome.placements.(0) with
         | Some r ->
           Alcotest.(check bool) "is_empty" true (Placer.is_empty r);
           Alcotest.(check bool) "the canonical empty rect" true
             (r = Placer.empty_rect);
           Alcotest.(check string) "pp_rect" "empty"
             (Format.asprintf "%a" Placer.pp_rect r)
         | None -> Alcotest.fail "zero demand should trivially place");
        (* The empty region paints no cells: its glyph never appears. *)
        let map = Placer.render_map layout outcome.placements in
        Alcotest.(check bool) "glyph absent" false
          (String.contains map (Placer.glyph 0));
        Alcotest.(check bool) "real region present" true
          (String.contains map (Placer.glyph 1)));
    Alcotest.test_case "oracle: zero demand with a real rect is V-FLP-005"
      `Quick (fun () ->
        let layout = layout_of "LX20T" in
        let demands = [| demand 0 0 0; demand 100 0 0 |] in
        let outcome = Placer.place layout demands in
        let clean =
          Prverify.Oracle.check_floorplan ~layout ~demands outcome.placements
        in
        Alcotest.(check bool) "normalised placement is clean" true
          (Prverify.Diagnostic.ok clean);
        (* Hand the zero-volume demand a real rectangle: the oracle must
           reject it even though it covers its (empty) demand. *)
        let tampered = Array.copy outcome.placements in
        tampered.(0) <- Some { Placer.row = 0; height = 1; col = 0; width = 1 };
        let diags =
          Prverify.Oracle.check_floorplan ~layout ~demands tampered
        in
        Alcotest.(check bool) "V-FLP-005 raised" true
          (List.exists
             (fun (d : Prverify.Diagnostic.t) ->
               d.Prverify.Diagnostic.code = "V-FLP-005")
             (Prverify.Diagnostic.errors diags))) ]

(* ------------------------------------------------------------------ *)
(* The placeability estimator. *)

module Estimate = Floorplan.Estimate

let est_res ?bram ?dsp clb = Resource.make ?bram ?dsp clb

let estimate_tests =
  [ Alcotest.test_case "small demand is placeable with bounded waste"
      `Quick (fun () ->
        let est = Estimate.create (layout_of "LX30") in
        let r = Estimate.assess est [| est_res 100 |] in
        Alcotest.(check bool) "placeable" true
          (r.Estimate.verdict = Estimate.Placeable);
        Alcotest.(check bool) "waste-band penalty" true
          (r.Estimate.penalty >= 0 && r.Estimate.penalty < 1 lsl 22));
    Alcotest.test_case "capacity deficit is infeasible" `Quick (fun () ->
        let est = Estimate.create (layout_of "LX20T") in
        let r = Estimate.assess est [| est_res 100_000 |] in
        Alcotest.(check bool) "infeasible" true
          (r.Estimate.verdict = Estimate.Infeasible);
        Alcotest.(check bool) "infeasible band" true
          (r.Estimate.penalty >= 1 lsl 26));
    Alcotest.test_case "scarce fragmentation is crowded" `Quick (fun () ->
        (* LX30 has two BRAM columns: three demands each needing their
           own BRAM column cannot strip-pack, though each fits alone and
           total capacity suffices. *)
        let est = Estimate.create (layout_of "LX30") in
        let d = est_res 20 ~bram:1 in
        let r = Estimate.assess est [| d; d; d |] in
        Alcotest.(check bool) "crowded" true
          (r.Estimate.verdict = Estimate.Crowded);
        Alcotest.(check bool) "crowded band" true
          (r.Estimate.penalty >= 1 lsl 22 && r.Estimate.penalty < 1 lsl 26);
        Alcotest.(check bool) "fragmentation reported" true
          (r.Estimate.fragmentation > 0.));
    Alcotest.test_case "penalty is order-insensitive" `Quick (fun () ->
        let est = Estimate.create (layout_of "SX35T") in
        let a = est_res 400 ~bram:2
        and b = est_res 90 ~dsp:8
        and c = est_res 1200 in
        Alcotest.(check int) "permutation"
          (Estimate.penalty est [| a; b; c |])
          (Estimate.penalty est [| c; a; b |]));
    Alcotest.test_case "zero demands are ignored" `Quick (fun () ->
        let est = Estimate.create (layout_of "SX35T") in
        let a = est_res 400 ~bram:2 in
        Alcotest.(check int) "padding with zeros"
          (Estimate.penalty est [| a |])
          (Estimate.penalty est [| Resource.zero; a; Resource.zero |])) ]

(* The verify oracle re-derives the estimator's penalty with direct
   column scans (no shared code): both must agree bit-exactly on every
   library design, and a tampered report must raise V-FLP-006. *)
let oracle_penalty_tests =
  [ Alcotest.test_case "oracle re-derivation matches the estimator" `Quick
      (fun () ->
        List.iter
          (fun (dname, design) ->
            let scheme = Prcore.Scheme.one_module_per_region design in
            List.iter
              (fun device ->
                let layout = layout_of device in
                let expected =
                  Floorplan.Estimate.penalty
                    (Floorplan.Estimate.create layout)
                    (Prcore.Cost.placement_demands scheme)
                in
                Alcotest.(check int)
                  (Printf.sprintf "%s on %s" dname device)
                  expected
                  (Prverify.Oracle.derive_placement_penalty ~layout scheme))
              [ "LX30"; "SX35T"; "FX70T" ])
          Prdesign.Design_library.all);
    Alcotest.test_case "correct report passes, tampered is V-FLP-006"
      `Quick (fun () ->
        let scheme =
          Prcore.Scheme.one_module_per_region
            Prdesign.Design_library.fragmented_filter
        in
        let layout = layout_of "LX30" in
        let good = Prverify.Oracle.derive_placement_penalty ~layout scheme in
        Alcotest.(check bool) "clean" true
          (Prverify.Diagnostic.ok
             (Prverify.Oracle.check_placement_penalty scheme ~layout
                ~reported:good));
        let diags =
          Prverify.Oracle.check_placement_penalty scheme ~layout
            ~reported:(good + 1)
        in
        Alcotest.(check bool) "V-FLP-006" true
          (Prverify.Diagnostic.has_code "V-FLP-006" diags)) ]

(* Differential one-sided soundness: whenever the estimator calls a
   demand set [Placeable], the real placer must succeed on it. (The
   converse may fail: [Crowded] sets can still place.) *)
let prop_estimator_sound =
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl [ "LX20T"; "LX30"; "SX35T"; "FX70T" ])
        (list_size (1 -- 5) (triple (0 -- 2000) (0 -- 20) (0 -- 30))))
  in
  QCheck2.Test.make
    ~name:"estimator Placeable implies the placer succeeds" ~count:120 gen
    (fun (device, specs) ->
      let layout = layout_of device in
      let est = Estimate.create layout in
      let resources =
        Array.of_list
          (List.map (fun (c, b, d) -> Resource.make ~bram:b ~dsp:d c) specs)
      in
      let r = Estimate.assess est resources in
      if r.Estimate.verdict <> Estimate.Placeable then true
      else begin
        let demands = Array.map Placer.demand_of_resources resources in
        let outcome = Placer.place layout demands in
        outcome.Placer.failed = []
      end)

(* Utilisation is exactly the covered cell fraction: the placements are
   pairwise disjoint, so it must equal the summed rectangle areas over
   the fabric area. *)
let prop_utilisation_exact =
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl [ "LX20T"; "LX30"; "SX35T" ])
        (list_size (1 -- 5) (triple (0 -- 1500) (0 -- 12) (0 -- 16))))
  in
  QCheck2.Test.make ~name:"utilisation equals the covered cell fraction"
    ~count:80 gen (fun (device, specs) ->
      let layout = layout_of device in
      let demands =
        Array.of_list (List.map (fun (c, b, d) -> demand c b d) specs)
      in
      let outcome = Placer.place layout demands in
      let covered =
        Array.fold_left
          (fun acc rect ->
            match rect with
            | Some (r : Placer.rect) when not (Placer.is_empty r) ->
              acc + (r.height * r.width)
            | Some _ | None -> acc)
          0 outcome.placements
      in
      let cells = Layout.rows layout * Layout.width layout in
      outcome.utilisation = float_of_int covered /. float_of_int cells)

(* fit_on_sweep picks the capacity-smallest workable device: everything
   strictly smaller in the sweep must fail to place the demands. *)
let prop_fit_on_sweep_smallest =
  let gen =
    QCheck2.Gen.(list_size (1 -- 4) (triple (0 -- 3000) (0 -- 16) (0 -- 24)))
  in
  QCheck2.Test.make
    ~name:"fit_on_sweep returns the capacity-smallest fitting device"
    ~count:30 gen (fun specs ->
      let demands =
        Array.of_list (List.map (fun (c, b, d) -> demand c b d) specs)
      in
      match Placer.fit_on_sweep demands with
      | None -> true
      | Some (device, outcome) ->
        outcome.Placer.failed = []
        && List.for_all
             (fun d ->
               if Device.compare_capacity d device < 0 then
                 (Placer.place (Layout.make d) demands).Placer.failed <> []
               else true)
             Device.sweep)

(* Property: on an empty layout the placer matches the brute-force
   (waste, area) optimum for any single demand. *)
let prop_spot_optimal =
  let gen =
    QCheck2.Gen.(
      pair (oneofl [ "LX20T"; "LX30" ]) (triple (0 -- 1200) (0 -- 12) (0 -- 16)))
  in
  QCheck2.Test.make ~name:"single placement is (waste, area)-optimal"
    ~count:40 gen (fun (device, (c, b, ds)) ->
      check_against_oracle device (demand c b ds);
      true)

(* Property: whatever the outcome, reported placements satisfy their
   demands and never overlap. *)
let prop_placements_valid =
  let gen =
    QCheck2.Gen.(
      pair (oneofl [ "LX20T"; "LX30"; "SX35T"; "FX70T" ])
        (list_size (1 -- 5)
           (triple (0 -- 2000) (0 -- 20) (0 -- 30))))
  in
  QCheck2.Test.make ~name:"placements satisfy demands and stay disjoint"
    ~count:60 gen (fun (device, specs) ->
      let layout = layout_of device in
      let demands =
        Array.of_list (List.map (fun (c, b, d) -> demand c b d) specs)
      in
      let outcome = Placer.place layout demands in
      verify_placement layout demands outcome;
      true)

let () =
  Alcotest.run "floorplan"
    [ ("layout", layout_tests);
      ("placer", placer_tests);
      ("map", map_tests);
      ("estimate", estimate_tests);
      ("oracle-penalty", oracle_penalty_tests);
      ("spot-oracle", spot_oracle_tests);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_spot_optimal;
           prop_placements_valid;
           prop_estimator_sound;
           prop_utilisation_exact;
           prop_fit_on_sweep_smallest ]) ]
