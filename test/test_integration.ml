(* End-to-end integration tests: the full pipeline from an XML design
   description through clustering, covering, allocation, floorplanning and
   runtime simulation — plus cross-module invariants on synthetic
   populations. *)

module Design = Prdesign.Design
module Design_xml = Prdesign.Design_xml
module Design_library = Prdesign.Design_library
module Engine = Prcore.Engine
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Resource = Fpga.Resource

let radio_xml =
  {|<design name="radio">
      <static clb="90" bram="8"/>
      <module name="SEN">
        <mode name="energy" clb="450" bram="4" dsp="8"/>
        <mode name="cyclo" clb="1800" bram="12" dsp="36"/>
      </module>
      <module name="MOD">
        <mode name="bpsk" clb="300" dsp="4"/>
        <mode name="qam" clb="980" dsp="24"/>
      </module>
      <module name="COD">
        <mode name="conv" clb="350" bram="2"/>
        <mode name="ldpc" clb="1400" bram="18" dsp="6"/>
      </module>
      <configurations>
        <configuration name="sense">
          <use module="SEN" mode="energy"/>
        </configuration>
        <configuration name="sense-deep">
          <use module="SEN" mode="cyclo"/>
        </configuration>
        <configuration name="tx-lo">
          <use module="MOD" mode="bpsk"/><use module="COD" mode="conv"/>
        </configuration>
        <configuration name="tx-hi">
          <use module="MOD" mode="qam"/><use module="COD" mode="ldpc"/>
        </configuration>
      </configurations>
    </design>|}

let pipeline_tests =
  [ Alcotest.test_case "xml -> partition -> floorplan -> simulate" `Quick
      (fun () ->
        let design = Design_xml.load_string radio_xml in
        (* 1. Partition on an automatically selected device. *)
        let outcome =
          match Engine.solve ~target:Engine.Auto design with
          | Ok o -> o
          | Error m -> Alcotest.fail m
        in
        let scheme = outcome.Engine.scheme in
        Alcotest.(check bool) "fits" true
          (Cost.fits outcome.Engine.evaluation ~budget:outcome.Engine.budget);
        (* 2. Floorplan, escalating past devices where the rectangles do
           not fit (the paper's feedback loop). *)
        let demands =
          Array.init
            (scheme.Scheme.region_count + 1)
            (fun i ->
              if i < scheme.Scheme.region_count then
                Floorplan.Placer.demand_of_resources
                  (Scheme.region_resources scheme i)
              else
                Floorplan.Placer.demand_of_resources
                  (Scheme.static_resources scheme))
        in
        (match Floorplan.Placer.fit_on_sweep demands with
         | Some (_, placement) ->
           Alcotest.(check (list int)) "floorplan feasible" [] placement.failed
         | None -> Alcotest.fail "no device can floorplan the scheme");
        (* 3. Simulate an adaptation walk and convert to wall-clock. *)
        let rng = Synth.Rng.make 1 in
        let sequence =
          Runtime.Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:(Design.configuration_count design)
            ~steps:500 ~initial:0
        in
        let stats = Runtime.Manager.simulate scheme ~initial:0 ~sequence in
        Alcotest.(check bool) "simulation ran" true
          (stats.Runtime.Manager.steps = 500);
        Alcotest.(check bool) "wall clock accumulates" true
          (stats.total_seconds >= 0.));
    Alcotest.test_case "sensing/transmission split promotes sharing" `Quick
      (fun () ->
        (* The radio's sensing and transmission configurations are
           disjoint, so sensing and tx modules can share regions - the
           engine must beat one-module-per-region's area. *)
        let design = Design_xml.load_string radio_xml in
        match Engine.solve ~target:Engine.Auto design with
        | Ok o ->
          let modular = Baselines.Schemes.one_module_per_region design in
          Alcotest.(check bool) "beats modular on total" true
            (o.Engine.evaluation.Cost.total_frames
             <= modular.evaluation.Cost.total_frames)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "designs saved by the CLI path reload identically"
      `Quick (fun () ->
        let dir = Filename.temp_file "prpart" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Sys.rmdir dir)
          (fun () ->
            List.iter
              (fun (_, d) ->
                let path =
                  Filename.concat dir (d.Design.name ^ ".xml")
                in
                Design_xml.save_file path d;
                let d' = Design_xml.load_file path in
                Alcotest.(check int)
                  (d.Design.name ^ " configs")
                  (Design.configuration_count d)
                  (Design.configuration_count d'))
              (Synth.Generator.batch ~seed:5 ~count:6 ()))) ]

let paper_flow_tests =
  [ Alcotest.test_case "Fig. 6 feasibility gate: reject before clustering"
      `Quick (fun () ->
        (* The flow chart checks the largest configuration against the
           device before anything else. *)
        let design = Design_library.video_receiver in
        match
          Engine.solve ~target:(Engine.Budget (Resource.make 1000)) design
        with
        | Error message ->
          Alcotest.(check bool) "mentions single region" true
            (String.length message > 0)
        | Ok _ -> Alcotest.fail "expected infeasibility");
    Alcotest.test_case "montone special case solves with zero time" `Quick
      (fun () ->
        (* §IV-D: disjoint configurations mean one region per module never
           reconfigures; with enough area the engine should find zero. *)
        let design = Design_library.montone_example in
        match Engine.solve ~target:Engine.Auto design with
        | Ok o ->
          Alcotest.(check int) "zero total" 0
            o.Engine.evaluation.Cost.total_frames
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "escalation happens and terminates" `Quick (fun () ->
        (* A design whose single-region bound fits LX20T but that cannot be
           partitioned better there should escalate, not loop. *)
        let seeds = List.init 30 Fun.id in
        let escalated =
          List.exists
            (fun seed ->
              let d =
                Synth.Generator.generate (Synth.Rng.make seed)
                  Synth.Generator.Logic_intensive ~index:seed
              in
              match Engine.solve ~target:Engine.Auto d with
              | Ok o -> o.Engine.escalations > 0
              | Error _ -> false)
            seeds
        in
        Alcotest.(check bool) "some design escalated" true escalated) ]

let cross_checks =
  [ Alcotest.test_case "evaluation resources equal scheme resources" `Quick
      (fun () ->
        List.iter
          (fun (_, d) ->
            match Engine.solve ~target:Engine.Auto d with
            | Error _ -> ()
            | Ok o ->
              let s = o.Engine.scheme in
              Alcotest.(check bool) "used = total_resources" true
                (Resource.equal o.Engine.evaluation.Cost.used
                   (Scheme.total_resources s)))
          (Synth.Generator.batch ~seed:77 ~count:10 ()));
    Alcotest.test_case "transition table symmetric for engine schemes" `Quick
      (fun () ->
        List.iter
          (fun (_, d) ->
            match Engine.solve ~target:Engine.Auto d with
            | Error _ -> ()
            | Ok o ->
              let t = Runtime.Transition.make o.Engine.scheme in
              let n = Design.configuration_count d in
              for i = 0 to n - 1 do
                for j = 0 to n - 1 do
                  Alcotest.(check int) "sym"
                    (Runtime.Transition.frames t i j)
                    (Runtime.Transition.frames t j i)
                done
              done)
          (Synth.Generator.batch ~seed:78 ~count:5 ()));
    Alcotest.test_case "every region hosts at least one partition" `Quick
      (fun () ->
        List.iter
          (fun (_, d) ->
            match Engine.solve ~target:Engine.Auto d with
            | Error _ -> ()
            | Ok o ->
              let s = o.Engine.scheme in
              for r = 0 to s.Scheme.region_count - 1 do
                Alcotest.(check bool) "non-empty" true
                  (Scheme.region_members s r <> [])
              done)
          (Synth.Generator.batch ~seed:79 ~count:10 ())) ]

(* ------------------------------------------------------------------- CLI *)

(* Under `dune runtest` the binary runs from _build/default/test, and
   test/dune depends on ../bin/prpart.exe, so the CLI is always fresh;
   the fallbacks cover a `dune exec` from the project root. *)
let prpart =
  let candidates =
    [ Filename.concat (Filename.concat ".." "bin") "prpart.exe";
      Filename.concat
        (Filename.concat (Filename.concat "_build" "default") "bin")
        "prpart.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_prpart args =
  let out = Filename.temp_file "prpart" ".out" in
  let err = Filename.temp_file "prpart" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let status =
        Sys.command (Filename.quote_command prpart ~stdout:out ~stderr:err args)
      in
      (status, read_file out, read_file err))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let cli_tests =
  [ Alcotest.test_case "all CLI failure modes share one exit code" `Quick
      (fun () ->
        (* Unknown design, unknown device, infeasible budget and an
           unwritable --save-scheme path must all fail identically: a
           message on stderr and the same Cmdliner error status. *)
        let bad_design, out1, err1 =
          run_prpart [ "partition"; "no-such-design" ]
        in
        Alcotest.(check bool) "nonzero exit" true (bad_design <> 0);
        Alcotest.(check bool) "error on stderr" true (String.length err1 > 0);
        Alcotest.(check string) "nothing on stdout" "" out1;
        List.iter
          (fun (label, args) ->
            let status, _, err = run_prpart args in
            Alcotest.(check int) (label ^ " exit code") bad_design status;
            Alcotest.(check bool) (label ^ " stderr") true
              (String.length err > 0))
          [ ( "unknown device",
              [ "partition"; "running-example"; "--device"; "NOPE" ] );
            ( "infeasible budget",
              [ "partition"; "running-example"; "--budget"; "10" ] );
            ( "unwritable save-scheme",
              [ "partition"; "running-example"; "--save-scheme";
                "/no-such-dir/x/y.xml" ] );
            ("flow bad design", [ "flow"; "no-such-design" ]);
            ("baselines bad design", [ "baselines"; "no-such-design" ]);
            ( "simulate bad replay",
              [ "simulate"; "running-example"; "--replay"; "/no/such/trace" ]
            ) ]);
    Alcotest.test_case "--trace writes valid, balanced JSONL and --stats \
                        prints tables" `Quick (fun () ->
        let trace = Filename.temp_file "prpart" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists trace then Sys.remove trace)
          (fun () ->
            let status, out, err =
              run_prpart
                [ "partition"; "video-receiver"; "--budget"; "6800,50,150";
                  "--trace"; trace; "--stats" ]
            in
            Alcotest.(check int) "exit 0" 0 status;
            Alcotest.(check string) "stderr empty" "" err;
            Alcotest.(check bool) "stats table" true
              (contains out "phase timings");
            Alcotest.(check bool) "cost evaluations line" true
              (contains out "cost evaluations:");
            (* Every line parses; span begin/end pairs balance. *)
            let lines =
              List.filter
                (fun l -> String.trim l <> "")
                (String.split_on_char '\n' (read_file trace))
            in
            Alcotest.(check bool) "trace nonempty" true (lines <> []);
            let events =
              List.map
                (fun line ->
                  match Prtelemetry.Json.of_string line with
                  | Error m ->
                    Alcotest.fail
                      (Printf.sprintf "line %S is not JSON: %s" line m)
                  | Ok v -> (
                    match Prtelemetry.Event.of_json v with
                    | Ok e -> e
                    | Error m -> Alcotest.fail ("bad event: " ^ m)))
                lines
            in
            let depth =
              List.fold_left
                (fun depth (e : Prtelemetry.Event.t) ->
                  match e.kind with
                  | Prtelemetry.Event.Begin -> depth + 1
                  | Prtelemetry.Event.End ->
                    Alcotest.(check bool) "never negative" true (depth > 0);
                    depth - 1
                  | _ -> depth)
                0 events
            in
            Alcotest.(check int) "begin/end balanced" 0 depth;
            Alcotest.(check bool) "has engine.solve" true
              (List.exists
                 (fun (e : Prtelemetry.Event.t) -> e.name = "engine.solve")
                 events)));
    Alcotest.test_case "no flags means no telemetry output" `Quick (fun () ->
        let status, out, err =
          run_prpart
            [ "partition"; "video-receiver"; "--budget"; "6800,50,150" ]
        in
        Alcotest.(check int) "exit 0" 0 status;
        Alcotest.(check string) "stderr empty" "" err;
        Alcotest.(check bool) "no stats table" false
          (contains out "phase timings");
        Alcotest.(check bool) "no cost evaluations" false
          (contains out "cost evaluations:"));
    Alcotest.test_case "simulate records and replays via --replay" `Quick
      (fun () ->
        let walk = Filename.temp_file "prpart" ".trace" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists walk then Sys.remove walk)
          (fun () ->
            let status, _, err =
              run_prpart
                [ "simulate"; "running-example"; "--steps"; "50";
                  "--save-trace"; walk ]
            in
            Alcotest.(check string) "record stderr" "" err;
            Alcotest.(check int) "record ok" 0 status;
            let status, out, _ =
              run_prpart
                [ "simulate"; "running-example"; "--replay"; walk; "--stats" ]
            in
            Alcotest.(check int) "replay ok" 0 status;
            Alcotest.(check bool) "replay simulated" true
              (contains out "50 steps");
            Alcotest.(check bool) "runtime counters" true
              (contains out "runtime.steps"))) ]

let () =
  Alcotest.run "integration"
    [ ("pipeline", pipeline_tests);
      ("paper-flow", paper_flow_tests);
      ("cross-checks", cross_checks);
      ("cli", cli_tests) ]
