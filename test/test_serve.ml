(* Prserve: the crash-safe partitioning daemon.

   Covers the bounded line reader (shared with `prpart batch`), the
   request/reply protocol grammar, the content-addressed crash-safe
   cache (LRU, persistence, quarantine of corrupt entries), bounded
   fair admission, the in-process daemon round-trip (SOLVE/STATUS/
   HEALTH/SHUTDOWN), overload shedding, the socket endpoint, and a
   concurrent QCheck soak cross-checking replies against fresh
   [Engine.solve] results. *)

module Reader = Prserve.Reader
module Protocol = Prserve.Protocol
module Cache = Prserve.Cache
module Admission = Prserve.Admission
module Server = Prserve.Server
module Endpoint = Prserve.Endpoint
module Budget = Prguard.Budget
module Engine = Prcore.Engine

(* ------------------------------------------------------------- helpers *)

let temp_dir prefix =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  (match Prguard.Atomic_io.mkdir_p path with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let fx70t = Fpga.Device.find_exn "FX70T"

(* A deterministic server configuration: fixed device, no deadline, no
   ladder — replies must be bit-identical to a fresh unguarded solve. *)
let deterministic_config ?(telemetry = Prtelemetry.null) ?cache_dir
    ?(jobs = 2) ?(queue_capacity = 64) ?(client_cap = 16)
    ?(shed_thresholds_ms = [| 1e9; 1e9; 1e9 |]) () =
  { (Server.default_config ~telemetry ()) with
    Server.target = Engine.Fixed fx70t;
    deadline_ms = None;
    jobs;
    queue_capacity;
    client_cap;
    cache_dir;
    shed_thresholds_ms }

let create_server config =
  match Server.create config with
  | Ok s -> s
  | Error m -> Alcotest.fail m

let reader_of_string ?max_line_bytes s =
  let pos = ref 0 in
  Reader.of_refill ?max_line_bytes (fun buf len ->
      let n = min len (String.length s - !pos) in
      Bytes.blit_string s !pos buf 0 n;
      pos := !pos + n;
      n)

let lines_of ?max_line_bytes s =
  let r = reader_of_string ?max_line_bytes s in
  match Reader.fold_lines r ~init:[] (fun ~line:_ acc l -> l :: acc) with
  | Ok acc -> Ok (List.rev acc)
  | Error e -> Error e

let field_of reply name =
  (* Pull a bare JSON scalar out of a one-line reply; enough for tests. *)
  let marker = Printf.sprintf "\"%s\":" name in
  let rec find i =
    if i + String.length marker > String.length reply then None
    else if String.sub reply i (String.length marker) = marker then
      let start = i + String.length marker in
      let stop = ref start in
      let depth_done = ref false in
      while (not !depth_done) && !stop < String.length reply do
        (match reply.[!stop] with
         | ',' | '}' -> depth_done := true
         | _ -> incr stop)
      done;
      Some (String.sub reply start (!stop - start))
    else find (i + 1)
  in
  find 0

let design_xml_one_line design =
  String.map
    (fun c -> if c = '\n' || c = '\r' then ' ' else c)
    (Prdesign.Design_xml.to_string design)

let fresh_signature design =
  match Engine.solve ~target:(Engine.Fixed fx70t) design with
  | Error m -> Alcotest.fail m
  | Ok o -> Bitgen.Crc32.hex_digest (Prcore.Memo.scheme_signature o.Engine.scheme)

(* -------------------------------------------------------------- reader *)

let reader_tests =
  [ Alcotest.test_case "splits lines, CRLF and missing final newline" `Quick
      (fun () ->
        (match lines_of "a\nbb\r\nccc" with
         | Ok l ->
           Alcotest.(check (list string)) "lines" [ "a"; "bb"; "ccc" ] l
         | Error e -> Alcotest.fail (Reader.error_message e));
        match lines_of "" with
        | Ok l -> Alcotest.(check (list string)) "empty" [] l
        | Error e -> Alcotest.fail (Reader.error_message e));
    Alcotest.test_case "line numbers track the stream" `Quick (fun () ->
        let r = reader_of_string "one\ntwo\n" in
        Alcotest.(check int) "before" 0 (Reader.line_number r);
        (match Reader.next r with
         | Ok (Some "one") -> ()
         | _ -> Alcotest.fail "line 1");
        Alcotest.(check int) "after one" 1 (Reader.line_number r);
        (match Reader.next r with
         | Ok (Some "two") -> ()
         | _ -> Alcotest.fail "line 2");
        match Reader.next r with
        | Ok None -> ()
        | _ -> Alcotest.fail "eof");
    Alcotest.test_case "overlong line is a typed, sticky error" `Quick
      (fun () ->
        let r = reader_of_string ~max_line_bytes:8 "short\nthis line is far too long\nnext\n" in
        (match Reader.next r with
         | Ok (Some "short") -> ()
         | _ -> Alcotest.fail "first line");
        (match Reader.next r with
         | Error (Reader.Line_too_long { line = 2; limit = 8 }) -> ()
         | _ -> Alcotest.fail "expected Line_too_long");
        (* Poisoned: framing is lost, the error repeats. *)
        match Reader.next r with
        | Error (Reader.Line_too_long _) -> ()
        | _ -> Alcotest.fail "expected sticky error");
    Alcotest.test_case "NUL byte classifies the stream as binary" `Quick
      (fun () ->
        match lines_of "ok\nbad\000bytes\n" with
        | Error (Reader.Binary_input { line = 2 }) -> ()
        | Ok _ -> Alcotest.fail "binary input accepted"
        | Error e -> Alcotest.fail (Reader.error_message e));
    Alcotest.test_case "bounded memory: long input within limit is fine" `Quick
      (fun () ->
        let big = String.make 100_000 'x' in
        match lines_of ~max_line_bytes:200_000 (big ^ "\n" ^ big) with
        | Ok [ a; b ] ->
          Alcotest.(check int) "a" 100_000 (String.length a);
          Alcotest.(check int) "b" 100_000 (String.length b)
        | _ -> Alcotest.fail "expected two lines") ]

(* ------------------------------------------------------------ protocol *)

let proto_parse line =
  match Protocol.parse line with
  | Ok r -> r
  | Error m -> Alcotest.fail (line ^ ": " ^ m)

let protocol_tests =
  [ Alcotest.test_case "verbs parse case-insensitively" `Quick (fun () ->
        (match proto_parse "status" with
         | Protocol.Status -> ()
         | _ -> Alcotest.fail "status");
        (match proto_parse "  HEALTH  " with
         | Protocol.Health -> ()
         | _ -> Alcotest.fail "health");
        match proto_parse "Shutdown" with
        | Protocol.Shutdown -> ()
        | _ -> Alcotest.fail "shutdown");
    Alcotest.test_case "SOLVE named, with client id, and inline" `Quick
      (fun () ->
        (match proto_parse "SOLVE video-receiver" with
         | Protocol.Solve { client = "anon"; spec = Protocol.Named "video-receiver" }
           -> ()
         | _ -> Alcotest.fail "named");
        (match proto_parse "SOLVE client=alice designs/foo.xml" with
         | Protocol.Solve { client = "alice"; spec = Protocol.Named "designs/foo.xml" }
           -> ()
         | _ -> Alcotest.fail "client id");
        match proto_parse "SOLVE client=bob inline:<design name='x'/>" with
        | Protocol.Solve { client = "bob"; spec = Protocol.Inline xml } ->
          Alcotest.(check string) "xml" "<design name='x'/>" xml
        | _ -> Alcotest.fail "inline");
    Alcotest.test_case "syntax errors are typed" `Quick (fun () ->
        let bad l =
          match Protocol.parse l with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail ("accepted: " ^ l)
        in
        bad "";
        bad "   ";
        bad "FROBNICATE x";
        bad "SOLVE";
        bad "SOLVE client=bad/id design";
        bad "SOLVE client=a inline:");
    Alcotest.test_case "reject replies carry stable codes" `Quick (fun () ->
        let r =
          Protocol.render_reject
            (Protocol.Queue_full { depth = 64; capacity = 64 })
        in
        Alcotest.(check bool) "prefix" true (starts_with "REJECT {" r);
        Alcotest.(check bool) "code" true (contains r "\"queue-full\"");
        let r2 =
          Protocol.render_reject
            (Protocol.Client_cap { client = "c"; in_flight = 9; cap = 8 })
        in
        Alcotest.(check bool) "cap code" true (contains r2 "\"client-cap\"");
        Alcotest.(check bool) "draining" true
          (contains (Protocol.render_reject Protocol.Draining) "\"draining\""));
    Alcotest.test_case "json escaping in replies" `Quick (fun () ->
        let r = Protocol.render_err "quote \" backslash \\ newline \n" in
        Alcotest.(check bool) "escaped" true
          (contains r "quote \\\" backslash \\\\ newline \\n")) ]

(* --------------------------------------------------------------- cache *)

let sample_entry ?(key = "config\n<design>bytes</design>") () =
  { Cache.key;
    design = "d";
    scheme_xml = "<scheme design=\"d\">\n<partition/>\n</scheme>";
    regions = 3;
    total_frames = 1234;
    worst_frames = 99;
    device = Some "XC5VFX70T";
    signature = "deadbeef" }

let cache_tests =
  [ Alcotest.test_case "entry encode/decode round-trips" `Quick (fun () ->
        let e = sample_entry () in
        match Cache.decode_entry (Cache.encode_entry e) with
        | Ok e' ->
          Alcotest.(check bool) "equal" true (e = e');
          Alcotest.(check string) "key" e.Cache.key e'.Cache.key
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "decode rejects truncation and trailing bytes" `Quick
      (fun () ->
        let s = Cache.encode_entry (sample_entry ()) in
        (match Cache.decode_entry (String.sub s 0 (String.length s - 3)) with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "accepted truncated entry");
        (match Cache.decode_entry (s ^ "x") with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "accepted trailing bytes");
        match Cache.decode_entry "garbage" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted garbage");
    Alcotest.test_case "LRU evicts the least recently used" `Quick (fun () ->
        let t =
          match Cache.create ~capacity:2 () with
          | Ok t -> t
          | Error m -> Alcotest.fail m
        in
        let e k = { (sample_entry ()) with Cache.key = k } in
        Cache.add t (e "a");
        Cache.add t (e "b");
        (* Touch "a" so "b" is the LRU victim. *)
        Alcotest.(check bool) "hit a" true (Cache.find t ~key:"a" <> None);
        Cache.add t (e "c");
        Alcotest.(check int) "bounded" 2 (Cache.length t);
        Alcotest.(check bool) "b evicted" true (Cache.find t ~key:"b" = None);
        Alcotest.(check bool) "a kept" true (Cache.find t ~key:"a" <> None);
        Alcotest.(check bool) "c kept" true (Cache.find t ~key:"c" <> None));
    Alcotest.test_case "persists and warms across restart" `Quick (fun () ->
        let dir = temp_dir "prserve-cache" in
        (match Cache.create ~dir () with
         | Error m -> Alcotest.fail m
         | Ok t ->
           Cache.add t (sample_entry ());
           Alcotest.(check int) "stored" 1 (Cache.length t));
        match Cache.create ~dir () with
        | Error m -> Alcotest.fail m
        | Ok t2 ->
          Alcotest.(check int) "warmed" 1 (Cache.length t2);
          (match Cache.find t2 ~key:(sample_entry ()).Cache.key with
           | Some e ->
             Alcotest.(check int) "frames" 1234 e.Cache.total_frames;
             Alcotest.(check string) "scheme bytes" (sample_entry ()).Cache.scheme_xml
               e.Cache.scheme_xml
           | None -> Alcotest.fail "warm miss");
          match Cache.recovery t2 with
          | Some r -> Alcotest.(check bool) "clean" true (Prguard.Atomic_io.clean r)
          | None -> Alcotest.fail "no recovery report");
    Alcotest.test_case "bit-flipped entry is quarantined on restart" `Quick
      (fun () ->
        let dir = temp_dir "prserve-cache" in
        (match Cache.create ~dir () with
         | Error m -> Alcotest.fail m
         | Ok t -> Cache.add t (sample_entry ()));
        let entry_file =
          Sys.readdir dir |> Array.to_list
          |> List.find (fun f -> Filename.check_suffix f ".entry")
          |> Filename.concat dir
        in
        let bytes = Bytes.of_string (read_file entry_file) in
        Bytes.set bytes (Bytes.length bytes / 2)
          (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes / 2)) lxor 1));
        write_raw entry_file (Bytes.to_string bytes);
        match Cache.create ~dir () with
        | Error m -> Alcotest.fail m
        | Ok t2 ->
          Alcotest.(check int) "not warmed" 0 (Cache.length t2);
          (match Cache.recovery t2 with
           | Some r ->
             Alcotest.(check bool) "quarantined" true
               (List.length r.Prguard.Atomic_io.quarantined >= 1)
           | None -> Alcotest.fail "no recovery report");
          Alcotest.(check bool) "quarantine dir populated" true
            (Sys.file_exists (Filename.concat dir ".quarantine")
             && Sys.readdir (Filename.concat dir ".quarantine") <> [||]));
    Alcotest.test_case "CRC32-colliding keys persist to distinct files" `Quick
      (fun () ->
        (* Find two distinct equal-length keys with equal CRC32 (the
           32-bit birthday bound makes this cheap).  Under the old
           crc32-based filenames they shared a path: one entry silently
           overwrote the other, and evicting one deleted the
           survivor's file. *)
        let k1, k2 =
          let seen = Hashtbl.create 65536 in
          let rec go i =
            let k = Printf.sprintf "key-%010d" i in
            let h = Bitgen.Crc32.hex_digest k in
            match Hashtbl.find_opt seen h with
            | Some k' -> (k', k)
            | None ->
              Hashtbl.add seen h k;
              go (i + 1)
          in
          go 0
        in
        Alcotest.(check bool) "distinct keys" true (k1 <> k2);
        Alcotest.(check string) "colliding crc32"
          (Bitgen.Crc32.hex_digest k1) (Bitgen.Crc32.hex_digest k2);
        Alcotest.(check int) "equal length" (String.length k1)
          (String.length k2);
        let dir = temp_dir "prserve-cache" in
        let entry_files () =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".entry")
        in
        (match Cache.create ~dir () with
         | Error m -> Alcotest.fail m
         | Ok t ->
           Cache.add t { (sample_entry ()) with Cache.key = k1 };
           Cache.add t
             { (sample_entry ()) with Cache.key = k2; total_frames = 777 };
           Alcotest.(check int) "two entry files" 2
             (List.length (entry_files ())));
        (* Both survive a restart, each with its own payload. *)
        match Cache.create ~dir () with
        | Error m -> Alcotest.fail m
        | Ok t2 ->
          Alcotest.(check int) "both warmed" 2 (Cache.length t2);
          (match Cache.find t2 ~key:k1 with
           | Some e -> Alcotest.(check int) "k1 payload" 1234 e.Cache.total_frames
           | None -> Alcotest.fail "k1 lost");
          match Cache.find t2 ~key:k2 with
          | Some e -> Alcotest.(check int) "k2 payload" 777 e.Cache.total_frames
          | None -> Alcotest.fail "k2 lost");
    Alcotest.test_case "undecodable-but-CRC-valid entry is quarantined" `Quick
      (fun () ->
        (* CRC intact but contents not in the entry format: a format
           version skew must quarantine, never crash or serve garbage. *)
        let dir = temp_dir "prserve-cache" in
        let path = Filename.concat dir "bogus-1.entry" in
        (match
           Prguard.Atomic_io.write ~checksum:Bitgen.Crc32.hex_digest ~path
             "not an entry at all"
         with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        match Cache.create ~dir () with
        | Error m -> Alcotest.fail m
        | Ok t ->
          Alcotest.(check int) "not warmed" 0 (Cache.length t);
          Alcotest.(check bool) "moved aside" true
            (not (Sys.file_exists path))) ]

(* ----------------------------------------------------------- admission *)

let admission_tests =
  [ Alcotest.test_case "queue bound yields a typed reject" `Quick (fun () ->
        let q = Admission.create ~capacity:2 ~client_cap:10 () in
        (match Admission.submit q ~client:"a" 1 with Ok () -> () | _ -> Alcotest.fail "1");
        (match Admission.submit q ~client:"a" 2 with Ok () -> () | _ -> Alcotest.fail "2");
        match Admission.submit q ~client:"a" 3 with
        | Error (Admission.Queue_full { depth = 2; capacity = 2 }) -> ()
        | _ -> Alcotest.fail "expected Queue_full");
    Alcotest.test_case "per-client cap counts queued plus running" `Quick
      (fun () ->
        let q = Admission.create ~capacity:64 ~client_cap:2 () in
        (match Admission.submit q ~client:"a" 1 with Ok () -> () | _ -> Alcotest.fail "1");
        (match Admission.submit q ~client:"a" 2 with Ok () -> () | _ -> Alcotest.fail "2");
        (match Admission.submit q ~client:"a" 3 with
         | Error (Admission.Client_cap { client = "a"; in_flight = 2; cap = 2 }) -> ()
         | _ -> Alcotest.fail "expected Client_cap");
        (* Other clients are unaffected. *)
        (match Admission.submit q ~client:"b" 4 with Ok () -> () | _ -> Alcotest.fail "b");
        (* Taking does not release the budget; finish does. *)
        let _ = Admission.take q ~max:8 in
        (match Admission.submit q ~client:"a" 5 with
         | Error (Admission.Client_cap _) -> ()
         | _ -> Alcotest.fail "still capped while running");
        Admission.finish q ~client:"a";
        match Admission.submit q ~client:"a" 6 with
        | Ok () -> ()
        | _ -> Alcotest.fail "released after finish");
    Alcotest.test_case "take interleaves clients round-robin" `Quick (fun () ->
        let q = Admission.create ~capacity:64 ~client_cap:16 () in
        List.iter
          (fun (c, j) ->
            match Admission.submit q ~client:c j with
            | Ok () -> ()
            | _ -> Alcotest.fail "submit")
          [ ("a", 1); ("a", 2); ("a", 3); ("b", 10); ("b", 11); ("c", 20) ];
        let batch = Admission.take q ~max:6 in
        Alcotest.(check (list int)) "round-robin order"
          [ 1; 10; 20; 2; 11; 3 ] batch);
    Alcotest.test_case "empty client buckets are pruned" `Quick (fun () ->
        (* Client ids are untrusted: a drained client must not leave a
           bucket behind, or arbitrary ids grow the table forever. *)
        let q = Admission.create ~capacity:64 ~client_cap:4 () in
        for i = 1 to 20 do
          match Admission.submit q ~client:(Printf.sprintf "c%d" i) i with
          | Ok () -> ()
          | _ -> Alcotest.fail "submit"
        done;
        Alcotest.(check int) "buckets while queued" 20
          (Admission.client_buckets q);
        Alcotest.(check int) "partial take" 10
          (List.length (Admission.take q ~max:10));
        Alcotest.(check int) "non-empty buckets kept" 10
          (Admission.client_buckets q);
        Alcotest.(check int) "rest taken" 10
          (List.length (Admission.take q ~max:64));
        Alcotest.(check int) "all buckets pruned" 0
          (Admission.client_buckets q);
        (* The in-flight budget outlives the bucket... *)
        Alcotest.(check int) "still in flight" 1
          (Admission.in_flight q ~client:"c1");
        (* ...and a pruned client can come back. *)
        (match Admission.submit q ~client:"c1" 99 with
         | Ok () -> ()
         | _ -> Alcotest.fail "resubmit");
        Alcotest.(check int) "bucket recreated" 1
          (Admission.client_buckets q));
    Alcotest.test_case "close rejects new work and drains the backlog" `Quick
      (fun () ->
        let q = Admission.create () in
        (match Admission.submit q ~client:"a" 1 with Ok () -> () | _ -> Alcotest.fail "1");
        Admission.close q;
        (match Admission.submit q ~client:"a" 2 with
         | Error Admission.Closed -> ()
         | _ -> Alcotest.fail "expected Closed");
        Alcotest.(check (list int)) "backlog drains" [ 1 ] (Admission.take q ~max:4);
        Alcotest.(check (list int)) "then empty" [] (Admission.take q ~max:4)) ]

(* ----------------------------------------------------- shedding policy *)

let shed_tests =
  [ Alcotest.test_case "level_for_wait counts crossed thresholds" `Quick
      (fun () ->
        let th = [| 50.; 200.; 1000. |] in
        Alcotest.(check int) "healthy" 0 (Server.level_for_wait ~thresholds:th 0.);
        Alcotest.(check int) "l1" 1 (Server.level_for_wait ~thresholds:th 60.);
        Alcotest.(check int) "l2" 2 (Server.level_for_wait ~thresholds:th 500.);
        Alcotest.(check int) "l3" 3 (Server.level_for_wait ~thresholds:th 5000.));
    Alcotest.test_case "budget tightens monotonically with level" `Quick
      (fun () ->
        let cfg =
          { (Server.default_config ()) with Server.deadline_ms = Some 1600. }
        in
        let deadline l =
          let spec, _ = Server.budget_for_level cfg l in
          match spec.Budget.deadline_ms with
          | Some d -> d
          | None -> Alcotest.fail "level must have a deadline"
        in
        Alcotest.(check (float 1e-9)) "l0" 1600. (deadline 0);
        Alcotest.(check (float 1e-9)) "l1" 800. (deadline 1);
        Alcotest.(check (float 1e-9)) "l2" 400. (deadline 2);
        Alcotest.(check (float 1e-9)) "l3" 200. (deadline 3);
        (* Deep levels force cheap ladders. *)
        let _, l2 = Server.budget_for_level cfg 2 in
        let _, l3 = Server.budget_for_level cfg 3 in
        (match l2 with
         | Some l ->
           Alcotest.(check string) "l2 ladder" "multilevel,greedy,single-region"
             (Prguard.Ladder.to_string l)
         | None -> Alcotest.fail "l2 needs a ladder");
        match l3 with
        | Some l ->
          Alcotest.(check string) "l3 ladder" "single-region"
            (Prguard.Ladder.to_string l)
        | None -> Alcotest.fail "l3 needs a ladder");
    Alcotest.test_case "no configured deadline still bounds overload" `Quick
      (fun () ->
        let cfg =
          { (Server.default_config ()) with Server.deadline_ms = None }
        in
        let spec0, _ = Server.budget_for_level cfg 0 in
        Alcotest.(check bool) "l0 unlimited" true (Budget.is_unlimited spec0);
        let spec3, _ = Server.budget_for_level cfg 3 in
        match spec3.Budget.deadline_ms with
        | Some d -> Alcotest.(check bool) "bounded" true (d <= 1000.)
        | None -> Alcotest.fail "shed levels must impose a deadline") ]

(* ------------------------------------------------------------- server *)

let server_tests =
  [ Alcotest.test_case "solve round-trip, duplicate served from cache" `Quick
      (fun () ->
        let tele = Prtelemetry.create Prtelemetry.Sink.null in
        let server = create_server (deterministic_config ~telemetry:tele ()) in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let r1 = Server.handle_line server "SOLVE video-receiver" in
            Alcotest.(check bool) "ok" true (starts_with "OK {" r1);
            Alcotest.(check (option string)) "fresh" (Some "false")
              (field_of r1 "cached");
            let r2 = Server.handle_line server "SOLVE video-receiver" in
            Alcotest.(check (option string)) "cached" (Some "true")
              (field_of r2 "cached");
            Alcotest.(check (option string)) "same signature"
              (field_of r1 "signature") (field_of r2 "signature");
            Alcotest.(check (option string)) "same frames"
              (field_of r1 "total_frames") (field_of r2 "total_frames");
            (* The cached signature matches a fresh, unguarded solve. *)
            let fresh = fresh_signature (Option.get (Prdesign.Design_library.find "video-receiver")) in
            Alcotest.(check (option string)) "oracle signature"
              (Some (Printf.sprintf "\"%s\"" fresh))
              (field_of r2 "signature")));
    Alcotest.test_case "typed rejects: bad verb, unknown design, draining"
      `Quick (fun () ->
        let server = create_server (deterministic_config ()) in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let r = Server.handle_line server "NONSENSE" in
            Alcotest.(check bool) "bad verb" true (contains r "bad-request");
            let r = Server.handle_line server "SOLVE no-such-design-xyz" in
            Alcotest.(check bool) "unknown" true (contains r "not-found");
            let r = Server.handle_line server "SOLVE inline:<garbage" in
            Alcotest.(check bool) "inline parse" true (contains r "bad-request");
            let bye = Server.handle_line server "SHUTDOWN" in
            Alcotest.(check string) "bye" "BYE" bye;
            let r = Server.handle_line server "SOLVE video-receiver" in
            Alcotest.(check bool) "draining" true (contains r "draining")));
    Alcotest.test_case "inline solve matches named solve" `Quick (fun () ->
        let server = create_server (deterministic_config ()) in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let design =
              Option.get (Prdesign.Design_library.find "running-example")
            in
            let named = Server.handle_line server "SOLVE running-example" in
            let inline =
              Server.handle_line server
                ("SOLVE inline:" ^ design_xml_one_line design)
            in
            Alcotest.(check bool) "named ok" true (starts_with "OK {" named);
            (* The inline design is the same canonical content, so it
               must hit the cache entry the named solve created. *)
            Alcotest.(check (option string)) "cache hit" (Some "true")
              (field_of inline "cached");
            Alcotest.(check (option string)) "same signature"
              (field_of named "signature") (field_of inline "signature")));
    Alcotest.test_case "unsolvable design yields typed ERR, daemon survives"
      `Quick (fun () ->
        let cfg =
          { (deterministic_config ()) with
            Server.target = Engine.Budget (Fpga.Resource.make 1) }
        in
        let server = create_server cfg in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let r = Server.handle_line server "SOLVE video-receiver" in
            Alcotest.(check bool) "err" true (starts_with "ERR {" r);
            (* The daemon keeps serving after the failure. *)
            let s = Server.handle_line server "STATUS" in
            Alcotest.(check bool) "status" true (starts_with "STATUS {" s)));
    Alcotest.test_case "STATUS exposes counters, HEALTH flips on drain" `Quick
      (fun () ->
        let tele = Prtelemetry.create Prtelemetry.Sink.null in
        let server = create_server (deterministic_config ~telemetry:tele ()) in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let _ = Server.handle_line server "SOLVE running-example" in
            let _ = Server.handle_line server "SOLVE running-example" in
            let s = Server.handle_line server "STATUS" in
            Alcotest.(check bool) "requests" true (contains s "\"requests\":3");
            Alcotest.(check bool) "hit rate" true (contains s "\"hit_rate\":0.5000");
            Alcotest.(check bool) "latency" true (contains s "\"p99\":");
            Alcotest.(check bool) "utilisation" true
              (contains s "\"par_utilisation\":");
            Alcotest.(check string) "health ok" "HEALTH ok"
              (Server.handle_line server "HEALTH");
            Server.request_shutdown server;
            Alcotest.(check string) "health draining" "HEALTH draining"
              (Server.handle_line server "HEALTH")));
    Alcotest.test_case "forced overload sheds to the tightest rung" `Quick
      (fun () ->
        (* Negative thresholds make every EWMA reading (≥ 0) count as
           past all three thresholds, deterministically forcing level
           3 on every admitted job. *)
        let tele = Prtelemetry.create Prtelemetry.Sink.null in
        let cfg =
          deterministic_config ~telemetry:tele
            ~shed_thresholds_ms:[| -1.; -1.; -1. |] ()
        in
        let server = create_server cfg in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let r = Server.handle_line server "SOLVE video-receiver" in
            Alcotest.(check bool) "ok" true (starts_with "OK {" r);
            Alcotest.(check (option string)) "shed level" (Some "3")
              (field_of r "shed_level");
            Alcotest.(check int) "level-3 counter" 1
              (Prtelemetry.counter_value tele "serve.shed.level3");
            (* Level 3 forces the single-region rung. *)
            Alcotest.(check (option string)) "rung" (Some "\"single-region\"")
              (field_of r "rung");
            (* Shed results must not poison the clean cache. *)
            Alcotest.(check int) "nothing cached" 0
              (Cache.length (Server.cache server))));
    Alcotest.test_case "metrics exposition is valid after a round trip" `Quick
      (fun () ->
        (* The `--metrics` page the daemon writes at drain must be
           structurally valid Prometheus text and carry the serve
           counters and histograms. *)
        let tele = Prtelemetry.create Prtelemetry.Sink.null in
        let server = create_server (deterministic_config ~telemetry:tele ()) in
        let _ = Server.handle_line server "SOLVE running-example" in
        let _ = Server.handle_line server "SOLVE running-example" in
        let _ = Server.handle_line server "STATUS" in
        Alcotest.(check string) "bye" "BYE"
          (Server.handle_line server "SHUTDOWN");
        Server.drain server;
        let page = Prtelemetry.exposition tele in
        (match Prtelemetry.Scope.check_exposition page with
         | Ok () -> ()
         | Error m -> Alcotest.failf "metrics page invalid: %s" m);
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "page contains %s" needle)
              true (contains page needle))
          [ "prpart_serve_requests"; "prpart_serve_cache_hits";
            "prpart_serve_queue_wait_ms"; "prpart_serve_latency_ms" ]);
    Alcotest.test_case "per-job timings come from the injectable clock" `Quick
      (fun () ->
        (* A deterministic clock ticking 1 s per call.  For a single
           request the causally ordered calls are: create (0), request
           arrival (1), job start on the worker domain (2), job finish
           (3) — so queue wait and solve time are exactly 1000 ms each,
           measured per job, not at the batch barrier. *)
        let ticks = Atomic.make 0 in
        let clock () = float_of_int (Atomic.fetch_and_add ticks 1) in
        let cfg = { (deterministic_config ~jobs:1 ()) with Server.clock } in
        let server = create_server cfg in
        Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
            let r = Server.handle_line server "SOLVE running-example" in
            Alcotest.(check bool) "ok" true (starts_with "OK {" r);
            Alcotest.(check (option string)) "queue wait" (Some "1000.000")
              (field_of r "queue_wait_ms");
            Alcotest.(check (option string)) "solve elapsed" (Some "1000.000")
              (field_of r "elapsed_ms")));
    Alcotest.test_case "queue_full reject under a zero-capacity queue" `Quick
      (fun () ->
        (* Capacity 1 with a held dispatcher is racy; instead drive the
           admission queue directly at its bound through the server's
           reject path: a 1-deep queue with a slow first job. *)
        let q = Admission.create ~capacity:1 ~client_cap:8 () in
        (match Admission.submit q ~client:"a" () with
         | Ok () -> ()
         | _ -> Alcotest.fail "first");
        match Admission.submit q ~client:"a" () with
        | Error (Admission.Queue_full _) -> ()
        | _ -> Alcotest.fail "expected Queue_full") ]

(* -------------------------------------------- crash-safety + identity *)

let crash_tests =
  [ Alcotest.test_case "kill -9 recovery: corrupt entry re-solved bit-identically"
      `Quick (fun () ->
        let dir = temp_dir "prserve-crash" in
        (* First daemon: solve and persist. *)
        let s1 = create_server (deterministic_config ~cache_dir:dir ()) in
        let r1 =
          Fun.protect ~finally:(fun () -> Server.drain s1) (fun () ->
              Server.handle_line s1 "SOLVE video-receiver")
        in
        Alcotest.(check bool) "first ok" true (starts_with "OK {" r1);
        let entry_files dir =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".entry")
        in
        Alcotest.(check int) "persisted" 1 (List.length (entry_files dir));
        (* Simulated kill -9 mid-write: corrupt the persisted entry and
           leave a stale temporary behind. *)
        let entry = Filename.concat dir (List.hd (entry_files dir)) in
        let bytes = Bytes.of_string (read_file entry) in
        Bytes.set bytes 3 '!';
        write_raw entry (Bytes.to_string bytes);
        write_raw (Filename.concat dir ".prserve.tmp.123") "torn";
        (* Second daemon: recovery quarantines, the re-solve matches a
           fresh unguarded solve bit-for-bit. *)
        let s2 = create_server (deterministic_config ~cache_dir:dir ()) in
        Fun.protect ~finally:(fun () -> Server.drain s2) (fun () ->
            (match Cache.recovery (Server.cache s2) with
             | Some r ->
               Alcotest.(check bool) "quarantined" true
                 (r.Prguard.Atomic_io.quarantined <> [])
             | None -> Alcotest.fail "no recovery report");
            let r2 = Server.handle_line s2 "SOLVE video-receiver" in
            Alcotest.(check (option string)) "re-solved fresh" (Some "false")
              (field_of r2 "cached");
            Alcotest.(check (option string)) "bit-identical signature"
              (field_of r1 "signature") (field_of r2 "signature");
            Alcotest.(check (option string)) "same total"
              (field_of r1 "total_frames") (field_of r2 "total_frames");
            (* And the re-persisted entry byte-equals the scheme of a
               fresh solve. *)
            let design =
              Option.get (Prdesign.Design_library.find "video-receiver")
            in
            let fresh =
              match Engine.solve ~target:(Engine.Fixed fx70t) design with
              | Ok o -> Prcore.Scheme_xml.to_string o.Engine.scheme
              | Error m -> Alcotest.fail m
            in
            match entry_files dir with
            | [ f ] -> (
              match Cache.decode_entry (read_file (Filename.concat dir f)) with
              | Ok e ->
                Alcotest.(check string) "scheme bytes" fresh e.Cache.scheme_xml
              | Error m -> Alcotest.fail m)
            | files ->
              Alcotest.fail
                (Printf.sprintf "expected 1 entry, found %d" (List.length files)))) ]

(* ------------------------------------------------------------ endpoint *)

let endpoint_tests =
  [ Alcotest.test_case "socket round-trip with graceful shutdown" `Quick
      (fun () ->
        let dir = temp_dir "prserve-sock" in
        let address = Endpoint.Unix_path (Filename.concat dir "s.sock") in
        let server = create_server (deterministic_config ()) in
        let endpoint =
          match Endpoint.listen address with
          | Ok e -> e
          | Error m -> Alcotest.fail m
        in
        let loop =
          Thread.create
            (fun () -> Endpoint.serve_loop ~poll_interval:0.05 endpoint server)
            ()
        in
        let client =
          match Endpoint.connect address with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        let ask line =
          match Endpoint.request client line with
          | Ok r -> r
          | Error m -> Alcotest.fail m
        in
        let r1 = ask "SOLVE running-example" in
        Alcotest.(check bool) "solve" true (starts_with "OK {" r1);
        let r2 = ask "SOLVE running-example" in
        Alcotest.(check (option string)) "cached over socket" (Some "true")
          (field_of r2 "cached");
        Alcotest.(check bool) "status" true
          (starts_with "STATUS {" (ask "STATUS"));
        Alcotest.(check string) "health" "HEALTH ok" (ask "HEALTH");
        Alcotest.(check string) "bye" "BYE" (ask "SHUTDOWN");
        Thread.join loop;
        Endpoint.close endpoint;
        Endpoint.close_client client;
        Server.drain server);
    Alcotest.test_case "oversized request line is rejected, not fatal" `Quick
      (fun () ->
        let dir = temp_dir "prserve-sock" in
        let address = Endpoint.Unix_path (Filename.concat dir "s.sock") in
        let server = create_server (deterministic_config ()) in
        let endpoint =
          match Endpoint.listen address with
          | Ok e -> e
          | Error m -> Alcotest.fail m
        in
        let loop =
          Thread.create
            (fun () ->
              Endpoint.serve_loop ~poll_interval:0.05 ~max_line_bytes:64
                endpoint server)
            ()
        in
        (let client =
           match Endpoint.connect address with
           | Ok c -> c
           | Error m -> Alcotest.fail m
         in
         let huge = "SOLVE " ^ String.make 1000 'x' in
         (match Endpoint.request client huge with
          | Ok r -> Alcotest.(check bool) "typed err" true (starts_with "ERR {" r)
          | Error _ -> ());
         Endpoint.close_client client);
        (* The daemon survives the abusive connection. *)
        let client2 =
          match Endpoint.connect address with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        (match Endpoint.request client2 "HEALTH" with
         | Ok r -> Alcotest.(check string) "alive" "HEALTH ok" r
         | Error m -> Alcotest.fail m);
        (match Endpoint.request client2 "SHUTDOWN" with
         | Ok r -> Alcotest.(check string) "bye" "BYE" r
         | Error m -> Alcotest.fail m);
        Thread.join loop;
        Endpoint.close endpoint;
        Endpoint.close_client client2;
        Server.drain server);
    Alcotest.test_case "client hanging up before its replies is not fatal"
      `Quick (fun () ->
        (* Pipeline requests and close without reading: the daemon's
           reply writes hit a dead peer.  Without SIGPIPE ignored this
           kills the whole process (this test runner included). *)
        let dir = temp_dir "prserve-sock" in
        let path = Filename.concat dir "s.sock" in
        let address = Endpoint.Unix_path path in
        let server = create_server (deterministic_config ()) in
        let endpoint =
          match Endpoint.listen address with
          | Ok e -> e
          | Error m -> Alcotest.fail m
        in
        let loop =
          Thread.create
            (fun () -> Endpoint.serve_loop ~poll_interval:0.05 endpoint server)
            ()
        in
        for _ = 1 to 2 do
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          let payload =
            String.concat ""
              ("SOLVE running-example\n"
               :: List.init 64 (fun _ -> "STATUS\n"))
          in
          ignore (Unix.write_substring fd payload 0 (String.length payload));
          Unix.close fd
        done;
        (* The daemon is still alive and serving. *)
        let client =
          match Endpoint.connect address with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        (match Endpoint.request client "HEALTH" with
         | Ok r -> Alcotest.(check string) "alive" "HEALTH ok" r
         | Error m -> Alcotest.fail m);
        (match Endpoint.request client "SHUTDOWN" with
         | Ok r -> Alcotest.(check string) "bye" "BYE" r
         | Error m -> Alcotest.fail m);
        Thread.join loop;
        Endpoint.close endpoint;
        Endpoint.close_client client;
        Server.drain server);
    Alcotest.test_case "drain does not hang on an idle connection" `Quick
      (fun () ->
        (* An idle client parks the connection thread in [Unix.read];
           the drain must shut that fd down so the join terminates. *)
        let dir = temp_dir "prserve-sock" in
        let address = Endpoint.Unix_path (Filename.concat dir "s.sock") in
        let server = create_server (deterministic_config ()) in
        let endpoint =
          match Endpoint.listen address with
          | Ok e -> e
          | Error m -> Alcotest.fail m
        in
        let loop =
          Thread.create
            (fun () -> Endpoint.serve_loop ~poll_interval:0.05 endpoint server)
            ()
        in
        let idle =
          match Endpoint.connect address with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        (* Make sure the idle connection is accepted before draining. *)
        let active =
          match Endpoint.connect address with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        (match Endpoint.request active "HEALTH" with
         | Ok r -> Alcotest.(check string) "alive" "HEALTH ok" r
         | Error m -> Alcotest.fail m);
        (match Endpoint.request active "SHUTDOWN" with
         | Ok r -> Alcotest.(check string) "bye" "BYE" r
         | Error m -> Alcotest.fail m);
        (* Before the drain fix this join hung forever on [idle]. *)
        Thread.join loop;
        (match Endpoint.request idle "HEALTH" with
         | Error _ -> ()
         | Ok r -> Alcotest.fail ("idle connection answered: " ^ r));
        Endpoint.close endpoint;
        Endpoint.close_client idle;
        Endpoint.close_client active;
        Server.drain server) ]

(* ------------------------------------- fleet satellites (PR 10) *)

(* Server-side idle-read deadline, connect retry, per-client quotas and
   the reply-side protocol grammar the fleet client builds on. *)

let fast_retry =
  { Prfault.Recovery.max_attempts = 40;
    base_backoff_s = 0.02;
    backoff_multiplier = 1.;
    max_backoff_s = 0.02;
    jitter = 0.;
    transition_budget_s = None }

let satellite_tests =
  [ Alcotest.test_case "idle connection gets a typed reject and hang-up"
      `Quick (fun () ->
        let dir = temp_dir "prserve-idle" in
        let path = Filename.concat dir "s.sock" in
        let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
        let server = create_server (deterministic_config ~telemetry ()) in
        let endpoint =
          match Endpoint.listen (Endpoint.Unix_path path) with
          | Ok e -> e
          | Error m -> Alcotest.fail m
        in
        let loop =
          Thread.create
            (fun () ->
              Endpoint.serve_loop ~poll_interval:0.05 ~idle_timeout_s:0.25
                endpoint server)
            ()
        in
        (* A slowloris client: half a request line, then silence. *)
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        ignore (Unix.write_substring fd "SOLVE run" 0 9);
        let buf = Bytes.create 512 in
        let n = Unix.read fd buf 0 512 in
        let reply = Bytes.sub_string buf 0 (max 0 n) in
        Alcotest.(check bool) "typed reject" true (starts_with "REJECT {" reply);
        Alcotest.(check bool) "idle-timeout code" true
          (contains reply "idle-timeout");
        (* After the reject the server hangs up: EOF, not a hang. *)
        Alcotest.(check int) "hung up" 0 (Unix.read fd buf 0 512);
        Unix.close fd;
        Alcotest.(check bool) "counted" true
          (Prtelemetry.counter_value telemetry "serve.rejects.idle-timeout" >= 1);
        (* Well-behaved clients are unaffected. *)
        let client =
          match Endpoint.connect (Endpoint.Unix_path path) with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        (match Endpoint.request client "HEALTH" with
         | Ok r -> Alcotest.(check string) "alive" "HEALTH ok" r
         | Error m -> Alcotest.fail m);
        (match Endpoint.request client "SHUTDOWN" with
         | Ok r -> Alcotest.(check string) "bye" "BYE" r
         | Error m -> Alcotest.fail m);
        Thread.join loop;
        Endpoint.close endpoint;
        Endpoint.close_client client;
        Server.drain server);
    Alcotest.test_case "connect retries through a startup race" `Quick
      (fun () ->
        let dir = temp_dir "prserve-race" in
        let path = Filename.concat dir "late.sock" in
        let address = Endpoint.Unix_path path in
        (* Without retry the unbound socket path fails fast. *)
        (match Endpoint.connect address with
         | Ok _ -> Alcotest.fail "connected to nothing"
         | Error m -> Alcotest.(check bool) "typed error" true (m <> ""));
        let server = create_server (deterministic_config ()) in
        let endpoint_slot = ref None in
        let loop =
          Thread.create
            (fun () ->
              (* Bind late: the client must win the race via retry. *)
              Thread.delay 0.2;
              match Endpoint.listen address with
              | Error m -> Alcotest.fail m
              | Ok e ->
                endpoint_slot := Some e;
                Endpoint.serve_loop ~poll_interval:0.05 e server)
            ()
        in
        let client =
          match Endpoint.connect ~retry:fast_retry address with
          | Ok c -> c
          | Error m -> Alcotest.fail ("retry connect: " ^ m)
        in
        (match Endpoint.request client "HEALTH" with
         | Ok r -> Alcotest.(check string) "alive" "HEALTH ok" r
         | Error m -> Alcotest.fail m);
        (match Endpoint.request client "SHUTDOWN" with
         | Ok r -> Alcotest.(check string) "bye" "BYE" r
         | Error m -> Alcotest.fail m);
        Thread.join loop;
        (match !endpoint_slot with
         | Some e -> Endpoint.close e
         | None -> ());
        Endpoint.close_client client;
        Server.drain server);
    Alcotest.test_case "per-client quota refuses before the flat cap" `Quick
      (fun () ->
        let q = Admission.create ~client_cap:4 ~quotas:[ ("bulk", 2) ] () in
        Alcotest.(check int) "bulk quota" 2 (Admission.quota q ~client:"bulk");
        Alcotest.(check int) "default" 4 (Admission.quota q ~client:"other");
        (match Admission.submit q ~client:"bulk" 1 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "first bulk refused");
        (match Admission.submit q ~client:"bulk" 2 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "second bulk refused");
        (match Admission.submit q ~client:"bulk" 3 with
         | Error (Admission.Quota { client; in_flight; quota }) ->
           Alcotest.(check string) "client" "bulk" client;
           Alcotest.(check int) "in flight" 2 in_flight;
           Alcotest.(check int) "quota" 2 quota
         | Ok () -> Alcotest.fail "third bulk admitted past quota"
         | Error _ -> Alcotest.fail "wrong reject kind");
        (* Unlisted clients still use the flat cap. *)
        for i = 1 to 4 do
          match Admission.submit q ~client:"other" (10 + i) with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "other refused under cap"
        done;
        (match Admission.submit q ~client:"other" 15 with
         | Error (Admission.Client_cap _) -> ()
         | _ -> Alcotest.fail "flat cap not enforced");
        (* Finishing a job releases quota budget. *)
        Admission.finish q ~client:"bulk";
        (match Admission.submit q ~client:"bulk" 4 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "bulk refused after finish"));
    Alcotest.test_case "quota above the flat cap clamps to the cap" `Quick
      (fun () ->
        let q = Admission.create ~client_cap:2 ~quotas:[ ("big", 10) ] () in
        Alcotest.(check int) "clamped" 2 (Admission.quota q ~client:"big");
        (match Admission.submit q ~client:"big" 1 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "refused");
        (match Admission.submit q ~client:"big" 2 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "refused");
        (match Admission.submit q ~client:"big" 3 with
         | Error (Admission.Client_cap _) -> ()
         | _ -> Alcotest.fail "expected the flat cap, not the quota"));
    Alcotest.test_case "quota and idle-timeout rejects render and parse"
      `Quick (fun () ->
        let quota =
          Protocol.Quota { client = "bulk"; in_flight = 2; quota = 2 }
        in
        Alcotest.(check string) "code" "quota" (Protocol.reject_code quota);
        let rendered = Protocol.render_reject quota in
        Alcotest.(check bool) "reason" true
          (contains rendered "\"reason\":\"quota\"");
        Alcotest.(check bool) "fields" true (contains rendered "\"quota\":2");
        Alcotest.(check string) "idle code" "idle-timeout"
          (Protocol.reject_code Protocol.Idle_timeout);
        Alcotest.(check string) "idle render"
          "REJECT {\"reason\":\"idle-timeout\"}"
          (Protocol.render_reject Protocol.Idle_timeout);
        match Protocol.parse_reply (Protocol.render_reject quota) with
        | Ok (Protocol.R_reject { code; detail = None }) ->
          Alcotest.(check string) "parsed code" "quota" code
        | _ -> Alcotest.fail "quota reject did not parse");
    Alcotest.test_case "reply parser inverts the renderers" `Quick (fun () ->
        let solved =
          { Protocol.design = "running-example";
            regions = 3;
            total_frames = 120;
            worst_frames = 60;
            device = Some "FX70T";
            cached = true;
            degraded = false;
            reason = "completed";
            rung = None;
            shed_level = 0;
            queue_wait_ms = 1.25;
            elapsed_ms = 12.5;
            signature = "deadbeef" }
        in
        (match Protocol.parse_reply (Protocol.render_ok solved) with
         | Ok (Protocol.R_solved s) ->
           Alcotest.(check string) "design" solved.Protocol.design
             s.Protocol.design;
           Alcotest.(check int) "regions" 3 s.Protocol.regions;
           Alcotest.(check (option string)) "device" (Some "FX70T")
             s.Protocol.device;
           Alcotest.(check bool) "cached" true s.Protocol.cached;
           Alcotest.(check (option string)) "rung" None s.Protocol.rung;
           Alcotest.(check string) "signature" "deadbeef" s.Protocol.signature
         | _ -> Alcotest.fail "OK did not parse");
        (match Protocol.parse_reply (Protocol.render_err "boom \"quoted\"") with
         | Ok (Protocol.R_err m) ->
           Alcotest.(check string) "err" "boom \"quoted\"" m
         | _ -> Alcotest.fail "ERR did not parse");
        (match Protocol.parse_reply
                 (Protocol.render_reject (Protocol.Not_found "nope")) with
         | Ok (Protocol.R_reject { code; detail }) ->
           Alcotest.(check string) "code" "not-found" code;
           Alcotest.(check (option string)) "detail" (Some "nope") detail
         | _ -> Alcotest.fail "REJECT did not parse");
        (match Protocol.parse_reply "STATUS {\"x\":1}" with
         | Ok (Protocol.R_status "{\"x\":1}") -> ()
         | _ -> Alcotest.fail "STATUS did not parse");
        (match Protocol.parse_reply "HEALTH ok" with
         | Ok (Protocol.R_health true) -> ()
         | _ -> Alcotest.fail "HEALTH ok did not parse");
        (match Protocol.parse_reply "HEALTH draining" with
         | Ok (Protocol.R_health false) -> ()
         | _ -> Alcotest.fail "HEALTH draining did not parse");
        (match Protocol.parse_reply "BYE" with
         | Ok Protocol.R_bye -> ()
         | _ -> Alcotest.fail "BYE did not parse");
        (match Protocol.parse_reply "OK {\"design\":\"x\"}" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "truncated OK accepted");
        match Protocol.parse_reply "GARBAGE" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted");
    Alcotest.test_case "server counts quota rejects distinctly" `Quick
      (fun () ->
        let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
        let config =
          { (deterministic_config ~telemetry ()) with
            Server.quotas = [ ("bulk", 1) ] }
        in
        let server = create_server config in
        Alcotest.(check int) "quota table" 1
          (Server.client_quota server "bulk");
        Alcotest.(check int) "default cap" 16
          (Server.client_quota server "anon");
        let reply =
          Server.reject server
            (Protocol.Quota { client = "bulk"; in_flight = 1; quota = 1 })
        in
        Alcotest.(check bool) "typed" true (starts_with "REJECT {" reply);
        Alcotest.(check int) "serve.quota_rejects" 1
          (Prtelemetry.counter_value telemetry "serve.quota_rejects");
        Alcotest.(check int) "serve.rejects.quota" 1
          (Prtelemetry.counter_value telemetry "serve.rejects.quota");
        Alcotest.(check bool) "status reports quota rejects" true
          (contains (Server.status_json server) "\"quota\":1");
        Server.drain server) ]

(* ------------------------------------------------------- QCheck soak *)

(* Concurrent in-process clients over a shared daemon, replies
   cross-checked against fresh [Engine.solve]: every reply must be a
   typed protocol line, and every OK signature must equal the fresh
   solve's signature for that design (bit-identity of the cached path
   with the deterministic config). *)
let soak_property seed =
  let designs =
    List.map snd (Synth.Generator.batch ~seed ~count:6 ())
    (* Keep only designs the fixed device can host. *)
    |> List.filter (fun d ->
           match Engine.solve ~target:(Engine.Fixed fx70t) d with
           | Ok _ -> true
           | Error _ -> false)
  in
  if designs = [] then true
  else begin
    let oracle =
      List.map (fun d -> (Prdesign.Design.(d.name), fresh_signature d)) designs
    in
    let server = create_server (deterministic_config ~jobs:2 ()) in
    let failures = Atomic.make 0 in
    Fun.protect ~finally:(fun () -> Server.drain server) (fun () ->
        let client_thread id =
          List.iteri
            (fun i d ->
              (* ~50% duplicates: every design is requested by every
                 client, and twice on even rounds. *)
              let rounds = if i mod 2 = 0 then 2 else 1 in
              for _ = 1 to rounds do
                let line =
                  Printf.sprintf "SOLVE client=c%d inline:%s" id
                    (design_xml_one_line d)
                in
                let reply = Server.handle_line server line in
                let expected =
                  List.assoc Prdesign.Design.(d.name) oracle
                in
                if starts_with "OK {" reply then begin
                  if
                    field_of reply "signature"
                    <> Some (Printf.sprintf "\"%s\"" expected)
                  then Atomic.incr failures
                end
                else if not (starts_with "REJECT {" reply) then
                  (* ERR would mean a crashed or unsolvable job; the
                     oracle filter removed unsolvables. *)
                  Atomic.incr failures
              done)
            designs
        in
        let threads =
          List.init 3 (fun id -> Thread.create client_thread id)
        in
        List.iter Thread.join threads);
    Atomic.get failures = 0
  end

let soak_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:3 ~name:"concurrent soak matches fresh solves"
         QCheck2.Gen.(int_range 0 1000)
         soak_property) ]

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [ ("reader", reader_tests);
      ("protocol", protocol_tests);
      ("cache", cache_tests);
      ("admission", admission_tests);
      ("shedding", shed_tests);
      ("server", server_tests);
      ("crash", crash_tests);
      ("endpoint", endpoint_tests);
      ("satellites", satellite_tests);
      ("soak", soak_tests) ]
