(* Tests for the telemetry library: span timing/nesting, counters and
   gauges, JSONL round-tripping, the free null handle, and an
   integration check that a full Engine.solve emits a well-formed,
   balanced trace. *)

module T = Prtelemetry
module Json = Prtelemetry.Json
module Event = Prtelemetry.Event

let fake_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* ----------------------------------------------------------------- spans *)

let span_tests =
  [ Alcotest.test_case "spans time and aggregate" `Quick (fun () ->
        let clock, advance = fake_clock () in
        let t = T.create ~clock (T.Sink.memory ()) in
        let result =
          T.with_span t "outer" (fun () ->
              advance 0.25;
              T.with_span t "inner" (fun () ->
                  advance 0.5;
                  41)
              + 1)
        in
        Alcotest.(check int) "value threaded" 42 result;
        let stats = T.span_list t in
        Alcotest.(check int) "two spans" 2 (List.length stats);
        let outer = List.hd stats in
        Alcotest.(check string) "slowest first" "outer" outer.T.span_name;
        Alcotest.(check (float 1e-9)) "outer total" 0.75 outer.T.total_s;
        let inner = List.nth stats 1 in
        Alcotest.(check (float 1e-9)) "inner total" 0.5 inner.T.total_s);
    Alcotest.test_case "span events nest and balance" `Quick (fun () ->
        let clock, advance = fake_clock () in
        let t = T.create ~clock (T.Sink.memory ()) in
        T.with_span t "a" (fun () ->
            T.with_span t "b" (fun () -> advance 0.001);
            T.point t "p" ~attrs:[ ("x", Json.Int 7) ]);
        let kinds =
          List.map (fun (e : Event.t) -> (e.kind, e.name)) (T.events t)
        in
        Alcotest.(check int) "five events" 5 (List.length kinds);
        (match kinds with
         | [ (Event.Begin, "a");
             (Event.Begin, "b");
             (Event.End, "b");
             (Event.Point, "p");
             (Event.End, "a") ] ->
           ()
         | _ -> Alcotest.fail "unexpected event sequence");
        (* Depth attributes reflect nesting. *)
        let depth_of (e : Event.t) =
          match Json.to_int (Option.get (List.assoc_opt "depth" e.attrs)) with
          | Some d -> d
          | None -> Alcotest.fail "depth attribute missing"
        in
        let events = T.events t in
        Alcotest.(check int) "outer depth" 0 (depth_of (List.hd events));
        Alcotest.(check int) "inner depth" 1 (depth_of (List.nth events 1));
        (* Sequence numbers strictly increase. *)
        let seqs = List.map (fun (e : Event.t) -> e.seq) events in
        Alcotest.(check (list int)) "seq" [ 1; 2; 3; 4; 5 ] seqs);
    Alcotest.test_case "spans balance on exceptions" `Quick (fun () ->
        let t = T.create (T.Sink.memory ()) in
        (try
           T.with_span t "fails" (fun () -> failwith "boom")
         with Failure _ -> ());
        match T.events t with
        | [ { Event.kind = Event.Begin; name = "fails"; _ };
            { Event.kind = Event.End; name = "fails"; _ } ] ->
          ()
        | _ -> Alcotest.fail "expected a balanced Begin/End pair") ]

(* -------------------------------------------------- counters and gauges *)

let counter_tests =
  [ Alcotest.test_case "counter arithmetic" `Quick (fun () ->
        let t = T.create T.Sink.null in
        let c = T.counter t "hits" in
        T.Counter.incr c;
        T.Counter.incr c ~by:41;
        Alcotest.(check int) "value" 42 (T.Counter.value c);
        Alcotest.(check int) "by name" 42 (T.counter_value t "hits");
        T.incr t "hits";
        Alcotest.(check int) "incr by name" 43 (T.counter_value t "hits");
        Alcotest.(check int) "unknown is zero" 0 (T.counter_value t "nope");
        (* The same name resolves to the same counter. *)
        T.Counter.incr (T.counter t "hits") ~by:7;
        Alcotest.(check int) "shared" 50 (T.counter_value t "hits"));
    Alcotest.test_case "gauges keep the latest value" `Quick (fun () ->
        let t = T.create T.Sink.null in
        T.set_gauge t "u" 0.25;
        T.set_gauge t "u" 0.75;
        Alcotest.(check (option (float 1e-9))) "latest" (Some 0.75)
          (T.gauge_value t "u");
        Alcotest.(check (option (float 1e-9))) "unknown" None
          (T.gauge_value t "v"));
    Alcotest.test_case "flush snapshots counters and gauges" `Quick (fun () ->
        let t = T.create (T.Sink.memory ()) in
        T.incr t "b" ~by:2;
        T.incr t "a" ~by:1;
        T.set_gauge t "g" 3.5;
        T.flush t;
        let snapshot =
          List.filter_map
            (fun (e : Event.t) ->
              match e.kind with
              | Event.Counter | Event.Gauge -> Some e.name
              | _ -> None)
            (T.events t)
        in
        (* Counters sorted by name, then gauges. *)
        Alcotest.(check (list string)) "order" [ "a"; "b"; "g" ] snapshot) ]

(* ------------------------------------------------------------ null handle *)

let null_tests =
  [ Alcotest.test_case "null handle records nothing" `Quick (fun () ->
        let t = T.null in
        Alcotest.(check bool) "disabled" false (T.enabled t);
        Alcotest.(check bool) "not tracing" false (T.tracing t);
        let v = T.with_span t "s" (fun () -> 7) in
        Alcotest.(check int) "passthrough" 7 v;
        T.incr t "c" ~by:5;
        T.Counter.incr (T.counter t "c") ~by:5;
        T.set_gauge t "g" 1.;
        T.point t "p";
        T.flush t;
        Alcotest.(check int) "no counter" 0 (T.counter_value t "c");
        Alcotest.(check (option (float 1e-9))) "no gauge" None
          (T.gauge_value t "g");
        Alcotest.(check int) "no events" 0 (List.length (T.events t));
        Alcotest.(check string) "no jsonl" "" (T.to_jsonl t);
        Alcotest.(check string) "summary says disabled"
          "telemetry: disabled\n" (T.summary t));
    Alcotest.test_case "counting handle aggregates without events" `Quick
      (fun () ->
        let t = T.create T.Sink.null in
        Alcotest.(check bool) "enabled" true (T.enabled t);
        Alcotest.(check bool) "not tracing" false (T.tracing t);
        T.with_span t "s" (fun () -> T.incr t "c");
        Alcotest.(check int) "counter live" 1 (T.counter_value t "c");
        Alcotest.(check int) "span aggregated" 1
          (List.length (T.span_list t));
        Alcotest.(check int) "no events" 0 (List.length (T.events t)));
    Alcotest.test_case "ensure revives the null handle" `Quick (fun () ->
        let t = T.ensure T.null in
        Alcotest.(check bool) "enabled" true (T.enabled t);
        T.incr t "c";
        Alcotest.(check int) "counts" 1 (T.counter_value t "c");
        (* ensure of a live handle is the same handle. *)
        Alcotest.(check bool) "idempotent" true (T.ensure t == t)) ]

(* ------------------------------------------------------------------ json *)

let json_round_trip value =
  match Json.of_string (Json.to_string value) with
  | Ok parsed ->
    Alcotest.(check string) "round trip" (Json.to_string value)
      (Json.to_string parsed)
  | Error m -> Alcotest.fail ("parse failed: " ^ m)

let json_tests =
  [ Alcotest.test_case "values round-trip" `Quick (fun () ->
        List.iter json_round_trip
          [ Json.Null;
            Json.Bool true;
            Json.Bool false;
            Json.Int 42;
            Json.Int (-7);
            Json.Float 3.25;
            Json.Float (-0.125);
            Json.String "plain";
            Json.String "quotes \" and \\ and \n tabs \t";
            Json.String "control \x01 char";
            Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
            Json.Obj
              [ ("a", Json.Int 1);
                ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ])
              ] ]);
    Alcotest.test_case "malformed input is an error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
          [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2";
            "nanx"; "{\"a\" 1}" ]);
    Alcotest.test_case "accessors" `Quick (fun () ->
        let v = Json.Obj [ ("n", Json.Int 3); ("s", Json.String "x") ] in
        Alcotest.(check (option int)) "int" (Some 3)
          (Option.bind (Json.member "n" v) Json.to_int);
        Alcotest.(check (option string)) "string" (Some "x")
          (Option.bind (Json.member "s" v) Json.to_str);
        Alcotest.(check bool) "missing" true (Json.member "q" v = None)) ]

(* ----------------------------------------------------------------- jsonl *)

let parse_jsonl jsonl =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Json.of_string line with
        | Ok v -> (
          match Event.of_json v with
          | Ok e -> Some e
          | Error m -> Alcotest.fail ("event decode failed: " ^ m))
        | Error m ->
          Alcotest.fail (Printf.sprintf "line %S is not JSON: %s" line m))
    (String.split_on_char '\n' jsonl)

let balanced events =
  let rec go stack = function
    | [] -> stack = []
    | (e : Event.t) :: rest -> (
      match e.kind with
      | Event.Begin -> go (e.name :: stack) rest
      | Event.End -> (
        match stack with
        | top :: stack' when top = e.name -> go stack' rest
        | _ -> false)
      | Event.Point | Event.Counter | Event.Gauge -> go stack rest)
  in
  go [] events

let jsonl_tests =
  [ Alcotest.test_case "event stream round-trips through JSONL" `Quick
      (fun () ->
        let clock, advance = fake_clock () in
        let t = T.create ~clock (T.Sink.memory ()) in
        T.with_span t "phase" ~attrs:[ ("design", Json.String "d") ]
          (fun () ->
            advance 0.125;
            T.point t "node"
              ~attrs:
                [ ("i", Json.Int 3);
                  ("w", Json.Float 0.5);
                  ("ok", Json.Bool true);
                  ("why", Json.String "tie \"break\"") ]);
        T.incr t "visits" ~by:9;
        T.flush t;
        let original = T.events t in
        let reparsed = parse_jsonl (T.to_jsonl t) in
        Alcotest.(check int) "same count" (List.length original)
          (List.length reparsed);
        List.iter2
          (fun (a : Event.t) (b : Event.t) ->
            Alcotest.(check int) "seq" a.seq b.seq;
            Alcotest.(check string) "name" a.name b.name;
            Alcotest.(check string) "kind"
              (Event.kind_to_string a.kind)
              (Event.kind_to_string b.kind);
            Alcotest.(check (float 1e-9)) "time" a.time b.time;
            Alcotest.(check string) "attrs"
              (Json.to_string (Json.Obj a.attrs))
              (Json.to_string (Json.Obj b.attrs)))
          original reparsed);
    Alcotest.test_case "write_jsonl writes the file and reports errors"
      `Quick (fun () ->
        let t = T.create (T.Sink.memory ()) in
        T.with_span t "s" (fun () -> ());
        let path = Filename.temp_file "prtele" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            (match T.write_jsonl t path with
             | Ok () -> ()
             | Error m -> Alcotest.fail m);
            let ic = open_in path in
            let content =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Alcotest.(check string) "content" (T.to_jsonl t) content);
        match T.write_jsonl t (Filename.concat path "nope.jsonl") with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected an error for an unwritable path") ]

(* ----------------------------------------------------------- integration *)

let integration_tests =
  [ Alcotest.test_case "Engine.solve emits a balanced, well-formed trace"
      `Quick (fun () ->
        let t = T.create (T.Sink.memory ()) in
        let design = Prdesign.Design_library.video_receiver in
        let outcome =
          match
            Prcore.Engine.solve ~telemetry:t
              ~target:
                (Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
              design
          with
          | Ok o -> o
          | Error m -> Alcotest.fail m
        in
        T.flush t;
        let events = parse_jsonl (T.to_jsonl t) in
        Alcotest.(check bool) "events recorded" true (List.length events > 0);
        Alcotest.(check bool) "balanced" true (balanced events);
        let has kind name =
          List.exists
            (fun (e : Event.t) -> e.kind = kind && e.name = name)
            events
        in
        Alcotest.(check bool) "engine.solve span" true
          (has Event.Begin "engine.solve");
        Alcotest.(check bool) "clustering span" true
          (has Event.Begin "cluster.agglomerate");
        Alcotest.(check bool) "covering span" true
          (has Event.Begin "cover.candidate_sets");
        Alcotest.(check bool) "allocator span" true
          (has Event.Begin "alloc.allocate");
        Alcotest.(check bool) "counter snapshot" true
          (has Event.Counter "core.cost_evaluations");
        (* Times never go backwards and seq is dense from 1. *)
        ignore
          (List.fold_left
             (fun (last_seq, last_time) (e : Event.t) ->
               Alcotest.(check int) "dense seq" (last_seq + 1) e.seq;
               Alcotest.(check bool) "monotone time" true
                 (e.time >= last_time);
               (e.seq, e.time))
             (0, 0.) events);
        (* The outcome's evaluation counter matches the telemetry. *)
        Alcotest.(check bool) "cost evaluations counted" true
          (outcome.Prcore.Engine.cost_evaluations > 0);
        Alcotest.(check int) "matches counters"
          (T.counter_value t "core.cost_evaluations"
          + T.counter_value t "alloc.moves_evaluated")
          outcome.Prcore.Engine.cost_evaluations);
    Alcotest.test_case "solve without telemetry still counts evaluations"
      `Quick (fun () ->
        match
          Prcore.Engine.solve
            ~target:
              (Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
            Prdesign.Design_library.video_receiver
        with
        | Ok o ->
          Alcotest.(check bool) "positive" true
            (o.Prcore.Engine.cost_evaluations > 0)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "identical results with and without telemetry" `Quick
      (fun () ->
        let design = Prdesign.Design_library.video_receiver in
        let target =
          Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
        in
        let t = T.create (T.Sink.memory ()) in
        match
          ( Prcore.Engine.solve ~target design,
            Prcore.Engine.solve ~telemetry:t ~target design )
        with
        | Ok plain, Ok traced ->
          Alcotest.(check int) "total frames"
            plain.Prcore.Engine.evaluation.Prcore.Cost.total_frames
            traced.Prcore.Engine.evaluation.Prcore.Cost.total_frames;
          Alcotest.(check int) "regions"
            plain.Prcore.Engine.scheme.Prcore.Scheme.region_count
            traced.Prcore.Engine.scheme.Prcore.Scheme.region_count
        | _ -> Alcotest.fail "solve failed");
    Alcotest.test_case "summary renders phase and counter tables" `Quick
      (fun () ->
        let t = T.create (T.Sink.memory ()) in
        (match
           Prcore.Engine.solve ~telemetry:t
             ~target:
               (Prcore.Engine.Budget
                  Prdesign.Design_library.case_study_budget)
             Prdesign.Design_library.video_receiver
         with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m);
        let s = T.summary t in
        let contains needle =
          let nh = String.length s and nn = String.length needle in
          let rec scan i =
            if i + nn > nh then false
            else String.sub s i nn = needle || scan (i + 1)
          in
          scan 0
        in
        Alcotest.(check bool) "phase table" true (contains "phase timings");
        Alcotest.(check bool) "engine row" true (contains "engine.solve");
        Alcotest.(check bool) "counters table" true (contains "counters:");
        Alcotest.(check bool) "cost counter" true
          (contains "core.cost_evaluations")) ]

let () =
  Alcotest.run "telemetry"
    [ ("spans", span_tests);
      ("counters", counter_tests);
      ("null", null_tests);
      ("json", json_tests);
      ("jsonl", jsonl_tests);
      ("integration", integration_tests) ]
