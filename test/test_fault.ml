(* Fault injection and the resilient reconfiguration runtime: injector
   determinism, recovery backoff, the bit-for-bit fault-free equivalence
   guarantee, policy semantics, and the CLI surface. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Engine = Prcore.Engine
module Injector = Prfault.Injector
module Recovery = Prfault.Recovery
module Reliability = Prfault.Reliability
module Manager = Runtime.Manager
module Fetch = Runtime.Fetch
module Resilient = Runtime.Resilient

(* ------------------------------------------------------------ fixtures *)

let case_study_scheme =
  lazy
    (match
       Engine.solve
         ~target:(Engine.Budget Design_library.case_study_budget)
         Design_library.video_receiver
     with
     | Ok o -> o.Engine.scheme
     | Error m -> Alcotest.fail ("case-study solve: " ^ m))

let walk ?(seed = 5) ?(steps = 120) design =
  let rng = Synth.Rng.make seed in
  Manager.random_walk
    ~rand:(fun n -> Synth.Rng.int rng n)
    ~configs:(Design.configuration_count design)
    ~steps ~initial:0

let receiver_walk = lazy (walk Design_library.video_receiver)

(* ------------------------------------------------------------ injector *)

let draw_pattern spec ops =
  let t = Injector.start spec in
  List.map (fun op -> Injector.draw t op) ops

let alternating n =
  List.concat (List.init n (fun _ -> [ Injector.Fetch_op; Injector.Program_op ]))

let injector_tests =
  [ Alcotest.test_case "disabled spec never fires" `Quick (fun () ->
        let t = Injector.start Injector.disabled in
        List.iter
          (fun op -> Alcotest.(check bool) "no fault" true (Injector.draw t op = None))
          (alternating 100);
        Alcotest.(check int) "count" 0 (Injector.faults_injected t);
        Alcotest.(check int) "ops" 200 (Injector.operations t));
    Alcotest.test_case "active flags rate and schedule specs" `Quick (fun () ->
        Alcotest.(check bool) "disabled" false (Injector.active Injector.disabled);
        Alcotest.(check bool) "rated" true
          (Injector.active (Injector.uniform ~rate:0.1 ()));
        Alcotest.(check bool) "zero rate" false
          (Injector.active (Injector.uniform ~rate:0. ()));
        Alcotest.(check bool) "scheduled" true
          (Injector.active
             { Injector.disabled with
               schedule = [ (3, Injector.Seu_upset) ] }));
    Alcotest.test_case "same seed replays the identical fault stream" `Quick
      (fun () ->
        let spec = Injector.uniform ~seed:11 ~rate:0.2 () in
        let ops = alternating 200 in
        Alcotest.(check bool) "streams equal" true
          (draw_pattern spec ops = draw_pattern spec ops));
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let ops = alternating 300 in
        Alcotest.(check bool) "streams differ" true
          (draw_pattern (Injector.uniform ~seed:1 ~rate:0.2 ()) ops
          <> draw_pattern (Injector.uniform ~seed:2 ~rate:0.2 ()) ops));
    Alcotest.test_case "jitter draws never perturb the fault stream" `Quick
      (fun () ->
        let spec = Injector.uniform ~seed:11 ~rate:0.2 () in
        let plain = draw_pattern spec (alternating 100) in
        let t = Injector.start spec in
        let interleaved =
          List.map
            (fun op ->
              let j = Injector.jitter t in
              Alcotest.(check bool) "jitter in [0, 1)" true (j >= 0. && j < 1.);
              Injector.draw t op)
            (alternating 100)
        in
        Alcotest.(check bool) "same faults" true (plain = interleaved));
    Alcotest.test_case "rate 1 faults every applicable operation" `Quick
      (fun () ->
        let t = Injector.start (Injector.uniform ~rate:1.0 ()) in
        List.iter
          (fun op ->
            match Injector.draw t op with
            | Some kind -> Alcotest.(check bool) "class" true (Injector.applies kind op)
            | None -> Alcotest.fail "rate 1 must fire")
          (alternating 50));
    Alcotest.test_case "schedule fires exactly at matching indices" `Quick
      (fun () ->
        let spec =
          { Injector.disabled with
            schedule =
              [ (0, Injector.Fetch_timeout); (3, Injector.Device_busy) ] }
        in
        (* ops: 0 fetch, 1 program, 2 fetch, 3 program, 4 fetch, ... *)
        let pattern = draw_pattern spec (alternating 3) in
        Alcotest.(check bool) "exact" true
          (pattern
          = [ Some Injector.Fetch_timeout; None; None;
              Some Injector.Device_busy; None; None ]));
    Alcotest.test_case "scheduled fault of the wrong class is skipped" `Quick
      (fun () ->
        let spec =
          { Injector.disabled with
            schedule = [ (0, Injector.Icap_crc_error) ] }
        in
        (* Index 0 is a fetch operation: a programming fault cannot
           apply there, and its index is consumed. *)
        Alcotest.(check bool) "skipped" true
          (draw_pattern spec (alternating 2) = [ None; None; None; None ]));
    Alcotest.test_case "burst faults arrive in runs" `Quick (fun () ->
        let spec =
          { Injector.disabled with
            seed = 3;
            rates = [ (Injector.Seu_upset, 0.15) ];
            burst = Some { Injector.start_probability = 1.0; length = 3 } }
        in
        let t = Injector.start spec in
        let fired =
          List.init 300 (fun _ -> Injector.draw t Injector.Program_op <> None)
        in
        Alcotest.(check bool) "some faults" true (List.mem true fired);
        (* Every maximal run of faults is >= the burst length (bursts may
           chain when the closing probabilistic draw fires again), except
           a run truncated by the end of the operation stream. *)
        let rec runs acc current = function
          | [] -> if current > 0 then `Truncated current :: acc else acc
          | true :: rest -> runs acc (current + 1) rest
          | false :: rest ->
            runs (if current > 0 then `Complete current :: acc else acc) 0 rest
        in
        List.iter
          (function
            | `Complete n ->
              if n < 3 then
                Alcotest.failf "maximal fault run of %d < burst length 3" n
            | `Truncated _ -> ())
          (runs [] 0 fired));
    Alcotest.test_case "kind names round-trip" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool) "round trip" true
              (Injector.kind_of_string (Injector.kind_name k) = Some k))
          Injector.all_kinds;
        Alcotest.(check bool) "unknown" true
          (Injector.kind_of_string "melted" = None));
    Alcotest.test_case "validate rejects malformed specs" `Quick (fun () ->
        let bad spec = Result.is_error (Injector.validate spec) in
        Alcotest.(check bool) "rate" true
          (bad { Injector.disabled with rates = [ (Injector.Seu_upset, 1.5) ] });
        Alcotest.(check bool) "negative index" true
          (bad
             { Injector.disabled with schedule = [ (-1, Injector.Seu_upset) ] });
        Alcotest.(check bool) "burst" true
          (bad
             { Injector.disabled with
               burst = Some { Injector.start_probability = 0.5; length = 0 } });
        Alcotest.check_raises "uniform out of range"
          (Invalid_argument "Injector.uniform: rate outside [0, 1]") (fun () ->
            ignore (Injector.uniform ~rate:2.0 ()))) ]

(* ------------------------------------------------------------ recovery *)

let recovery_tests =
  [ Alcotest.test_case "backoff grows exponentially and caps" `Quick (fun () ->
        let r =
          { Recovery.default_retry with
            base_backoff_s = 1e-4;
            backoff_multiplier = 2.;
            max_backoff_s = 4e-4;
            jitter = 0. }
        in
        let b attempt = Recovery.backoff_seconds r ~attempt ~unit_jitter:0. in
        Alcotest.(check (float 0.)) "attempt 1" 1e-4 (b 1);
        Alcotest.(check (float 0.)) "attempt 2" 2e-4 (b 2);
        Alcotest.(check (float 0.)) "attempt 3" 4e-4 (b 3);
        Alcotest.(check (float 0.)) "capped" 4e-4 (b 7));
    Alcotest.test_case "jitter scales the backoff" `Quick (fun () ->
        let r = { Recovery.default_retry with jitter = 0.2 } in
        let base = Recovery.backoff_seconds r ~attempt:1 ~unit_jitter:0. in
        Alcotest.(check (float 1e-12)) "full jitter" (base *. 1.2)
          (Recovery.backoff_seconds r ~attempt:1 ~unit_jitter:1.));
    Alcotest.test_case "backoff validates its arguments" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Recovery.backoff_seconds Recovery.default_retry ~attempt:0
                  ~unit_jitter:0.);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "policy names round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool) "round trip" true
              (Recovery.policy_of_string (Recovery.policy_name p) = Some p))
          Recovery.all_policies;
        Alcotest.(check bool) "unknown" true
          (Recovery.policy_of_string "pray" = None));
    Alcotest.test_case "validate_retry rejects bad parameters" `Quick
      (fun () ->
        let bad r = Result.is_error (Recovery.validate_retry r) in
        Alcotest.(check bool) "attempts" true
          (bad { Recovery.default_retry with max_attempts = 0 });
        Alcotest.(check bool) "jitter" true
          (bad { Recovery.default_retry with jitter = 1.5 });
        Alcotest.(check bool) "multiplier" true
          (bad { Recovery.default_retry with backoff_multiplier = 0.5 });
        Alcotest.(check bool) "budget" true
          (bad
             { Recovery.default_retry with transition_budget_s = Some (-1.) });
        Alcotest.(check bool) "default ok" true
          (Result.is_ok (Recovery.validate_retry Recovery.default_retry))) ]

(* ------------------------------------------------- fault-free equality *)

let check_stats_equal label (a : Manager.stats) (b : Manager.stats) =
  Alcotest.(check int) (label ^ " steps") a.Manager.steps b.Manager.steps;
  Alcotest.(check int)
    (label ^ " transitions")
    a.Manager.transitions b.Manager.transitions;
  Alcotest.(check int)
    (label ^ " total frames")
    a.Manager.total_frames b.Manager.total_frames;
  Alcotest.(check (float 0.))
    (label ^ " total seconds")
    a.Manager.total_seconds b.Manager.total_seconds;
  Alcotest.(check int) (label ^ " max frames") a.Manager.max_frames
    b.Manager.max_frames;
  Alcotest.(check (float 0.))
    (label ^ " mean frames")
    a.Manager.mean_frames b.Manager.mean_frames;
  Alcotest.(check (array int))
    (label ^ " region loads")
    a.Manager.region_loads b.Manager.region_loads

let check_reports_equal label (a : Fetch.report) (b : Fetch.report) =
  Alcotest.(check int)
    (label ^ " reconfigurations")
    a.Fetch.reconfigurations b.Fetch.reconfigurations;
  Alcotest.(check int) (label ^ " hits") a.Fetch.hits b.Fetch.hits;
  Alcotest.(check int) (label ^ " misses") a.Fetch.misses b.Fetch.misses;
  Alcotest.(check (float 0.))
    (label ^ " icap seconds")
    a.Fetch.icap_seconds b.Fetch.icap_seconds;
  Alcotest.(check (float 0.))
    (label ^ " fetch seconds")
    a.Fetch.fetch_seconds b.Fetch.fetch_seconds;
  Alcotest.(check (float 0.))
    (label ^ " total seconds")
    a.Fetch.total_seconds b.Fetch.total_seconds

let resilient_ok = function
  | Ok (o : Resilient.outcome) -> o
  | Error f -> Alcotest.fail (Resilient.render_failure f)

let equivalence_tests =
  [ Alcotest.test_case "inactive injector matches Manager.simulate bit-for-bit"
      `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let plain = Manager.simulate scheme ~initial:0 ~sequence in
        let o = resilient_ok (Resilient.simulate scheme ~initial:0 ~sequence) in
        check_stats_equal "stats" plain o.Resilient.stats;
        Alcotest.(check bool) "no fetch report" true (o.Resilient.fetch = None);
        (* Operation indices advance even for an inactive injector (they
           are the denominator a rate applies to), but nothing fires. *)
        Alcotest.(check bool) "operations counted" true
          (o.Resilient.operations > 0);
        Alcotest.(check int) "no faults" 0
          o.Resilient.reliability.Reliability.total_faults;
        Alcotest.(check (float 0.)) "no added latency" 0.
          o.Resilient.reliability.Reliability.added_seconds);
    Alcotest.test_case "rate 0 equals an inactive injector" `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let plain = Manager.simulate scheme ~initial:0 ~sequence in
        let fault =
          { Resilient.default_config with
            spec = Injector.uniform ~seed:9 ~rate:0. () }
        in
        let o =
          resilient_ok (Resilient.simulate ~fault scheme ~initial:0 ~sequence)
        in
        check_stats_equal "stats" plain o.Resilient.stats);
    Alcotest.test_case "fault-free fetch path matches Fetch.simulate_walk"
      `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let walk_report =
          Fetch.simulate_walk ~memory:Fetch.flash scheme ~initial:0 ~sequence
        in
        let o =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash scheme ~initial:0 ~sequence)
        in
        (match o.Resilient.fetch with
         | Some report -> check_reports_equal "flash" walk_report report
         | None -> Alcotest.fail "expected a fetch report"));
    Alcotest.test_case "fault-free cached fetch path matches too" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let capacity_frames = 6000 in
        let walk_report =
          Fetch.simulate_walk
            ~cache:(Fetch.create_cache ~capacity_frames ())
            ~memory:Fetch.flash scheme ~initial:0 ~sequence
        in
        let o =
          resilient_ok
            (Resilient.simulate
               ~cache:(Fetch.create_cache ~capacity_frames ())
               ~memory:Fetch.flash scheme ~initial:0 ~sequence)
        in
        (match o.Resilient.fetch with
         | Some report -> check_reports_equal "cached" walk_report report
         | None -> Alcotest.fail "expected a fetch report")) ]

(* ----------------------------------------------- determinism & policies *)

let fault_config ?(seed = 17) ?(rate = 0.05) ?safe_config ?retry policy =
  { Resilient.spec = Injector.uniform ~seed ~rate ();
    policy;
    retry = (match retry with Some r -> r | None -> Recovery.default_retry);
    safe_config }

let resilience_tests =
  [ Alcotest.test_case "same seed produces identical reliability reports"
      `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let run () =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash
               ~fault:(fault_config Recovery.Fallback_safe_config)
               scheme ~initial:0 ~sequence)
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "summaries equal" true
          (Reliability.equal a.Resilient.reliability b.Resilient.reliability);
        Alcotest.(check string) "renders equal"
          (Reliability.render a.Resilient.reliability)
          (Reliability.render b.Resilient.reliability);
        check_stats_equal "stats" a.Resilient.stats b.Resilient.stats);
    Alcotest.test_case "abort fails where fallback completes" `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let run policy =
          Resilient.simulate ~memory:Fetch.flash ~fault:(fault_config policy)
            scheme ~initial:0 ~sequence
        in
        (match run Recovery.Abort with
         | Error f ->
           Alcotest.(check bool) "incomplete" false
             f.Resilient.reliability.Reliability.completed;
           Alcotest.(check bool) "names the fault" true
             (String.length (Resilient.render_failure f) > 0)
         | Ok _ -> Alcotest.fail "abort must fail under a 5% fault rate");
        match run Recovery.Fallback_safe_config with
        | Ok o ->
          Alcotest.(check bool) "completed" true
            o.Resilient.reliability.Reliability.completed;
          Alcotest.(check bool) "recovered something" true
            (o.Resilient.reliability.Reliability.recovered_loads > 0)
        | Error f -> Alcotest.fail (Resilient.render_failure f));
    Alcotest.test_case "retry-then-fail recovers transient faults" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let o =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash
               ~fault:(fault_config ~rate:0.01 Recovery.Retry_then_fail)
               scheme ~initial:0 ~sequence)
        in
        let r = o.Resilient.reliability in
        Alcotest.(check bool) "faults happened" true
          (r.Reliability.total_faults > 0);
        Alcotest.(check bool) "recovered" true
          (r.Reliability.recovered_loads > 0);
        Alcotest.(check int) "nothing abandoned" 0 r.Reliability.failed_loads;
        Alcotest.(check bool) "latency added" true
          (r.Reliability.added_seconds > 0.);
        Alcotest.(check bool) "mttr positive" true
          (r.Reliability.mttr_seconds > 0.));
    Alcotest.test_case "skip drops transitions when retries exhaust" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let retry = { Recovery.default_retry with max_attempts = 1 } in
        let o =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash
               ~fault:(fault_config ~retry Recovery.Skip_transition)
               scheme ~initial:0 ~sequence)
        in
        let r = o.Resilient.reliability in
        Alcotest.(check bool) "dropped transitions" true
          (r.Reliability.dropped_transitions > 0);
        Alcotest.(check int) "no retries with one attempt" 0
          r.Reliability.retries;
        Alcotest.(check bool) "completed" true r.Reliability.completed);
    Alcotest.test_case "fallback lands on the designated safe configuration"
      `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let retry = { Recovery.default_retry with max_attempts = 1 } in
        let o =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash
               ~fault:
                 (fault_config ~retry ~safe_config:1
                    Recovery.Fallback_safe_config)
               scheme ~initial:0 ~sequence)
        in
        Alcotest.(check bool) "fell back" true
          (o.Resilient.reliability.Reliability.fallbacks > 0);
        Alcotest.(check bool) "completed" true
          o.Resilient.reliability.Reliability.completed);
    Alcotest.test_case "transition budget forfeits remaining retries" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        let retry =
          { Recovery.default_retry with transition_budget_s = Some 1e-9 }
        in
        let o =
          resilient_ok
            (Resilient.simulate ~memory:Fetch.flash
               ~fault:(fault_config ~retry Recovery.Fallback_safe_config)
               scheme ~initial:0 ~sequence)
        in
        Alcotest.(check bool) "budget exhausted" true
          (o.Resilient.reliability.Reliability.budget_exhausted > 0));
    Alcotest.test_case "corrupt fetches invalidate the cache" `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let sequence = Lazy.force receiver_walk in
        (* A cache large enough to hold the whole repertoire: every miss
           is a cold miss, so a clean run misses exactly once per
           distinct bitstream. Scheduling a corruption on the very first
           fetch must invalidate the cached copy and cost exactly one
           extra miss on the re-fetch. *)
        let run fault =
          let cache = Fetch.create_cache ~capacity_frames:100_000 () in
          let o =
            resilient_ok
              (Resilient.simulate ~cache ~memory:Fetch.flash ?fault scheme
                 ~initial:0 ~sequence)
          in
          match o.Resilient.fetch with
          | Some report -> (o, report)
          | None -> Alcotest.fail "expected a fetch report"
        in
        let _, clean = run None in
        let corrupted =
          { Resilient.default_config with
            spec =
              { Injector.disabled with
                schedule = [ (0, Injector.Corrupt_bitstream) ] } }
        in
        let o, faulted = run (Some corrupted) in
        Alcotest.(check int) "one corruption"
          1
          (List.assoc Injector.Corrupt_bitstream
             o.Resilient.reliability.Reliability.faults_by_kind);
        Alcotest.(check int) "exactly one extra miss"
          (clean.Fetch.misses + 1) faulted.Fetch.misses;
        Alcotest.(check int) "same successful loads"
          clean.Fetch.reconfigurations faulted.Fetch.reconfigurations;
        Alcotest.(check int) "same hits" clean.Fetch.hits faulted.Fetch.hits);
    Alcotest.test_case "invalid configurations are rejected up front" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        Alcotest.(check bool) "bad safe config" true
          (try
             ignore
               (Resilient.simulate
                  ~fault:
                    (fault_config ~safe_config:99 Recovery.Fallback_safe_config)
                  scheme ~initial:0 ~sequence:[ 1 ]);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "bad retry" true
          (try
             ignore
               (Resilient.simulate
                  ~fault:
                    (fault_config
                       ~retry:{ Recovery.default_retry with max_attempts = 0 }
                       Recovery.Abort)
                  scheme ~initial:0 ~sequence:[ 1 ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "trace replay guards the design name" `Quick (fun () ->
        let scheme = Lazy.force case_study_scheme in
        let other = Design_library.running_example in
        let trace = Runtime.Trace.record other ~initial:0 ~sequence:[ 1; 0 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Runtime.Trace.simulate_resilient scheme trace);
             false
           with Invalid_argument _ -> true)) ]

(* ------------------------------------------------- hardened satellites *)

let satellite_tests =
  [ Alcotest.test_case "manager names the offending configuration" `Quick
      (fun () ->
        let scheme = Lazy.force case_study_scheme in
        List.iter
          (fun (initial, sequence) ->
            Alcotest.(check bool) "raises descriptively" true
              (try
                 ignore (Manager.simulate scheme ~initial ~sequence);
                 false
               with Invalid_argument m ->
                 (* The satellite hardening: a named, ranged message
                    rather than a bare List.hd failure. *)
                 String.length m > String.length "Manager.simulate"))
          [ (99, [ 0 ]); (0, [ 99 ]); (-1, [ 0 ]) ]);
    Alcotest.test_case "random_walk validates its initial" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Manager.random_walk
                  ~rand:(fun _ -> 0)
                  ~configs:3 ~steps:5 ~initial:7);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "cache invalidate forces a re-fetch" `Quick (fun () ->
        let cache = Fetch.create_cache ~capacity_frames:1000 () in
        let access () =
          Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:100
        in
        Alcotest.(check bool) "first is a miss" false (access ()).Fetch.hit;
        Alcotest.(check bool) "second is a hit" true (access ()).Fetch.hit;
        Alcotest.(check int) "resident" 100 (Fetch.resident_frames cache);
        Fetch.invalidate cache ~key:(0, 1);
        Alcotest.(check int) "emptied" 0 (Fetch.resident_frames cache);
        Alcotest.(check bool) "re-fetch misses" false (access ()).Fetch.hit;
        (* Invalidating an absent key is a no-op. *)
        Fetch.invalidate cache ~key:(9, 9);
        Alcotest.(check int) "unchanged" 100 (Fetch.resident_frames cache));
    Alcotest.test_case "LRU refresh keeps eviction order correct" `Quick
      (fun () ->
        let cache =
          Fetch.create_cache ~policy:Fetch.Lru ~capacity_frames:300 ()
        in
        let touch key =
          ignore (Fetch.access cache Fetch.flash ~key ~frames:100)
        in
        touch (0, 0);
        touch (0, 1);
        touch (0, 2);
        (* Refreshing the oldest key must move it to the back... *)
        touch (0, 0);
        Alcotest.(check bool) "refreshed to MRU" true
          (match Fetch.residents cache with
           | ((0, 1), _) :: _ -> true
           | _ -> false);
        (* ...so the next insertion evicts (0,1), not (0,0). *)
        touch (1, 0);
        let keys = List.map fst (Fetch.residents cache) in
        Alcotest.(check bool) "victim was (0,1)" true
          (List.mem (0, 0) keys && not (List.mem (0, 1) keys))) ]

(* ------------------------------------------------------------------ CLI *)

let prpart =
  let candidates =
    [ Filename.concat (Filename.concat ".." "bin") "prpart.exe";
      Filename.concat
        (Filename.concat (Filename.concat "_build" "default") "bin")
        "prpart.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_prpart args =
  let out = Filename.temp_file "prpart" ".out" in
  let err = Filename.temp_file "prpart" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let status =
        Sys.command (Filename.quote_command prpart ~stdout:out ~stderr:err args)
      in
      (status, read_file out, read_file err))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let simulate_args rest =
  [ "simulate"; "video-receiver"; "--budget"; "6900,62,150"; "--steps"; "80";
    "--seed"; "5" ]
  @ rest

let cli_tests =
  [ Alcotest.test_case "simulate --fault-rate reports reliability" `Quick
      (fun () ->
        let status, out, _ =
          run_prpart
            (simulate_args
               [ "--fault-rate"; "0.05"; "--fault-seed"; "7"; "--fault-policy";
                 "fallback" ])
        in
        Alcotest.(check int) "exit" 0 status;
        Alcotest.(check bool) "report" true (contains out "Reliability report");
        Alcotest.(check bool) "completed" true (contains out "run completed"));
    Alcotest.test_case "fixed fault seed replays identically" `Quick (fun () ->
        let args =
          simulate_args
            [ "--fault-rate"; "0.05"; "--fault-seed"; "21"; "--fault-policy";
              "fallback" ]
        in
        let _, a, _ = run_prpart args in
        let _, b, _ = run_prpart args in
        Alcotest.(check string) "identical output" a b);
    Alcotest.test_case "abort policy fails the run" `Quick (fun () ->
        let status, _, err =
          run_prpart
            (simulate_args
               [ "--fault-rate"; "0.05"; "--fault-seed"; "7"; "--fault-policy";
                 "abort" ])
        in
        Alcotest.(check bool) "non-zero exit" true (status <> 0);
        Alcotest.(check bool) "names the failure" true
          (contains err "reconfiguration failed"));
    Alcotest.test_case "safe config accepts a name and rejects unknowns"
      `Quick (fun () ->
        let status, out, _ =
          run_prpart
            (simulate_args
               [ "--fault-rate"; "0.05"; "--fault-policy"; "fallback";
                 "--safe-config"; "c1" ])
        in
        Alcotest.(check int) "named ok" 0 status;
        Alcotest.(check bool) "report" true (contains out "Reliability report");
        let status, _, err =
          run_prpart
            (simulate_args
               [ "--fault-rate"; "0.05"; "--safe-config"; "nonesuch" ])
        in
        Alcotest.(check bool) "unknown rejected" true (status <> 0);
        Alcotest.(check bool) "mentions the name" true
          (contains err "nonesuch"));
    Alcotest.test_case "out-of-range fault rate is rejected" `Quick (fun () ->
        let status, _, _ = run_prpart (simulate_args [ "--fault-rate"; "1.5" ]) in
        Alcotest.(check bool) "rejected" true (status <> 0)) ]

(* -------------------------------------------------------- flow resilience *)

let flow_tests =
  [ Alcotest.test_case "tool flow appends the resilience assessment" `Quick
      (fun () ->
        let options =
          { Flow.Tool_flow.default_options with
            resilience =
              Some
                { Flow.Tool_flow.default_resilience with walk_steps = 60 } }
        in
        match
          Flow.Tool_flow.run ~options
            ~target:(Engine.Budget Design_library.case_study_budget)
            Design_library.video_receiver
        with
        | Error m -> Alcotest.fail m
        | Ok report ->
          Alcotest.(check bool) "assessment present" true
            (report.Flow.Tool_flow.resilience <> None);
          let summary = Flow.Tool_flow.render_summary report in
          Alcotest.(check bool) "summary section" true
            (contains summary "resilience assessment");
          Alcotest.(check bool) "reliability rendered" true
            (contains summary "Reliability report")) ]

let () =
  Alcotest.run "fault"
    [ ("injector", injector_tests);
      ("recovery", recovery_tests);
      ("equivalence", equivalence_tests);
      ("resilience", resilience_tests);
      ("satellites", satellite_tests);
      ("cli", cli_tests);
      ("flow", flow_tests) ]
