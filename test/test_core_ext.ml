(* Tests for the core extensions: the exact branch-and-bound allocator
   and the transition-probability-weighted objective. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Base_partition = Cluster.Base_partition
module Agglomerative = Cluster.Agglomerative
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Allocator = Prcore.Allocator
module Engine = Prcore.Engine
module Resource = Fpga.Resource

let example = Design_library.running_example
let partitions = Agglomerative.run example
let res ?bram ?dsp clb = Resource.make ?bram ?dsp clb
let big_budget = res 100_000 ~bram:1_000 ~dsp:1_000


let exact_tests =
  [ Alcotest.test_case "exact matches greedy when greedy is optimal" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let budget = res 100_000 ~bram:1_000 ~dsp:1_000 in
        let exact = Prcore.Exact.allocate ~budget example singles in
        (match exact.Prcore.Exact.scheme with
         | Some s ->
           Alcotest.(check int) "zero time" 0
             (Cost.evaluate s).Cost.total_frames
         | None -> Alcotest.fail "expected a scheme");
        Alcotest.(check bool) "optimal" true exact.Prcore.Exact.optimal);
    Alcotest.test_case "exact is never worse than greedy" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        List.iter
          (fun budget ->
            let greedy = Allocator.allocate ~budget example singles in
            let exact = Prcore.Exact.allocate ~budget example singles in
            match (greedy, exact.Prcore.Exact.scheme) with
            | Some g, Some e ->
              Alcotest.(check bool) "exact <= greedy" true
                ((Cost.evaluate e).Cost.total_frames
                 <= (Cost.evaluate g).Cost.total_frames)
            | None, None -> ()
            | None, Some _ -> () (* exact may find what greedy misses *)
            | Some _, None ->
              Alcotest.fail "exact missed a feasible allocation")
          [ res 1900 ~bram:24 ~dsp:40;
            res 1400 ~bram:16 ~dsp:32;
            res 1200 ~bram:12 ~dsp:24 ]);
    Alcotest.test_case "exact agrees on infeasibility" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let exact =
          Prcore.Exact.allocate ~budget:(res 100) example singles
        in
        Alcotest.(check bool) "none" true (exact.Prcore.Exact.scheme = None);
        Alcotest.(check bool) "optimal (exhausted space)" true
          exact.Prcore.Exact.optimal);
    Alcotest.test_case "state cap reports non-optimal" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let exact =
          Prcore.Exact.allocate ~max_states:10
            ~budget:(res 100_000 ~bram:1_000 ~dsp:1_000) example singles
        in
        Alcotest.(check bool) "truncated" false exact.Prcore.Exact.optimal);
    Alcotest.test_case "promotion disabled in exact too" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let exact =
          Prcore.Exact.allocate ~promote_static:false
            ~budget:(res 1400 ~bram:16 ~dsp:32) example singles
        in
        match exact.Prcore.Exact.scheme with
        | Some s ->
          Alcotest.(check (list int)) "no statics" [] (Scheme.static_members s)
        | None -> Alcotest.fail "expected a scheme");
    Alcotest.test_case "empty candidate set" `Quick (fun () ->
        let exact =
          Prcore.Exact.allocate ~budget:(res 1000) example []
        in
        Alcotest.(check bool) "none" true (exact.Prcore.Exact.scheme = None))
  ]

let weighted_tests =
  [ Alcotest.test_case "weighted_total with unit upper weights = total" `Quick
      (fun () ->
        let s = Scheme.one_module_per_region example in
        let configs = Design.configuration_count example in
        let weights =
          Array.init configs (fun i ->
              Array.init configs (fun j -> if i < j then 1. else 0.))
        in
        Alcotest.(check (float 1e-6)) "equal"
          (float_of_int (Cost.evaluate s).Cost.total_frames)
          (Cost.weighted_total s ~weights));
    Alcotest.test_case "weighted_total rejects shape mismatch" `Quick
      (fun () ->
        let s = Scheme.one_module_per_region example in
        match Cost.weighted_total s ~weights:[| [| 1. |] |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "engine rejects mismatched weight matrix" `Quick
      (fun () ->
        let options =
          { Engine.default_options with
            objective = Engine.Weighted [| [| 0. |] |] }
        in
        match
          Engine.solve ~options ~target:(Engine.Budget big_budget) example
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "weighted objective never worse under its own metric"
      `Quick (fun () ->
        let configs = Design.configuration_count example in
        let rng = Synth.Rng.make 21 in
        let chain =
          Runtime.Markov.random
            ~rand:(fun () -> Synth.Rng.float rng)
            ~configs ()
        in
        let weights = Runtime.Markov.edge_rates chain in
        List.iter
          (fun budget ->
            let solve objective =
              match
                Engine.solve
                  ~options:{ Engine.default_options with objective }
                  ~target:(Engine.Budget budget) example
              with
              | Ok o -> o.Engine.scheme
              | Error m -> Alcotest.fail m
            in
            let value s = Cost.weighted_total s ~weights in
            Alcotest.(check bool) "weighted <= uniform under weights" true
              (value (solve (Engine.Weighted weights))
               <= value (solve Engine.Total_frames) +. 1e-9))
          [ res 1400 ~bram:16 ~dsp:32; res 1900 ~bram:24 ~dsp:40 ]) ]


let scheme_xml_tests =
  [ Alcotest.test_case "round trip preserves structure and cost" `Quick
      (fun () ->
        let design = Design_library.video_receiver in
        let scheme =
          match
            Engine.solve
              ~target:(Engine.Budget Design_library.case_study_budget) design
          with
          | Ok o -> o.Engine.scheme
          | Error m -> Alcotest.fail m
        in
        let reloaded =
          Prcore.Scheme_xml.of_string design (Prcore.Scheme_xml.to_string scheme)
        in
        Alcotest.(check int) "regions" scheme.Scheme.region_count
          reloaded.Scheme.region_count;
        Alcotest.(check (list int)) "statics"
          (Scheme.static_members scheme)
          (Scheme.static_members reloaded);
        Alcotest.(check int) "same total"
          (Cost.evaluate scheme).Cost.total_frames
          (Cost.evaluate reloaded).Cost.total_frames);
    Alcotest.test_case "reference schemes round trip" `Quick (fun () ->
        List.iter
          (fun scheme ->
            let reloaded =
              Prcore.Scheme_xml.of_string example
                (Prcore.Scheme_xml.to_string scheme)
            in
            Alcotest.(check int) "total"
              (Cost.evaluate scheme).Cost.total_frames
              (Cost.evaluate reloaded).Cost.total_frames)
          [ Scheme.single_region example;
            Scheme.one_module_per_region example;
            Scheme.fully_static example ]);
    Alcotest.test_case "wrong design rejected" `Quick (fun () ->
        let scheme = Scheme.one_module_per_region example in
        let xml = Prcore.Scheme_xml.to_string scheme in
        match Prcore.Scheme_xml.of_string Design_library.video_receiver xml with
        | exception Prcore.Scheme_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "unknown mode rejected" `Quick (fun () ->
        match
          Prcore.Scheme_xml.of_string example
            {|<scheme design="running-example">
                <partition freq="1" placement="region:0">
                  <mode name="Z.nope"/>
                </partition>
              </scheme>|}
        with
        | exception Prcore.Scheme_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "invalid placement string rejected" `Quick (fun () ->
        match
          Prcore.Scheme_xml.of_string example
            {|<scheme design="running-example">
                <partition freq="1" placement="attic">
                  <mode name="A.A1"/>
                </partition>
              </scheme>|}
        with
        | exception Prcore.Scheme_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "incomplete scheme rejected by revalidation" `Quick
      (fun () ->
        match
          Prcore.Scheme_xml.of_string example
            {|<scheme design="running-example">
                <partition freq="2" placement="region:0">
                  <mode name="A.A1"/>
                </partition>
              </scheme>|}
        with
        | exception Prcore.Scheme_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let path = Filename.temp_file "scheme" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let scheme = Scheme.one_module_per_region example in
            Prcore.Scheme_xml.save_file path scheme;
            let reloaded = Prcore.Scheme_xml.load_file example path in
            Alcotest.(check int) "regions" scheme.Scheme.region_count
              reloaded.Scheme.region_count)) ]

module Design_space = Prcore.Design_space

let design_space_tests =
  [ Alcotest.test_case "scaled budgets span lower to upper bound" `Quick
      (fun () ->
        let budgets = Design_space.scaled_budgets ~steps:5 example in
        Alcotest.(check int) "count" 5 (List.length budgets);
        let first = List.hd budgets in
        let last = List.nth budgets 4 in
        Alcotest.(check bool) "lower bound" true
          (Resource.equal first
             (Resource.add
                (Fpga.Tile.quantize (Design.min_region_requirement example))
                example.Design.static_overhead));
        Alcotest.(check bool) "upper bound" true
          (Resource.equal last (Design.static_requirement example)));
    Alcotest.test_case "budgets are monotone" `Quick (fun () ->
        let budgets = Design_space.scaled_budgets ~steps:7 example in
        let rec monotone = function
          | a :: (b :: _ as rest) ->
            Resource.fits a ~within:b && monotone rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "ascending" true (monotone budgets));
    Alcotest.test_case "sweep: time non-increasing along the sweep" `Quick
      (fun () ->
        let budgets = Design_space.scaled_budgets ~steps:6 example in
        let results = Design_space.sweep example ~budgets in
        let totals =
          List.filter_map
            (fun (_, p) ->
              Option.map (fun (p : Design_space.point) -> p.total_frames) p)
            results
        in
        let rec non_increasing = function
          | a :: (b :: _ as rest) -> a >= b && non_increasing rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "monotone" true (non_increasing totals));
    Alcotest.test_case "upper bound reaches zero reconfiguration" `Quick
      (fun () ->
        let budgets = Design_space.scaled_budgets ~steps:4 example in
        let results = Design_space.sweep example ~budgets in
        match List.rev results with
        | (_, Some p) :: _ ->
          Alcotest.(check int) "static endpoint" 0 p.Design_space.total_frames
        | _ -> Alcotest.fail "upper bound should be feasible");
    Alcotest.test_case "frontier is strictly improving" `Quick (fun () ->
        let budgets = Design_space.scaled_budgets ~steps:8 example in
        let feasible =
          List.filter_map snd (Design_space.sweep example ~budgets)
        in
        let frontier = Design_space.frontier feasible in
        let rec strict = function
          | (a : Design_space.point) :: (b :: _ as rest) ->
            a.used_frames < b.used_frames
            && a.total_frames > b.total_frames
            && strict rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "pareto" true (strict frontier);
        Alcotest.(check bool) "non-empty" true (frontier <> []));
    Alcotest.test_case "suggest_device finds the smallest" `Quick (fun () ->
        match Design_space.suggest_device example with
        | Some device ->
          (* The running example is tiny: the smallest sweep device works. *)
          Alcotest.(check string) "lx20t" "LX20T" device.Fpga.Device.short
        | None -> Alcotest.fail "expected a device");
    Alcotest.test_case "render marks infeasible budgets" `Quick (fun () ->
        let results =
          Design_space.sweep example ~budgets:[ Resource.make 10 ]
        in
        let rendered = Design_space.render results in
        Alcotest.(check bool) "infeasible" true
          (let rec contains i =
             i + 10 <= String.length rendered
             && (String.sub rendered i 10 = "infeasible" || contains (i + 1))
           in
           contains 0)) ]


let anneal_tests =
  [ Alcotest.test_case "anneal matches the exact optimum on the example"
      `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let budget = res 1400 ~bram:16 ~dsp:32 in
        let exact = Prcore.Exact.allocate ~budget example singles in
        match (Prcore.Anneal.allocate ~budget example singles, exact.scheme)
        with
        | Some a, Some e ->
          Alcotest.(check int) "optimal"
            (Cost.evaluate e).Cost.total_frames
            (Cost.evaluate a).Cost.total_frames
        | _ -> Alcotest.fail "expected schemes from both");
    Alcotest.test_case "anneal is deterministic in its seed" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let budget = res 1400 ~bram:16 ~dsp:32 in
        let run () =
          match Prcore.Anneal.allocate ~budget example singles with
          | Some s -> (Cost.evaluate s).Cost.total_frames
          | None -> -1
        in
        Alcotest.(check int) "same result" (run ()) (run ()));
    Alcotest.test_case "anneal result always fits the budget" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        List.iter
          (fun budget ->
            match Prcore.Anneal.allocate ~budget example singles with
            | Some s ->
              Alcotest.(check bool) "fits" true
                (Cost.fits (Cost.evaluate s) ~budget)
            | None -> ())
          [ res 1200 ~bram:12 ~dsp:24; res 1900 ~bram:24 ~dsp:40 ]);
    Alcotest.test_case "anneal returns None on impossible budgets" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        Alcotest.(check bool) "none" true
          (Prcore.Anneal.allocate ~budget:(res 100) example singles = None));
    Alcotest.test_case "promote_static=false keeps statics empty" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let options =
          { Prcore.Anneal.default_options with promote_static = false }
        in
        match
          Prcore.Anneal.allocate ~options ~budget:(res 1400 ~bram:16 ~dsp:32)
            example singles
        with
        | Some s ->
          Alcotest.(check (list int)) "no statics" [] (Scheme.static_members s)
        | None -> Alcotest.fail "expected a scheme") ]

let worst_limit_tests =
  [ Alcotest.test_case "generous limit changes nothing" `Quick (fun () ->
        let budget = res 1400 ~bram:16 ~dsp:32 in
        let base =
          match Engine.solve ~target:(Engine.Budget budget) example with
          | Ok o -> o.Engine.evaluation.Cost.total_frames
          | Error m -> Alcotest.fail m
        in
        let options =
          { Engine.default_options with worst_limit = Some 1_000_000 }
        in
        match Engine.solve ~options ~target:(Engine.Budget budget) example with
        | Ok o ->
          Alcotest.(check int) "same" base o.Engine.evaluation.Cost.total_frames
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "scheme always honours the limit" `Quick (fun () ->
        let budget = res 1400 ~bram:16 ~dsp:32 in
        let options = { Engine.default_options with worst_limit = Some 800 } in
        match Engine.solve ~options ~target:(Engine.Budget budget) example with
        | Ok o ->
          Alcotest.(check bool) "respected" true
            (o.Engine.evaluation.Cost.worst_frames <= 800)
        | Error _ -> () (* no admissible scheme is a legal outcome *));
    Alcotest.test_case "impossible limit is a clean error" `Quick (fun () ->
        (* Tight budget forces reconfiguration, so worst cannot be zero. *)
        let budget = res 900 ~bram:8 ~dsp:16 in
        let options = { Engine.default_options with worst_limit = Some 0 } in
        match Engine.solve ~options ~target:(Engine.Budget budget) example with
        | Error _ -> ()
        | Ok o ->
          (* Only acceptable if the design genuinely fits statically. *)
          Alcotest.(check int) "zero worst" 0
            o.Engine.evaluation.Cost.worst_frames);
    Alcotest.test_case "limit can force a different trade-off" `Quick
      (fun () ->
        (* Without a limit the engine minimises total; with a tight worst
           limit it must pick a scheme whose worst case is smaller, even
           at a higher total. *)
        let budget = res 1200 ~bram:12 ~dsp:24 in
        let unconstrained =
          match Engine.solve ~target:(Engine.Budget budget) example with
          | Ok o -> o.Engine.evaluation
          | Error m -> Alcotest.fail m
        in
        let limit = unconstrained.Cost.worst_frames - 1 in
        let options = { Engine.default_options with worst_limit = Some limit } in
        match Engine.solve ~options ~target:(Engine.Budget budget) example with
        | Ok o ->
          Alcotest.(check bool) "tighter worst" true
            (o.Engine.evaluation.Cost.worst_frames <= limit);
          Alcotest.(check bool) "total not better" true
            (o.Engine.evaluation.Cost.total_frames
             >= unconstrained.Cost.total_frames)
        | Error _ -> () (* may genuinely be unachievable *)) ]

(* Regression: [Covering.candidate_sets] used to deduplicate covers by the
   raw partition-list value, so two covers containing the same mode sets in
   a different partition order (or built from distinct-but-equal
   [Base_partition.t] values) slipped past the check and burnt candidate
   slots.  The canonical key — the cover as a sorted set of sorted mode
   lists — must make every returned set pairwise distinct. *)

let canonical_key set =
  List.sort compare
    (List.map
       (fun (bp : Base_partition.t) -> List.sort_uniq Int.compare bp.modes)
       set)

let covering_dedup_tests =
  let check_design name design =
    Alcotest.test_case (name ^ " sets pairwise distinct") `Quick (fun () ->
        let partitions = Agglomerative.run design in
        let sets = Prcore.Covering.candidate_sets design partitions in
        Alcotest.(check bool) "non-empty" true (sets <> []);
        let keys = List.map canonical_key sets in
        let distinct = List.sort_uniq compare keys in
        Alcotest.(check int)
          "no duplicate candidate sets"
          (List.length keys) (List.length distinct))
  in
  [ check_design "running-example" example;
    check_design "video-receiver" Design_library.video_receiver ]
  @ List.map
      (fun (name, design) -> check_design name design)
      (List.filteri (fun i _ -> i < 4) Design_library.all)
  @ [ Alcotest.test_case "permuted priority order stays deduplicated" `Quick
        (fun () ->
          (* Feed the covering loop a deliberately reordered partition list:
             covers that are permutations of one another must still collapse
             onto one candidate slot. *)
          let partitions = Agglomerative.run example in
          let reordered = List.rev partitions @ partitions in
          let sets = Prcore.Covering.candidate_sets example reordered in
          let keys = List.map canonical_key sets in
          Alcotest.(check int)
            "no duplicate candidate sets"
            (List.length keys)
            (List.length (List.sort_uniq compare keys))) ]

let () =
  Alcotest.run "core-extensions"
    [ ("exact", exact_tests);
      ("weighted", weighted_tests);
      ("scheme-xml", scheme_xml_tests);
      ("design-space", design_space_tests);
      ("anneal", anneal_tests);
      ("worst-limit", worst_limit_tests);
      ("covering-dedup", covering_dedup_tests) ]
