(* Prguard: deadline-aware anytime solving, crash-safe artefacts and the
   hardened batch front-end.

   Covers the budget/ladder machinery, the atomic-write + recovery layer
   (including single-bit corruption detection), the engine's
   eval-cap determinism contract, and the CLI regressions (--jobs 0
   rejection, batch isolation of a poisoned manifest entry). *)

module Budget = Prguard.Budget
module Ladder = Prguard.Ladder
module Atomic_io = Prguard.Atomic_io
module Engine = Prcore.Engine
module Cost = Prcore.Cost
module Design_xml = Prdesign.Design_xml

let checksum = Bitgen.Crc32.hex_digest

(* ------------------------------------------------------------- helpers *)

let temp_dir prefix =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  (match Atomic_io.mkdir_p path with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let design () =
  match Prdesign.Design_library.find "video-receiver" with
  | Some d -> d
  | None -> Alcotest.fail "built-in design video-receiver missing"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let fx70t = Fpga.Device.find_exn "FX70T"

let solve_capped ?cap design =
  let budget =
    Option.map (fun max_evals -> Budget.make ~max_evals ()) cap
  in
  match Engine.solve ?budget ~target:(Engine.Fixed fx70t) design with
  | Ok o -> o
  | Error m -> Alcotest.fail m

(* -------------------------------------------------------------- budget *)

let budget_tests =
  [ Alcotest.test_case "eval cap exhausts deterministically" `Quick
      (fun () ->
        let b = Budget.make ~max_evals:10 () in
        Alcotest.(check bool) "live" true (Budget.exhausted b = None);
        Budget.charge ~n:9 b;
        Alcotest.(check bool) "still live" true (Budget.exhausted b = None);
        Budget.charge b;
        (match Budget.exhausted b with
         | Some Budget.Eval_cap -> ()
         | _ -> Alcotest.fail "expected Eval_cap");
        (* The eval cap must NOT interrupt (determinism contract):
           [interrupted] is deadline/cancel only. *)
        Alcotest.(check bool) "cap does not interrupt" false
          (Budget.interrupted b));
    Alcotest.test_case "cancellation wins over everything" `Quick
      (fun () ->
        let cancel = Budget.cancel_token () in
        let b = Budget.make ~max_evals:1 ~cancel () in
        Budget.charge ~n:5 b;
        Budget.cancel cancel;
        (match Budget.exhausted b with
         | Some Budget.Cancelled -> ()
         | _ -> Alcotest.fail "expected Cancelled");
        Alcotest.(check bool) "interrupted" true (Budget.interrupted b));
    Alcotest.test_case "expired deadline interrupts immediately" `Quick
      (fun () ->
        let b = Budget.make ~deadline_ms:0.0 () in
        (* Let the wall clock visibly advance past the (zero) allowance,
           then poll often enough to cross the probe stride. *)
        Unix.sleepf 0.002;
        let rec poll n = n > 0 && (Budget.interrupted b || poll (n - 1)) in
        Alcotest.(check bool) "interrupted" true (poll 64);
        match Budget.exhausted b with
        | Some Budget.Deadline -> ()
        | _ -> Alcotest.fail "expected Deadline");
    Alcotest.test_case "fake clock drives deadlines deterministically" `Quick
      (fun () ->
        (* A long-running daemon must not trust the wall clock; the
           budget takes every reading from an injectable clock. With a
           fake the entire deadline timeline is deterministic. *)
        let now = ref 0. in
        let b = Budget.make ~clock:(fun () -> !now) ~deadline_ms:100. () in
        Alcotest.(check bool) "live at t=0" true (Budget.exhausted b = None);
        now := 0.099;
        Alcotest.(check bool) "live at 99ms" true (Budget.exhausted b = None);
        now := 0.101;
        (match Budget.exhausted b with
         | Some Budget.Deadline -> ()
         | _ -> Alcotest.fail "expected Deadline at 101ms");
        Alcotest.(check (float 1e-6)) "elapsed from fake clock" 101.
          (Budget.elapsed_ms b);
        (* Sticky: winding the fake clock backwards (an NTP step under
           the default clock) must not resurrect an expired budget. *)
        now := 0.;
        match Budget.exhausted b with
        | Some Budget.Deadline -> ()
        | _ -> Alcotest.fail "expiry must be sticky");
    Alcotest.test_case "children inherit the parent's clock" `Quick
      (fun () ->
        let now = ref 10. in
        let parent =
          Budget.make ~clock:(fun () -> !now) ~deadline_ms:1000. ()
        in
        let child = Budget.child parent (Budget.spec ~deadline_ms:50. ()) in
        Alcotest.(check bool) "child live" true (Budget.exhausted child = None);
        now := 10.06;
        (match Budget.exhausted child with
         | Some Budget.Deadline -> ()
         | _ -> Alcotest.fail "child deadline from fake clock");
        Alcotest.(check bool) "parent still live" true
          (Budget.exhausted parent = None));
    Alcotest.test_case "monotonic clock never decreases" `Quick
      (fun () ->
        let prev = ref (Budget.monotonic ()) in
        for _ = 1 to 1000 do
          let t = Budget.monotonic () in
          if t < !prev then Alcotest.fail "monotonic clock went backwards";
          prev := t
        done);
    Alcotest.test_case "child budgets share charges and deadlines" `Quick
      (fun () ->
        let parent = Budget.make ~max_evals:100 () in
        let child = Budget.child parent (Budget.spec ~max_evals:5 ()) in
        Budget.charge ~n:5 child;
        (match Budget.exhausted child with
         | Some Budget.Eval_cap -> ()
         | _ -> Alcotest.fail "child cap");
        Alcotest.(check int) "parent charged" 5 (Budget.evals_used parent);
        (* The child is also capped by the parent's remaining budget. *)
        let child2 = Budget.child parent (Budget.spec ~max_evals:1000 ()) in
        Budget.charge ~n:95 child2;
        match Budget.exhausted child2 with
        | Some Budget.Eval_cap -> ()
        | r ->
          Alcotest.failf "parent cap should bound the child (%s)"
            (match r with
             | None -> "live"
             | Some r -> Budget.reason_name r));
    Alcotest.test_case "verdict rendering" `Quick (fun () ->
        Alcotest.(check string) "unguarded" "unguarded"
          (Budget.render_verdict Budget.no_budget);
        let b = Budget.make ~max_evals:3 () in
        Budget.charge ~n:3 b;
        let v = Budget.verdict ~rung:"anneal" b in
        Alcotest.(check bool) "guarded" true v.Budget.guarded;
        Alcotest.(check bool) "degraded" true v.Budget.degraded;
        let rendered = Budget.render_verdict v in
        Alcotest.(check bool) "mentions rung" true
          (String.length rendered > 0
          && Option.is_some (String.index_opt rendered 'a')));
    Alcotest.test_case "spec round-trip" `Quick (fun () ->
        Alcotest.(check bool) "unlimited" true
          (Budget.is_unlimited Budget.unlimited);
        let s = Budget.spec ~deadline_ms:250. ~max_evals:99 () in
        Alcotest.(check bool) "limited" false (Budget.is_unlimited s);
        Alcotest.(check bool) "renders" true
          (String.length (Budget.spec_to_string s) > 0)) ]

(* -------------------------------------------------------------- ladder *)

let ladder_tests =
  [ Alcotest.test_case "parses and round-trips" `Quick (fun () ->
        let spec = "exact:1000,anneal:500:200,greedy,single-region" in
        match Ladder.of_string spec with
        | Error m -> Alcotest.fail m
        | Ok l ->
          Alcotest.(check int) "four rungs" 4 (List.length l.Ladder.rungs);
          (match Ladder.of_string (Ladder.to_string l) with
           | Ok l' ->
             Alcotest.(check string) "round-trip" (Ladder.to_string l)
               (Ladder.to_string l')
           | Error m -> Alcotest.fail m));
    Alcotest.test_case "rejects junk" `Quick (fun () ->
        (match Ladder.of_string "warp-drive" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "accepted an unknown rung");
        (match Ladder.of_string "exact:-5" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "accepted a negative limit");
        match Ladder.of_string "" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted an empty ladder");
    Alcotest.test_case "default ladder is well-formed" `Quick (fun () ->
        match Ladder.validate Ladder.default with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m) ]

(* ----------------------------------------------------------- atomic io *)

let atomic_io_tests =
  [ Alcotest.test_case "write/read round-trip with sidecar" `Quick
      (fun () ->
        let dir = temp_dir "prguard-io" in
        let path = Filename.concat dir "a.bin" in
        let content = "hello\x00world\xff" in
        (match Atomic_io.write ~fsync:false ~checksum ~path content with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        Alcotest.(check string) "content" content (read_file path);
        Alcotest.(check bool) "sidecar exists" true
          (Sys.file_exists (Atomic_io.sidecar path));
        (match Atomic_io.verify ~checksum path with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        (* Overwrite: readers must end up with the new content. *)
        (match Atomic_io.write ~fsync:false ~checksum ~path "v2" with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        Alcotest.(check string) "replaced" "v2" (read_file path));
    Alcotest.test_case "detects corruption, recover quarantines" `Quick
      (fun () ->
        let dir = temp_dir "prguard-corrupt" in
        let path = Filename.concat dir "bits.bin" in
        (match Atomic_io.write ~fsync:false ~checksum ~path "payload" with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        write_raw path "payl0ad";
        (match Atomic_io.verify ~checksum path with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "corruption went undetected");
        match Atomic_io.recover ~checksum ~dir () with
        | Error m -> Alcotest.fail m
        | Ok r ->
          Alcotest.(check bool) "not clean" false (Atomic_io.clean r);
          Alcotest.(check int) "quarantined data+sidecar" 2
            (List.length r.Atomic_io.quarantined);
          Alcotest.(check bool) "moved out" false (Sys.file_exists path);
          Alcotest.(check bool) "into .quarantine" true
            (Sys.file_exists
               (Filename.concat
                  (Filename.concat dir ".quarantine")
                  "bits.bin")));
    Alcotest.test_case "recover sweeps stale temps and orphans" `Quick
      (fun () ->
        let dir = temp_dir "prguard-sweep" in
        let temp = Filename.concat dir ".prguard.x.1.0.tmp" in
        write_raw temp "partial";
        write_raw (Filename.concat dir "ghost.bit.crc32") "deadbeef\n";
        (match Atomic_io.recover ~checksum ~dir () with
         | Error m -> Alcotest.fail m
         | Ok r ->
           Alcotest.(check int) "two issues" 2 (List.length r.Atomic_io.issues);
           Alcotest.(check bool) "temp deleted" false (Sys.file_exists temp));
        (* A second pass over the recovered directory is clean. *)
        match Atomic_io.recover ~checksum ~dir () with
        | Error m -> Alcotest.fail m
        | Ok r -> Alcotest.(check bool) "clean" true (Atomic_io.clean r));
    Alcotest.test_case "failed write leaves no temp behind" `Quick
      (fun () ->
        let dir = temp_dir "prguard-fail" in
        let blocker = Filename.concat dir "blocker" in
        write_raw blocker "a file, not a directory";
        (* Writing under a path whose parent is a regular file fails. *)
        (match
           Atomic_io.write ~fsync:false ~checksum
             ~path:(Filename.concat blocker "x.bin") "data"
         with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected an error");
        let leftovers =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Atomic_io.is_temp f)
        in
        Alcotest.(check (list string)) "no temp files" [] leftovers);
    Alcotest.test_case "mkdir_p nests and reports blockers" `Quick
      (fun () ->
        let dir = temp_dir "prguard-mkdir" in
        let deep = Filename.concat (Filename.concat dir "a") "b" in
        (match Atomic_io.mkdir_p deep with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        Alcotest.(check bool) "created" true
          (Sys.file_exists deep && Sys.is_directory deep);
        (* Idempotent. *)
        (match Atomic_io.mkdir_p deep with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        let blocker = Filename.concat dir "file" in
        write_raw blocker "x";
        match Atomic_io.mkdir_p (Filename.concat blocker "sub") with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected a blocked-component error") ]

(* --------------------------------------------------- engine under guard *)

let engine_tests =
  [ Alcotest.test_case "eval-capped solve is feasible and degraded" `Quick
      (fun () ->
        let d = design () in
        let o = solve_capped ~cap:50 d in
        Alcotest.(check bool) "fits the device" true
          (Cost.fits o.Engine.evaluation ~budget:o.Engine.budget);
        Alcotest.(check bool) "guarded" true
          o.Engine.degraded.Budget.guarded;
        Alcotest.(check bool) "degraded" true
          o.Engine.degraded.Budget.degraded);
    Alcotest.test_case "eval-capped solve is deterministic" `Quick
      (fun () ->
        let d = design () in
        let o1 = solve_capped ~cap:300 d and o2 = solve_capped ~cap:300 d in
        Alcotest.(check bool) "same evaluation" true
          (Cost.equal_evaluation o1.Engine.evaluation o2.Engine.evaluation);
        Alcotest.(check int) "same evals" o1.Engine.cost_evaluations
          o2.Engine.cost_evaluations);
    Alcotest.test_case "no budget means an unguarded verdict" `Quick
      (fun () ->
        let o = solve_capped (design ()) in
        Alcotest.(check bool) "unguarded" false
          o.Engine.degraded.Budget.guarded;
        Alcotest.(check bool) "not degraded" false
          o.Engine.degraded.Budget.degraded);
    Alcotest.test_case "a huge cap matches the uncapped run" `Quick
      (fun () ->
        let d = design () in
        let free = solve_capped d in
        let capped = solve_capped ~cap:10_000_000 d in
        Alcotest.(check bool) "same evaluation" true
          (Cost.equal_evaluation free.Engine.evaluation
             capped.Engine.evaluation);
        Alcotest.(check bool) "not degraded" false
          capped.Engine.degraded.Budget.degraded);
    Alcotest.test_case "tiny deadline still yields a feasible scheme" `Quick
      (fun () ->
        let d = design () in
        let budget = Budget.make ~deadline_ms:0.0 () in
        match Engine.solve ~budget ~target:(Engine.Fixed fx70t) d with
        | Error m -> Alcotest.fail m
        | Ok o ->
          Alcotest.(check bool) "fits" true
            (Cost.fits o.Engine.evaluation ~budget:o.Engine.budget);
          Alcotest.(check bool) "guarded" true
            o.Engine.degraded.Budget.guarded);
    Alcotest.test_case "ladder solve is feasible" `Quick (fun () ->
        let d = design () in
        match
          Engine.solve ~ladder:Ladder.default ~target:(Engine.Fixed fx70t) d
        with
        | Error m -> Alcotest.fail m
        | Ok o ->
          Alcotest.(check bool) "fits" true
            (Cost.fits o.Engine.evaluation ~budget:o.Engine.budget);
          Alcotest.(check bool) "guarded" true
            o.Engine.degraded.Budget.guarded;
          Alcotest.(check bool) "names a rung" true
            (Option.is_some o.Engine.degraded.Budget.rung));
    Alcotest.test_case "jobs < 1 is rejected with a description" `Quick
      (fun () ->
        match Engine.solve ~jobs:0 ~target:Engine.Auto (design ()) with
        | Ok _ -> Alcotest.fail "jobs 0 must be rejected"
        | Error m ->
          Alcotest.(check bool) "mentions the value" true
            (contains m "invalid jobs count 0"));
    Alcotest.test_case "Sweep.run rejects jobs < 1" `Quick (fun () ->
        match Experiments.Sweep.run ~count:1 ~jobs:0 () with
        | exception Invalid_argument m ->
          Alcotest.(check bool) "descriptive" true
            (String.length m > 20)
        | _ -> Alcotest.fail "expected Invalid_argument") ]

(* ------------------------------------------------------------ tool flow *)

let flow_tests =
  [ Alcotest.test_case "write_outputs creates nested directories" `Quick
      (fun () ->
        let d = design () in
        match Flow.Tool_flow.run ~target:Engine.Auto d with
        | Error m -> Alcotest.fail m
        | Ok report ->
          let base = temp_dir "prguard-flow" in
          let dir =
            Filename.concat (Filename.concat base "deep") "er"
          in
          (match Flow.Tool_flow.write_outputs ~fsync:false ~dir report with
           | Error m -> Alcotest.fail m
           | Ok written ->
             Alcotest.(check bool) "wrote files" true
               (List.length written > 0);
             List.iter
               (fun p ->
                 Alcotest.(check bool) (p ^ " exists") true
                   (Sys.file_exists p))
               written;
             (* Every data file has a verifiable sidecar. *)
             List.iter
               (fun p ->
                 if not (Atomic_io.is_sidecar p) then
                   match Atomic_io.verify ~checksum p with
                   | Ok () -> ()
                   | Error m -> Alcotest.fail m)
               written;
             (* And the directory passes recovery cleanly. *)
             (match Atomic_io.recover ~checksum ~dir () with
              | Ok r ->
                Alcotest.(check bool) "clean" true (Atomic_io.clean r)
              | Error m -> Alcotest.fail m)));
    Alcotest.test_case "write_outputs reports unwritable targets" `Quick
      (fun () ->
        let d = design () in
        match Flow.Tool_flow.run ~target:Engine.Auto d with
        | Error m -> Alcotest.fail m
        | Ok report ->
          let base = temp_dir "prguard-ro" in
          let blocker = Filename.concat base "file" in
          write_raw blocker "not a dir";
          (match
             Flow.Tool_flow.write_outputs ~fsync:false
               ~dir:(Filename.concat blocker "out") report
           with
           | Error _ -> ()
           | Ok _ -> Alcotest.fail "expected an error");
          (* A genuinely read-only directory (skipped when running as
             root, which bypasses permission bits). *)
          if Unix.geteuid () <> 0 then begin
            let ro = Filename.concat base "ro" in
            (match Atomic_io.mkdir_p ro with
             | Ok () -> ()
             | Error m -> Alcotest.fail m);
            Unix.chmod ro 0o555;
            Fun.protect
              ~finally:(fun () -> Unix.chmod ro 0o755)
              (fun () ->
                match
                  Flow.Tool_flow.write_outputs ~fsync:false
                    ~dir:(Filename.concat ro "out") report
                with
                | Error _ -> ()
                | Ok _ -> Alcotest.fail "expected a permission error")
          end) ]

(* ------------------------------------------------------- input guards *)

let deep_xml depth =
  let buf = Buffer.create (depth * 8) in
  Buffer.add_string buf "<design name=\"deep\">";
  for _ = 1 to depth do
    Buffer.add_string buf "<module name=\"m\">"
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "</module>"
  done;
  Buffer.add_string buf "</design>";
  Buffer.contents buf

let input_guard_tests =
  [ Alcotest.test_case "xml depth ceiling" `Quick (fun () ->
        let doc = deep_xml 40 in
        (* Unlimited parsing still accepts it. *)
        ignore (Xmllite.Xml.parse_string doc);
        match
          Xmllite.Xml.parse_string
            ~limits:{ Xmllite.Xml.max_bytes = max_int; max_depth = 10 }
            doc
        with
        | exception Xmllite.Xml.Limit_exceeded { limit = "depth"; _ } -> ()
        | exception e -> raise e
        | _ -> Alcotest.fail "deep document accepted");
    Alcotest.test_case "xml size ceiling" `Quick (fun () ->
        match
          Xmllite.Xml.parse_string
            ~limits:{ Xmllite.Xml.max_bytes = 16; max_depth = max_int }
            "<a><b>some text longer than sixteen bytes</b></a>"
        with
        | exception Xmllite.Xml.Limit_exceeded { limit = "bytes"; _ } -> ()
        | exception e -> raise e
        | _ -> Alcotest.fail "oversized document accepted");
    Alcotest.test_case "design ceilings are typed" `Quick (fun () ->
        let xml =
          {|<design name="wide" allow_unused_modes="true">
              <module name="M">
                <mode name="a" clb="1"/><mode name="b" clb="1"/>
                <mode name="c" clb="1"/>
              </module>
              <configurations>
                <configuration name="c1"><use module="M" mode="a"/></configuration>
                <configuration name="c2"><use module="M" mode="b"/></configuration>
              </configurations>
            </design>|}
        in
        (* Defaults are generous: this tiny design passes untouched. *)
        ignore (Design_xml.load_string ~limits:Design_xml.default_limits xml);
        let tight =
          { Design_xml.default_limits with max_modes_per_module = 2 }
        in
        match Design_xml.load_string ~limits:tight xml with
        | exception Design_xml.Too_large { actual = 3; maximum = 2; _ } -> ()
        | exception e -> raise e
        | _ -> Alcotest.fail "over-wide module accepted");
    Alcotest.test_case "limit_message renders the guard exceptions" `Quick
      (fun () ->
        let e = Design_xml.Too_large { what = "modules"; actual = 9; maximum = 1 } in
        (match Design_xml.limit_message e with
         | Some m ->
           Alcotest.(check bool) "mentions ceiling" true
             (String.length m > 10)
         | None -> Alcotest.fail "no message");
        Alcotest.(check (option string)) "other exceptions pass" None
          (Design_xml.limit_message Exit)) ]

(* ------------------------------------------------------------ QCheck *)

let gen_design =
  QCheck2.Gen.(
    map
      (fun seed ->
        let classes = Array.of_list Synth.Generator.all_classes in
        Synth.Generator.generate
          (Synth.Rng.make seed)
          classes.(seed mod Array.length classes)
          ~index:seed)
      (0 -- 5_000))

(* Anytime property: an eval-capped solve always yields a scheme that
   fits the target, and the cost is monotone non-increasing as the cap
   grows (the incumbent only ever improves along the deterministic
   exploration order). *)
let prop_capped_monotone =
  QCheck2.Test.make ~name:"eval-capped solve: feasible, cost monotone in cap"
    ~count:30 gen_design (fun design ->
      let solve cap =
        let budget = Budget.make ~max_evals:cap () in
        Engine.solve ~budget ~target:(Engine.Fixed fx70t) design
      in
      let caps = [ 50; 500; 5_000; 50_000 ] in
      let totals =
        List.filter_map
          (fun cap ->
            match solve cap with
            | Ok o ->
              if not (Cost.fits o.Engine.evaluation ~budget:o.Engine.budget)
              then
                QCheck2.Test.fail_reportf "cap %d produced an unfit scheme"
                  cap
              else Some o.Engine.evaluation.Cost.total_frames
            | Error _ ->
              (* Designs too large for the fixed device are out of
                 scope for this property. *)
              None)
          caps
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> b <= a && monotone rest
        | _ -> true
      in
      monotone totals)

(* Determinism property: the same cap twice gives structurally equal
   evaluations (the eval cap is only consulted at deterministic points). *)
let prop_capped_deterministic =
  QCheck2.Test.make ~name:"eval-capped solve is reproducible" ~count:30
    gen_design (fun design ->
      let solve () =
        let budget = Budget.make ~max_evals:700 () in
        Engine.solve ~budget ~target:(Engine.Fixed fx70t) design
      in
      match (solve (), solve ()) with
      | Ok a, Ok b ->
        Cost.equal_evaluation a.Engine.evaluation b.Engine.evaluation
        && a.Engine.cost_evaluations = b.Engine.cost_evaluations
      | Error a, Error b -> a = b
      | _ -> false)

(* Atomic-io property: round-trips arbitrary content, and any single-bit
   corruption of the stored file is detected. *)
let prop_atomic_roundtrip =
  QCheck2.Test.make ~name:"atomic write round-trips, 1-bit flips detected"
    ~count:50
    QCheck2.Gen.(pair (string_size (1 -- 200)) (pair nat nat))
    (fun (content, (byte_choice, bit_choice)) ->
      let dir = temp_dir "prguard-prop" in
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
            (Sys.readdir dir);
          try Sys.rmdir dir with _ -> ())
        (fun () ->
          let path = Filename.concat dir "blob" in
          (match Atomic_io.write ~fsync:false ~checksum ~path content with
           | Ok () -> ()
           | Error m -> QCheck2.Test.fail_reportf "write failed: %s" m);
          if read_file path <> content then
            QCheck2.Test.fail_report "round-trip mismatch";
          (match Atomic_io.verify ~checksum path with
           | Ok () -> ()
           | Error m -> QCheck2.Test.fail_reportf "fresh verify: %s" m);
          (* Flip one bit somewhere in the stored content. *)
          let bytes = Bytes.of_string content in
          let i = byte_choice mod Bytes.length bytes in
          let mask = 1 lsl (bit_choice mod 8) in
          Bytes.set bytes i
            (Char.chr (Char.code (Bytes.get bytes i) lxor mask));
          write_raw path (Bytes.to_string bytes);
          match Atomic_io.verify ~checksum path with
          | Error _ -> true
          | Ok () -> QCheck2.Test.fail_report "1-bit corruption undetected"))

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [ prop_capped_monotone; prop_capped_deterministic; prop_atomic_roundtrip ]

(* ---------------------------------------------------------------- CLI *)

let prpart =
  let candidates =
    [ Filename.concat (Filename.concat ".." "bin") "prpart.exe";
      Filename.concat
        (Filename.concat (Filename.concat "_build" "default") "bin")
        "prpart.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let run_prpart args =
  let out = Filename.temp_file "prguard" ".out" in
  let err = Filename.temp_file "prguard" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let status =
        Sys.command (Filename.quote_command prpart ~stdout:out ~stderr:err args)
      in
      (status, read_file out, read_file err))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let count_lines_with needle s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> contains l needle)
  |> List.length

let cli_tests =
  [ Alcotest.test_case "--jobs 0 is a descriptive CLI error" `Quick
      (fun () ->
        let status, _, err =
          run_prpart [ "partition"; "running-example"; "--jobs"; "0" ]
        in
        Alcotest.(check bool) "non-zero exit" true (status <> 0);
        Alcotest.(check bool) "names the value" true
          (contains err "invalid jobs count 0"));
    Alcotest.test_case "batch skips a poisoned design, reports the rest"
      `Quick (fun () ->
        let dir = temp_dir "prguard-batch" in
        let poison = Filename.concat dir "poison.xml" in
        write_raw poison "<design name='broken'><modul";
        let manifest = Filename.concat dir "manifest.txt" in
        write_raw manifest
          (String.concat "\n"
             [ "# three good designs, one poisoned";
               "running-example"; "montone-example"; poison;
               "video-receiver"; "" ]);
        let jsonl = Filename.concat dir "results.jsonl" in
        let status, out, _ =
          run_prpart
            [ "batch"; manifest; "--max-evals"; "20000"; "--jsonl"; jsonl ]
        in
        (* Partial failure: non-zero exit, but all N-1 good designs
           completed and streamed a result. *)
        Alcotest.(check bool) "non-zero exit" true (status <> 0);
        Alcotest.(check int) "3 of 4 ok" 3
          (count_lines_with "\"status\":\"ok\"" out);
        Alcotest.(check int) "1 of 4 failed" 1
          (count_lines_with "\"status\":\"error\"" out);
        (* The JSONL artefact matches the stream and is checksummed. *)
        let stored = read_file jsonl in
        Alcotest.(check int) "jsonl ok lines" 3
          (count_lines_with "\"status\":\"ok\"" stored);
        match Atomic_io.verify ~checksum jsonl with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "batch with all-good manifest exits zero" `Quick
      (fun () ->
        let dir = temp_dir "prguard-batch-ok" in
        let manifest = Filename.concat dir "manifest.txt" in
        write_raw manifest "running-example\nmontone-example\n";
        let status, out, _ =
          run_prpart [ "batch"; manifest; "--max-evals"; "20000" ] in
        Alcotest.(check int) "exit zero" 0 status;
        Alcotest.(check int) "2 ok" 2
          (count_lines_with "\"status\":\"ok\"" out));
    Alcotest.test_case "recover CLI quarantines a torn artefact" `Quick
      (fun () ->
        let dir = temp_dir "prguard-recover-cli" in
        let path = Filename.concat dir "full.bit" in
        (match Atomic_io.write ~fsync:false ~checksum ~path "bitstream" with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        write_raw path "bitstreaX";
        let status, out, _ = run_prpart [ "recover"; dir; "--strict" ] in
        Alcotest.(check bool) "strict non-zero" true (status <> 0);
        Alcotest.(check bool) "reports corruption" true
          (contains out "corrupt");
        (* After quarantine a second strict pass is clean. *)
        let status2, _, _ = run_prpart [ "recover"; dir; "--strict" ] in
        Alcotest.(check int) "clean second pass" 0 status2) ]

let () =
  Alcotest.run "guard"
    [ ("budget", budget_tests);
      ("ladder", ladder_tests);
      ("atomic-io", atomic_io_tests);
      ("engine", engine_tests);
      ("flow", flow_tests);
      ("input-guards", input_guard_tests);
      ("properties", qcheck_tests);
      ("cli", cli_tests) ]
