(* Prfleet: multi-replica serving (PR 10).

   Covers the seeded service-fault engine ([Prfault.Service]), the
   cross-process cache lockfile (stale-pid and stale-stamp takeover),
   shared-cache coordination between cache instances and between real
   replica processes (including a chaos kill -9 mid-cache-write), the
   fault-tolerant client (failover, circuit breakers, non-retryable
   rejects, deadlines) and the supervisor (restart after SIGKILL,
   restart-budget exhaustion). *)

module Service = Prfault.Service
module Recovery = Prfault.Recovery
module Lockfile = Prserve.Lockfile
module Chaos = Prserve.Chaos
module Cache = Prserve.Cache
module Client = Prserve.Client
module Server = Prserve.Server
module Endpoint = Prserve.Endpoint
module Protocol = Prserve.Protocol
module Supervisor = Prserve.Supervisor
module Engine = Prcore.Engine

(* ------------------------------------------------------------- helpers *)

let temp_dir prefix =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  (match Prguard.Atomic_io.mkdir_p path with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  path

let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let fx70t = Fpga.Device.find_exn "FX70T"

let deterministic_config ?(telemetry = Prtelemetry.null) ?chaos ?cache_dir
    ?(cache_shared = false) () =
  { (Server.default_config ~telemetry ()) with
    Server.target = Engine.Fixed fx70t;
    deadline_ms = None;
    jobs = 2;
    cache_dir;
    cache_shared;
    shed_thresholds_ms = [| 1e9; 1e9; 1e9 |];
    chaos }

let create_server config =
  match Server.create config with
  | Ok s -> s
  | Error m -> Alcotest.fail m

(* An in-process daemon on a Unix socket; returns a stopper. *)
let start_daemon ?telemetry ?chaos ?cache_dir ?cache_shared path =
  let server =
    create_server (deterministic_config ?telemetry ?chaos ?cache_dir
                     ?cache_shared ())
  in
  let endpoint =
    match Endpoint.listen (Endpoint.Unix_path path) with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let loop =
    Thread.create
      (fun () -> Endpoint.serve_loop ~poll_interval:0.05 endpoint server)
      ()
  in
  let stop () =
    Server.request_shutdown server;
    Thread.join loop;
    Endpoint.close endpoint;
    Server.drain server
  in
  (server, stop)

let fresh_signature design =
  match Engine.solve ~target:(Engine.Fixed fx70t) design with
  | Error m -> Alcotest.fail m
  | Ok o -> Bitgen.Crc32.hex_digest (Prcore.Memo.scheme_signature o.Engine.scheme)

let quick_policy =
  { Client.deadline_ms = Some 10_000.;
    retry =
      { Recovery.max_attempts = 5;
        base_backoff_s = 0.005;
        backoff_multiplier = 2.;
        max_backoff_s = 0.05;
        jitter = 0.2;
        transition_budget_s = None };
    connect_retry =
      { Recovery.max_attempts = 1;
        base_backoff_s = 0.005;
        backoff_multiplier = 1.;
        max_backoff_s = 0.005;
        jitter = 0.;
        transition_budget_s = None };
    breaker_failures = 1;
    breaker_cooldown_ms = 10_000. }

let create_client ?(policy = quick_policy) ?telemetry endpoints =
  match Client.create ~policy ?telemetry ~seed:7 endpoints with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let prpart =
  let candidates =
    [ Filename.concat (Filename.concat ".." "bin") "prpart.exe";
      Filename.concat
        (Filename.concat (Filename.concat "_build" "default") "bin")
        "prpart.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

(* Spawn a real `prpart serve` replica; stdout/stderr to /dev/null. *)
let spawn_serve ?chaos ~shared_cache ~sock () =
  let argv =
    [ prpart; "serve"; "--socket"; sock; "--device"; "FX70T";
      "--no-deadline"; "--jobs"; "2"; "--shared-cache"; shared_cache ]
    @ (match chaos with Some s -> [ "--chaos"; s ] | None -> [])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process (List.hd argv) (Array.of_list argv) Unix.stdin null
      null
  in
  Unix.close null;
  pid

let startup_retry =
  { Recovery.max_attempts = 60;
    base_backoff_s = 0.05;
    backoff_multiplier = 1.;
    max_backoff_s = 0.05;
    jitter = 0.;
    transition_budget_s = None }

(* ------------------------------------------------------ service engine *)

let parse_spec s =
  match Service.spec_of_string s with
  | Ok spec -> spec
  | Error m -> Alcotest.fail m

let service_tests =
  [ Alcotest.test_case "spec grammar round-trips" `Quick (fun () ->
        let spec =
          parse_spec "seed=42,kill-solve@0,conn-reset=0.05,slow-ms=120,max-faults=3"
        in
        Alcotest.(check int) "seed" 42 spec.Service.seed;
        Alcotest.(check bool) "schedule" true
          (spec.Service.schedule = [ (0, Service.Crash_solve) ]);
        Alcotest.(check bool) "rate" true
          (List.mem_assoc Service.Conn_reset spec.Service.rates);
        Alcotest.(check (float 1e-9)) "slow" 120. spec.Service.slow_reply_ms;
        Alcotest.(check (option int)) "budget" (Some 3) spec.Service.max_faults;
        let reparsed = parse_spec (Service.spec_to_string spec) in
        Alcotest.(check bool) "round trip" true (reparsed = spec);
        (match Service.spec_of_string "seed=1,bogus-kind@0" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "bogus kind accepted");
        match Service.spec_of_string "seed=1,conn-reset=1.5" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "rate out of range accepted");
    Alcotest.test_case "fault stream is deterministic under a seed" `Quick
      (fun () ->
        let spec = parse_spec "seed=9,conn-reset=0.3,slow-reply=0.2" in
        let run () =
          let t = Service.start spec in
          List.init 60 (fun i ->
              let point =
                match i mod 3 with
                | 0 -> Service.Solve_point
                | 1 -> Service.Cache_write_point
                | _ -> Service.Reply_point
              in
              Service.draw t point)
        in
        Alcotest.(check bool) "replay" true (run () = run ()));
    Alcotest.test_case "schedule fires at its exact operation index" `Quick
      (fun () ->
        let t = Service.start (parse_spec "seed=0,kill-solve@2") in
        (* Interleave other points: they must not consume solve indices. *)
        Alcotest.(check bool) "reply 0" true
          (Service.draw t Service.Reply_point = None);
        Alcotest.(check bool) "solve 0" true
          (Service.draw t Service.Solve_point = None);
        Alcotest.(check bool) "solve 1" true
          (Service.draw t Service.Solve_point = None);
        Alcotest.(check bool) "cache 0" true
          (Service.draw t Service.Cache_write_point = None);
        Alcotest.(check bool) "solve 2 fires" true
          (Service.draw t Service.Solve_point = Some Service.Crash_solve);
        Alcotest.(check int) "one fault" 1 (Service.faults_injected t));
    Alcotest.test_case "max-faults bounds the injection budget" `Quick
      (fun () ->
        let t = Service.start (parse_spec "seed=3,conn-reset=1,max-faults=2") in
        let fired = ref 0 in
        for _ = 1 to 20 do
          if Service.draw t Service.Reply_point <> None then incr fired
        done;
        Alcotest.(check int) "exactly budget" 2 !fired;
        Alcotest.(check int) "accounted" 2 (Service.faults_injected t);
        Alcotest.(check int) "operations" 20
          (Service.operations t Service.Reply_point)) ]

(* ----------------------------------------------------------- lockfile *)

let lockfile_tests =
  [ Alcotest.test_case "acquire, contend, release" `Quick (fun () ->
        let dir = temp_dir "prfleet-lock" in
        let lock =
          match Lockfile.acquire ~dir () with
          | Ok l -> l
          | Error m -> Alcotest.fail m
        in
        Alcotest.(check bool) "on disk" true
          (Sys.file_exists (Lockfile.path_in dir));
        (* A live, fresh lock blocks a second acquirer until timeout. *)
        (match Lockfile.acquire ~timeout_s:0.1 ~dir () with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "double acquire");
        Lockfile.release lock;
        Alcotest.(check bool) "released" false
          (Sys.file_exists (Lockfile.path_in dir));
        (match Lockfile.acquire ~timeout_s:1. ~dir () with
         | Ok l2 -> Lockfile.release l2
         | Error m -> Alcotest.fail m));
    Alcotest.test_case "dead-pid lock is taken over" `Quick (fun () ->
        let dir = temp_dir "prfleet-lock" in
        (* A pid far above pid_max: certainly not running. *)
        write_raw (Lockfile.path_in dir)
          (Printf.sprintf "pid %d\nstamp %.6f\n" 99_999_999
             (Unix.gettimeofday ()));
        let t0 = Unix.gettimeofday () in
        (match Lockfile.acquire ~timeout_s:2. ~dir () with
         | Ok l ->
           Alcotest.(check bool) "fast takeover" true
             (Unix.gettimeofday () -. t0 < 1.);
           Lockfile.release l
         | Error m -> Alcotest.fail m);
        (* Takeover leaves no stale-aside debris behind. *)
        let leftovers = Sys.readdir dir in
        Alcotest.(check int) "dir clean" 0 (Array.length leftovers));
    Alcotest.test_case "expired heartbeat is taken over" `Quick (fun () ->
        let dir = temp_dir "prfleet-lock" in
        (* Our own (live) pid but a stamp far past the TTL: the holder
           is considered wedged. *)
        write_raw (Lockfile.path_in dir)
          (Printf.sprintf "pid %d\nstamp %.6f\n" (Unix.getpid ())
             (Unix.gettimeofday () -. 100.));
        (match Lockfile.acquire ~ttl_s:0.5 ~timeout_s:2. ~dir () with
         | Ok l -> Lockfile.release l
         | Error m -> Alcotest.fail m));
    Alcotest.test_case "garbage lock content is stale" `Quick (fun () ->
        let dir = temp_dir "prfleet-lock" in
        write_raw (Lockfile.path_in dir) "not a lock file";
        match Lockfile.acquire ~timeout_s:2. ~dir () with
        | Ok l -> Lockfile.release l
        | Error m -> Alcotest.fail m) ]

(* -------------------------------------------------------- shared cache *)

let entry_for key design =
  { Cache.key;
    design;
    scheme_xml = "<scheme name=\"" ^ design ^ "\"/>";
    regions = 2;
    total_frames = 100;
    worst_frames = 50;
    device = Some "FX70T";
    signature = "cafef00d" }

let shared_cache_tests =
  [ Alcotest.test_case "a replica's write warms its peers on miss" `Quick
      (fun () ->
        let dir = temp_dir "prfleet-cache" in
        let telemetry_b = Prtelemetry.create Prtelemetry.Sink.null in
        let make telemetry =
          match Cache.create ~dir ~shared:true ~telemetry () with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        let a = make Prtelemetry.null in
        let b = make telemetry_b in
        Alcotest.(check bool) "shared" true (Cache.shared b);
        let key = Cache.key ~config:"cfg" ~design_text:"<design/>" in
        Cache.add a (entry_for key "peer-design");
        (* b was created before the write, so this is a disk reload. *)
        (match Cache.find b ~key with
         | Some e ->
           Alcotest.(check string) "bytes" "<scheme name=\"peer-design\"/>"
             e.Cache.scheme_xml
         | None -> Alcotest.fail "peer entry not visible");
        Alcotest.(check int) "shared_loads" 1 (Cache.shared_loads b);
        Alcotest.(check int) "counter" 1
          (Prtelemetry.counter_value telemetry_b "serve.cache.shared_loads");
        (* Second hit is served from memory, not re-read. *)
        (match Cache.find b ~key with
         | Some _ -> ()
         | None -> Alcotest.fail "lost after adoption");
        Alcotest.(check int) "no re-read" 1 (Cache.shared_loads b));
    Alcotest.test_case "shared mode requires a directory" `Quick (fun () ->
        match Cache.create ~shared:true () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "directory-less shared cache accepted");
    Alcotest.test_case "torn peer entry is a miss, not a wrong answer"
      `Quick (fun () ->
        let dir = temp_dir "prfleet-cache" in
        let make () =
          match Cache.create ~dir ~shared:true () with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        let a = make () in
        let b = make () in
        let key = Cache.key ~config:"cfg" ~design_text:"<d/>" in
        Cache.add a (entry_for key "x");
        (* Tear the entry file under b's nose (sidecar left full). *)
        Array.iter
          (fun f ->
            let path = Filename.concat dir f in
            if
              (not (Filename.check_suffix f ".crc"))
              && f <> Lockfile.lock_name
              && Sys.is_regular_file path
            then begin
              let data =
                let ic = open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              write_raw path (String.sub data 0 (String.length data / 2))
            end)
          (Sys.readdir dir);
        (match Cache.find b ~key with
         | None -> ()
         | Some _ -> Alcotest.fail "torn entry served");
        Alcotest.(check int) "no shared load" 0 (Cache.shared_loads b)) ]

(* ------------------------------------------- cross-process chaos kill *)

let process_tests =
  [ Alcotest.test_case "kill -9 mid-cache-write: peers recover the dir"
      `Quick (fun () ->
        let dir = temp_dir "prfleet-proc" in
        let cache_dir = Filename.concat dir "cache" in
        (match Prguard.Atomic_io.mkdir_p cache_dir with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        let sock1 = Filename.concat dir "r1.sock" in
        (* Replica 1 dies mid-cache-write on its first solve, holding
           the cache lockfile and leaving a torn entry + temp file. *)
        let pid1 =
          spawn_serve ~chaos:"seed=1,kill-cache-write@0"
            ~shared_cache:cache_dir ~sock:sock1 ()
        in
        let c1 =
          match
            Endpoint.connect ~retry:startup_retry (Endpoint.Unix_path sock1)
          with
          | Ok c -> c
          | Error m -> Alcotest.fail ("connect replica 1: " ^ m)
        in
        (match Endpoint.request c1 "SOLVE running-example" with
         | Error _ -> ()  (* EOF: the replica died before replying *)
         | Ok r -> Alcotest.fail ("reply from killed replica: " ^ r));
        Endpoint.close_client c1;
        let _, status = Unix.waitpid [] pid1 in
        (match status with
         | Unix.WEXITED 137 -> ()
         | Unix.WEXITED n ->
           Alcotest.fail (Printf.sprintf "exit %d, wanted 137" n)
         | _ -> Alcotest.fail "replica not killed by chaos");
        Alcotest.(check bool) "died holding the lock" true
          (Sys.file_exists (Lockfile.path_in cache_dir));
        (* A clean replica on the same directory must take the stale
           lock over, quarantine the torn entry and serve fresh. *)
        let sock2 = Filename.concat dir "r2.sock" in
        let pid2 = spawn_serve ~shared_cache:cache_dir ~sock:sock2 () in
        let c2 =
          match
            Endpoint.connect ~retry:startup_retry (Endpoint.Unix_path sock2)
          with
          | Ok c -> c
          | Error m -> Alcotest.fail ("connect replica 2: " ^ m)
        in
        let expected =
          fresh_signature (Prdesign.Design_library.running_example)
        in
        (match Endpoint.request c2 "SOLVE running-example" with
         | Error m -> Alcotest.fail ("replica 2 solve: " ^ m)
         | Ok reply -> (
           match Protocol.parse_reply reply with
           | Ok (Protocol.R_solved s) ->
             Alcotest.(check bool) "not from the torn cache" false
               s.Protocol.cached;
             Alcotest.(check string) "right answer" expected
               s.Protocol.signature
           | _ -> Alcotest.fail ("unparseable reply: " ^ reply)));
        (* And the re-solve was cached cleanly this time. *)
        (match Endpoint.request c2 "SOLVE running-example" with
         | Error m -> Alcotest.fail m
         | Ok reply -> (
           match Protocol.parse_reply reply with
           | Ok (Protocol.R_solved s) ->
             Alcotest.(check bool) "cached now" true s.Protocol.cached
           | _ -> Alcotest.fail "second reply unparseable"));
        (match Endpoint.request c2 "SHUTDOWN" with
         | Ok "BYE" -> ()
         | Ok r -> Alcotest.fail ("shutdown: " ^ r)
         | Error m -> Alcotest.fail m);
        Endpoint.close_client c2;
        ignore (Unix.waitpid [] pid2)) ]

(* -------------------------------------------------------------- client *)

let client_tests =
  [ Alcotest.test_case "failover past a dead endpoint, breaker opens"
      `Quick (fun () ->
        let dir = temp_dir "prfleet-client" in
        let dead = Endpoint.Unix_path (Filename.concat dir "dead.sock") in
        let live_path = Filename.concat dir "live.sock" in
        let _, stop = start_daemon live_path in
        Fun.protect ~finally:stop (fun () ->
            let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
            let client =
              create_client ~telemetry
                [ dead; Endpoint.Unix_path live_path ]
            in
            let expected =
              fresh_signature
                (Prdesign.Design_library.running_example)
            in
            (match Client.solve client "running-example" with
             | Ok s ->
               Alcotest.(check string) "right answer" expected
                 s.Protocol.signature
             | Error e -> Alcotest.fail (Client.error_message e));
            Alcotest.(check bool) "failed over" true
              (Client.failovers client >= 1);
            Alcotest.(check bool) "retried" true (Client.retries client >= 1);
            Alcotest.(check bool) "dead breaker open" true
              (Client.breaker_state client 0 = Client.Open);
            Alcotest.(check int) "breaker accounted" 1
              (Client.breaker_opens client);
            (* The client is now sticky on the live endpoint: no new
               retries for subsequent requests. *)
            let before = Client.retries client in
            (match Client.solve client "running-example" with
             | Ok s -> Alcotest.(check bool) "cached" true s.Protocol.cached
             | Error e -> Alcotest.fail (Client.error_message e));
            Alcotest.(check int) "no extra retries" before
              (Client.retries client);
            Client.close client));
    Alcotest.test_case "non-retryable reject fails without retries" `Quick
      (fun () ->
        let dir = temp_dir "prfleet-client" in
        let live_path = Filename.concat dir "live.sock" in
        let _, stop = start_daemon live_path in
        Fun.protect ~finally:stop (fun () ->
            let client = create_client [ Endpoint.Unix_path live_path ] in
            (match Client.solve client "no-such-design-anywhere" with
             | Error (Client.Rejected { code; _ }) ->
               Alcotest.(check string) "code" "not-found" code
             | Error e ->
               Alcotest.fail ("wrong error: " ^ Client.error_message e)
             | Ok _ -> Alcotest.fail "unknown design solved");
            Alcotest.(check int) "no retries" 0 (Client.retries client);
            Client.close client));
    Alcotest.test_case "half-open probe closes the breaker on recovery"
      `Quick (fun () ->
        let dir = temp_dir "prfleet-client" in
        let path = Filename.concat dir "flaky.sock" in
        let policy =
          { quick_policy with
            Client.breaker_cooldown_ms = 50.;
            retry =
              { quick_policy.Client.retry with Recovery.max_attempts = 2 } }
        in
        let client = create_client ~policy [ Endpoint.Unix_path path ] in
        (* Nothing listening: the lone endpoint's breaker opens. *)
        (match Client.solve client "running-example" with
         | Error (Client.Unavailable _) -> ()
         | Error e -> Alcotest.fail ("wrong error: " ^ Client.error_message e)
         | Ok _ -> Alcotest.fail "solved against nothing");
        Alcotest.(check bool) "open" true
          (Client.breaker_state client 0 = Client.Open);
        (* Bring the endpoint up, let the cooldown lapse: the next
           request is the half-open probe and must close the breaker. *)
        let _, stop = start_daemon path in
        Fun.protect ~finally:stop (fun () ->
            Thread.delay 0.08;
            (match Client.health client with
             | Ok true -> ()
             | Ok false -> Alcotest.fail "draining?"
             | Error e -> Alcotest.fail (Client.error_message e));
            Alcotest.(check bool) "closed again" true
              (Client.breaker_state client 0 = Client.Closed);
            Client.close client));
    Alcotest.test_case "deadline bounds the whole retry loop" `Quick
      (fun () ->
        let dir = temp_dir "prfleet-client" in
        let dead = Endpoint.Unix_path (Filename.concat dir "dead.sock") in
        let policy =
          { quick_policy with
            Client.deadline_ms = Some 150.;
            breaker_cooldown_ms = 1.;
            retry =
              { Recovery.max_attempts = 1000;
                base_backoff_s = 0.01;
                backoff_multiplier = 1.;
                max_backoff_s = 0.01;
                jitter = 0.;
                transition_budget_s = None } }
        in
        let client = create_client ~policy [ dead ] in
        let t0 = Unix.gettimeofday () in
        (match Client.solve client "running-example" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "solved against nothing");
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool)
          (Printf.sprintf "bounded (%.3fs)" elapsed)
          true (elapsed < 2.);
        Client.close client) ]

(* ---------------------------------------------------------- supervisor *)

let supervisor_config ~restart_limit =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  ( { (Supervisor.default_config ()) with
      Supervisor.restart_limit;
      backoff_ms = 30.;
      max_backoff_ms = 200.;
      probe_interval_s = 0.1;
      probe_failures = 5;
      startup_grace_s = 10.;
      tick_s = 0.02;
      stdio = Some null },
    fun () -> Unix.close null )

let wait_for ?(timeout_s = 15.) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let supervisor_tests =
  [ Alcotest.test_case "SIGKILLed replica restarts under the budget"
      `Quick (fun () ->
        let dir = temp_dir "prfleet-sup" in
        let sock = Filename.concat dir "r.sock" in
        let config, cleanup = supervisor_config ~restart_limit:3 in
        let spec =
          { Supervisor.name = "r0";
            address = Endpoint.Unix_path sock;
            argv =
              (fun ~incarnation:_ ->
                [| prpart; "serve"; "--socket"; sock; "--device"; "FX70T";
                   "--no-deadline"; "--jobs"; "2" |]) }
        in
        let sup =
          match Supervisor.start ~config [ spec ] with
          | Ok s -> s
          | Error m -> Alcotest.fail m
        in
        Fun.protect
          ~finally:(fun () ->
            Supervisor.stop sup;
            cleanup ())
          (fun () ->
            (match Supervisor.await_healthy ~timeout_s:20. sup with
             | Ok () -> ()
             | Error m -> Alcotest.fail m);
            let pid =
              match Supervisor.statuses sup with
              | [ { Supervisor.s_pid = Some pid; _ } ] -> pid
              | _ -> Alcotest.fail "no pid for healthy replica"
            in
            Unix.kill pid Sys.sigkill;
            wait_for "restart" (fun () -> Supervisor.restarts sup >= 1);
            wait_for "healthy again" (fun () ->
                List.for_all
                  (fun s -> s.Supervisor.s_phase = Supervisor.Healthy)
                  (Supervisor.statuses sup));
            (match Supervisor.statuses sup with
             | [ { Supervisor.s_pid = Some pid2; s_restarts; _ } ] ->
               Alcotest.(check bool) "new process" true (pid2 <> pid);
               Alcotest.(check int) "one restart" 1 s_restarts
             | _ -> Alcotest.fail "replica lost");
            Alcotest.(check bool) "budget intact" false
              (Supervisor.gave_up sup)));
    Alcotest.test_case "exhausted restart budget parks the replica" `Quick
      (fun () ->
        let config, cleanup = supervisor_config ~restart_limit:2 in
        let config =
          { config with Supervisor.startup_grace_s = 0.2 }
        in
        let spec =
          { Supervisor.name = "doomed";
            address =
              Endpoint.Unix_path
                (Filename.concat (temp_dir "prfleet-sup") "never.sock");
            argv =
              (fun ~incarnation:_ -> [| "/bin/sh"; "-c"; "exit 0" |]) }
        in
        let sup =
          match Supervisor.start ~config [ spec ] with
          | Ok s -> s
          | Error m -> Alcotest.fail m
        in
        Fun.protect
          ~finally:(fun () ->
            Supervisor.stop sup;
            cleanup ())
          (fun () ->
            wait_for "gave up" (fun () -> Supervisor.gave_up sup);
            Alcotest.(check int) "budget spent" 2 (Supervisor.restarts sup)));
    Alcotest.test_case
      "request_stop keeps shutdown-window exits out of the restart count"
      `Quick (fun () ->
        (* A process-group SIGTERM (timeout(1), job-control kill) hits
           the replicas at the same instant the fleet owner is told to
           stop.  After [request_stop] the monitor must not book those
           exits as scheduled restarts while the owner wakes up to call
           [stop]. *)
        let config, cleanup = supervisor_config ~restart_limit:3 in
        let spec =
          { Supervisor.name = "r0";
            address =
              Endpoint.Unix_path
                (Filename.concat (temp_dir "prfleet-sup") "quiet.sock");
            argv =
              (fun ~incarnation:_ -> [| "/bin/sh"; "-c"; "exec sleep 30" |])
          }
        in
        let sup =
          match Supervisor.start ~config [ spec ] with
          | Ok s -> s
          | Error m -> Alcotest.fail m
        in
        Fun.protect
          ~finally:(fun () ->
            Supervisor.stop sup;
            cleanup ())
          (fun () ->
            let pid =
              match Supervisor.statuses sup with
              | [ { Supervisor.s_pid = Some pid; _ } ] -> pid
              | _ -> Alcotest.fail "replica did not spawn"
            in
            Supervisor.request_stop sup;
            (* The replica dies as if the group-wide signal reached it
               directly; give the (now frozen) monitor many ticks to
               mis-handle it if it were still stepping. *)
            Unix.kill pid Sys.sigterm;
            Thread.delay 0.3;
            Alcotest.(check int) "no restart booked" 0
              (Supervisor.restarts sup))) ]

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "fleet"
    [ ("service", service_tests);
      ("lockfile", lockfile_tests);
      ("shared-cache", shared_cache_tests);
      ("process", process_tests);
      ("client", client_tests);
      ("supervisor", supervisor_tests) ]
