(* Tests for the Xmllite substrate: parsing, printing, escaping, accessors
   and error reporting. *)

module Xml = Xmllite.Xml

let check_parse name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) "parse result" true (Xml.parse_string input = expected))

let parse_fails name input =
  Alcotest.test_case name `Quick (fun () ->
      match Xml.parse_string input with
      | exception Xml.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error")

let parsing_tests =
  [ check_parse "empty element" "<a/>" (Xml.Element ("a", [], []));
    check_parse "empty element with space" "<a />" (Xml.Element ("a", [], []));
    check_parse "nested" "<a><b/><c/></a>"
      (Xml.Element ("a", [], [ Xml.Element ("b", [], []); Xml.Element ("c", [], []) ]));
    check_parse "text content" "<a>hello</a>"
      (Xml.Element ("a", [], [ Xml.Text "hello" ]));
    check_parse "attributes" {|<a x="1" y="two"/>|}
      (Xml.Element ("a", [ ("x", "1"); ("y", "two") ], []));
    check_parse "single-quoted attribute" "<a x='1'/>"
      (Xml.Element ("a", [ ("x", "1") ], []));
    check_parse "whitespace between nodes" "<a>\n  <b/>\n</a>"
      (Xml.Element ("a", [], [ Xml.Element ("b", [], []) ]));
    check_parse "xml declaration skipped" "<?xml version=\"1.0\"?><a/>"
      (Xml.Element ("a", [], []));
    check_parse "comment skipped" "<a><!-- comment --><b/></a>"
      (Xml.Element ("a", [], [ Xml.Element ("b", [], []) ]));
    check_parse "doctype skipped" "<!DOCTYPE design><a/>"
      (Xml.Element ("a", [], []));
    check_parse "entities decoded" "<a>&lt;&amp;&gt;&quot;&apos;</a>"
      (Xml.Element ("a", [], [ Xml.Text "<&>\"'" ]));
    check_parse "numeric references" "<a>&#65;&#x42;</a>"
      (Xml.Element ("a", [], [ Xml.Text "AB" ]));
    check_parse "entity in attribute" {|<a x="a&amp;b"/>|}
      (Xml.Element ("a", [ ("x", "a&b") ], []));
    check_parse "mixed content keeps text" "<a>x<b/>y</a>"
      (Xml.Element
         ("a", [], [ Xml.Text "x"; Xml.Element ("b", [], []); Xml.Text "y" ]));
    check_parse "name characters" "<a-b.c_d:e/>"
      (Xml.Element ("a-b.c_d:e", [], []));
    check_parse "trailing comment" "<a/><!-- bye -->"
      (Xml.Element ("a", [], []));
    parse_fails "unterminated element" "<a>";
    parse_fails "mismatched close" "<a></b>";
    parse_fails "trailing garbage" "<a/>junk";
    parse_fails "two roots" "<a/><b/>";
    parse_fails "text root" "just text";
    parse_fails "unterminated attribute" "<a x=\"1/>";
    parse_fails "missing attribute value" "<a x/>";
    parse_fails "empty input" "";
    parse_fails "unterminated comment" "<!-- <a/>" ]

let roundtrip name doc =
  Alcotest.test_case ("roundtrip " ^ name) `Quick (fun () ->
      let printed = Xml.to_string doc in
      Alcotest.(check bool) "reparse equals" true (Xml.parse_string printed = doc))

let printing_tests =
  [ roundtrip "simple" (Xml.Element ("a", [], []));
    roundtrip "attributes escaped"
      (Xml.Element ("a", [ ("x", "a&b<c>\"d'") ], []));
    roundtrip "text escaped" (Xml.Element ("a", [], [ Xml.Text "x < y & z" ]));
    roundtrip "deep nesting"
      (Xml.Element
         ( "a",
           [ ("k", "v") ],
           [ Xml.Element ("b", [], [ Xml.Element ("c", [], [ Xml.Text "t" ]) ]) ] ));
    Alcotest.test_case "escape covers all five" `Quick (fun () ->
        Alcotest.(check string) "escaped"
          "&amp;&lt;&gt;&quot;&apos;" (Xml.escape "&<>\"'"));
    Alcotest.test_case "unescape unknown entity kept" `Quick (fun () ->
        Alcotest.(check string) "kept" "&unknown;" (Xml.unescape "&unknown;"));
    Alcotest.test_case "unescape lone ampersand" `Quick (fun () ->
        Alcotest.(check string) "kept" "a&b" (Xml.unescape "a&b")) ]

(* Regression: character references used to go through a bare
   [int_of_string] (so OCaml-isms like the "&#1_0;" digit separator or
   a stray "0x" slipped through) and the code point was truncated to a
   single byte, mangling anything beyond Latin-1. The decoder now
   validates every digit explicitly and emits proper UTF-8 across the
   whole scalar-value range. *)
let reference_tests =
  let decoded name input expected =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string) "decoded" expected (Xml.unescape input))
  in
  let kept name input =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string) "kept verbatim" input (Xml.unescape input))
  in
  [ decoded "decimal" "&#65;&#66;" "AB";
    decoded "hex, both digit cases" "&#x42;&#x6a;&#x6A;" "Bjj";
    decoded "two-byte UTF-8" "&#960;" "\xCF\x80" (* U+03C0 *);
    decoded "three-byte UTF-8" "&#x20AC;" "\xE2\x82\xAC" (* U+20AC *);
    decoded "four-byte UTF-8" "&#x1F600;" "\xF0\x9F\x98\x80";
    decoded "maximum scalar value" "&#x10FFFF;" "\xF4\x8F\xBF\xBF";
    decoded "mixed with text" "a&#x41;b" "aAb";
    kept "digit separator rejected" "&#1_0;";
    kept "hex digit in a decimal reference rejected" "&#1A;";
    kept "junk in a hex reference rejected" "&#xiii;";
    kept "nested 0x prefix rejected" "&#x0x42;";
    kept "empty decimal reference" "&#;";
    kept "empty hex reference" "&#x;";
    kept "uppercase X not a hex prefix" "&#X42;";
    kept "NUL rejected" "&#0;";
    kept "surrogate rejected" "&#xD800;";
    kept "beyond the Unicode range rejected" "&#x110000;";
    kept "negative rejected" "&#-65;";
    Alcotest.test_case "references decode inside documents" `Quick (fun () ->
        Alcotest.(check bool) "emoji text node" true
          (Xml.parse_string "<a>&#x1F600;</a>"
          = Xml.Element ("a", [], [ Xml.Text "\xF0\x9F\x98\x80" ])));
    Alcotest.test_case "decoded references survive a print cycle" `Quick
      (fun () ->
        let tree =
          Xml.Element ("a", [ ("x", "\xCF\x80") ], [ Xml.Text "\xE2\x82\xAC" ])
        in
        Alcotest.(check bool) "roundtrip" true
          (Xml.parse_string (Xml.to_string tree) = tree)) ]

let doc =
  Xml.parse_string
    {|<root a="1" b="x">
        <child n="first">one</child>
        <child n="second">two</child>
        <other/>
      </root>|}

let accessor_tests =
  [ Alcotest.test_case "tag" `Quick (fun () ->
        Alcotest.(check string) "root" "root" (Xml.tag doc));
    Alcotest.test_case "tag of text raises" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Xml.tag: text node") (fun () ->
            ignore (Xml.tag (Xml.Text "x"))));
    Alcotest.test_case "attr present" `Quick (fun () ->
        Alcotest.(check (option string)) "a" (Some "1") (Xml.attr "a" doc));
    Alcotest.test_case "attr absent" `Quick (fun () ->
        Alcotest.(check (option string)) "z" None (Xml.attr "z" doc));
    Alcotest.test_case "attr_exn raises" `Quick (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Xml.attr_exn "z" doc)));
    Alcotest.test_case "int_attr" `Quick (fun () ->
        Alcotest.(check (option int)) "a" (Some 1) (Xml.int_attr "a" doc);
        Alcotest.(check (option int)) "b" None (Xml.int_attr "b" doc));
    Alcotest.test_case "find_all" `Quick (fun () ->
        Alcotest.(check int) "children" 2
          (List.length (Xml.find_all "child" doc)));
    Alcotest.test_case "find_opt first match" `Quick (fun () ->
        match Xml.find_opt "child" doc with
        | Some el ->
          Alcotest.(check (option string)) "n" (Some "first") (Xml.attr "n" el)
        | None -> Alcotest.fail "expected a child");
    Alcotest.test_case "find_opt missing" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Xml.find_opt "nope" doc = None));
    Alcotest.test_case "child_elements drops text" `Quick (fun () ->
        Alcotest.(check int) "elements" 3
          (List.length (Xml.child_elements doc)));
    Alcotest.test_case "text_content recursive" `Quick (fun () ->
        Alcotest.(check string) "text" "onetwo" (Xml.text_content doc));
    Alcotest.test_case "children of text node" `Quick (fun () ->
        Alcotest.(check int) "none" 0 (List.length (Xml.children (Xml.Text "x")))) ]

let error_position_tests =
  [ Alcotest.test_case "error carries line and column" `Quick (fun () ->
        match Xml.parse_string "<a>\n  <b>\n</a>" with
        | exception Xml.Parse_error { line; _ } ->
          Alcotest.(check bool) "line >= 2" true (line >= 2)
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let path = Filename.temp_file "xmllite" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "<a x=\"1\"><b/></a>";
            close_out oc;
            let parsed = Xml.parse_file path in
            Alcotest.(check string) "tag" "a" (Xml.tag parsed))) ]

(* Property: escape/unescape round-trips arbitrary strings. *)
let prop_escape_roundtrip =
  QCheck2.Test.make ~name:"unescape (escape s) = s" ~count:500
    QCheck2.Gen.string_printable (fun s -> Xml.unescape (Xml.escape s) = s)

(* Property: any tree built from safe tags survives print/parse. *)
let gen_tree =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "module"; "mode-x" ] in
  let attr = pair (oneofl [ "k"; "name"; "v2" ]) (string_size (0 -- 8) ~gen:printable) in
  sized
  @@ fix (fun self n ->
         if n = 0 then
           map (fun t -> Xml.Element (t, [], [])) tag
         else
           map3
             (fun t attrs children -> Xml.Element (t, attrs, children))
             tag
             (small_list attr)
             (list_size (0 -- 3) (self (n / 2))))

let dedup_attrs =
  (* Printing duplicate attribute names is not meaningful XML; normalise
     generated trees before testing. *)
  let rec fix = function
    | Xml.Text _ as t -> t
    | Xml.Element (tag, attrs, children) ->
      let attrs =
        List.fold_left
          (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
          [] attrs
        |> List.rev
      in
      Xml.Element (tag, attrs, List.map fix children)
  in
  fix

let prop_tree_roundtrip =
  QCheck2.Test.make ~name:"parse (print tree) = tree" ~count:200 gen_tree
    (fun tree ->
      let tree = dedup_attrs tree in
      Xml.parse_string (Xml.to_string tree) = tree)

let () =
  Alcotest.run "xmllite"
    [ ("parsing", parsing_tests);
      ("printing", printing_tests);
      ("references", reference_tests);
      ("accessors", accessor_tests);
      ("errors", error_position_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_escape_roundtrip; prop_tree_roundtrip ] ) ]
