(* Prspeed tests: the incremental cost kernels against their
   from-scratch references, the memoisation layer, the Par ordered map,
   and the determinism of the parallel engine and sweep. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Base_partition = Cluster.Base_partition
module Agglomerative = Cluster.Agglomerative
module Covering = Prcore.Covering
module Compatibility = Prcore.Compatibility
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Allocator = Prcore.Allocator
module Anneal = Prcore.Anneal
module Exact = Prcore.Exact
module Engine = Prcore.Engine
module Memo = Prcore.Memo
module Resource = Fpga.Resource

let example = Design_library.running_example
let partitions = Agglomerative.run example
let res ?bram ?dsp clb = Resource.make ?bram ?dsp clb

(* A tiny deterministic RNG for driving move sequences. *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !s mod bound

let gen_design =
  QCheck2.Gen.(
    map
      (fun seed ->
        let classes = Array.of_list Synth.Generator.all_classes in
        Synth.Generator.generate
          (Synth.Rng.make seed)
          classes.(seed mod Array.length classes)
          ~index:seed)
      (0 -- 20_000))

let covering_set design =
  match Covering.cover design (Agglomerative.run design) with
  | Some set -> set
  | None -> []

(* ------------------------------------------------------------------ *)
(* Par: the ordered map primitive. *)

let par_tests =
  [ Alcotest.test_case "map_array matches Array.map for any jobs" `Quick
      (fun () ->
        let f x = (x * x) - (3 * x) + 1 in
        List.iter
          (fun n ->
            let input = Array.init n (fun i -> i - 7) in
            let expected = Array.map f input in
            List.iter
              (fun jobs ->
                Alcotest.(check (array int))
                  (Printf.sprintf "n=%d jobs=%d" n jobs)
                  expected
                  (Par.map_array ~jobs f input))
              [ 1; 2; 4 ])
          [ 0; 1; 7; 100 ]);
    Alcotest.test_case "map_list preserves order under contention" `Quick
      (fun () ->
        let input = List.init 200 Fun.id in
        Alcotest.(check (list int))
          "ordered" (List.map succ input)
          (Par.map_list ~jobs:4 succ input));
    Alcotest.test_case "lowest-index exception wins" `Quick (fun () ->
        let f i = if i >= 3 then failwith (string_of_int i) else i in
        List.iter
          (fun jobs ->
            match Par.map_array ~jobs f (Array.init 10 Fun.id) with
            | _ -> Alcotest.fail "expected an exception"
            | exception Failure s ->
              Alcotest.(check string)
                (Printf.sprintf "jobs=%d" jobs)
                "3" s)
          [ 1; 2; 4 ]);
    Alcotest.test_case "pool is reusable and shutdown idempotent" `Quick
      (fun () ->
        let pool = Par.Pool.create ~jobs:3 () in
        let a = Par.Pool.map_array pool succ [| 1; 2; 3 |] in
        let b = Par.Pool.map_array pool succ [| 4; 5 |] in
        Par.Pool.shutdown pool;
        Par.Pool.shutdown pool;
        (* After shutdown, maps fall back to the inline path. *)
        let c = Par.Pool.map_array pool succ [| 6 |] in
        Alcotest.(check (array int)) "first" [| 2; 3; 4 |] a;
        Alcotest.(check (array int)) "second" [| 5; 6 |] b;
        Alcotest.(check (array int)) "inline" [| 7 |] c);
    Alcotest.test_case "recommended_jobs is at least one" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Par.recommended_jobs () >= 1))
  ]

(* ------------------------------------------------------------------ *)
(* Memo: table behaviour and signature canonicalisation. *)

let memo_tests =
  [ Alcotest.test_case "hits and misses are counted" `Quick (fun () ->
        let t = Memo.create () in
        Alcotest.(check (option int)) "miss" None (Memo.find t "a");
        Memo.add t "a" 1;
        Alcotest.(check (option int)) "hit" (Some 1) (Memo.find t "a");
        Alcotest.(check int) "computed once" 1
          (let calls = ref 0 in
           let f () = incr calls; 7 in
           ignore (Memo.find_or_add t "b" f : int);
           ignore (Memo.find_or_add t "b" f : int);
           !calls);
        Alcotest.(check int) "hits" 2 (Memo.hits t);
        Alcotest.(check int) "misses" 2 (Memo.misses t));
    Alcotest.test_case "capacity triggers generational clearing" `Quick
      (fun () ->
        let t = Memo.create ~capacity:2 () in
        Memo.add t "a" 1;
        Memo.add t "b" 2;
        (* Full: the next add clears the table first. *)
        Memo.add t "c" 3;
        Alcotest.(check int) "cleared" 1 (Memo.length t);
        Alcotest.(check (option int)) "survivor" (Some 3) (Memo.find t "c"));
    Alcotest.test_case "absorb merges tables" `Quick (fun () ->
        let a = Memo.create () and b = Memo.create () in
        Memo.add a "x" 1;
        Memo.add b "y" 2;
        Memo.absorb ~into:a b;
        Alcotest.(check (option int)) "kept" (Some 1) (Memo.find a "x");
        Alcotest.(check (option int)) "merged" (Some 2) (Memo.find a "y"));
    Alcotest.test_case "grouping signature is order-invariant" `Quick
      (fun () ->
        let parts = Array.of_list partitions in
        let s1 =
          Memo.grouping_signature ~parts ~statics:[ 3 ]
            ~groups:[ [ 0; 1 ]; [ 2 ] ]
        in
        let s2 =
          Memo.grouping_signature ~parts ~statics:[ 3 ]
            ~groups:[ [ 2 ]; [ 1; 0 ] ]
        in
        let s3 =
          Memo.grouping_signature ~parts ~statics:[ 3 ]
            ~groups:[ [ 0; 2 ]; [ 1 ] ]
        in
        Alcotest.(check string) "permutation invariant" s1 s2;
        Alcotest.(check bool) "groupings distinguished" true (s1 <> s3));
    Alcotest.test_case "placement signature canonical under renumbering"
      `Quick (fun () ->
        Alcotest.(check string)
          "renumbered"
          (Memo.placement_signature [| 0; 0; 1; -1 |])
          (Memo.placement_signature [| 5; 5; 2; -1 |]);
        Alcotest.(check bool)
          "static distinguished" true
          (Memo.placement_signature [| 0; 0; -1 |]
          <> Memo.placement_signature [| 0; 0; 0 |]));
    Alcotest.test_case "scheme signature ignores region numbering" `Quick
      (fun () ->
        let set = covering_set example in
        let n = List.length set in
        let assign order =
          Scheme.make example
            (List.mapi
               (fun p bp -> (bp, Scheme.Region (order p)))
               set)
        in
        (* One partition per region under two different numberings: the
           same allocation up to region ids. *)
        match (assign Fun.id, assign (fun p -> n - 1 - p)) with
        | Ok a, Ok b ->
          Alcotest.(check bool) "nonempty" true (n > 0);
          Alcotest.(check string)
            "renumbered schemes share a signature"
            (Memo.scheme_signature a) (Memo.scheme_signature b)
        | _ -> Alcotest.fail "scheme construction failed")
  ]

(* ------------------------------------------------------------------ *)
(* Incremental kernels vs from-scratch references. *)

let prop_allocator_delta =
  QCheck2.Test.make
    ~name:"allocator conflict cache matches recomputation over move walks"
    ~count:60
    QCheck2.Gen.(pair gen_design (0 -- 1_000_000))
    (fun (design, seed) ->
      match Allocator.Search.initial design (covering_set design) with
      | None -> QCheck2.assume_fail ()
      | Some state ->
        let rand = lcg seed in
        let ok = ref true in
        let check_regions () =
          for r = 0 to Allocator.Search.region_count state - 1 do
            if
              Allocator.Search.alive state r
              && Allocator.Search.region_conflicts state r
                 <> Allocator.Search.recompute_conflicts state r
            then ok := false
          done
        in
        check_regions ();
        let continue = ref true in
        for _ = 1 to 25 do
          if !continue then begin
            match Allocator.Search.moves state with
            | [] -> continue := false
            | moves ->
              let move = List.nth moves (rand (List.length moves)) in
              (match move with
               | Allocator.Search.Merge (a, b) ->
                 (* The delta-predicted merged weight must equal the
                    column recomputation, bit for bit. *)
                 if
                   Allocator.Search.merge_delta state a b
                   <> Allocator.Search.merge_full state a b
                 then ok := false
               | Allocator.Search.Promote _ -> ());
              Allocator.Search.apply state move;
              check_regions ()
          end
        done;
        !ok)

let prop_energy_incremental =
  QCheck2.Test.make
    ~name:"anneal energy incremental sums match from-scratch (with undo)"
    ~count:60
    QCheck2.Gen.(pair gen_design (0 -- 1_000_000))
    (fun (design, seed) ->
      match covering_set design with
      | [] -> QCheck2.assume_fail ()
      | set ->
        let parts = Array.of_list set in
        let n = Array.length parts in
        let analysis = Compatibility.analyse design parts in
        let configs = Design.configuration_count design in
        let activity =
          Array.init n (fun p ->
              Array.init configs (fun c ->
                  Compatibility.active analysis ~bp:p ~config:c))
        in
        let resources =
          Array.map (fun bp -> bp.Base_partition.resources) parts
        in
        let energy =
          Anneal.Energy.create
            ~budget:(res ~bram:50 ~dsp:150 6800)
            ~static_overhead:design.Design.static_overhead ~resources
            ~activity
            (Array.init n Fun.id)
        in
        let rand = lcg seed in
        let ok = ref true in
        for i = 1 to 40 do
          let part = rand n in
          let target =
            match rand (n + 2) with
            | t when t = n -> -1
            | t when t = n + 1 -> part (* a fresh region of its own *)
            | t -> t
          in
          let before = Anneal.Energy.current energy in
          let _candidate = Anneal.Energy.propose energy ~part ~target in
          if i mod 3 = 0 then begin
            (* Rejected move: nothing was committed, the O(1) undo is
               "do nothing" — committed state must be untouched. *)
            if Anneal.Energy.current energy <> before then ok := false
          end
          else Anneal.Energy.commit energy ~part ~target;
          if Anneal.Energy.current energy <> Anneal.Energy.from_scratch energy
          then ok := false
        done;
        !ok)

(* Same incremental-vs-from-scratch drive, but with a placement penalty
   hook installed: the energy's cached penalty term must stay in step
   with the from-scratch recomputation through commits and rejected
   proposals alike. *)
let prop_energy_incremental_with_penalty =
  let estimate =
    Floorplan.Estimate.create
      (Floorplan.Layout.make (Fpga.Device.find_exn "SX35T"))
  in
  QCheck2.Test.make
    ~name:"anneal energy incremental matches from-scratch under a penalty"
    ~count:40
    QCheck2.Gen.(pair gen_design (0 -- 1_000_000))
    (fun (design, seed) ->
      match covering_set design with
      | [] -> QCheck2.assume_fail ()
      | set ->
        let parts = Array.of_list set in
        let n = Array.length parts in
        let analysis = Compatibility.analyse design parts in
        let configs = Design.configuration_count design in
        let activity =
          Array.init n (fun p ->
              Array.init configs (fun c ->
                  Compatibility.active analysis ~bp:p ~config:c))
        in
        let resources =
          Array.map (fun bp -> bp.Base_partition.resources) parts
        in
        let energy =
          Anneal.Energy.create
            ~budget:(res ~bram:50 ~dsp:150 6800)
            ~penalty:(Floorplan.Estimate.penalty estimate)
            ~static_overhead:design.Design.static_overhead ~resources
            ~activity
            (Array.init n Fun.id)
        in
        let rand = lcg seed in
        let ok = ref true in
        for i = 1 to 40 do
          let part = rand n in
          let target =
            match rand (n + 2) with
            | t when t = n -> -1
            | t when t = n + 1 -> part
            | t -> t
          in
          let before = Anneal.Energy.current energy in
          let _candidate = Anneal.Energy.propose energy ~part ~target in
          if i mod 3 = 0 then begin
            if Anneal.Energy.current energy <> before then ok := false
          end
          else Anneal.Energy.commit energy ~part ~target;
          if Anneal.Energy.current energy <> Anneal.Energy.from_scratch energy
          then ok := false
        done;
        !ok)

let prop_exact_matches_cost_model =
  QCheck2.Test.make
    ~name:"exact search scheme total agrees with Cost.evaluate" ~count:25
    gen_design
    (fun design ->
      match covering_set design with
      | [] -> QCheck2.assume_fail ()
      | set when List.length set > 7 -> QCheck2.assume_fail ()
      | set ->
        let result =
          Exact.allocate ~max_states:200_000
            ~budget:(res ~bram:400 ~dsp:400 100_000)
            design set
        in
        (match result.Exact.scheme with
         | None -> QCheck2.assume_fail ()
         | Some scheme ->
           (* The DFS selected this scheme using incrementally maintained
              contributions; the full cost model must agree that no
              allocator scheme beats it (optimality) — checked cheaply by
              evaluating the exact scheme and the greedy one. *)
           let exact_total = (Cost.evaluate scheme).Cost.total_frames in
           (match
              Allocator.allocate
                ~budget:(res ~bram:400 ~dsp:400 100_000)
                design set
            with
            | None -> QCheck2.assume_fail ()
            | Some greedy ->
              exact_total <= (Cost.evaluate greedy).Cost.total_frames)))

let exact_reference_tests =
  [ Alcotest.test_case "conflicts_of_column reference values" `Quick
      (fun () ->
        Alcotest.(check int) "empty" 0 (Exact.conflicts_of_column [| -1; -1 |]);
        Alcotest.(check int) "same resident" 0
          (Exact.conflicts_of_column [| 4; 4; -1 |]);
        Alcotest.(check int) "two changes" 2
          (Exact.conflicts_of_column [| 1; 1; 2 |]);
        Alcotest.(check int) "all distinct" 3
          (Exact.conflicts_of_column [| 0; 1; 2 |])) ]

(* ------------------------------------------------------------------ *)
(* Cost.transition_matrix symmetry (single-triangle computation). *)

let transition_tests =
  [ Alcotest.test_case "transition matrix is symmetric with zero diagonal"
      `Quick (fun () ->
        match Engine.solve ~target:Engine.Auto example with
        | Error e -> Alcotest.fail e
        | Ok outcome ->
          let m = Cost.transition_matrix outcome.Engine.scheme in
          let configs = Design.configuration_count example in
          for i = 0 to configs - 1 do
            Alcotest.(check int) "diagonal" 0 m.(i).(i);
            for j = 0 to configs - 1 do
              Alcotest.(check int)
                (Printf.sprintf "m(%d,%d)" i j)
                m.(i).(j) m.(j).(i);
              if i < j then
                Alcotest.(check int)
                  (Printf.sprintf "pairwise %d %d" i j)
                  (Cost.pairwise_frames outcome.Engine.scheme i j)
                  m.(i).(j)
            done
          done) ]

(* ------------------------------------------------------------------ *)
(* Parallel determinism and cache effectiveness. *)

let outcome_fingerprint (o : Engine.outcome) =
  ( ( Memo.scheme_signature o.Engine.scheme,
      o.Engine.evaluation.Cost.total_frames,
      o.Engine.evaluation.Cost.worst_frames,
      o.Engine.evaluation.Cost.used ),
    ( o.Engine.budget,
      Option.map (fun d -> d.Fpga.Device.short) o.Engine.device,
      o.Engine.base_partitions,
      o.Engine.candidate_sets,
      o.Engine.escalations,
      o.Engine.cost_evaluations ) )

let prop_solve_jobs_identical =
  QCheck2.Test.make ~name:"parallel solve is bit-identical to sequential"
    ~count:12 gen_design (fun design ->
      let seq = Engine.solve ~target:Engine.Auto design in
      let par3 = Engine.solve ~jobs:3 ~target:Engine.Auto design in
      match (seq, par3) with
      | Error a, Error b -> a = b
      | Ok a, Ok b -> outcome_fingerprint a = outcome_fingerprint b
      | Ok _, Error _ | Error _, Ok _ -> false)

let determinism_tests =
  [ Alcotest.test_case "sweep rows identical for jobs 1 and 3" `Slow
      (fun () ->
        let a = Experiments.Sweep.run ~count:8 ~jobs:1 () in
        let b = Experiments.Sweep.run ~count:8 ~jobs:3 () in
        Alcotest.(check int) "row count" (List.length a) (List.length b);
        Alcotest.(check bool) "rows equal" true (a = b));
    Alcotest.test_case "solve populates the evaluation cache" `Quick
      (fun () ->
        let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
        let design =
          match Design_library.find "video-receiver" with
          | Some d -> d
          | None -> Alcotest.fail "video-receiver missing from the library"
        in
        match Engine.solve ~telemetry ~target:Engine.Auto design with
        | Error e -> Alcotest.fail e
        | Ok _ ->
          Alcotest.(check bool)
            "perf.cache_hits > 0" true
            (Prtelemetry.counter_value telemetry "perf.cache_hits" > 0);
          Alcotest.(check bool)
            "perf.delta_evals > 0" true
            (Prtelemetry.counter_value telemetry "perf.delta_evals" > 0)) ]

let () =
  Alcotest.run "prspeed"
    [ ("par", par_tests);
      ("memo", memo_tests);
      ( "kernels",
        List.map QCheck_alcotest.to_alcotest
          [ prop_allocator_delta;
            prop_energy_incremental;
            prop_energy_incremental_with_penalty;
            prop_exact_matches_cost_model ]
        @ exact_reference_tests );
      ("transition", transition_tests);
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest [ prop_solve_jobs_identical ]
        @ determinism_tests ) ]
